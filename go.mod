module pressio

go 1.24
