// Command pressio-loc regenerates the paper's Table II: the lines of
// client code needed for each use case when written once per compressor
// (clients/native) versus once against the generic interface.
package main

import (
	"flag"
	"fmt"
	"os"

	"pressio/internal/experiments"
)

func main() {
	root := flag.String("root", "", "repository root (default: walk up to go.mod)")
	flag.Parse()
	dir := *root
	if dir == "" {
		var err error
		dir, err = experiments.RepoRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pressio-loc:", err)
			os.Exit(1)
		}
	}
	rows, err := experiments.TableII(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressio-loc:", err)
		os.Exit(1)
	}
	fmt.Print(experiments.TableIIReport(rows))
}
