// Command pressio-zchecker is the generic compression-quality analysis
// tool (the Z-Checker integration of the paper): it surveys any set of
// registered compressors over a dataset and reports quality metrics from
// the metrics plugin library. Compare clients/native/zchecker, which
// hard-codes four compressors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pressio/internal/core"

	_ "pressio/internal/bitgroom"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

func main() {
	var (
		input       = flag.String("input", "", "input path")
		ioName      = flag.String("io", "posix", "io plugin")
		dims        = flag.String("dims", "", "dims, slowest first")
		dtype       = flag.String("dtype", "float32", "element type")
		compressors = flag.String("compressors", "sz,zfp,mgard,fpzip,tthresh", "any registered compressors")
		bound       = flag.Float64("bound", 1e-3, "pressio:rel bound (ignored by plugins without it)")
		metricsCSV  = flag.String("metrics", "size,error_stat,pearson,ks_test,autocorrelation,diff_pdf", "metrics plugins")
	)
	flag.Parse()
	if err := run(*input, *ioName, *dims, *dtype, *compressors, *bound, *metricsCSV); err != nil {
		fmt.Fprintln(os.Stderr, "pressio-zchecker:", err)
		os.Exit(1)
	}
}

func run(input, ioName, dims, dtype, compressors string, bound float64, metricsCSV string) error {
	io, err := core.NewIO(ioName)
	if err != nil {
		return err
	}
	if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, input)); err != nil {
		return err
	}
	var hint *core.Data
	if dims != "" {
		if hint, err = core.ParseShape(dims, dtype); err != nil {
			return err
		}
	}
	data, err := io.Read(hint)
	if err != nil {
		return err
	}
	metricNames := strings.Split(metricsCSV, ",")
	for _, name := range strings.Split(compressors, ",") {
		name = strings.TrimSpace(name)
		c, err := core.NewCompressor(name)
		if err != nil {
			fmt.Printf("%s: %v\n", name, err)
			continue
		}
		// Every compressor takes the same generic bound; plugins that do
		// not understand it (e.g. fpzip) simply ignore it, and their
		// introspected options say so.
		if err := c.SetOptions(core.NewOptions().SetValue(core.KeyRel, bound)); err != nil {
			fmt.Printf("%s: %v\n", name, err)
			continue
		}
		m, err := core.NewMetrics(metricNames...)
		if err != nil {
			return err
		}
		c.SetMetrics(m)
		comp, err := core.Compress(c, data)
		if err != nil {
			fmt.Printf("%s: compress: %v\n", name, err)
			continue
		}
		if _, err := core.Decompress(c, comp, data.DType(), data.Dims()...); err != nil {
			fmt.Printf("%s: decompress: %v\n", name, err)
			continue
		}
		fmt.Printf("== %s (%s)\n", name, c.Version())
		res := c.MetricsResults()
		for _, k := range res.Keys() {
			o, _ := res.Get(k)
			fmt.Printf("  %-36s %s\n", k, o)
		}
	}
	return nil
}
