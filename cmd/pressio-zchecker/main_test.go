package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeField(t *testing.T, path string, n int) {
	t.Helper()
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:],
			math.Float32bits(float32(math.Sin(float64(i)/9)*40)))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestZCheckerSurvey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeField(t, path, 16*16)
	err := run(path, "posix", "16,16", "float32", "sz,zfp,fpzip", 1e-3,
		"size,error_stat,pearson")
	if err != nil {
		t.Fatal(err)
	}
}

func TestZCheckerUnknownCompressorContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeField(t, path, 64)
	// An unknown name is reported but does not abort the survey.
	if err := run(path, "posix", "64", "float32", "bogus,sz", 1e-3, "size"); err != nil {
		t.Fatal(err)
	}
}

func TestZCheckerMissingInput(t *testing.T) {
	if err := run("/nonexistent/file", "posix", "4", "float32", "sz", 1e-3, "size"); err == nil {
		t.Fatal("missing input should fail")
	}
}
