// Command pressio-fuzz is the generic compressor fuzzer (LibPressio-Fuzz):
// it feeds random inputs — random shapes, random values including specials,
// and bit-flipped compressed streams — to every registered compressor,
// looking for panics, round-trip failures, and error-bound violations.
// Because it drives the generic interface it covers every plugin at once;
// the paper's native fuzzer had to be written per compressor.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"pressio/internal/core"
	"pressio/internal/resilience"

	_ "pressio/internal/bitgroom"
	_ "pressio/internal/faultinject"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

func main() {
	var (
		iters       = flag.Int("iterations", 200, "fuzz iterations per compressor")
		seed        = flag.Int64("seed", 1, "rng seed")
		compressors = flag.String("compressors", "", "subset (default: all registered)")
		maxElems    = flag.Int("max-elements", 4096, "max elements per fuzz input")
	)
	flag.Parse()
	names := core.SupportedCompressors()
	if *compressors != "" {
		names = strings.Split(*compressors, ",")
	}
	failures := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		n := fuzzCompressor(name, *iters, *seed, *maxElems)
		failures += n
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d findings\n", failures)
		os.Exit(1)
	}
	fmt.Println("ok: no findings")
}

// shapeChanging plugins discard elements by design (decimation), so a
// round-trip length change is their contract, not a finding.
var shapeChanging = map[string]bool{"sample": true}

// faultInjecting plugins corrupt their own streams or inject errors on
// purpose; a failed decompress is expected behavior. Panics still count —
// the recover handler reports them regardless.
var faultInjecting = map[string]bool{
	"fault_injector": true,
	"faultinject":    true,
	"noise_injector": true,
}

func fuzzCompressor(name string, iters int, seed int64, maxElems int) int {
	rng := rand.New(rand.NewSource(seed))
	findings := 0
	report := func(format string, args ...any) {
		findings++
		fmt.Printf("[%s] "+format+"\n", append([]any{name}, args...)...)
	}
	for i := 0; i < iters; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					report("panic on iteration %d: %v", i, r)
				}
			}()
			c, err := core.NewCompressor(name)
			if err != nil {
				report("construction failed: %v", err)
				return
			}
			bound := math.Pow(10, -float64(rng.Intn(6)))
			_ = c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, bound))
			in := randomData(rng, maxElems)
			comp, err := core.Compress(c, in)
			if err != nil {
				return // rejecting an input is fine; crashing is not
			}
			dec := core.NewEmpty(in.DType(), in.Dims()...)
			if err := c.Decompress(comp, dec); err != nil {
				if !faultInjecting[name] {
					report("iteration %d: compressed ok but decompress failed: %v", i, err)
				}
				return
			}
			if dec.Len() != in.Len() && !shapeChanging[name] {
				report("iteration %d: length changed %d -> %d", i, in.Len(), dec.Len())
			}
			// Bit-flip the stream: decompression may fail but must not
			// panic (the panic handler above catches violations).
			if comp.ByteLen() > 0 {
				corrupt := comp.Clone()
				bit := rng.Intn(int(comp.ByteLen()) * 8)
				corrupt.Bytes()[bit/8] ^= 1 << (bit % 8)
				_ = c.Decompress(corrupt, core.NewEmpty(in.DType(), in.Dims()...))
			}
			// Frame passes: wrap the stream in an integrity frame, then
			// truncate or corrupt it and decompress through the
			// frame-validated path, which must reject every mutation with an
			// error — never a panic, never silent acceptance of a flipped
			// payload.
			fuzzFrames(rng, c, in, comp, report)
		}()
	}
	fmt.Printf("%-18s %d iterations, %d findings\n", name, iters, findings)
	return findings
}

// fuzzFrames exercises the integrity-frame validation path: a valid frame
// must decode and decompress; truncated frames and payload bit flips must
// fail frame validation with an error. A finding is reported when corruption
// slips through undetected. Panics unwind to the caller's recover, which
// reports them.
func fuzzFrames(rng *rand.Rand, c *core.Compressor, in, comp *core.Data, report func(string, ...any)) {
	framed, err := resilience.EncodeFrame(c.Prefix(), in.DType(), in.Dims(), comp.Bytes())
	if err != nil {
		report("frame encode failed: %v", err)
		return
	}
	f, err := resilience.DecodeFrame(framed)
	if err != nil {
		report("pristine frame rejected: %v", err)
		return
	}
	if err := c.Decompress(core.NewBytes(f.Payload), core.NewEmpty(in.DType(), in.Dims()...)); err != nil {
		if !faultInjecting[c.Prefix()] {
			report("pristine framed payload failed to decompress: %v", err)
		}
	}
	// Truncation at a random point must be rejected, never panic.
	n := rng.Intn(len(framed))
	if _, err := resilience.DecodeFrame(framed[:n]); err == nil {
		report("truncated frame (%d of %d bytes) accepted", n, len(framed))
	}
	// A bit flip anywhere in the payload region must be caught by the CRC.
	if comp.ByteLen() > 0 {
		mut := append([]byte(nil), framed...)
		start := len(mut) - int(comp.ByteLen())
		bit := start*8 + rng.Intn(int(comp.ByteLen())*8)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := resilience.DecodeFrame(mut); err == nil {
			report("payload bit flip at %d accepted by frame validation", bit)
		}
	}
	// An arbitrary bit flip anywhere in the frame may land in the header;
	// decode must return (error or not) without panicking, and if it decodes
	// the payload must still pass the checksum before reaching the decoder.
	mut := append([]byte(nil), framed...)
	bit := rng.Intn(len(mut) * 8)
	mut[bit/8] ^= 1 << (bit % 8)
	if g, err := resilience.DecodeFrame(mut); err == nil {
		_ = c.Decompress(core.NewBytes(g.Payload), core.NewEmpty(g.DType, g.Dims...))
	}
}

func randomData(rng *rand.Rand, maxElems int) *core.Data {
	rank := 1 + rng.Intn(3)
	dims := make([]uint64, rank)
	remaining := maxElems
	for i := range dims {
		dims[i] = uint64(1 + rng.Intn(max(2, remaining/(1<<i))))
		if dims[i] > 64 {
			dims[i] = uint64(1 + rng.Intn(64))
		}
		remaining /= int(dims[i])
		if remaining < 1 {
			remaining = 1
		}
	}
	n := uint64(1)
	for _, d := range dims {
		n *= d
	}
	vals := make([]float32, n)
	mode := rng.Intn(4)
	for i := range vals {
		switch mode {
		case 0:
			vals[i] = float32(rng.NormFloat64())
		case 1:
			vals[i] = float32(math.Sin(float64(i) / 10))
		case 2:
			vals[i] = math.Float32frombits(rng.Uint32()) // arbitrary bits incl. NaN/Inf
		default:
			vals[i] = 0
		}
	}
	return core.FromFloat32s(vals, dims...)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
