package main

import (
	"math/rand"
	"testing"
)

func TestFuzzCoreCompressorsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz smoke test")
	}
	for _, name := range []string{"sz_threadsafe", "zfp", "mgard", "fpzip", "flate", "linear_quantizer"} {
		if findings := fuzzCompressor(name, 40, 1, 1024); findings != 0 {
			t.Fatalf("%s: %d findings", name, findings)
		}
	}
}

func TestRandomDataShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		d := randomData(rng, 2048)
		if d.Len() == 0 || d.NumDims() == 0 || d.NumDims() > 3 {
			t.Fatalf("bad shape: %v", d)
		}
	}
}
