package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pressio/internal/trace"
)

// chromeDoc mirrors the trace_event JSON container for schema validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   *float64       `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  *int           `json:"pid"`
		Tid  *uint64        `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTracedChunkedSZRunProducesValidChromeTrace is the acceptance check
// for `pressio-bench -experiment trace -trace=out.json`: the chunked SZ run
// must yield a schema-valid Chrome trace_event file whose spans nest
// wrapper -> plugin impl -> per-chunk work.
func TestTracedChunkedSZRunProducesValidChromeTrace(t *testing.T) {
	trace.Reset()
	trace.ResetTelemetry()
	defer func() {
		trace.Disable()
		trace.Reset()
		trace.ResetTelemetry()
	}()

	if err := traceDemo(1, 42); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.json")
	if err := trace.WriteChromeTraceFile(out); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file holds no events")
	}

	// Schema: every event is a complete ("X") event with the required
	// timing and track fields.
	spanID := map[string]uint64{} // name -> one representative span id
	parentOf := map[uint64]uint64{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph != "X" {
			t.Fatalf("bad event: name=%q ph=%q", ev.Name, ev.Ph)
		}
		if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %q missing ts/dur/pid/tid", ev.Name)
		}
		if *ev.Ts < 0 || *ev.Dur < 0 {
			t.Fatalf("event %q has negative timing", ev.Name)
		}
		id, ok := ev.Args["span_id"].(float64)
		if !ok {
			t.Fatalf("event %q missing span_id arg", ev.Name)
		}
		parent, _ := ev.Args["parent_id"].(float64)
		spanID[ev.Name] = uint64(id)
		parentOf[uint64(id)] = uint64(parent)
	}

	// Nesting: wrapper -> plugin impl -> per-chunk spans, and chunk spans
	// carry worker attribution.
	for _, want := range []string{"pressio.compress", "chunking.compress_impl", "chunking.chunk", "sz.predict_quantize", "sz.encode"} {
		if _, ok := spanID[want]; !ok {
			t.Fatalf("trace missing %q span", want)
		}
	}
	implIDs := map[uint64]bool{}
	wrapperIDs := map[uint64]bool{}
	for _, ev := range doc.TraceEvents {
		id := uint64(ev.Args["span_id"].(float64))
		switch ev.Name {
		case "pressio.compress", "pressio.decompress":
			wrapperIDs[id] = true
		case "chunking.compress_impl", "chunking.decompress_impl":
			implIDs[id] = true
		}
	}
	chunks := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name != "chunking.chunk" {
			continue
		}
		chunks++
		parent := uint64(ev.Args["parent_id"].(float64))
		if !implIDs[parent] {
			t.Fatalf("chunk span parented to %d, not a plugin impl span", parent)
		}
		if !wrapperIDs[parentOf[parent]] {
			t.Fatal("plugin impl span not parented to the pressio wrapper span")
		}
		if _, ok := ev.Args["worker"]; !ok {
			t.Fatal("chunk span missing worker attribution")
		}
	}
	if chunks == 0 {
		t.Fatal("no per-chunk spans recorded")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("nope", 1, 1, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
