// Command pressio-bench regenerates the paper's quantitative evaluation:
//
//	-experiment fig3     the §VI overhead distribution + Wilcoxon test
//	-experiment dimorder the §V reversed-dimension-order ratio loss
//	-experiment flatten  the §V 3-D-as-1-D ratio loss
//	-experiment zfppad   the §V zfp block-padding inefficiency
//	-experiment dtype    the §V datatype-awareness advantage
//	-experiment mgardmin the §V MGARD minimum-dims failure
//	-experiment embed    the §V in-process vs external-process overhead
//	-experiment tablei   Table I (feature matrix)
//	-experiment tableii  Table II (client lines of code)
//	-experiment trace    a traced chunked-SZ run (span summary on stdout)
//	-experiment all      everything above except trace and the ledger modes
//
// Beyond the paper experiments, the binary is also the perf-ledger harness
// (see docs/OBSERVABILITY.md):
//
//	-experiment ledger        measure codec throughput, allocs/op, and
//	                          pressiod p50/p99; print the table and, with
//	                          -ledger-out, write BENCH_<date>.json
//	-experiment ledger-diff   gate a fresh measurement (or -ledger-out file)
//	                          against -ledger-baseline; non-zero exit on
//	                          regression
//
// -quick shrinks the ledger run for CI smoke; -ledger-md writes the
// comparison as a markdown table (for job summaries).
//
// The embed experiment re-executes this binary with -worker, so it measures
// a real process spawn plus two real data copies across pipes.
//
// Passing -trace=out.json enables span collection for the whole invocation
// and writes a Chrome trace_event file on exit, loadable in chrome://tracing
// or Perfetto. Combined with -experiment trace it yields the nested
// wrapper -> plugin -> per-chunk view of a parallel compression pipeline.
// Passing -cpuprofile=out.pprof captures a CPU profile of the run for
// `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"pressio/internal/core"
	"pressio/internal/experiments"
	"pressio/internal/launch"
	"pressio/internal/perfledger"
	"pressio/internal/sdrbench"
	"pressio/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig3, dimorder, flatten, zfppad, dtype, mgardmin, embed, tablei, tableii, trace, ledger, ledger-diff, or all")
		scale      = flag.Int("scale", 2, "dataset scale (1 = quick, 2 = default)")
		runs       = flag.Int("runs", 30, "matched-pair runs per configuration (fig3)")
		seed       = flag.Int64("seed", 20210101, "dataset seed")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run to this path")
		cpuProfile = flag.String("cpuprofile", "", "capture a CPU profile of the run to this path (go tool pprof)")
		quick      = flag.Bool("quick", false, "shrink the ledger measurement for CI smoke runs")
		ledgerOut  = flag.String("ledger-out", "", "write the measured ledger JSON to this path (ledger modes)")
		ledgerBase = flag.String("ledger-baseline", "", "baseline BENCH_<date>.json to gate against (ledger-diff)")
		ledgerMD   = flag.String("ledger-md", "", "write the ledger-diff comparison as a markdown table to this path")
		worker     = flag.Bool("worker", false, "serve one worker request on stdin/stdout (internal)")
		delay      = flag.Duration("startup-delay", 0, "simulated init delay in worker mode (internal)")
	)
	flag.Parse()
	if *worker {
		time.Sleep(*delay)
		if err := launch.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pressio-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pressio-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
			fmt.Fprintf(os.Stderr, "pressio-bench: wrote CPU profile to %s\n", *cpuProfile)
		}()
	}
	if *traceOut != "" {
		trace.Enable()
	}
	var err error
	switch *experiment {
	case "ledger":
		err = runLedger(*quick, *seed, *ledgerOut)
	case "ledger-diff":
		err = runLedgerDiff(*quick, *seed, *ledgerOut, *ledgerBase, *ledgerMD)
	default:
		err = run(*experiment, *scale, *runs, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressio-bench:", err)
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := trace.WriteChromeTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "pressio-bench: writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d spans to %s\n", trace.Len(), *traceOut)
	}
}

// runLedger measures a fresh perf ledger, prints it, and optionally writes
// the JSON for committing as BENCH_<date>.json.
func runLedger(quick bool, seed int64, out string) error {
	led, err := perfledger.Run(perfledger.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(led.Report())
	if out != "" {
		if err := perfledger.WriteFile(out, led); err != nil {
			return err
		}
		fmt.Printf("wrote ledger to %s\n", out)
	}
	return nil
}

// runLedgerDiff measures a fresh ledger and gates it against a committed
// baseline. Without -ledger-baseline it picks the most recent BENCH_*.json
// in the working directory; with none present the run records baseline-less
// and passes (the first ledger has nothing to regress from).
func runLedgerDiff(quick bool, seed int64, out, baseline, mdOut string) error {
	if baseline == "" {
		latest, err := perfledger.FindLatest(".")
		if err != nil {
			return err
		}
		baseline = latest
	}
	cand, err := perfledger.Run(perfledger.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	if out != "" {
		if err := perfledger.WriteFile(out, cand); err != nil {
			return err
		}
	}
	if baseline == "" {
		fmt.Print(cand.Report())
		fmt.Println("no committed BENCH_*.json baseline; nothing to gate against")
		return nil
	}
	base, err := perfledger.ReadFile(baseline)
	if err != nil {
		return err
	}
	cmp := perfledger.Compare(base, cand, perfledger.DefaultTolerance())
	fmt.Printf("gating against %s:\n%s", baseline, cmp.Report())
	if mdOut != "" {
		md := fmt.Sprintf("### Perf ledger vs `%s`\n\n%s", baseline, cmp.MarkdownTable())
		if err := os.WriteFile(mdOut, []byte(md), 0o644); err != nil {
			return err
		}
	}
	if !cmp.OK() {
		return fmt.Errorf("perf regression against %s (see table above)", baseline)
	}
	fmt.Println("perf gate passed")
	return nil
}

func run(experiment string, scale, runs int, seed int64) error {
	all := experiment == "all"
	did := false
	if all || experiment == "fig3" {
		did = true
		res, err := experiments.Fig3(scale, runs, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "dimorder" {
		did = true
		rows, err := experiments.DimOrder(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.DimOrderReport(rows))
	}
	if all || experiment == "flatten" {
		did = true
		rows, err := experiments.Flatten(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FlattenReport(rows))
	}
	if all || experiment == "zfppad" {
		did = true
		res, err := experiments.ZfpPad(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "dtype" {
		did = true
		res, err := experiments.DTypeAware(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "mgardmin" {
		did = true
		msg, err := experiments.MgardMin()
		if err != nil {
			return err
		}
		fmt.Printf("mgard on a 2x2 grid fails rather than compressing (as §V reports):\n  %s\n\n", msg)
	}
	if all || experiment == "embed" {
		did = true
		self, err := os.Executable()
		if err != nil {
			return err
		}
		res, err := experiments.Embed(self, []string{"-worker"}, scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "tablei" {
		did = true
		fmt.Println(experiments.TableI())
	}
	if all || experiment == "tableii" {
		did = true
		root, err := experiments.RepoRoot()
		if err != nil {
			return err
		}
		rows, err := experiments.TableII(root)
		if err != nil {
			return err
		}
		fmt.Println(experiments.TableIIReport(rows))
	}
	if experiment == "trace" {
		did = true
		if err := traceDemo(scale, seed); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}

// traceDemo drives the observability layer end to end: a chunked SZ
// round-trip (the chunking meta-compressor fanning sz_threadsafe workers
// out over the slowest dimension) with span collection on, then prints the
// span rollup/telemetry summary. With -trace=out.json the same spans land
// in the Chrome trace file, showing the nested
// pressio.compress -> chunking.compress_impl -> chunking.chunk ->
// sz.predict_quantize/sz.encode structure.
func traceDemo(scale int, seed int64) error {
	wasEnabled := trace.Enabled()
	trace.Enable()
	in, ok := sdrbench.Generate(sdrbench.NameScaleLetKF, scale, seed)
	if !ok {
		return fmt.Errorf("trace demo: unknown dataset %q", sdrbench.NameScaleLetKF)
	}
	comp, err := core.NewCompressor("chunking")
	if err != nil {
		return err
	}
	if err := comp.SetOptions(core.NewOptions().
		SetValue("chunking:compressor", "sz_threadsafe").
		SetValue(core.KeyRel, 1e-3)); err != nil {
		return err
	}
	compressed, err := core.Compress(comp, in)
	if err != nil {
		return err
	}
	if _, err := core.Decompress(comp, compressed, in.DType(), in.Dims()...); err != nil {
		return err
	}
	if !wasEnabled {
		// Leave collection the way we found it for embedding callers; the
		// recorded spans stay in the buffer for -trace export.
		trace.Disable()
	}
	fmt.Printf("traced chunked-SZ round-trip: %d -> %d bytes, %d spans\n\n",
		in.ByteLen(), compressed.ByteLen(), trace.Len())
	return trace.WriteSummary(os.Stdout, trace.Snapshot())
}
