// Command pressio-bench regenerates the paper's quantitative evaluation:
//
//	-experiment fig3     the §VI overhead distribution + Wilcoxon test
//	-experiment dimorder the §V reversed-dimension-order ratio loss
//	-experiment flatten  the §V 3-D-as-1-D ratio loss
//	-experiment zfppad   the §V zfp block-padding inefficiency
//	-experiment dtype    the §V datatype-awareness advantage
//	-experiment mgardmin the §V MGARD minimum-dims failure
//	-experiment embed    the §V in-process vs external-process overhead
//	-experiment tablei   Table I (feature matrix)
//	-experiment tableii  Table II (client lines of code)
//	-experiment all      everything above
//
// The embed experiment re-executes this binary with -worker, so it measures
// a real process spawn plus two real data copies across pipes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pressio/internal/experiments"
	"pressio/internal/launch"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig3, dimorder, flatten, zfppad, dtype, mgardmin, embed, tablei, tableii, or all")
		scale      = flag.Int("scale", 2, "dataset scale (1 = quick, 2 = default)")
		runs       = flag.Int("runs", 30, "matched-pair runs per configuration (fig3)")
		seed       = flag.Int64("seed", 20210101, "dataset seed")
		worker     = flag.Bool("worker", false, "serve one worker request on stdin/stdout (internal)")
		delay      = flag.Duration("startup-delay", 0, "simulated init delay in worker mode (internal)")
	)
	flag.Parse()
	if *worker {
		time.Sleep(*delay)
		if err := launch.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*experiment, *scale, *runs, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pressio-bench:", err)
		os.Exit(1)
	}
}

func run(experiment string, scale, runs int, seed int64) error {
	all := experiment == "all"
	did := false
	if all || experiment == "fig3" {
		did = true
		res, err := experiments.Fig3(scale, runs, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "dimorder" {
		did = true
		rows, err := experiments.DimOrder(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.DimOrderReport(rows))
	}
	if all || experiment == "flatten" {
		did = true
		rows, err := experiments.Flatten(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FlattenReport(rows))
	}
	if all || experiment == "zfppad" {
		did = true
		res, err := experiments.ZfpPad(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "dtype" {
		did = true
		res, err := experiments.DTypeAware(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "mgardmin" {
		did = true
		msg, err := experiments.MgardMin()
		if err != nil {
			return err
		}
		fmt.Printf("mgard on a 2x2 grid fails rather than compressing (as §V reports):\n  %s\n\n", msg)
	}
	if all || experiment == "embed" {
		did = true
		self, err := os.Executable()
		if err != nil {
			return err
		}
		res, err := experiments.Embed(self, []string{"-worker"}, scale, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Report())
	}
	if all || experiment == "tablei" {
		did = true
		fmt.Println(experiments.TableI())
	}
	if all || experiment == "tableii" {
		did = true
		root, err := experiments.RepoRoot()
		if err != nil {
			return err
		}
		rows, err := experiments.TableII(root)
		if err != nil {
			return err
		}
		fmt.Println(experiments.TableIIReport(rows))
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
