// Command pressio-fsck checks — and with -repair, repairs — a pressio
// object-store directory offline (the store must not be open elsewhere).
//
//	pressio-fsck /var/lib/pressio/objects          # check, human-readable
//	pressio-fsck -json /var/lib/pressio/objects    # check, typed report
//	pressio-fsck -repair /var/lib/pressio/objects  # fix what is fixable
//
// Check mode is strictly read-only: it computes the state crash recovery
// would reach (manifest plus journal replay), verifies every reachable chunk
// against its durable CRC32-C, and reports torn journal tails, corrupt or
// rebuildable segments, orphans, and leftover temp files. Repair mode runs
// recovery, a full scrub (quarantining chunks that fail their checksum —
// nothing is ever deleted, evidence moves to quarantine/), and a checkpoint,
// then re-checks.
//
// Exit codes: 0 the store is clean, 1 problems were found (after repair, if
// -repair: something remains wrong), 2 usage or operational error. Scripts
// depend on these — see scripts/pressiod-store-smoke.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pressio/internal/store"

	// Filters referenced by stored objects must be registered for repair's
	// scrub/rebuild path; register the full plugin library as pressiod does.
	_ "pressio/internal/bitgroom"
	_ "pressio/internal/faultinject"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/resilience"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

func main() {
	os.Exit(run())
}

func run() int {
	repair := flag.Bool("repair", false, "repair the store instead of only reporting (recovery + scrub + checkpoint)")
	asJSON := flag.Bool("json", false, "emit the typed FsckReport as JSON instead of human-readable lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pressio-fsck [-repair] [-json] <store-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	dir := flag.Arg(0)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		fmt.Fprintf(os.Stderr, "pressio-fsck: %s is not a directory\n", dir)
		return 2
	}

	rep, err := store.Fsck(dir, store.FsckOptions{Repair: *repair})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pressio-fsck: %v\n", err)
		return 2
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "pressio-fsck: %v\n", err)
			return 2
		}
	} else {
		fmt.Printf("%s: %d objects, %d chunks verified, %d journal records (%d below checkpoint)\n",
			rep.Dir, rep.Objects, rep.ChunksChecked, rep.JournalRecords, rep.JournalSkipped)
		if rep.AlreadyQuarantined > 0 {
			fmt.Printf("  %d chunks quarantined (consistent: awaiting out-of-band restore)\n", rep.AlreadyQuarantined)
		}
		if rep.Repaired != nil {
			r := rep.Repaired
			fmt.Printf("repair: replayed %d records, rebuilt %d segments, truncated %d torn bytes, quarantined %d chunks, scrubbed %d chunks\n",
				r.Recovery.Replayed, r.Recovery.SegmentsRebuilt, r.Recovery.TornTailBytes,
				r.Recovery.ChunksQuarantined+r.Scrub.Quarantined, r.Scrub.ChunksChecked)
		}
		for _, p := range rep.Problems() {
			fmt.Printf("  problem: %s\n", p)
		}
	}

	if !rep.Clean() {
		return 1
	}
	return 0
}
