package main

import "testing"

func TestDistributedRunCompletes(t *testing.T) {
	for _, ranks := range []int{1, 4, 16} {
		if err := run(ranks, "scale-letkf", 1, "sz_threadsafe", 1e-3, 7); err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
	}
}

func TestDistributedRunMoreRanksThanRows(t *testing.T) {
	// Ranks are clamped to the slowest dimension.
	if err := run(10000, "nyx-density", 1, "zfp", 1e-3, 7); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedRunErrors(t *testing.T) {
	if err := run(4, "not-a-dataset", 1, "sz", 1e-3, 7); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if err := run(4, "scale-letkf", 1, "not-a-compressor", 1e-3, 7); err == nil {
		t.Fatal("unknown compressor should fail")
	}
}
