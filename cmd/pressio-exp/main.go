// Command pressio-exp is the distributed compression experiment harness
// (the paper's "experimental test harness ... distributed with MPI",
// DistributedExperiment in Table II). MPI ranks are modeled as goroutine
// workers exchanging work over channels: each rank owns a slab of the
// domain, compresses its slab with a clone of the configured compressor,
// and a root rank reduces the per-rank metrics — the same communication
// structure at laptop scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"pressio/internal/core"
	"pressio/internal/sdrbench"

	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

type rankResult struct {
	rank       int
	elements   uint64
	compressed uint64
	raw        uint64
	durationMS float64
	err        error
}

func main() {
	var (
		ranks      = flag.Int("ranks", 8, "number of simulated MPI ranks")
		dataset    = flag.String("dataset", sdrbench.NameScaleLetKF, "synthetic dataset name")
		scale      = flag.Int("scale", 2, "dataset scale")
		compressor = flag.String("compressor", "sz_threadsafe", "compressor plugin")
		bound      = flag.Float64("bound", 1e-3, "pressio:rel bound")
		seed       = flag.Int64("seed", 1, "dataset seed")
	)
	flag.Parse()
	if err := run(*ranks, *dataset, *scale, *compressor, *bound, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pressio-exp:", err)
		os.Exit(1)
	}
}

func run(ranks int, dataset string, scale int, compressor string, bound float64, seed int64) error {
	data, ok := sdrbench.Generate(dataset, scale, seed)
	if !ok {
		return fmt.Errorf("unknown dataset %q (have %s)", dataset, strings.Join(sdrbench.Names(), ", "))
	}
	proto, err := core.NewCompressor(compressor)
	if err != nil {
		return err
	}
	if err := proto.SetOptions(core.NewOptions().SetValue(core.KeyRel, bound)); err != nil {
		return err
	}

	dims := data.Dims()
	d0 := dims[0]
	if uint64(ranks) > d0 {
		ranks = int(d0)
	}
	rowBytes := uint64(data.DType().Size())
	for _, d := range dims[1:] {
		rowBytes *= d
	}

	// "Scatter": each rank receives its slab over a channel, as an MPI
	// scatter would deliver it.
	type slab struct {
		rank int
		data *core.Data
	}
	work := make(chan slab, ranks)
	results := make(chan rankResult, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each rank owns an independent clone, as each MPI process
			// would own an independent library instance.
			local := proto.Clone()
			for s := range work {
				start := time.Now()
				comp, err := core.Compress(local, s.data)
				res := rankResult{rank: s.rank, elements: s.data.Len(), raw: s.data.ByteLen(),
					durationMS: float64(time.Since(start).Nanoseconds()) / 1e6, err: err}
				if err == nil {
					res.compressed = comp.ByteLen()
					// Verify the slab decodes on the "remote" side.
					if _, err := core.Decompress(local, comp, s.data.DType(), s.data.Dims()...); err != nil {
						res.err = err
					}
				}
				results <- res
			}
		}()
	}
	for r := 0; r < ranks; r++ {
		lo := uint64(r) * d0 / uint64(ranks)
		hi := uint64(r+1) * d0 / uint64(ranks)
		slabDims := append([]uint64{hi - lo}, dims[1:]...)
		raw := data.Bytes()[lo*rowBytes : hi*rowBytes]
		sd, err := core.NewMove(data.DType(), raw, slabDims...)
		if err != nil {
			return err
		}
		work <- slab{rank: r, data: sd}
	}
	close(work)
	wg.Wait()
	close(results)

	// "Reduce" at the root rank.
	var all []rankResult
	for res := range results {
		all = append(all, res)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rank < all[j].rank })
	var totalRaw, totalComp uint64
	worstMS := 0.0
	fmt.Printf("%-6s %12s %12s %10s %10s\n", "rank", "elements", "compressed", "ratio", "ms")
	for _, res := range all {
		if res.err != nil {
			return fmt.Errorf("rank %d: %w", res.rank, res.err)
		}
		totalRaw += res.raw
		totalComp += res.compressed
		if res.durationMS > worstMS {
			worstMS = res.durationMS
		}
		fmt.Printf("%-6d %12d %12d %10.3f %10.2f\n",
			res.rank, res.elements, res.compressed,
			float64(res.raw)/float64(res.compressed), res.durationMS)
	}
	fmt.Printf("global ratio: %.3f over %d ranks; slowest rank: %.2f ms\n",
		float64(totalRaw)/float64(totalComp), len(all), worstMS)
	return nil
}
