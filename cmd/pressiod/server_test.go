package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"pressio/internal/service"
	"pressio/internal/trace"
)

// startTestDaemon boots a daemon on an ephemeral port and returns it with a
// drain trigger and the channel carrying drain's result. The cleanup drains
// if the test has not already done so.
func startTestDaemon(t *testing.T, mutate func(*config)) (*daemon, func(), chan error) {
	t.Helper()
	service.ResetShared()
	trace.ResetTelemetry()
	cfg := config{
		addr:         "127.0.0.1:0",
		compressor:   "noop",
		concurrency:  2,
		memBudget:    1 << 20,
		queueDepth:   8,
		reqTimeout:   5 * time.Second,
		drainTimeout: 5 * time.Second,
		lameDuck:     10 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	drained := false
	drain := func() {
		if !drained {
			drained = true
			done <- d.drain()
		}
	}
	t.Cleanup(drain)
	return d, drain, done
}

func sampleFloat32(n int) ([]float32, []byte) {
	vals := make([]float32, n)
	raw := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 7))
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(vals[i]))
	}
	return vals, raw
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDaemonRoundTrip(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *config) {
		c.compressor = "sz_threadsafe"
		c.options = []string{"pressio:abs=0.01"}
	})
	base := "http://" + d.Addr()
	vals, raw := sampleFloat32(32 * 32)

	resp := post(t, base+"/compress?dims=32,32&dtype=float32", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := resp.Header.Get("X-Pressio-Compressor"); got != "sz_threadsafe" {
		t.Errorf("X-Pressio-Compressor %q", got)
	}
	compressed := readAll(t, resp)
	if len(compressed) == 0 || len(compressed) >= len(raw) {
		t.Fatalf("compressed %d bytes from %d input bytes", len(compressed), len(raw))
	}

	resp = post(t, base+"/decompress?dims=32,32&dtype=float32", compressed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	dec := readAll(t, resp)
	if len(dec) != len(raw) {
		t.Fatalf("decompressed %d bytes, want %d", len(dec), len(raw))
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(dec[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated: %v vs %v", i, got, vals[i])
		}
	}
}

func TestDaemonHealthReadyAndDrain(t *testing.T) {
	d, drain, done := startTestDaemon(t, func(c *config) {
		c.lameDuck = 300 * time.Millisecond
	})
	base := "http://" + d.Addr()

	resp := post(t, base+"/compress?dims=4&dtype=float32", make([]byte, 16))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d", resp.StatusCode)
	}
	readAll(t, resp)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d, want 200", path, resp.StatusCode)
		}
		readAll(t, resp)
	}

	go drain()
	// During the lame-duck window the listener still answers: liveness stays
	// 200 while readiness flips to 503 so rolling restarts route away.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("/readyz unreachable during lame-duck: %v", err)
		}
		code := resp.StatusCode
		body := readAll(t, resp)
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(string(body), "draining") {
				t.Fatalf("/readyz body %q, want draining", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after drain start")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain %d, want 200 (liveness != readiness)", resp.StatusCode)
	}
	readAll(t, resp)

	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s, f := d.started.Load(), d.finished.Load(); s != f {
		t.Fatalf("drain dropped requests: %d started, %d finished", s, f)
	}
}

func TestDaemonShedOversizedTyped503(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *config) {
		c.memBudget = 16
	})
	resp := post(t, "http://"+d.Addr()+"/compress?dims=16&dtype=float32", make([]byte, 64))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Pressio-Error"); got != "shed" {
		t.Errorf("X-Pressio-Error %q, want shed", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if trace.CounterValue(trace.BulkheadShedKey("compress")) != 1 {
		t.Error("per-bulkhead shed counter not incremented")
	}
}

func TestDaemonBreakerOpenTyped503(t *testing.T) {
	d, _, _ := startTestDaemon(t, func(c *config) {
		c.compressor = "faultinject"
		c.breaker = true
		c.options = []string{
			"faultinject:compressor=noop",
			"faultinject:error_rate=1",
			"faultinject:seed=1",
			"breaker:window=4",
			"breaker:failure_threshold=2",
			"breaker:open_ms=60000",
		}
	})
	base := "http://" + d.Addr()
	payload := make([]byte, 16)
	// The first two requests reach the always-failing child (typed faults),
	// then the shared circuit is open and requests are rejected up front.
	for i := 0; i < 2; i++ {
		resp := post(t, base+"/compress?dims=4&dtype=float32", payload)
		readAll(t, resp)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d status %d, want 500 (injected fault)", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Pressio-Error"); got != "fault" {
			t.Errorf("request %d X-Pressio-Error %q, want fault", i, got)
		}
	}
	resp := post(t, base+"/compress?dims=4&dtype=float32", payload)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Pressio-Error"); got != "breaker-open" {
		t.Errorf("X-Pressio-Error %q, want breaker-open", got)
	}
	if trace.CounterValue(trace.CtrBreakerOpened) != 1 {
		t.Errorf("opened counter %d, want 1", trace.CounterValue(trace.CtrBreakerOpened))
	}
}

func TestDaemonBadRequestMissingShape(t *testing.T) {
	d, _, _ := startTestDaemon(t, nil)
	resp := post(t, "http://"+d.Addr()+"/compress", make([]byte, 16))
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for missing dims/dtype", resp.StatusCode)
	}
}

func TestDaemonMetricz(t *testing.T) {
	d, _, _ := startTestDaemon(t, nil)
	base := "http://" + d.Addr()
	readAll(t, post(t, base+"/compress?dims=4&dtype=float32", make([]byte, 16)))
	resp, err := http.Get(base + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	for _, w := range []string{
		fmt.Sprintf("%s=1\n", trace.CtrDaemonRequests),
		fmt.Sprintf("%s=1\n", trace.CtrAdmissionAdmitted),
		"service.bulkhead.compress.queue_depth=0\n",
		"service.bulkhead.compress.used_bytes=0\n",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metricz missing %q:\n%s", w, body)
		}
	}
}
