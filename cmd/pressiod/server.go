package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pressio/internal/core"
	"pressio/internal/launch"
	"pressio/internal/service"
	"pressio/internal/trace"
)

// config collects everything the daemon needs to serve: which compressor
// stack to build, how much concurrency and memory to admit, and how long a
// drain may take.
type config struct {
	addr         string
	compressor   string
	guard        bool
	fallbackCSV  string
	breaker      bool
	options      []string
	concurrency  int
	memBudget    int64
	queueDepth   int
	reqTimeout   time.Duration
	drainTimeout time.Duration
	lameDuck     time.Duration
}

// daemon is the compression service: a pool of compressor clones behind two
// bulkhead compartments (compress and decompress are isolated workload
// classes), an HTTP front end, and a graceful-drain lifecycle.
type daemon struct {
	cfg        config
	name       string // composed compressor name (breaker outermost)
	srv        *http.Server
	ln         net.Listener
	pool       chan *core.Compressor
	compress   *service.Admission
	decompress *service.Admission

	ready    atomic.Bool
	draining atomic.Bool

	// started/finished account for every data-plane request the server began
	// processing; drain is correct iff they are equal when run returns.
	started  atomic.Int64
	finished atomic.Int64
}

// newDaemon builds the compressor pool and bulkheads. The resilience flags
// compose exactly as in the pressio CLI: breaker{guard{fallback{codec}}}.
func newDaemon(cfg config) (*daemon, error) {
	if cfg.concurrency < 1 {
		return nil, fmt.Errorf("concurrency %d must be >= 1", cfg.concurrency)
	}
	name, opts := service.ComposeResilience(cfg.compressor, cfg.guard, cfg.fallbackCSV, cfg.breaker, cfg.options)
	base, err := core.NewCompressor(name)
	if err != nil {
		return nil, err
	}
	kv := map[string]string{}
	for _, o := range opts {
		k, v, ok := strings.Cut(o, "=")
		if !ok {
			return nil, fmt.Errorf("bad option %q: want key=value", o)
		}
		kv[k] = v
	}
	if err := launch.ApplyStringOptions(base, kv); err != nil {
		return nil, err
	}
	d := &daemon{cfg: cfg, name: name}
	// Clones share breaker scope state by construction, so one worker's
	// failures trip the circuit for the whole pool.
	d.pool = make(chan *core.Compressor, cfg.concurrency)
	d.pool <- base
	for i := 1; i < cfg.concurrency; i++ {
		d.pool <- base.Clone()
	}
	if d.compress, err = service.NewBulkhead("compress", cfg.memBudget, cfg.queueDepth, nil); err != nil {
		return nil, err
	}
	if d.decompress, err = service.NewBulkhead("decompress", cfg.memBudget, cfg.queueDepth, nil); err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /compress", func(w http.ResponseWriter, r *http.Request) {
		d.handleData(w, r, false)
	})
	mux.HandleFunc("POST /decompress", func(w http.ResponseWriter, r *http.Request) {
		d.handleData(w, r, true)
	})
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /metricz", d.handleMetricz)
	d.srv = &http.Server{Handler: mux}
	return d, nil
}

// start binds the listener and begins serving; it returns once the daemon is
// accepting connections so callers (and tests) can read Addr().
func (d *daemon) start() error {
	ln, err := net.Listen("tcp", d.cfg.addr)
	if err != nil {
		return err
	}
	d.ln = ln
	d.ready.Store(true)
	go func() {
		// ErrServerClosed is the expected outcome of a drain; anything else
		// surfaces through failed client requests, not the exit status.
		_ = d.srv.Serve(ln)
	}()
	return nil
}

// Addr reports the bound listen address (useful with ":0" in tests).
func (d *daemon) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// drain implements graceful shutdown: readiness flips false immediately (so
// rolling restarts stop routing new work here), a lame-duck window keeps the
// listener open while load balancers notice, then the listener closes and
// in-flight requests get until the drain deadline to finish.
func (d *daemon) drain() error {
	d.ready.Store(false)
	d.draining.Store(true)
	if d.cfg.lameDuck > 0 {
		time.Sleep(d.cfg.lameDuck)
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.drainTimeout)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		_ = d.srv.Close()
		return fmt.Errorf("drain deadline %s exceeded: %w", d.cfg.drainTimeout, err)
	}
	return nil
}

// writeError maps an error to its HTTP shape. Overload rejections — anything
// wrapping core.ErrShed, including open-breaker rejections — become typed
// 503s with Retry-After, so clients can tell "back off" from "broken".
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrShed):
		kind := "shed"
		if errors.Is(err, service.ErrBreakerOpen) {
			kind = "breaker-open"
		}
		w.Header().Set("Retry-After", "1")
		w.Header().Set("X-Pressio-Error", kind)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, core.ErrInvalidOption):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		w.Header().Set("X-Pressio-Error", "fault")
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseShape reads the dims and dtype query parameters every data-plane
// request must carry (compressed streams are not self-describing).
func parseShape(q map[string][]string) (core.DType, []uint64, error) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	dimsParam, dtypeParam := get("dims"), get("dtype")
	if dimsParam == "" || dtypeParam == "" {
		return 0, nil, errors.New("dims and dtype query parameters are required")
	}
	dtype, err := core.ParseDType(dtypeParam)
	if err != nil {
		return 0, nil, err
	}
	var dims []uint64
	for _, p := range strings.Split(dimsParam, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("bad dims %q: %v", dimsParam, err)
		}
		dims = append(dims, v)
	}
	return dtype, dims, nil
}

// handleData is the shared data-plane path: admission, pool checkout, codec
// call, response. Admission weight is the declared Content-Length, so the
// bulkhead budget bounds resident request bytes, not request count.
func (d *daemon) handleData(w http.ResponseWriter, r *http.Request, decompress bool) {
	d.started.Add(1)
	defer func() {
		d.finished.Add(1)
		if d.draining.Load() {
			trace.CounterAdd(trace.CtrDaemonDrained, 1)
		}
	}()
	trace.CounterAdd(trace.CtrDaemonRequests, 1)

	ctx := r.Context()
	if d.cfg.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.reqTimeout)
		defer cancel()
	}

	dtype, dims, err := parseShape(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	bh := d.compress
	if decompress {
		bh = d.decompress
	}
	release, err := bh.Acquire(ctx, r.ContentLength)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, d.cfg.memBudget))
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}

	var comp *core.Compressor
	select {
	case comp = <-d.pool:
	case <-ctx.Done():
		writeError(w, fmt.Errorf("daemon: %w: context ended waiting for a worker: %v", core.ErrShed, ctx.Err()))
		return
	}
	defer func() { d.pool <- comp }()

	var out *core.Data
	if decompress {
		out = core.NewEmpty(dtype, dims...)
		err = comp.Decompress(core.NewBytes(body), out)
	} else {
		var in *core.Data
		if in, err = core.NewMove(dtype, body, dims...); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out = core.NewEmpty(core.DTypeByte, 0)
		err = comp.Compress(in, out)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Pressio-Compressor", d.name)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out.Bytes())
}

// handleHealthz is liveness: the process is up, even while draining.
func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: false from the instant a drain begins, so
// rolling restarts route new work elsewhere while in-flight work finishes.
func (d *daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !d.ready.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetricz dumps the trace registry counters plus the live bulkhead
// gauges in a flat key=value text form.
func (d *daemon) handleMetricz(w http.ResponseWriter, _ *http.Request) {
	counters := trace.Counters()
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, counters[k])
	}
	fmt.Fprintf(w, "service.bulkhead.compress.queue_depth=%d\n", d.compress.QueueDepth())
	fmt.Fprintf(w, "service.bulkhead.compress.used_bytes=%d\n", d.compress.UsedBytes())
	fmt.Fprintf(w, "service.bulkhead.decompress.queue_depth=%d\n", d.decompress.QueueDepth())
	fmt.Fprintf(w, "service.bulkhead.decompress.used_bytes=%d\n", d.decompress.UsedBytes())
}
