// Command pressiod is the compression daemon: the pressio plugin library
// behind an HTTP data plane with overload protection, graceful shutdown, and
// a production observability plane.
//
//	pressiod -addr :8123 -compressor sz_threadsafe -breaker -guard \
//	         -o pressio:abs=1e-3 -mem-budget 268435456 -concurrency 8 \
//	         -ops-addr 127.0.0.1:8124 -slow-request 500ms
//
//	curl -s --data-binary @x.bin \
//	     'http://localhost:8123/compress?dims=100,500&dtype=float32' > x.sz
//
// Requests flow through per-operation bulkheads (admission control on
// declared bytes, a bounded FIFO queue, deadline-aware shedding) into a pool
// of compressor clones; the -breaker/-guard/-fallback flags compose the same
// resilience stack as the pressio CLI, breaker outermost. Overload responses
// are typed 503s with Retry-After. SIGTERM starts a graceful drain: /readyz
// flips to 503 immediately, a short lame-duck window lets load balancers
// notice, in-flight requests finish under -drain-timeout, and the process
// exits 0 on a clean drain.
//
// Router mode (see docs/CLUSTER.md) turns the daemon into a shard router:
//
//	pressiod -router -peers 10.0.0.1:8123,10.0.0.2:8123,10.0.0.3:8123 \
//	         -replicas 2 -hedge-after 25ms -health-interval 1s
//
// Requests are consistent-hash-routed across the fleet with per-peer circuit
// breakers and admission, hedged to the next replica when the primary
// exceeds its p99, failed over when peers die, and served by the local
// compressor when the whole fleet is unreachable (disable with
// -no-local-fallback). The HTTP surface and error shapes are identical to a
// single node, so clients cannot tell the topologies apart.
//
// Object-store mode (see docs/STORE.md) additionally serves a
// crash-consistent compressed object store:
//
//	pressiod -store-dir /var/lib/pressio/objects -scrub-interval 10m
//
//	curl -X PUT --data-binary @x.bin \
//	     'http://localhost:8123/objects/sim/run1?dims=100,500&dtype=float32&filter=sz&fopt=sz:abs=1e-3'
//
// PUT/DELETE acknowledgements mean the mutation is fsynced into a
// write-ahead journal and survives any crash; startup replays the journal
// before the listener opens (gating /readyz), a background scrubber
// quarantines bit rot at chunk granularity, and cmd/pressio-fsck checks or
// repairs a store directory offline.
//
// Observability (see docs/OBSERVABILITY.md): every data-plane response
// carries an X-Pressio-Request-Id (W3C traceparent-compatible, propagated
// from inbound traceparent headers); the request's span tree is retrievable
// from /tracez?id=<id>; /metricz serves Prometheus text exposition format
// (?format=json for the JSON rendering); structured JSON-lines events go to
// stderr at -log-level and above; -ops-addr binds an operator-only listener
// with /debug/pprof. See docs/RESILIENCE.md for the serving behavior.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pressio/internal/daemon"
	"pressio/internal/obslog"
	"pressio/internal/trace"

	// Register the full plugin library.
	_ "pressio/internal/bitgroom"
	_ "pressio/internal/faultinject"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/resilience"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var opts stringList
	cfg := daemon.Config{}
	flag.StringVar(&cfg.Addr, "addr", ":8123", "listen address")
	flag.StringVar(&cfg.OpsAddr, "ops-addr", "", "operator-only listener with /debug/pprof, /metricz, /tracez (empty disables)")
	flag.StringVar(&cfg.Compressor, "compressor", "sz_threadsafe", "compressor plugin name")
	flag.BoolVar(&cfg.Guard, "guard", false, "wrap the compressor in the guard meta-compressor (tune with -o guard:...)")
	flag.StringVar(&cfg.FallbackCSV, "fallback", "", "comma separated backup compressors tried in order when the primary fails")
	flag.BoolVar(&cfg.Breaker, "breaker", false, "wrap the composition in the circuit-breaker meta-compressor (tune with -o breaker:...)")
	flag.IntVar(&cfg.Concurrency, "concurrency", 4, "compressor pool size (parallel codec calls)")
	flag.Int64Var(&cfg.MemBudget, "mem-budget", 1<<30, "admission budget per bulkhead in declared request bytes")
	flag.IntVar(&cfg.QueueDepth, "queue-depth", 64, "bounded FIFO queue length per bulkhead; requests beyond it are shed")
	flag.DurationVar(&cfg.ReqTimeout, "request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	flag.DurationVar(&cfg.DrainTimeout, "drain-timeout", 10*time.Second, "how long in-flight requests may run after SIGTERM")
	flag.DurationVar(&cfg.LameDuck, "lame-duck", 500*time.Millisecond, "window after SIGTERM during which the listener stays open but /readyz reports 503")
	flag.DurationVar(&cfg.SlowRequest, "slow-request", 500*time.Millisecond, "log a warn-level slow_request event for data-plane requests slower than this (0 disables)")
	flag.IntVar(&cfg.TraceBuffer, "trace-buffer", 256, "completed request span trees retained for /tracez")
	router := flag.Bool("router", false, "router mode: shard data-plane requests across -peers instead of compressing locally")
	flag.StringVar(&cfg.RouterPeers, "peers", "", "comma separated pressiod shard addresses for -router mode")
	flag.IntVar(&cfg.RouterReplicas, "replicas", 2, "replica-set size per key in -router mode")
	flag.IntVar(&cfg.RouterVNodes, "vnodes", 0, "virtual nodes per peer on the hash ring (0 = default)")
	flag.DurationVar(&cfg.RouterHedgeAfter, "hedge-after", 25*time.Millisecond, "hedge-delay floor: hedge to the next replica after max(this, peer p99)")
	flag.DurationVar(&cfg.RouterHealthInterval, "health-interval", time.Second, "peer /readyz poll period in -router mode")
	flag.BoolVar(&cfg.RouterNoLocal, "no-local-fallback", false, "shed instead of compressing locally when the whole fleet is unreachable")
	flag.DurationVar(&cfg.PeerTimeout, "peer-timeout", 10*time.Second, "per-attempt deadline on router→peer calls")
	flag.StringVar(&cfg.StoreDir, "store-dir", "", "serve the crash-consistent object store rooted here behind /objects (empty disables)")
	flag.DurationVar(&cfg.ScrubInterval, "scrub-interval", 10*time.Minute, "background scrub period for -store-dir (0 disables the scrubber)")
	flag.Int64Var(&cfg.StoreCheckpointBytes, "checkpoint-bytes", 0, "journal size triggering an automatic store checkpoint (0 = default 64 MiB, negative disables)")
	logLevel := flag.String("log-level", "info", "structured-log threshold: debug, info, warn, error")
	flag.Var(&opts, "o", "compressor option key=value (repeatable)")
	flag.Parse()
	cfg.Options = opts
	if *router && cfg.RouterPeers == "" {
		fmt.Fprintln(os.Stderr, "pressiod: -router requires -peers")
		os.Exit(2)
	}
	if !*router {
		cfg.RouterPeers = "" // -peers without -router is inert, not a surprise mode switch
	}

	obslog.SetDefault(obslog.New(os.Stderr, obslog.ParseLevel(*logLevel)))

	d, err := daemon.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressiod:", err)
		os.Exit(1)
	}

	if err := d.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "pressiod:", err)
		os.Exit(1)
	}
	mode := "compressor " + d.Name()
	if cfg.RouterPeers != "" {
		mode = "router over " + cfg.RouterPeers
	}
	fmt.Fprintf(os.Stderr, "pressiod: listening on %s (%s)\n", d.Addr(), mode)
	if ops := d.OpsAddr(); ops != "" {
		fmt.Fprintf(os.Stderr, "pressiod: ops listener on %s (pprof, metricz, tracez)\n", ops)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	s := <-sigCh
	fmt.Fprintf(os.Stderr, "pressiod: received %v, draining\n", s)
	if err := d.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "pressiod:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pressiod: drained cleanly (%d requests served, %d finished during drain)\n",
		trace.CounterValue(trace.CtrDaemonRequests), trace.CounterValue(trace.CtrDaemonDrained))
}
