// Command pressiod is the compression daemon: the pressio plugin library
// behind an HTTP data plane with overload protection and graceful shutdown.
//
//	pressiod -addr :8123 -compressor sz_threadsafe -breaker -guard \
//	         -o pressio:abs=1e-3 -mem-budget 268435456 -concurrency 8
//
//	curl -s --data-binary @x.bin \
//	     'http://localhost:8123/compress?dims=100,500&dtype=float32' > x.sz
//
// Requests flow through per-operation bulkheads (admission control on
// declared bytes, a bounded FIFO queue, deadline-aware shedding) into a pool
// of compressor clones; the -breaker/-guard/-fallback flags compose the same
// resilience stack as the pressio CLI, breaker outermost. Overload responses
// are typed 503s with Retry-After. SIGTERM starts a graceful drain: /readyz
// flips to 503 immediately, a short lame-duck window lets load balancers
// notice, in-flight requests finish under -drain-timeout, and the process
// exits 0 on a clean drain. See docs/RESILIENCE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pressio/internal/trace"

	// Register the full plugin library.
	_ "pressio/internal/bitgroom"
	_ "pressio/internal/faultinject"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/resilience"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var opts stringList
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", ":8123", "listen address")
	flag.StringVar(&cfg.compressor, "compressor", "sz_threadsafe", "compressor plugin name")
	flag.BoolVar(&cfg.guard, "guard", false, "wrap the compressor in the guard meta-compressor (tune with -o guard:...)")
	flag.StringVar(&cfg.fallbackCSV, "fallback", "", "comma separated backup compressors tried in order when the primary fails")
	flag.BoolVar(&cfg.breaker, "breaker", false, "wrap the composition in the circuit-breaker meta-compressor (tune with -o breaker:...)")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "compressor pool size (parallel codec calls)")
	flag.Int64Var(&cfg.memBudget, "mem-budget", 1<<30, "admission budget per bulkhead in declared request bytes")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 64, "bounded FIFO queue length per bulkhead; requests beyond it are shed")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "how long in-flight requests may run after SIGTERM")
	flag.DurationVar(&cfg.lameDuck, "lame-duck", 500*time.Millisecond, "window after SIGTERM during which the listener stays open but /readyz reports 503")
	flag.Var(&opts, "o", "compressor option key=value (repeatable)")
	flag.Parse()
	cfg.options = opts

	d, err := newDaemon(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pressiod:", err)
		os.Exit(1)
	}

	if err := d.start(); err != nil {
		fmt.Fprintln(os.Stderr, "pressiod:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pressiod: listening on %s (compressor %s)\n", d.Addr(), d.name)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	s := <-sigCh
	fmt.Fprintf(os.Stderr, "pressiod: received %v, draining\n", s)
	if err := d.drain(); err != nil {
		fmt.Fprintln(os.Stderr, "pressiod:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pressiod: drained cleanly (%d requests served, %d finished during drain)\n",
		trace.CounterValue(trace.CtrDaemonRequests), trace.CounterValue(trace.CtrDaemonDrained))
}
