// Command pressio-features regenerates the paper's Table I: the feature
// comparison between compressor interface libraries. Competitor rows encode
// the paper's discussion; this implementation's row is derived live by
// probing the registry and option system (see internal/experiments).
package main

import (
	"fmt"

	"pressio/internal/experiments"
)

func main() {
	fmt.Print(experiments.TableI())
}
