package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeSample(t *testing.T, path string, n int) []float32 {
	t.Helper()
	vals := make([]float32, n)
	buf := make([]byte, 4*n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 8))
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(vals[i]))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestRunRoundTripMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	out := filepath.Join(dir, "x.out")
	vals := writeSample(t, in, 32*32)
	err := run("roundtrip", "sz", in, out, "posix", "posix", "32,32", "float32",
		"size,error_stat", "", false, false, 0, []string{"pressio:abs=0.01"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 4*len(vals) {
		t.Fatalf("output size %d", len(raw))
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestRunCompressThenDecompress(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	comp := filepath.Join(dir, "x.sz")
	out := filepath.Join(dir, "x.out")
	writeSample(t, in, 24*24)
	err := run("compress", "zfp", in, comp, "posix", "posix", "24,24", "float32",
		"size", "", false, false, 0, []string{"pressio:abs=0.001"})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := os.Stat(comp)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Size() >= 4*24*24 {
		t.Fatalf("compressed file did not shrink: %d", ci.Size())
	}
	err = run("decompress", "zfp", comp, out, "posix", "posix", "24,24", "float32",
		"", "", false, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	oi, err := os.Stat(out)
	if err != nil || oi.Size() != 4*24*24 {
		t.Fatalf("decompressed size %v err %v", oi, err)
	}
}

func TestRunNpyIO(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	npyOut := filepath.Join(dir, "x.npy")
	writeSample(t, in, 16*16)
	err := run("roundtrip", "sz_threadsafe", in, npyOut, "posix", "npy", "16,16", "float32",
		"size", "", false, false, 0, []string{"pressio:rel=1e-4"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(npyOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[1:6]) != "NUMPY" {
		t.Fatal("output is not an npy file")
	}
}

func TestRunListAndOptions(t *testing.T) {
	if err := run("", "", "", "", "", "", "", "", "", "", true, false, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("options", "mgard", "", "", "posix", "posix", "", "float32",
		"", "", false, false, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("compress", "no_such", "", "", "posix", "posix", "", "float32",
		"", "", false, false, 0, nil); err == nil {
		t.Fatal("unknown compressor should fail")
	}
	if err := run("fly", "sz", "", "", "posix", "posix", "", "float32",
		"", "", false, false, 0, nil); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if err := run("compress", "sz", "", "", "posix", "posix", "", "float32",
		"", "", false, false, 0, []string{"malformed"}); err == nil {
		t.Fatal("malformed -o should fail")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	writeSample(t, in, 8)
	if err := run("decompress", "sz", in, "", "posix", "posix", "", "float32",
		"", "", false, false, 0, nil); err == nil {
		t.Fatal("decompress without dims should fail")
	}
}

func TestRunOptionsJSON(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	writeSample(t, in, 16*16)
	cfg := filepath.Join(dir, "opts.json")
	jsonOpts := `{"sz:error_bound_mode_str":{"type":"string","value":"abs"},` +
		`"sz:abs_err_bound":{"type":"double","value":0.02}}`
	if err := os.WriteFile(cfg, []byte(jsonOpts), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run("roundtrip", "sz", in, "", "posix", "posix", "16,16", "float32",
		"error_stat", cfg, false, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Malformed JSON fails loudly.
	if err := os.WriteFile(cfg, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("roundtrip", "sz", in, "", "posix", "posix", "16,16", "float32",
		"", cfg, false, false, 0, nil); err == nil {
		t.Fatal("malformed json should fail")
	}
}
