package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestApplyResilienceFlags(t *testing.T) {
	name, opts := applyResilienceFlags("sz", false, "", false, stringList{"pressio:abs=0.01"})
	if name != "sz" || len(opts) != 1 {
		t.Errorf("no flags: got %q %v", name, opts)
	}
	name, opts = applyResilienceFlags("sz", true, "", false, nil)
	if name != "guard" || len(opts) != 1 || opts[0] != "guard:compressor=sz" {
		t.Errorf("-guard: got %q %v", name, opts)
	}
	name, opts = applyResilienceFlags("sz", false, "zfp,noop", false, nil)
	if name != "fallback" || len(opts) != 1 || opts[0] != "fallback:compressors=sz,zfp,noop" {
		t.Errorf("-fallback: got %q %v", name, opts)
	}
	name, opts = applyResilienceFlags("sz", false, "", true, nil)
	if name != "breaker" || len(opts) != 1 || opts[0] != "breaker:compressor=sz" {
		t.Errorf("-breaker: got %q %v", name, opts)
	}
	name, opts = applyResilienceFlags("sz", true, "noop", false, stringList{"pressio:abs=0.01"})
	if name != "guard" || len(opts) != 3 {
		t.Fatalf("-guard -fallback: got %q %v", name, opts)
	}
	if opts[0] != "guard:compressor=fallback" || opts[1] != "fallback:compressors=sz,noop" {
		t.Errorf("composition options: %v", opts)
	}
	// User-supplied -o flags stay last so they win in the key=value map.
	if opts[2] != "pressio:abs=0.01" {
		t.Errorf("user option not last: %v", opts)
	}
}

// TestApplyResilienceFlagsTripleComposition pins the documented wrapping
// order when all three flags compose: the breaker is outermost, guard wraps
// the fallback chain, and the selected compressor is tier zero of the chain —
// breaker{guard{fallback{sz,noop}}} — regardless of flag order.
func TestApplyResilienceFlagsTripleComposition(t *testing.T) {
	name, opts := applyResilienceFlags("sz", true, "noop", true, stringList{"pressio:abs=0.01"})
	if name != "breaker" {
		t.Fatalf("outermost compressor %q, want breaker", name)
	}
	want := stringList{
		"breaker:compressor=guard",
		"guard:compressor=fallback",
		"fallback:compressors=sz,noop",
		"pressio:abs=0.01", // user option last, so it wins in the kv map
	}
	if len(opts) != len(want) {
		t.Fatalf("triple composition: got %v, want %v", opts, want)
	}
	for i := range want {
		if opts[i] != want[i] {
			t.Errorf("opts[%d] = %q, want %q", i, opts[i], want[i])
		}
	}
}

// TestRunTripleCompositionRoundTrip drives the full CLI path with all three
// resilience flags enabled and verifies the composed stack still honours the
// error bound end to end.
func TestRunTripleCompositionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	out := filepath.Join(dir, "x.out")
	vals := writeSample(t, in, 32*32)
	name, opts := applyResilienceFlags("sz_threadsafe", true, "noop", true, stringList{"pressio:abs=0.01"})
	err := run("roundtrip", name, in, out, "posix", "posix", "32,32", "float32",
		"size", "", false, false, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestRunGuardedFallbackRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	out := filepath.Join(dir, "x.out")
	vals := writeSample(t, in, 32*32)
	name, opts := applyResilienceFlags("sz_threadsafe", true, "noop", false, stringList{"pressio:abs=0.01"})
	err := run("roundtrip", name, in, out, "posix", "posix", "32,32", "float32",
		"size", "", false, false, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 4*len(vals) {
		t.Fatalf("output size %d", len(raw))
	}
	for i := range vals {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		if math.Abs(float64(got-vals[i])) > 0.01 {
			t.Fatalf("elem %d bound violated", i)
		}
	}
}

func TestRunGuardedCompressWritesFrame(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.bin")
	comp := filepath.Join(dir, "x.lpfr")
	writeSample(t, in, 24*24)
	name, opts := applyResilienceFlags("sz_threadsafe", true, "", false, stringList{
		"guard:frame=1", "pressio:abs=0.01"})
	err := run("compress", name, in, comp, "posix", "posix", "24,24", "float32",
		"size", "", false, false, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 4 || string(raw[:4]) != "LPFR" {
		t.Fatalf("guarded compress did not write an integrity frame (got % x)", raw[:min(8, len(raw))])
	}
	out := filepath.Join(dir, "x.out")
	err = run("decompress", name, comp, out, "posix", "posix", "24,24", "float32",
		"", "", false, false, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	oi, err := os.Stat(out)
	if err != nil || oi.Size() != 4*24*24 {
		t.Fatalf("decompressed size %v err %v", oi, err)
	}
}
