// Command pressio is the generic compression CLI (the LibPressio-Tools
// analogue): one tool that can compress, decompress and analyze any dataset
// with any registered compressor plugin, any IO format, and any metrics
// modules. The per-compressor native CLIs under clients/native implement
// the same core workflow three times — the productivity contrast Table II
// measures.
//
// Usage examples:
//
//	pressio -list
//	pressio -compressor sz -input x.bin -dims 100,500,500 -dtype float32 \
//	        -o pressio:rel=1e-3 -output x.sz
//	pressio -mode decompress -compressor sz -input x.sz -output x.out \
//	        -dims 100,500,500 -dtype float32
//	pressio -compressor zfp -input x.npy -io npy -mode roundtrip \
//	        -o pressio:abs=1e-4 -metrics size,time,error_stat
//
// Passing -trace=out.json records spans for the whole run and writes a
// Chrome trace_event file on exit (see docs/OBSERVABILITY.md).
//
// It also hides a -worker mode implementing the external-process protocol
// used by the §V embeddability experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pressio/internal/core"
	"pressio/internal/launch"
	"pressio/internal/service"
	"pressio/internal/trace"

	// Register the full plugin library.
	_ "pressio/internal/bitgroom"
	_ "pressio/internal/faultinject"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/resilience"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		mode        = flag.String("mode", "compress", "compress, decompress, roundtrip, or options")
		compressor  = flag.String("compressor", "sz", "compressor plugin name")
		input       = flag.String("input", "", "input path")
		output      = flag.String("output", "", "output path (optional for roundtrip)")
		ioName      = flag.String("io", "posix", "io plugin for the input (posix, npy, csv, h5lite, iota)")
		outIO       = flag.String("output-io", "posix", "io plugin for the output")
		dimsFlag    = flag.String("dims", "", "comma separated dims for non self-describing inputs")
		dtypeFlag   = flag.String("dtype", "float32", "element type for non self-describing inputs")
		metricsCSV  = flag.String("metrics", "size,time", "comma separated metrics plugins")
		optsJSON    = flag.String("options-json", "", "JSON file of typed options to apply")
		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON file of the run to this path")
		guardFlag   = flag.Bool("guard", false, "wrap the compressor in the guard meta-compressor (panic containment, deadlines, retries; tune with -o guard:...)")
		fallbackCSV = flag.String("fallback", "", "comma separated backup compressors tried in order when the primary fails (tune with -o fallback:...)")
		breakerFlag = flag.Bool("breaker", false, "wrap the composition in the circuit-breaker meta-compressor (tune with -o breaker:...)")
		list        = flag.Bool("list", false, "list registered plugins and exit")
		worker      = flag.Bool("worker", false, "serve one external-process request on stdin/stdout")
		delay       = flag.Duration("startup-delay", 0, "simulated initialization delay in worker mode")
		opts        stringList
	)
	flag.Var(&opts, "o", "compressor option key=value (repeatable)")
	flag.Parse()

	if *traceOut != "" {
		trace.Enable()
	}
	comp, opts := applyResilienceFlags(*compressor, *guardFlag, *fallbackCSV, *breakerFlag, opts)
	if err := run(*mode, comp, *input, *output, *ioName, *outIO,
		*dimsFlag, *dtypeFlag, *metricsCSV, *optsJSON, *list, *worker, *delay, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pressio:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := trace.WriteChromeTraceFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "pressio: writing trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pressio: wrote %d spans to %s\n", trace.Len(), *traceOut)
	}
}

// applyResilienceFlags translates the -guard, -fallback and -breaker
// convenience flags into the equivalent meta-compressor composition via the
// shared service.ComposeResilience helper, so pressio and pressiod agree on
// the wrapping order: breaker{guard{fallback{codec}}}. Synthesised options
// are prepended in -o form so explicit -o flags can still override them.
func applyResilienceFlags(compressor string, guard bool, fallbackCSV string, breaker bool, opts stringList) (string, stringList) {
	name, out := service.ComposeResilience(compressor, guard, fallbackCSV, breaker, opts)
	return name, stringList(out)
}

func run(mode, compressor, input, output, ioName, outIO, dimsFlag, dtypeFlag,
	metricsCSV, optsJSON string, list, worker bool, delay time.Duration, opts stringList) error {
	if worker {
		time.Sleep(delay)
		return launch.Serve(os.Stdin, os.Stdout)
	}
	if list {
		fmt.Println("compressors:", strings.Join(core.SupportedCompressors(), " "))
		fmt.Println("metrics:    ", strings.Join(core.SupportedMetrics(), " "))
		fmt.Println("io:         ", strings.Join(core.SupportedIO(), " "))
		return nil
	}

	c, err := core.NewCompressor(compressor)
	if err != nil {
		return err
	}
	kv := map[string]string{}
	for _, o := range opts {
		k, v, ok := strings.Cut(o, "=")
		if !ok {
			return fmt.Errorf("bad option %q: want key=value", o)
		}
		kv[k] = v
	}
	if err := launch.ApplyStringOptions(c, kv); err != nil {
		return err
	}
	if optsJSON != "" {
		raw, err := os.ReadFile(optsJSON)
		if err != nil {
			return err
		}
		fileOpts := core.NewOptions()
		if err := json.Unmarshal(raw, fileOpts); err != nil {
			return fmt.Errorf("parsing %s: %w", optsJSON, err)
		}
		if err := c.SetOptions(fileOpts); err != nil {
			return err
		}
	}

	if mode == "options" {
		printOptions(c)
		return nil
	}

	var names []string
	for _, m := range strings.Split(metricsCSV, ",") {
		if m = strings.TrimSpace(m); m != "" {
			names = append(names, m)
		}
	}
	if len(names) > 0 {
		m, err := core.NewMetrics(names...)
		if err != nil {
			return err
		}
		c.SetMetrics(m)
	}

	hint, err := parseHint(dimsFlag, dtypeFlag)
	if err != nil {
		return err
	}

	switch mode {
	case "compress":
		in, err := readInput(ioName, input, hint)
		if err != nil {
			return err
		}
		out, err := core.Compress(c, in)
		if err != nil {
			return err
		}
		if output != "" {
			if err := writeOutput(outIO, output, out); err != nil {
				return err
			}
		}
		printResults(c)
	case "decompress":
		in, err := readInput(ioName, input, nil)
		if err != nil {
			return err
		}
		if hint == nil {
			return fmt.Errorf("decompress needs -dims and -dtype")
		}
		out := core.NewEmpty(hint.DType(), hint.Dims()...)
		if err := c.Decompress(core.NewBytes(in.Bytes()), out); err != nil {
			return err
		}
		if output != "" {
			if err := writeOutput(outIO, output, out); err != nil {
				return err
			}
		}
		printResults(c)
	case "roundtrip":
		in, err := readInput(ioName, input, hint)
		if err != nil {
			return err
		}
		comp, err := core.Compress(c, in)
		if err != nil {
			return err
		}
		dec := core.NewEmpty(in.DType(), in.Dims()...)
		if err := c.Decompress(comp, dec); err != nil {
			return err
		}
		if output != "" {
			if err := writeOutput(outIO, output, dec); err != nil {
				return err
			}
		}
		printResults(c)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func parseHint(dimsFlag, dtypeFlag string) (*core.Data, error) {
	if dimsFlag == "" {
		return nil, nil
	}
	var dims []uint64
	for _, p := range strings.Split(dimsFlag, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad dims %q: %v", dimsFlag, err)
		}
		dims = append(dims, v)
	}
	dtype, err := core.ParseDType(dtypeFlag)
	if err != nil {
		return nil, err
	}
	return core.NewEmpty(dtype, dims...), nil
}

func readInput(ioName, path string, hint *core.Data) (*core.Data, error) {
	io, err := core.NewIO(ioName)
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, path)); err != nil {
			return nil, err
		}
	}
	return io.Read(hint)
}

func writeOutput(ioName, path string, d *core.Data) error {
	io, err := core.NewIO(ioName)
	if err != nil {
		return err
	}
	if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, path)); err != nil {
		return err
	}
	return io.Write(d)
}

func printOptions(c *core.Compressor) {
	fmt.Printf("%s %s\n", c.Prefix(), c.Version())
	fmt.Println("options:")
	opts := c.Options()
	for _, k := range opts.Keys() {
		o, _ := opts.Get(k)
		fmt.Printf("  %-40s %-8s %s\n", k, o.Type(), o)
	}
	fmt.Println("configuration:")
	cfg := c.Configuration()
	for _, k := range cfg.Keys() {
		o, _ := cfg.Get(k)
		fmt.Printf("  %-40s %s\n", k, o)
	}
}

func printResults(c *core.Compressor) {
	res := c.MetricsResults()
	for _, k := range res.Keys() {
		o, _ := res.Get(k)
		fmt.Printf("%s=%s\n", k, o)
	}
}
