// Command pressio-opt is the generic configuration optimizer CLI
// (LibPressio-Opt): it finds the error bound meeting a target compression
// ratio or PSNR floor for any registered compressor, or searches across
// compressors for the best one at a fixed bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pressio/internal/core"
	"pressio/internal/opt"

	_ "pressio/internal/bitgroom"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

func main() {
	var (
		input      = flag.String("input", "", "input path")
		ioName     = flag.String("io", "posix", "io plugin")
		dims       = flag.String("dims", "", "dims, slowest first")
		dtype      = flag.String("dtype", "float32", "element type")
		compressor = flag.String("compressor", "sz", "compressor to tune")
		ratio      = flag.Float64("target-ratio", 0, "target compression ratio (0 = off)")
		psnr       = flag.Float64("target-psnr", 0, "PSNR floor in dB (0 = off)")
		search     = flag.String("search", "", "comma separated compressors to race at -bound")
		bound      = flag.Float64("bound", 1e-3, "pressio:abs bound for -search")
		tolerance  = flag.Float64("tolerance", 0.1, "relative tolerance on the target")
	)
	flag.Parse()
	if err := run(*input, *ioName, *dims, *dtype, *compressor, *ratio, *psnr,
		*search, *bound, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "pressio-opt:", err)
		os.Exit(1)
	}
}

func run(input, ioName, dims, dtype, compressor string, ratio, psnr float64,
	search string, bound, tolerance float64) error {
	io, err := core.NewIO(ioName)
	if err != nil {
		return err
	}
	if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, input)); err != nil {
		return err
	}
	var hint *core.Data
	if dims != "" {
		if hint, err = core.ParseShape(dims, dtype); err != nil {
			return err
		}
	}
	data, err := io.Read(hint)
	if err != nil {
		return err
	}
	switch {
	case search != "":
		names := strings.Split(search, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		best, results, err := opt.BestCompressor(names, data,
			core.NewOptions().SetValue(core.KeyAbs, bound))
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %10s %10s\n", "compressor", "ratio", "psnr")
		for _, name := range names {
			r, ok := results[name]
			if !ok {
				fmt.Printf("%-16s %10s %10s\n", name, "failed", "-")
				continue
			}
			fmt.Printf("%-16s %10.3f %10.2f\n", name, r.Ratio, r.PSNR)
		}
		fmt.Printf("best=%s\n", best)
	case ratio > 0:
		c, err := core.NewCompressor(compressor)
		if err != nil {
			return err
		}
		res, err := opt.TuneRatio(c, data, ratio, opt.Config{Tolerance: tolerance})
		if err != nil {
			return err
		}
		fmt.Printf("bound=%g\nratio=%f\npsnr=%f\nevaluations=%d\n",
			res.Bound, res.Ratio, res.PSNR, res.Evaluations)
	case psnr > 0:
		c, err := core.NewCompressor(compressor)
		if err != nil {
			return err
		}
		res, err := opt.TunePSNR(c, data, psnr, opt.Config{Tolerance: tolerance})
		if err != nil {
			return err
		}
		fmt.Printf("bound=%g\nratio=%f\npsnr=%f\nevaluations=%d\n",
			res.Bound, res.Ratio, res.PSNR, res.Evaluations)
	default:
		return fmt.Errorf("specify -target-ratio, -target-psnr, or -search")
	}
	return nil
}
