package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeField(t *testing.T, path string, n int) {
	t.Helper()
	buf := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:],
			math.Float32bits(float32(math.Sin(float64(i)/15)*100)))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOptTargetRatio(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeField(t, path, 64*64)
	if err := run(path, "posix", "64,64", "float32", "sz", 10, 0, "", 0, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestOptTargetPSNR(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeField(t, path, 64*64)
	if err := run(path, "posix", "64,64", "float32", "sz_threadsafe", 0, 70, "", 0, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestOptSearch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeField(t, path, 32*32)
	if err := run(path, "posix", "32,32", "float32", "", 0, 0, "sz,zfp,noop", 0.01, 0.1); err != nil {
		t.Fatal(err)
	}
}

func TestOptNoTarget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	writeField(t, path, 16)
	if err := run(path, "posix", "16", "float32", "sz", 0, 0, "", 0, 0.1); err == nil {
		t.Fatal("missing target should fail")
	}
}
