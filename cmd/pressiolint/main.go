// Command pressiolint runs the project's static-analysis suite over the
// module, enforcing the plugin invariants the framework's uniform contract
// depends on: named option-key constants, init-time registration, honest
// pressio:thread_safe declarations, handled hot-path errors, and
// deterministic, embeddable codec packages.
//
// Usage:
//
//	go run ./cmd/pressiolint ./...            # whole module, human output
//	go run ./cmd/pressiolint -json ./internal/...
//	go run ./cmd/pressiolint -run forbidden,errcheck ./internal/sz
//
// Diagnostics print as "file:line:col [analyzer] message" and the exit code
// is 0 (clean), 1 (findings) or 2 (usage/load error). Individual findings
// can be waived in source with `//lint:ignore <analyzer> <reason>` on or
// directly above the offending line. See docs/STATIC_ANALYSIS.md.
package main

import (
	"os"

	"pressio/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
