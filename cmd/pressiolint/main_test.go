package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pressio/internal/analysis"
)

// TestMainCleanPackage runs the CLI in-process over this package, which must
// be lint-clean, and expects exit code 0 with no output.
func TestMainCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := analysis.Main([]string{"."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

// TestMainJSONFindings runs the CLI over a deliberately broken fixture tree
// and checks the exit code, the JSON shape, and the diagnostic fields.
func TestMainJSONFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := analysis.Main(
		[]string{"-json", "-run", "forbidden", "../../internal/analysis/testdata/src/forbidden_bad/..."},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var report struct {
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if report.Count == 0 || report.Count != len(report.Diagnostics) {
		t.Fatalf("count = %d with %d diagnostics", report.Count, len(report.Diagnostics))
	}
	for _, d := range report.Diagnostics {
		if d.Analyzer != "forbidden" {
			t.Errorf("-run forbidden returned a %q diagnostic", d.Analyzer)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("diagnostic missing fields: %+v", d)
		}
		if !strings.HasSuffix(d.File, ".go") {
			t.Errorf("diagnostic file %q is not a Go file path", d.File)
		}
	}
}

// TestMainUsageErrors checks the conditions that must exit 2: unknown
// analyzers, unknown flags and unresolvable package patterns.
func TestMainUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-run", "nosuch", "."},
		{"-definitely-not-a-flag"},
		{"./does/not/exist"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := analysis.Main(args, &stdout, &stderr); code != 2 {
			t.Errorf("Main(%v) = %d, want 2", args, code)
		}
	}
}

// TestMainAnalyzerList checks -analyzers prints one line per analyzer.
func TestMainAnalyzerList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := analysis.Main([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"optionkeys", "registration", "threadsafe", "errcheck", "forbidden"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-analyzers output missing %q:\n%s", name, stdout.String())
		}
	}
}
