package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pressio/internal/analysis"
)

// TestMainCleanPackage runs the CLI in-process over this package, which must
// be lint-clean, and expects exit code 0 with no output.
func TestMainCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := analysis.Main([]string{"."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

// TestMainJSONFindings runs the CLI over a deliberately broken fixture tree
// and checks the exit code, the JSON shape, and the diagnostic fields.
func TestMainJSONFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := analysis.Main(
		[]string{"-json", "-run", "forbidden", "../../internal/analysis/testdata/src/forbidden_bad/..."},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var report struct {
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if report.Count == 0 || report.Count != len(report.Diagnostics) {
		t.Fatalf("count = %d with %d diagnostics", report.Count, len(report.Diagnostics))
	}
	for _, d := range report.Diagnostics {
		if d.Analyzer != "forbidden" {
			t.Errorf("-run forbidden returned a %q diagnostic", d.Analyzer)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("diagnostic missing fields: %+v", d)
		}
		if !strings.HasSuffix(d.File, ".go") {
			t.Errorf("diagnostic file %q is not a Go file path", d.File)
		}
	}
}

// TestMainSARIF runs the CLI with -sarif over a broken fixture tree and pins
// the SARIF 2.1.0 shape: schema/version headers, one run with the
// pressiolint driver, the selected analyzer present in the ruleset, and every
// result carrying a ruleId, message and physical location.
func TestMainSARIF(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := analysis.Main(
		[]string{"-sarif", "-run", "lockcheck", "../../internal/analysis/testdata/src/lockcheck_bad/..."},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output does not parse: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version = %q schema = %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "pressiolint" {
		t.Errorf("driver name = %q, want pressiolint", run.Tool.Driver.Name)
	}
	foundRule := false
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "lockcheck" && r.ShortDescription.Text != "" {
			foundRule = true
		}
	}
	if !foundRule {
		t.Errorf("ruleset missing lockcheck: %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a broken fixture tree")
	}
	for _, r := range run.Results {
		if r.RuleID != "lockcheck" || r.Level != "warning" || r.Message.Text == "" {
			t.Errorf("malformed result: %+v", r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if !strings.HasSuffix(loc.ArtifactLocation.URI, ".go") ||
			loc.Region.StartLine == 0 || loc.Region.StartColumn == 0 {
			t.Errorf("malformed location: %+v", loc)
		}
	}
}

// TestMainUsageErrors checks the conditions that must exit 2: unknown
// analyzers, unknown flags and unresolvable package patterns.
func TestMainUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-run", "nosuch", "."},
		{"-definitely-not-a-flag"},
		{"./does/not/exist"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := analysis.Main(args, &stdout, &stderr); code != 2 {
			t.Errorf("Main(%v) = %d, want 2", args, code)
		}
	}
}

// TestMainAnalyzerList checks -analyzers prints one line per analyzer.
func TestMainAnalyzerList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := analysis.Main([]string{"-analyzers"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"optionkeys", "registration", "threadsafe", "errcheck", "forbidden",
		"lockcheck", "bufalias", "optiontypes", "errflow",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-analyzers output missing %q:\n%s", name, stdout.String())
		}
	}
}
