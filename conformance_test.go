// Conformance suite: every compressor in the registry is held to the
// framework's contracts, discovered through introspection rather than a
// hand-maintained list — precisely the compressor-agnostic programming
// model the paper argues for. A new plugin gets these tests for free the
// moment it registers.
package pressio

import (
	"math"
	"math/rand"
	"testing"

	"pressio/internal/core"

	_ "pressio/internal/bitgroom"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

// behaviorExceptions lists plugins whose *contract* differs by design.
var behaviorExceptions = map[string]string{
	"sample":         "returns a subsample, not the full shape",
	"fault_injector": "corrupts its own stream by design",
	"noise_injector": "perturbs the input by design",
}

func conformanceInput() *core.Data {
	rng := rand.New(rand.NewSource(77))
	vals := make([]float32, 12*16*20)
	i := 0
	for z := 0; z < 12; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 20; x++ {
				vals[i] = float32(10*math.Sin(float64(x)/5)*math.Cos(float64(y)/4) +
					math.Sin(float64(z)) + 0.01*rng.NormFloat64())
				i++
			}
		}
	}
	return core.FromFloat32s(vals, 12, 16, 20)
}

func TestConformanceAllCompressors(t *testing.T) {
	in := conformanceInput()
	for _, name := range core.SupportedCompressors() {
		if name == "thirdparty_test" {
			continue // registered by another test file
		}
		name := name
		t.Run(name, func(t *testing.T) {
			if why, ok := behaviorExceptions[name]; ok {
				t.Skipf("contract exception: %s", why)
			}
			c, err := core.NewCompressor(name)
			if err != nil {
				t.Fatal(err)
			}
			// Contract 1: configuration must advertise thread safety,
			// stability and version.
			cfg := c.Configuration()
			if _, err := cfg.GetString(core.KeyThreadSafe); err != nil {
				t.Errorf("missing %s", core.KeyThreadSafe)
			}
			if _, err := cfg.GetString(core.KeyStability); err != nil {
				t.Errorf("missing %s", core.KeyStability)
			}
			if _, err := cfg.GetString(core.KeyVersion); err != nil {
				t.Errorf("missing %s", core.KeyVersion)
			}

			// Contract 2: options are introspectable and SetOptions of the
			// plugin's own Options() is accepted (get-set identity).
			opts := c.Options()
			if err := c.SetOptions(opts); err != nil {
				t.Fatalf("SetOptions(own options): %v", err)
			}

			// Determine the bound support through introspection alone.
			supportsAbs := false
			if o, ok := opts.Get(core.KeyAbs); ok && o.Type() != core.OptUnset {
				supportsAbs = true
			}
			bound := 0.01
			if supportsAbs {
				if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, bound)); err != nil {
					t.Fatalf("set pressio:abs: %v", err)
				}
			}

			// Contract 3: the input is never clobbered (§IV-B).
			before := in.Clone()
			comp, err := core.Compress(c, in)
			if err != nil {
				t.Fatalf("compress: %v", err)
			}
			if !in.Equal(before) {
				t.Fatal("compressor clobbered its input")
			}
			if comp.ByteLen() == 0 {
				t.Fatal("empty compressed stream")
			}

			// Contract 4: decompression restores dtype and shape.
			dec, err := core.Decompress(c, comp, in.DType(), in.Dims()...)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if dec.DType() != in.DType() || dec.Len() != in.Len() {
				t.Fatalf("shape not restored: %v", dec)
			}

			// Contract 5: if the plugin advertises pressio:abs, the bound
			// must hold pointwise.
			if supportsAbs {
				worst := 0.0
				orig := in.Float32s()
				for i, v := range dec.Float32s() {
					if d := math.Abs(float64(v) - float64(orig[i])); d > worst {
						worst = d
					}
				}
				if worst > bound {
					t.Fatalf("advertised abs bound violated: %g > %g", worst, bound)
				}
			}

			// Contract 6: clones are independent (options set on the clone
			// do not leak back).
			clone := c.Clone()
			if supportsAbs {
				if err := clone.SetOptions(core.NewOptions().SetValue(core.KeyAbs, bound/10)); err != nil {
					t.Fatalf("clone SetOptions: %v", err)
				}
				if got, err := c.Options().GetFloat64(core.KeyAbs); err == nil && got != bound {
					t.Fatalf("clone options leaked: %v", got)
				}
			}

			// Contract 7: a clone can still decompress the original's
			// stream (stream self-description, §IV-B).
			dec2, err := core.Decompress(clone, comp, in.DType(), in.Dims()...)
			if err != nil {
				t.Fatalf("clone decompress: %v", err)
			}
			if dec2.Len() != in.Len() {
				t.Fatal("clone decompress shape mismatch")
			}
		})
	}
}

func TestConformanceLosslessExactness(t *testing.T) {
	// Plugins whose default configuration promises bit-exact round trips.
	in := conformanceInput()
	for _, name := range []string{"noop", "flate", "gzip", "zlib", "rle", "shuffle", "bitshuffle", "delta", "fpzip"} {
		c, err := core.NewCompressor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		comp, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, err := core.Decompress(c, comp, in.DType(), in.Dims()...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !dec.Equal(in) {
			t.Fatalf("%s: default round trip not bit-exact", name)
		}
	}
}

func TestConformanceDecompressGarbage(t *testing.T) {
	// No plugin may panic on garbage input; errors are expected.
	garbage := core.NewBytes([]byte("definitely not a compressed stream, not even close"))
	for _, name := range core.SupportedCompressors() {
		if name == "thirdparty_test" {
			continue
		}
		c, err := core.NewCompressor(name)
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s panicked on garbage: %v", name, r)
				}
			}()
			_, _ = core.Decompress(c, garbage, core.DTypeFloat32, 4, 4)
		}()
	}
}
