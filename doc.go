// Package pressio is a from-scratch Go reproduction of "Productive and
// Performant Generic Lossy Data Compression with LibPressio" (Underwood,
// Malvoso, Calhoun, Di, Cappello — SC 2021): a generic, introspectable,
// low-overhead compression interface in front of a library of lossless and
// error-bounded lossy compressor plugins, metrics modules, IO plugins, and
// composable meta-compressors.
//
// The interface framework lives in internal/core; each compressor family
// (sz, zfp, mgard, fpzip, tthresh, bitgroom, lossless codecs) is
// implemented from scratch in its own internal package; internal/experiments
// regenerates every table and figure of the paper's evaluation. See
// README.md for the map and DESIGN.md for the reproduction methodology.
package pressio
