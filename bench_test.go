// Top-level benchmarks: one entry per table/figure of the paper's
// evaluation, so `go test -bench=.` touches every experiment. The naming
// follows DESIGN.md's experiment index: Fig3* are the §VI overhead matched
// pairs (compare the Native and Generic variants of each pair), V* are the
// §V in-text measurements, TableI/TableII regenerate the comparison tables.
package pressio

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"pressio/internal/core"
	"pressio/internal/experiments"
	"pressio/internal/mgard"
	"pressio/internal/sdrbench"
	"pressio/internal/sz"
	"pressio/internal/trace"
	"pressio/internal/zfp"

	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
)

var (
	benchData     *core.Data
	benchDataOnce sync.Once
)

func loadBenchData() *core.Data {
	benchDataOnce.Do(func() {
		benchData, _ = sdrbench.Generate(sdrbench.NameScaleLetKF, 1, 42)
	})
	return benchData
}

// --- Figure 3: matched pairs, native API vs generic interface -------------

func benchGeneric(b *testing.B, name string, relBound float64) {
	in := loadBenchData()
	c, err := core.NewCompressor(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyRel, relBound)); err != nil {
		b.Fatal(err)
	}
	out := core.NewEmpty(core.DTypeByte, 0)
	b.SetBytes(int64(in.ByteLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Compress(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3SZNative(b *testing.B) {
	in := loadBenchData()
	p := sz.Params{Mode: core.BoundValueRangeRel, Bound: 1e-3}
	b.SetBytes(int64(in.ByteLen()))
	for i := 0; i < b.N; i++ {
		if _, err := sz.CompressSlice(in.Float32s(), in.Dims(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3SZGeneric(b *testing.B) { benchGeneric(b, "sz", 1e-3) }

func BenchmarkFig3ZFPNative(b *testing.B) {
	in := loadBenchData()
	b.SetBytes(int64(in.ByteLen()))
	for i := 0; i < b.N; i++ {
		// Resolve the value-range-relative bound inside the loop, exactly
		// as the generic plugin must per call — keeping the pair matched.
		lo, hi := core.ValueRange(in)
		p := zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: 1e-3 * (hi - lo)}
		if _, err := zfp.CompressSlice(in.Float32s(), in.Dims(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3ZFPGeneric(b *testing.B) { benchGeneric(b, "zfp", 1e-3) }

func BenchmarkFig3MGARDNative(b *testing.B) {
	in := loadBenchData()
	p := mgard.Params{Mode: core.BoundValueRangeRel, Bound: 1e-3}
	b.SetBytes(int64(in.ByteLen()))
	for i := 0; i < b.N; i++ {
		if _, err := mgard.CompressSlice(in.Float32s(), in.Dims(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3MGARDGeneric(b *testing.B) { benchGeneric(b, "mgard", 1e-3) }

// --- §V: dimension ordering, flattening, padding ---------------------------

func benchSZDims(b *testing.B, dims []uint64) {
	cloud := sdrbench.HurricaneCloud(16, 32, 32, 42)
	p := sz.Params{Mode: core.BoundValueRangeRel, Bound: 1e-3}
	b.SetBytes(int64(cloud.ByteLen()))
	for i := 0; i < b.N; i++ {
		stream, err := sz.CompressSlice(cloud.Float32s(), dims, p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cloud.ByteLen())/float64(len(stream)), "ratio")
	}
}

func BenchmarkVDimOrderCorrect(b *testing.B)  { benchSZDims(b, []uint64{16, 32, 32}) }
func BenchmarkVDimOrderReversed(b *testing.B) { benchSZDims(b, []uint64{32, 32, 16}) }
func BenchmarkVFlatten3D(b *testing.B)        { benchSZDims(b, []uint64{16, 32, 32}) }
func BenchmarkVFlatten1D(b *testing.B)        { benchSZDims(b, []uint64{16 * 32 * 32}) }

func benchZFPDims(b *testing.B, dims []uint64) {
	field := sdrbench.ScaleLetKF(1, 64, 64, 42)
	work := field.Clone()
	if err := work.Reshape(dims...); err != nil {
		b.Fatal(err)
	}
	lo, hi := core.ValueRange(field)
	p := zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: 1e-3 * (hi - lo)}
	b.SetBytes(int64(field.ByteLen()))
	for i := 0; i < b.N; i++ {
		stream, err := zfp.CompressSlice(work.Float32s(), work.Dims(), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(field.ByteLen())/float64(len(stream)), "ratio")
	}
}

func BenchmarkVZfpPadded(b *testing.B)  { benchZFPDims(b, []uint64{64, 64, 1}) }
func BenchmarkVZfpResized(b *testing.B) { benchZFPDims(b, []uint64{64, 64}) }

// --- §V: embeddable vs external-process -----------------------------------

var (
	workerOnce sync.Once
	workerBin  string
)

// buildWorker compiles cmd/pressio once for the embed benchmark.
func buildWorker(b *testing.B) string {
	workerOnce.Do(func() {
		dir, err := os.MkdirTemp("", "pressio-worker")
		if err != nil {
			return
		}
		bin := filepath.Join(dir, "pressio")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/pressio")
		if out, err := cmd.CombinedOutput(); err == nil {
			workerBin = bin
		} else {
			_ = out
		}
	})
	if workerBin == "" {
		b.Skip("worker binary unavailable (go build failed)")
	}
	return workerBin
}

func BenchmarkVEmbedExternalProcess(b *testing.B) {
	bin := buildWorker(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Embed(bin, []string{"-worker"}, 1, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OverheadPct, "overhead_%")
	}
}

// --- Observability: dispatch overhead with tracing off ----------------------

// The tracing layer promises near-zero cost when disabled: the wrapper's only
// extra work on the Compress path is one atomic load. These benchmarks pin
// that down with the noop compressor, where codec time is ~0 and any
// dispatch overhead dominates. Compare BenchmarkDispatchDirectImpl (raw
// plugin call, no wrapper) with BenchmarkDispatchWrappedUntraced (full
// wrapper, tracing disabled); the per-op gap is the abstraction+gate cost.
// BenchmarkDispatchWrappedTraced shows the price once collection is on.

func dispatchFixture(b *testing.B) (*core.Compressor, *core.Data, *core.Data) {
	c, err := core.NewCompressor("noop")
	if err != nil {
		b.Fatal(err)
	}
	in := core.FromFloat32s(make([]float32, 1024), 32, 32)
	out := core.NewEmpty(core.DTypeByte, 0)
	return c, in, out
}

func BenchmarkDispatchDirectImpl(b *testing.B) {
	c, in, out := dispatchFixture(b)
	impl := c.Plugin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := impl.CompressImpl(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchWrappedUntraced(b *testing.B) {
	c, in, out := dispatchFixture(b)
	trace.Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Compress(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchWrappedTraced(b *testing.B) {
	c, in, out := dispatchFixture(b)
	trace.Enable()
	defer func() {
		trace.Disable()
		trace.Reset()
		trace.ResetTelemetry()
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Compress(in, out); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 0 {
			trace.Reset() // keep the span buffer from saturating maxSpans
		}
	}
}

// --- Tables ----------------------------------------------------------------

func BenchmarkTableIIntrospection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.LibPressioFeatures().Introspect != experiments.Yes {
			b.Fatal("introspection probe failed")
		}
	}
}

func BenchmarkTableIILoc(b *testing.B) {
	root, err := experiments.RepoRoot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(root)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
