// Determinism: compressing the same input twice with the same
// configuration must produce identical bytes for every plugin — required
// for reproducible checkpoints and content-addressed storage.
package pressio

import (
	"testing"

	"pressio/internal/core"
)

func TestCompressionDeterministic(t *testing.T) {
	in := conformanceInput()
	for _, name := range core.SupportedCompressors() {
		switch name {
		case "thirdparty_test":
			continue
		case "fault_injector", "noise_injector":
			// Deterministic too (seeded), but covered by their own tests.
			continue
		}
		c, err := core.NewCompressor(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: non-deterministic output (%d vs %d bytes)", name, a.ByteLen(), b.ByteLen())
		}
		// A fresh instance must also agree with the first.
		c2, _ := core.NewCompressor(name)
		d, err := core.Compress(c2, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !a.Equal(d) {
			t.Errorf("%s: instance-dependent output", name)
		}
	}
}

func TestSeededInjectorsDeterministic(t *testing.T) {
	in := conformanceInput()
	for _, name := range []string{"fault_injector", "noise_injector"} {
		c, err := core.NewCompressor(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetOptions(core.NewOptions().SetValue(name+":seed", int64(5))); err != nil {
			t.Fatal(err)
		}
		a, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: seeded injector not deterministic", name)
		}
	}
}
