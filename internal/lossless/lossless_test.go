package lossless

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func TestCodecFunctionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inputs := [][]byte{
		nil,
		{},
		{0},
		{1, 2, 3, 4, 5, 6, 7, 8},
		make([]byte, 10000), // all zeros
	}
	random := make([]byte, 4096)
	rng.Read(random)
	inputs = append(inputs, random)

	for i, in := range inputs {
		for name, pair := range map[string]struct {
			enc func([]byte) ([]byte, error)
			dec func([]byte) ([]byte, error)
		}{
			"flate": {func(b []byte) ([]byte, error) { return Deflate(b, 6) }, Inflate},
			"gzip":  {func(b []byte) ([]byte, error) { return Gzip(b, 6) }, Gunzip},
			"zlib":  {func(b []byte) ([]byte, error) { return Zlib(b, 6) }, Unzlib},
			"rle":   {func(b []byte) ([]byte, error) { return RLE(b), nil }, UnRLE},
		} {
			enc, err := pair.enc(in)
			if err != nil {
				t.Fatalf("%s input %d: encode: %v", name, i, err)
			}
			dec, err := pair.dec(enc)
			if err != nil {
				t.Fatalf("%s input %d: decode: %v", name, i, err)
			}
			if string(dec) != string(in) {
				t.Fatalf("%s input %d: round trip mismatch", name, i)
			}
		}
	}
}

func TestShuffleRoundTripAllElemSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, elem := range []int{1, 2, 4, 8} {
		b := make([]byte, 128*elem)
		rng.Read(b)
		s := Shuffle(b, elem)
		u := Unshuffle(s, elem)
		if string(u) != string(b) {
			t.Fatalf("shuffle round trip failed for elem size %d", elem)
		}
	}
	// Non-multiple lengths pass through unchanged.
	b := []byte{1, 2, 3}
	if string(Unshuffle(Shuffle(b, 4), 4)) != string(b) {
		t.Fatal("pass-through failed")
	}
}

func TestShuffleImprovesFloatCompression(t *testing.T) {
	// Smooth float32 data: shuffled DEFLATE should beat raw DEFLATE.
	vals := make([]float32, 1<<14)
	for i := range vals {
		vals[i] = float32(100 + math.Sin(float64(i)/50))
	}
	d := core.FromFloat32s(vals)
	raw, err := Deflate(d.Bytes(), 6)
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := Deflate(Shuffle(d.Bytes(), 4), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(shuf) >= len(raw) {
		t.Fatalf("shuffle did not help: shuffled %d >= raw %d", len(shuf), len(raw))
	}
}

func TestDeltaVarintRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		d := core.FromInt64s(vals)
		enc, err := DeltaVarint(d.Bytes(), 8)
		if err != nil {
			return false
		}
		dec, err := UnDeltaVarint(enc, 8)
		if err != nil {
			return false
		}
		return string(dec) == string(d.Bytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaCompressesMonotone(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(1000000 + i)
	}
	d := core.FromInt64s(vals)
	enc, err := DeltaVarint(d.Bytes(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(vals)*2 {
		t.Fatalf("monotone int64s should collapse: got %d bytes for %d values", len(enc), len(vals))
	}
}

func TestPluginRoundTripsThroughFramework(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	in := core.FromFloat64s(vals, 20, 100)
	for _, name := range []string{"noop", "flate", "gzip", "zlib", "rle", "shuffle", "delta"} {
		c, err := core.NewCompressor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		comp, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		dec, err := core.Decompress(c, comp, core.DTypeFloat64, 20, 100)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if !dec.Equal(in) {
			t.Fatalf("%s: lossless round trip mismatch", name)
		}
		if dec.DType() != core.DTypeFloat64 || dec.NumDims() != 2 {
			t.Fatalf("%s: shape hint not honored: %v", name, dec)
		}
	}
}

func TestPluginLevelOption(t *testing.T) {
	c, err := core.NewCompressor("flate")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions().SetValue("flate:level", int32(1))
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	got, err := c.Options().GetInt32("flate:level")
	if err != nil || got != 1 {
		t.Fatalf("level: got %d err %v", got, err)
	}
	bad := core.NewOptions().SetValue("flate:level", int32(42))
	if err := c.CheckOptions(bad); err == nil {
		t.Fatal("expected CheckOptions failure for level 42")
	}
	// CheckOptions must not have mutated state.
	if got, _ := c.Options().GetInt32("flate:level"); got != 1 {
		t.Fatalf("CheckOptions mutated state: level %d", got)
	}
}

func TestGenericLosslessLevelOption(t *testing.T) {
	c, _ := core.NewCompressor("gzip")
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyLossless, int32(9))); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Options().GetInt32("gzip:level"); got != 9 {
		t.Fatalf("generic lossless option not mapped: %d", got)
	}
}

func TestDecompressWrongCodecErrors(t *testing.T) {
	in := core.FromFloat32s(make([]float32, 64))
	flateC, _ := core.NewCompressor("flate")
	comp, err := core.Compress(flateC, in)
	if err != nil {
		t.Fatal(err)
	}
	rleC, _ := core.NewCompressor("rle")
	if _, err := core.Decompress(rleC, comp, core.DTypeFloat32, 64); err == nil {
		t.Fatal("expected codec mismatch error")
	}
}

func TestBitShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, elem := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 8, 64, 1000} {
			b := make([]byte, n*elem)
			rng.Read(b)
			got := BitUnshuffle(BitShuffle(b, elem), elem)
			if string(got) != string(b) {
				t.Fatalf("elem %d n %d: bitshuffle round trip failed", elem, n)
			}
		}
	}
}

func TestBitShuffleImprovesBitPlaneStructuredData(t *testing.T) {
	// Bitshuffle wins when entropy is structured per bit plane but every
	// byte changes (fast counters with low-bit noise): byte-level tools
	// see high-entropy bytes, bit planes are nearly constant or periodic.
	vals := make([]int32, 1<<14)
	rng := rand.New(rand.NewSource(12))
	for i := range vals {
		vals[i] = int32(i*3) ^ int32(rng.Intn(4))
	}
	d := core.FromInt32s(vals)
	plain, err := Deflate(d.Bytes(), 6)
	if err != nil {
		t.Fatal(err)
	}
	byteShuf, err := Deflate(Shuffle(d.Bytes(), 4), 6)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := Deflate(BitShuffle(d.Bytes(), 4), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) >= len(plain) {
		t.Fatalf("bitshuffle did not beat plain deflate: %d vs %d", len(bits), len(plain))
	}
	if len(bits) >= len(byteShuf) {
		t.Fatalf("bitshuffle should beat byte shuffle here: %d vs %d", len(bits), len(byteShuf))
	}
}

func TestBitShufflePlugin(t *testing.T) {
	vals := make([]float32, 999) // non multiple of 8: exercises the tail
	for i := range vals {
		vals[i] = float32(i % 13)
	}
	in := core.FromFloat32s(vals)
	c, err := core.NewCompressor("bitshuffle")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 999)
	if err != nil || !dec.Equal(in) {
		t.Fatalf("bitshuffle plugin round trip: %v", err)
	}
}
