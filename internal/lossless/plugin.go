package lossless

import (
	"fmt"

	"pressio/internal/core"
)

// Version is the plugin family version reported through Configuration.
const Version = "1.0.0"

// codecKind selects the algorithm behind a generic byte-codec plugin.
type codecKind int

const (
	kindNoop codecKind = iota
	kindFlate
	kindGzip
	kindZlib
	kindRLE
	kindShuffle    // byte shuffle + DEFLATE (BLOSC-style)
	kindBitShuffle // bit shuffle + DEFLATE (BLOSC's second filter)
	kindDelta      // bitwise delta + varint + DEFLATE
)

// plugin is the shared implementation of every lossless compressor plugin.
// Lossless compressors treat the input as a byte stream (the paper's §V
// datatype-awareness discussion); shuffle and delta additionally use the
// element size from the dtype when available.
type plugin struct {
	kind  codecKind
	name  string
	level int32
}

func newPlugin(kind codecKind, name string) func() core.CompressorPlugin {
	return func() core.CompressorPlugin {
		return &plugin{kind: kind, name: name, level: 6}
	}
}

func init() {
	core.RegisterCompressor("noop", newPlugin(kindNoop, "noop"))
	core.RegisterCompressor("flate", newPlugin(kindFlate, "flate"))
	core.RegisterCompressor("gzip", newPlugin(kindGzip, "gzip"))
	core.RegisterCompressor("zlib", newPlugin(kindZlib, "zlib"))
	core.RegisterCompressor("rle", newPlugin(kindRLE, "rle"))
	core.RegisterCompressor("shuffle", newPlugin(kindShuffle, "shuffle"))
	core.RegisterCompressor("bitshuffle", newPlugin(kindBitShuffle, "bitshuffle"))
	core.RegisterCompressor("delta", newPlugin(kindDelta, "delta"))
}

func (p *plugin) Prefix() string  { return p.name }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(p.name+":level", p.level)
	o.SetValue(core.KeyLossless, p.level)
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if v, err := o.GetInt32(core.KeyLossless); err == nil {
		p.level = v
	}
	if v, err := o.GetInt32(p.name + ":level"); err == nil {
		p.level = v
	}
	if p.level < 0 || p.level > 9 {
		return fmt.Errorf("%w: %s:level %d outside [0,9]", core.ErrInvalidOption, p.name, p.level)
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := *p
	return clone.SetOptions(o)
}

func (p *plugin) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", Version, false)
}

// header layout: [kind byte][elemSize byte] then payload.
func (p *plugin) CompressImpl(in, out *core.Data) error {
	raw := in.Bytes()
	elem := in.DType().Size()
	if elem == 0 {
		elem = 1
	}
	var payload []byte
	var err error
	switch p.kind {
	case kindNoop:
		payload = append([]byte(nil), raw...)
	case kindFlate:
		payload, err = Deflate(raw, int(p.level))
	case kindGzip:
		payload, err = Gzip(raw, int(p.level))
	case kindZlib:
		payload, err = Zlib(raw, int(p.level))
	case kindRLE:
		payload = RLE(raw)
	case kindShuffle:
		payload, err = Deflate(Shuffle(raw, elem), int(p.level))
	case kindBitShuffle:
		payload, err = Deflate(BitShuffle(raw, elem), int(p.level))
	case kindDelta:
		var deltas []byte
		deltas, err = DeltaVarint(raw, elem)
		if err == nil {
			payload, err = Deflate(deltas, int(p.level))
		}
	}
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(payload)+2)
	buf = append(buf, byte(p.kind), byte(elem))
	buf = append(buf, payload...)
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	b := in.Bytes()
	if len(b) < 2 {
		return ErrCorrupt
	}
	kind, elem := codecKind(b[0]), int(b[1])
	if kind != p.kind {
		return fmt.Errorf("%w: stream was produced by a different codec", ErrCorrupt)
	}
	payload := b[2:]
	var raw []byte
	var err error
	switch kind {
	case kindNoop:
		raw = append([]byte(nil), payload...)
	case kindFlate:
		raw, err = Inflate(payload)
	case kindGzip:
		raw, err = Gunzip(payload)
	case kindZlib:
		raw, err = Unzlib(payload)
	case kindRLE:
		raw, err = UnRLE(payload)
	case kindShuffle:
		raw, err = Inflate(payload)
		if err == nil {
			raw = Unshuffle(raw, elem)
		}
	case kindBitShuffle:
		raw, err = Inflate(payload)
		if err == nil {
			raw = BitUnshuffle(raw, elem)
		}
	case kindDelta:
		raw, err = Inflate(payload)
		if err == nil {
			raw, err = UnDeltaVarint(raw, elem)
		}
	default:
		err = ErrCorrupt
	}
	if err != nil {
		return err
	}
	return core.FillDecompressed(out, raw)
}

func (p *plugin) Clone() core.CompressorPlugin {
	clone := *p
	return &clone
}
