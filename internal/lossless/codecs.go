// Package lossless provides the lossless codecs of the plugin library:
// DEFLATE-family wrappers over the standard library plus from-scratch
// run-length, byte-shuffle (BLOSC-style) and delta codecs. The lossy
// compressors also use Deflate as their final entropy/backend stage.
package lossless

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt reports a malformed lossless stream.
var ErrCorrupt = errors.New("lossless: corrupt stream")

// Deflate compresses b at the given flate level (1..9; 0 selects the
// default).
func Deflate(b []byte, level int) ([]byte, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(b); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Inflate reverses Deflate.
func Inflate(b []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// Gzip compresses b in gzip format.
func Gzip(b []byte, level int) ([]byte, error) {
	if level == 0 {
		level = gzip.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(b); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Gunzip reverses Gzip.
func Gunzip(b []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// Zlib compresses b in zlib format.
func Zlib(b []byte, level int) ([]byte, error) {
	if level == 0 {
		level = zlib.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := zlib.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(b); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unzlib reverses Zlib.
func Unzlib(b []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// RLE run-length encodes b: each run is (uvarint length, byte). Effective
// for sparse or constant regions; a worst-case stream grows by ~12.5%.
func RLE(b []byte) []byte {
	out := make([]byte, 0, len(b)/4+16)
	out = binary.AppendUvarint(out, uint64(len(b)))
	i := 0
	for i < len(b) {
		j := i
		for j < len(b) && b[j] == b[i] {
			j++
		}
		out = binary.AppendUvarint(out, uint64(j-i))
		out = append(out, b[i])
		i = j
	}
	return out
}

// UnRLE reverses RLE.
func UnRLE(b []byte) ([]byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<34 {
		return nil, ErrCorrupt
	}
	pos := sz
	out := make([]byte, 0, n)
	for uint64(len(out)) < n {
		run, sz := binary.Uvarint(b[pos:])
		if sz <= 0 {
			return nil, ErrCorrupt
		}
		pos += sz
		if pos >= len(b)+1 && run > 0 {
			return nil, ErrCorrupt
		}
		if pos >= len(b) {
			return nil, ErrCorrupt
		}
		v := b[pos]
		pos++
		if uint64(len(out))+run > n {
			return nil, ErrCorrupt
		}
		for k := uint64(0); k < run; k++ {
			out = append(out, v)
		}
	}
	return out, nil
}

// Shuffle performs a BLOSC-style byte transposition: with elemSize k, all
// first bytes of each element come first, then all second bytes, and so on.
// IEEE floats of similar magnitude share exponent bytes, so the shuffled
// stream compresses much better with DEFLATE.
func Shuffle(b []byte, elemSize int) []byte {
	if elemSize <= 1 || len(b)%elemSize != 0 {
		return append([]byte(nil), b...)
	}
	n := len(b) / elemSize
	out := make([]byte, len(b))
	for lane := 0; lane < elemSize; lane++ {
		dst := out[lane*n : (lane+1)*n]
		for i := 0; i < n; i++ {
			dst[i] = b[i*elemSize+lane]
		}
	}
	return out
}

// Unshuffle reverses Shuffle.
func Unshuffle(b []byte, elemSize int) []byte {
	if elemSize <= 1 || len(b)%elemSize != 0 {
		return append([]byte(nil), b...)
	}
	n := len(b) / elemSize
	out := make([]byte, len(b))
	for lane := 0; lane < elemSize; lane++ {
		src := b[lane*n : (lane+1)*n]
		for i := 0; i < n; i++ {
			out[i*elemSize+lane] = src[i]
		}
	}
	return out
}

// BitShuffle performs BLOSC's second filter: within each block of 8
// elements, bit k of every element is gathered together, so slowly varying
// values concentrate their entropy into a few output bytes. elemSize is in
// bytes; inputs whose length is not a multiple of 8*elemSize keep an
// unshuffled tail.
func BitShuffle(b []byte, elemSize int) []byte {
	if elemSize <= 0 || len(b)%elemSize != 0 {
		return append([]byte(nil), b...)
	}
	out := make([]byte, len(b))
	block := 8 * elemSize
	full := (len(b) / block) * block
	for base := 0; base < full; base += block {
		// 8 elements of elemSize bytes = 8*elemSize bytes = elemSize
		// groups of 8 bytes; transpose each 8x8 bit matrix.
		for byteIdx := 0; byteIdx < elemSize; byteIdx++ {
			var rows [8]byte
			for e := 0; e < 8; e++ {
				rows[e] = b[base+e*elemSize+byteIdx]
			}
			for bit := 0; bit < 8; bit++ {
				var packed byte
				for e := 0; e < 8; e++ {
					packed |= ((rows[e] >> bit) & 1) << e
				}
				out[base+byteIdx*8+bit] = packed
			}
		}
	}
	copy(out[full:], b[full:])
	return out
}

// BitUnshuffle reverses BitShuffle.
func BitUnshuffle(b []byte, elemSize int) []byte {
	if elemSize <= 0 || len(b)%elemSize != 0 {
		return append([]byte(nil), b...)
	}
	out := make([]byte, len(b))
	block := 8 * elemSize
	full := (len(b) / block) * block
	for base := 0; base < full; base += block {
		for byteIdx := 0; byteIdx < elemSize; byteIdx++ {
			var planes [8]byte
			for bit := 0; bit < 8; bit++ {
				planes[bit] = b[base+byteIdx*8+bit]
			}
			for e := 0; e < 8; e++ {
				var v byte
				for bit := 0; bit < 8; bit++ {
					v |= ((planes[bit] >> e) & 1) << bit
				}
				out[base+e*elemSize+byteIdx] = v
			}
		}
	}
	copy(out[full:], b[full:])
	return out
}

// DeltaVarint delta-encodes b interpreted as little-endian integers of
// elemSize bytes (1, 2, 4 or 8), emitting zig-zag uvarints of adjacent
// differences. Slowly varying integer fields collapse to near-zero deltas.
func DeltaVarint(b []byte, elemSize int) ([]byte, error) {
	if len(b)%elemSize != 0 {
		return nil, fmt.Errorf("lossless: %d bytes not a multiple of element size %d", len(b), elemSize)
	}
	n := len(b) / elemSize
	out := make([]byte, 0, len(b)/2+16)
	out = binary.AppendUvarint(out, uint64(n))
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v := readLE(b[i*elemSize:], elemSize)
		delta := int64(v - prev)
		out = binary.AppendVarint(out, delta)
		prev = v
	}
	return out, nil
}

// UnDeltaVarint reverses DeltaVarint.
func UnDeltaVarint(b []byte, elemSize int) ([]byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<32 {
		return nil, ErrCorrupt
	}
	pos := sz
	out := make([]byte, n*uint64(elemSize))
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		delta, sz := binary.Varint(b[pos:])
		if sz <= 0 {
			return nil, ErrCorrupt
		}
		pos += sz
		prev += uint64(delta)
		writeLE(out[i*uint64(elemSize):], prev, elemSize)
	}
	return out, nil
}

func readLE(b []byte, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func writeLE(b []byte, v uint64, size int) {
	for i := 0; i < size; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
