// Package obslog is a minimal structured event logger: one JSON object per
// line, a fixed field order (ts, level, event, then caller fields), four
// levels, and first-class request-id correlation so a pressiod request's log
// lines join its span tree and its metrics under one id.
//
// The package-level default logger is a no-op until a process opts in
// (pressiod does at startup; the CLIs and library code never do), so
// instrumented library paths — breaker trips, shed decisions — cost one
// atomic load when logging is off, matching the trace package's
// zero-when-unused contract.
package obslog

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders event severities.
type Level int8

const (
	// Debug is for high-volume diagnostics (per-request events).
	Debug Level = iota
	// Info is for lifecycle events (startup, drain, config).
	Info
	// Warn is for degradations the service absorbed (shed, breaker trip,
	// slow request).
	Warn
	// Error is for faults that surfaced to a caller.
	Error
	// levelOff disables every event; it is the default logger's level.
	levelOff
)

// String returns the lowercase level name that appears in the output.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to its
// Level, defaulting to Info for anything unrecognized.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return Debug
	case "info":
		return Info
	case "warn":
		return Warn
	case "error":
		return Error
	default:
		return Info
	}
}

// Field is one key/value pair of an event. Construct with the typed helpers
// so values encode predictably.
type Field struct {
	Key   string
	Value any
}

// Str builds a string field.
func Str(key, value string) Field { return Field{key, value} }

// Int builds an integer field.
func Int(key string, value int64) Field { return Field{key, value} }

// F64 builds a float field.
func F64(key string, value float64) Field { return Field{key, value} }

// Bool builds a boolean field.
func Bool(key string, value bool) Field { return Field{key, value} }

// Dur renders a duration as fractional milliseconds under key+"_ms" —
// millisecond-scaled latencies are what dashboards and the slow-request
// threshold speak.
func Dur(key string, value time.Duration) Field {
	return Field{key + "_ms", float64(value) / float64(time.Millisecond)}
}

// Err builds an "error" field from err's message (skipped when nil).
func Err(err error) Field {
	if err == nil {
		return Field{}
	}
	return Field{"error", err.Error()}
}

// Logger writes JSON-lines events at or above a minimum level. The zero
// value is unusable; construct with New. A nil *Logger discards everything,
// so call sites never guard.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// New builds a logger writing events at or above min to w.
func New(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// SetClock injects a timestamp source (tests want deterministic "ts"
// fields). Call before the logger is shared.
func (l *Logger) SetClock(now func() time.Time) { l.now = now }

// Enabled reports whether an event at level would be written.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.min }

// Event writes one JSON line: {"ts":..., "level":..., "event":..., fields}.
// Field order follows the call; duplicate keys keep the last value at read
// time (encoders must not rely on it). Empty-keyed fields (e.g. Err(nil))
// are skipped.
func (l *Logger) Event(level Level, event string, fields ...Field) {
	if !l.Enabled(level) {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":"`...)
	buf = l.now().UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","event":`...)
	buf = appendJSON(buf, event)
	for _, f := range fields {
		if f.Key == "" {
			continue
		}
		buf = append(buf, ',')
		buf = appendJSON(buf, f.Key)
		buf = append(buf, ':')
		buf = appendJSON(buf, f.Value)
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	// The write must stay inside the critical section: the mutex is what
	// keeps concurrent log lines from interleaving mid-record. The line is
	// fully formatted before Lock, so the held window is one Write call.
	//lint:ignore blockinglock the mutex serializes writes to the sink; formatting already happens outside it
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}

// Debugf/Info/Warn/Error shorthands.

// Debugw writes a Debug event.
func (l *Logger) Debugw(event string, fields ...Field) { l.Event(Debug, event, fields...) }

// Infow writes an Info event.
func (l *Logger) Infow(event string, fields ...Field) { l.Event(Info, event, fields...) }

// Warnw writes a Warn event.
func (l *Logger) Warnw(event string, fields ...Field) { l.Event(Warn, event, fields...) }

// Errorw writes an Error event.
func (l *Logger) Errorw(event string, fields ...Field) { l.Event(Error, event, fields...) }

// appendJSON encodes v compactly. The fast paths cover the field types the
// helpers construct; anything else goes through encoding/json (errors encode
// as a quoted error string rather than dropping the event).
func appendJSON(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		b, _ := json.Marshal(x)
		return append(buf, b...)
	case int64:
		return fmt.Appendf(buf, "%d", x)
	case int:
		return fmt.Appendf(buf, "%d", x)
	case bool:
		if x {
			return append(buf, "true"...)
		}
		return append(buf, "false"...)
	case float64:
		b, err := json.Marshal(x)
		if err != nil {
			// NaN/Inf are not JSON; null keeps the line parseable.
			return append(buf, "null"...)
		}
		return append(buf, b...)
	default:
		b, err := json.Marshal(x)
		if err != nil {
			b, _ = json.Marshal(fmt.Sprint(x))
		}
		return append(buf, b...)
	}
}

// The process default logger, used by library instrumentation points (the
// breaker state machine) and by pressiod. Starts disabled.
var defaultLogger atomic.Pointer[Logger]

// Default returns the process default logger; it is never nil, but may be
// disabled.
func Default() *Logger {
	if l := defaultLogger.Load(); l != nil {
		return l
	}
	return nopLogger
}

// SetDefault installs l as the process default (nil restores the disabled
// logger).
func SetDefault(l *Logger) {
	if l == nil {
		l = nopLogger
	}
	defaultLogger.Store(l)
}

var nopLogger = New(io.Discard, levelOff)
