package obslog

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
}

func TestEventShapeAndOrder(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug)
	l.SetClock(fixedClock)

	l.Warnw("slow_request",
		Str("request_id", "4bf92f3577b34da6a3ce929d0e0e4736"),
		Str("path", "/compress"),
		Dur("latency", 1500*time.Millisecond),
		Int("status", 200),
		Bool("draining", false),
	)
	line := buf.String()
	want := `{"ts":"2026-08-07T12:00:00Z","level":"warn","event":"slow_request",` +
		`"request_id":"4bf92f3577b34da6a3ce929d0e0e4736","path":"/compress",` +
		`"latency_ms":1500,"status":200,"draining":false}` + "\n"
	if line != want {
		t.Errorf("event line:\n got %q\nwant %q", line, want)
	}
}

func TestEveryLineIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug)
	l.Debugw("a")
	l.Infow("b", Str("k", `quote " and \ slash`), F64("nan", math.NaN()))
	l.Errorw("c", Err(errors.New("boom")), Err(nil))
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %q: %v", line, err)
			continue
		}
		for _, k := range []string{"ts", "level", "event"} {
			if _, ok := m[k]; !ok {
				t.Errorf("line %q missing %q", line, k)
			}
		}
	}
	if !strings.Contains(buf.String(), `"error":"boom"`) {
		t.Error("Err field not encoded")
	}
	if strings.Contains(buf.String(), `"":`) {
		t.Error("Err(nil) produced an empty-keyed field")
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Warn)
	l.Debugw("drop")
	l.Infow("drop")
	l.Warnw("keep")
	l.Errorw("keep")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("wrote %d events, want 2:\n%s", got, buf.String())
	}
	if l.Enabled(Info) || !l.Enabled(Error) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestNilAndDefaultLoggerAreSafe(t *testing.T) {
	var l *Logger
	l.Infow("nothing") // must not panic
	if l.Enabled(Error) {
		t.Error("nil logger claims enabled")
	}

	// Default starts disabled; SetDefault swaps it in and out atomically.
	Default().Infow("discarded")
	var buf bytes.Buffer
	SetDefault(New(&buf, Info))
	defer SetDefault(nil)
	Default().Infow("captured", Str("x", "y"))
	if !strings.Contains(buf.String(), `"event":"captured"`) {
		t.Errorf("default logger did not capture: %q", buf.String())
	}
	SetDefault(nil)
	Default().Infow("discarded again")
	if strings.Count(buf.String(), "\n") != 1 {
		t.Error("disabled default still wrote")
	}
}

func TestConcurrentWritesStayLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Debug)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Infow("evt", Int("worker", int64(i)), Int("j", int64(j)))
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved line %q", line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": Debug, "info": Info, "warn": Warn, "error": Error, "bogus": Info,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
