package pio

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/lossless" // register filter compressors
	_ "pressio/internal/sz"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func newIO(t *testing.T, name, path string) core.IOPlugin {
	t.Helper()
	io, err := core.NewIO(name)
	if err != nil {
		t.Fatal(err)
	}
	if path != "" {
		if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, path)); err != nil {
			t.Fatal(err)
		}
	}
	return io
}

func sample32() *core.Data {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, 6*8)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	return core.FromFloat32s(vals, 6, 8)
}

func TestPosixRoundTrip(t *testing.T) {
	path := tempPath(t, "data.bin")
	io := newIO(t, "posix", path)
	d := sample32()
	if err := io.Write(d); err != nil {
		t.Fatal(err)
	}
	got, err := io.Read(core.NewEmpty(core.DTypeFloat32, 6, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("posix round trip mismatch")
	}
	// Without a hint the raw bytes come back.
	raw, err := io.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw.DType() != core.DTypeByte || raw.ByteLen() != d.ByteLen() {
		t.Fatalf("raw read: %v", raw)
	}
}

func TestPosixBadSizeHint(t *testing.T) {
	path := tempPath(t, "data.bin")
	io := newIO(t, "posix", path)
	if err := io.Write(sample32()); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Read(core.NewEmpty(core.DTypeFloat64, 100, 100)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	path := tempPath(t, "data.csv")
	io := newIO(t, "csv", path)
	vals := []float64{1.5, -2, 3.25, 4, 5.125, 6}
	d := core.FromFloat64s(vals, 2, 3)
	if err := io.Write(d); err != nil {
		t.Fatal(err)
	}
	got, err := io.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatalf("csv round trip: %v vs %v", got, d)
	}
	// With a float32 hint the data is cast.
	got32, err := io.Read(core.NewEmpty(core.DTypeFloat32, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got32.DType() != core.DTypeFloat32 {
		t.Fatalf("hint cast: %v", got32)
	}
}

func TestCSVRaggedRejected(t *testing.T) {
	path := tempPath(t, "bad.csv")
	if err := os.WriteFile(path, []byte("1,2,3\n4,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	io := newIO(t, "csv", path)
	if _, err := io.Read(nil); err == nil {
		t.Fatal("expected ragged row error")
	}
}

func TestNPYRoundTripAllTypes(t *testing.T) {
	for _, dt := range []core.DType{
		core.DTypeFloat32, core.DTypeFloat64,
		core.DTypeInt16, core.DTypeInt32, core.DTypeInt64,
		core.DTypeUint8, core.DTypeUint32,
	} {
		path := tempPath(t, "a.npy")
		io := newIO(t, "npy", path)
		d := core.NewData(dt, 3, 4)
		for i := range d.Bytes() {
			d.Bytes()[i] = byte(i * 7)
		}
		if err := io.Write(d); err != nil {
			t.Fatalf("%s: write: %v", dt, err)
		}
		got, err := io.Read(nil)
		if err != nil {
			t.Fatalf("%s: read: %v", dt, err)
		}
		if !got.Equal(d) {
			t.Fatalf("%s: npy round trip mismatch", dt)
		}
	}
}

func TestNPYHeaderDetails(t *testing.T) {
	d := core.FromFloat64s([]float64{1, 2, 3}, 3)
	b, err := FormatNPY(d)
	if err != nil {
		t.Fatal(err)
	}
	// Payload must start 64-byte aligned.
	got, err := ParseNPY(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("1-D npy mismatch")
	}
	if _, err := ParseNPY([]byte("not numpy")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestIotaGeneratesSequence(t *testing.T) {
	io, err := core.NewIO("iota")
	if err != nil {
		t.Fatal(err)
	}
	dims := core.NewData(core.DTypeUint64, 2)
	copy(dims.Uint64s(), []uint64{4, 5})
	opts := core.NewOptions().
		Set("iota:dims", core.NewOption(dims)).
		SetValue("iota:dtype", "float64").
		SetValue("iota:start", 10.0)
	if err := io.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	d, err := io.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.DType() != core.DTypeFloat64 || d.Len() != 20 {
		t.Fatalf("iota: %v", d)
	}
	for i, v := range d.Float64s() {
		if v != 10+float64(i) {
			t.Fatalf("iota elem %d = %v", i, v)
		}
	}
	if err := io.Write(d); err == nil {
		t.Fatal("iota write should fail")
	}
}

func TestSelectSubregion(t *testing.T) {
	// 4x4 matrix 0..15, select rows 1-2, cols 1-2.
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i)
	}
	d := core.FromFloat64s(vals, 4, 4)
	sub, err := Subregion(d, []uint64{1, 1}, []uint64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 9, 10}
	for i, v := range sub.Float64s() {
		if v != want[i] {
			t.Fatalf("sub[%d] = %v want %v", i, v, want[i])
		}
	}
	if _, err := Subregion(d, []uint64{0, 0}, []uint64{5, 5}); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if _, err := Subregion(d, []uint64{0}, []uint64{2}); err == nil {
		t.Fatal("expected rank mismatch error")
	}
}

func TestSelectPluginComposition(t *testing.T) {
	path := tempPath(t, "full.npy")
	w := newIO(t, "npy", path)
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := w.Write(core.FromFloat64s(vals, 10, 10)); err != nil {
		t.Fatal(err)
	}
	sel, err := core.NewIO("select")
	if err != nil {
		t.Fatal(err)
	}
	start := core.NewData(core.DTypeUint64, 2)
	copy(start.Uint64s(), []uint64{2, 3})
	end := core.NewData(core.DTypeUint64, 2)
	copy(end.Uint64s(), []uint64{4, 6})
	opts := core.NewOptions().
		SetValue("select:io", "npy").
		SetValue(core.KeyIOPath, path).
		Set("select:start", core.NewOption(start)).
		Set("select:end", core.NewOption(end))
	if err := sel.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	sub, err := sel.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumDims() != 2 || sub.Dims()[0] != 2 || sub.Dims()[1] != 3 {
		t.Fatalf("sub dims %v", sub.Dims())
	}
	if sub.Float64s()[0] != 23 {
		t.Fatalf("sub[0] = %v", sub.Float64s()[0])
	}
}

func TestNoopStoresData(t *testing.T) {
	io, _ := core.NewIO("noop")
	if _, err := io.Read(nil); err == nil {
		t.Fatal("empty noop read should fail")
	}
	d := sample32()
	if err := io.Write(d); err != nil {
		t.Fatal(err)
	}
	got, err := io.Read(nil)
	if err != nil || !got.Equal(d) {
		t.Fatalf("noop round trip: %v", err)
	}
}

func TestH5LitePluginWithFilter(t *testing.T) {
	path := tempPath(t, "c.h5l")
	io, err := core.NewIO("h5lite")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions().
		SetValue(core.KeyIOPath, path).
		SetValue("h5:dataset", "pressure").
		SetValue("h5:filter", "sz").
		SetValue("h5:filter_abs", 1e-3).
		SetValue("h5:chunk_rows", uint64(2))
	if err := io.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	vals := make([]float32, 8*16)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/9) + 0.001*rng.NormFloat64())
	}
	d := core.FromFloat32s(vals, 8, 16)
	if err := io.Write(d); err != nil {
		t.Fatal(err)
	}
	got, err := io.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.DType() != core.DTypeFloat32 || got.Len() != d.Len() {
		t.Fatalf("h5 read: %v", got)
	}
	for i := range vals {
		if math.Abs(float64(got.Float32s()[i]-vals[i])) > 1e-3 {
			t.Fatalf("elem %d error beyond filter bound", i)
		}
	}
}

func TestEnumerationsIncludeAllPlugins(t *testing.T) {
	names := core.SupportedIO()
	for _, want := range []string{"posix", "csv", "npy", "iota", "select", "noop", "h5lite"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("io plugin %q not registered (have %v)", want, names)
		}
	}
}
