package pio

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"pressio/internal/core"
)

func init() {
	core.RegisterIO("petsc", func() core.IOPlugin { return &petsc{} })
}

// petscVecClassID is PETSc's binary Vec marker (VEC_FILE_CLASSID).
const petscVecClassID = 1211214

// petsc reads and writes PETSc binary Vec files: big-endian int32 class id,
// int32 length, then float64 values — the paper's PETSc IO plugin.
type petsc struct {
	pathConfig
}

func (p *petsc) Prefix() string { return "petsc" }

func (p *petsc) Options() *core.Options {
	return core.NewOptions().SetValue(core.KeyIOPath, p.path)
}

func (p *petsc) SetOptions(o *core.Options) error { p.applyPath(o); return nil }

func (p *petsc) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", "1.0.0", false)
}

func (p *petsc) Read(hint *core.Data) (*core.Data, error) {
	b, err := os.ReadFile(p.path)
	if err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: petsc vec too short", ErrFormat)
	}
	if binary.BigEndian.Uint32(b) != petscVecClassID {
		return nil, fmt.Errorf("%w: not a petsc vec (class id %d)", ErrFormat, binary.BigEndian.Uint32(b))
	}
	n := int(int32(binary.BigEndian.Uint32(b[4:])))
	if n < 0 || len(b) < 8+8*n {
		return nil, fmt.Errorf("%w: petsc vec truncated (%d values)", ErrFormat, n)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8+8*i:]))
	}
	out := core.FromFloat64s(vals, uint64(n))
	if hint != nil && hint.NumDims() > 0 {
		if err := out.Reshape(hint.Dims()...); err != nil {
			return nil, err
		}
	}
	if hint != nil && hint.DType() != core.DTypeUnset && hint.DType() != core.DTypeFloat64 {
		return out.CastTo(hint.DType())
	}
	return out, nil
}

func (p *petsc) Write(d *core.Data) error {
	if !d.DType().Numeric() {
		return fmt.Errorf("%w: cannot write %s as petsc vec", core.ErrInvalidDType, d.DType())
	}
	vals := d.AsFloat64s()
	out := make([]byte, 8+8*len(vals))
	binary.BigEndian.PutUint32(out, petscVecClassID)
	binary.BigEndian.PutUint32(out[4:], uint32(len(vals)))
	for i, v := range vals {
		binary.BigEndian.PutUint64(out[8+8*i:], math.Float64bits(v))
	}
	return atomicWriteFile(p.path, out, 0o644)
}

func (p *petsc) Clone() core.IOPlugin {
	clone := *p
	return &clone
}
