package pio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func TestNPYPropertyRoundTrip(t *testing.T) {
	dtypes := []core.DType{
		core.DTypeFloat32, core.DTypeFloat64,
		core.DTypeInt8, core.DTypeInt16, core.DTypeInt32, core.DTypeInt64,
		core.DTypeUint8, core.DTypeUint16, core.DTypeUint32, core.DTypeUint64,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := dtypes[rng.Intn(len(dtypes))]
		rank := 1 + rng.Intn(4)
		dims := make([]uint64, rank)
		for i := range dims {
			dims[i] = uint64(1 + rng.Intn(8))
		}
		d := core.NewData(dt, dims...)
		rng.Read(d.Bytes())
		b, err := FormatNPY(d)
		if err != nil {
			return false
		}
		got, err := ParseNPY(b)
		if err != nil {
			return false
		}
		return got.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNPYTruncationsSafe(t *testing.T) {
	d := core.FromFloat32s(make([]float32, 64), 8, 8)
	b, err := FormatNPY(d)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", cut, r)
				}
			}()
			_, _ = ParseNPY(b[:cut])
		}()
	}
}

func TestSubregionPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rank := 1 + rng.Intn(3)
		dims := make([]uint64, rank)
		for i := range dims {
			dims[i] = uint64(2 + rng.Intn(6))
		}
		d := core.NewData(core.DTypeInt32, dims...)
		for i := range d.Int32s() {
			d.Int32s()[i] = int32(i)
		}
		start := make([]uint64, rank)
		end := make([]uint64, rank)
		for i := range dims {
			start[i] = uint64(rng.Intn(int(dims[i])))
			end[i] = start[i] + 1 + uint64(rng.Intn(int(dims[i]-start[i])))
		}
		sub, err := Subregion(d, start, end)
		if err != nil {
			return false
		}
		// Brute force: walk every multi-index in the box.
		idx := make([]uint64, rank)
		copy(idx, start)
		si := 0
		for {
			lin := uint64(0)
			for i := range dims {
				lin = lin*dims[i] + idx[i]
			}
			if sub.Int32s()[si] != d.Int32s()[lin] {
				return false
			}
			si++
			k := rank - 1
			for k >= 0 {
				idx[k]++
				if idx[k] < end[k] {
					break
				}
				idx[k] = start[k]
				k--
			}
			if k < 0 {
				break
			}
		}
		return si == int(sub.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
