package pio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pressio/internal/core"
)

// TestAtomicWriteKillMidWriteLeavesOldFileIntact simulates a process killed
// between writing the temp file and the publishing rename: the destination
// must keep its previous content byte for byte — never a torn prefix.
func TestAtomicWriteKillMidWriteLeavesOldFileIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	old := []byte("the complete old generation")
	if err := atomicWriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}

	killed := errors.New("simulated kill -9 mid-write")
	crashPoint = func(tmpPath string) error {
		// The temp file exists beside the target with the new bytes...
		if filepath.Dir(tmpPath) != dir {
			t.Errorf("temp file %s not in the target directory %s", tmpPath, dir)
		}
		b, err := os.ReadFile(tmpPath)
		if err != nil || string(b) != "the new generation" {
			t.Errorf("temp content %q err %v", b, err)
		}
		return killed
	}
	t.Cleanup(func() { crashPoint = nil })

	err := atomicWriteFile(path, []byte("the new generation"), 0o644)
	if !errors.Is(err, killed) {
		t.Fatalf("crash point did not abort the write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(old) {
		t.Fatalf("destination torn after mid-write kill: %q", got)
	}

	// The write path recovers fully once the fault is gone.
	crashPoint = nil
	if err := atomicWriteFile(path, []byte("the new generation"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "the new generation" {
		t.Fatalf("post-recovery content %q", got)
	}
}

// TestAtomicWriteKillMidWriteNpy drives the same crash through the npy
// plugin: the previous .npy file must still parse after a killed rewrite.
func TestAtomicWriteKillMidWriteNpy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.npy")
	writeVia := func(vals []float64) error {
		io, err := core.NewIO("npy")
		if err != nil {
			t.Fatal(err)
		}
		if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, path)); err != nil {
			t.Fatal(err)
		}
		return io.Write(core.FromFloat64s(vals, uint64(len(vals))))
	}
	if err := writeVia([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	killed := errors.New("simulated kill -9 mid-write")
	crashPoint = func(string) error { return killed }
	t.Cleanup(func() { crashPoint = nil })
	if err := writeVia([]float64{9, 9, 9, 9, 9, 9}); !errors.Is(err, killed) {
		t.Fatalf("crash point did not abort the npy rewrite: %v", err)
	}
	crashPoint = nil

	io, err := core.NewIO("npy")
	if err != nil {
		t.Fatal(err)
	}
	if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, path)); err != nil {
		t.Fatal(err)
	}
	d, err := io.Read(nil)
	if err != nil {
		t.Fatalf("old npy no longer parses after killed rewrite: %v", err)
	}
	got := d.AsFloat64s()
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("old npy content corrupted: %v", got)
	}
}

// TestAtomicWriteCleansTempOnFailure: an aborted write withdraws its temp
// file so crashed-then-restarted processes do not accumulate garbage (a real
// kill cannot clean up, but every in-process failure path must).
func TestAtomicWriteCleansTempOnFailure(t *testing.T) {
	dir := t.TempDir()
	crashPoint = func(string) error { return errors.New("boom") }
	t.Cleanup(func() { crashPoint = nil })
	_ = atomicWriteFile(filepath.Join(dir, "x.bin"), []byte("x"), 0o644)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind by failed write", e.Name())
		}
	}
}
