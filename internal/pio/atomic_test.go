package pio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pressio/internal/core"
	"pressio/internal/faultinject"
	"pressio/internal/fsx"
)

// armCrash arms an injected crash at the named fsx point and disarms it on
// cleanup.
func armCrash(t *testing.T, point string) {
	t.Helper()
	if err := faultinject.ArmFS(faultinject.FSFault{Point: point, Mode: faultinject.FSModeFail}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.DisarmFS)
}

// TestAtomicWriteKillMidWriteLeavesOldFileIntact simulates a process killed
// between writing the temp file and the publishing rename: the destination
// must keep its previous content byte for byte — never a torn prefix.
func TestAtomicWriteKillMidWriteLeavesOldFileIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	old := []byte("the complete old generation")
	if err := atomicWriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}

	armCrash(t, fsx.PointRename)
	err := atomicWriteFile(path, []byte("the new generation"), 0o644)
	if !errors.Is(err, faultinject.ErrFSCrash) {
		t.Fatalf("crash point did not abort the write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(old) {
		t.Fatalf("destination torn after mid-write kill: %q", got)
	}

	// The write path recovers fully once the fault is gone.
	faultinject.DisarmFS()
	if err := atomicWriteFile(path, []byte("the new generation"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "the new generation" {
		t.Fatalf("post-recovery content %q", got)
	}
}

// TestAtomicWriteKillAtEveryPointLeavesOldFileIntact drives the crash
// through every declared fsx point before the publishing rename completes:
// at write, at fsync, and at rename the old generation must survive; at
// dirsync the rename has happened, so the new generation must be complete.
func TestAtomicWriteKillAtEveryPointLeavesOldFileIntact(t *testing.T) {
	for _, tc := range []struct {
		point   string
		wantNew bool
	}{
		{fsx.PointWrite, false},
		{fsx.PointFsync, false},
		{fsx.PointRename, false},
		{fsx.PointDirSync, true},
	} {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "x.bin")
			if err := atomicWriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			armCrash(t, tc.point)
			if err := atomicWriteFile(path, []byte("new"), 0o644); !errors.Is(err, faultinject.ErrFSCrash) {
				t.Fatalf("crash at %s did not abort the write: %v", tc.point, err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			want := "old"
			if tc.wantNew {
				want = "new"
			}
			if string(got) != want {
				t.Fatalf("crash at %s: content %q, want %q", tc.point, got, want)
			}
		})
	}
}

// TestAtomicWriteKillMidWriteNpy drives the same crash through the npy
// plugin: the previous .npy file must still parse after a killed rewrite.
func TestAtomicWriteKillMidWriteNpy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.npy")
	writeVia := func(vals []float64) error {
		io, err := core.NewIO("npy")
		if err != nil {
			t.Fatal(err)
		}
		if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, path)); err != nil {
			t.Fatal(err)
		}
		return io.Write(core.FromFloat64s(vals, uint64(len(vals))))
	}
	if err := writeVia([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	armCrash(t, fsx.PointRename)
	if err := writeVia([]float64{9, 9, 9, 9, 9, 9}); !errors.Is(err, faultinject.ErrFSCrash) {
		t.Fatalf("crash point did not abort the npy rewrite: %v", err)
	}
	faultinject.DisarmFS()

	io, err := core.NewIO("npy")
	if err != nil {
		t.Fatal(err)
	}
	if err := io.SetOptions(core.NewOptions().SetValue(core.KeyIOPath, path)); err != nil {
		t.Fatal(err)
	}
	d, err := io.Read(nil)
	if err != nil {
		t.Fatalf("old npy no longer parses after killed rewrite: %v", err)
	}
	got := d.AsFloat64s()
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("old npy content corrupted: %v", got)
	}
}

// TestAtomicWriteCleansTempOnFailure: an aborted write withdraws its temp
// file so crashed-then-restarted processes do not accumulate garbage (a real
// kill cannot clean up, but every in-process failure path must).
func TestAtomicWriteCleansTempOnFailure(t *testing.T) {
	dir := t.TempDir()
	armCrash(t, fsx.PointRename)
	_ = atomicWriteFile(filepath.Join(dir, "x.bin"), []byte("x"), 0o644)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind by failed write", e.Name())
		}
	}
}
