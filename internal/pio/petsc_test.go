package pio

import (
	"os"
	"testing"

	"pressio/internal/core"
)

func TestPetscRoundTrip(t *testing.T) {
	path := tempPath(t, "v.petsc")
	io := newIO(t, "petsc", path)
	d := core.FromFloat64s([]float64{1.5, -2.25, 1e300, 0}, 4)
	if err := io.Write(d); err != nil {
		t.Fatal(err)
	}
	got, err := io.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("petsc round trip mismatch")
	}
	// Shape + dtype hints apply.
	hinted, err := io.Read(core.NewEmpty(core.DTypeFloat32, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if hinted.DType() != core.DTypeFloat32 || hinted.NumDims() != 2 {
		t.Fatalf("hint not applied: %v", hinted)
	}
}

func TestPetscRejectsWrongClassID(t *testing.T) {
	path := tempPath(t, "bad.petsc")
	if err := os.WriteFile(path, []byte{0, 0, 0, 1, 0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	io := newIO(t, "petsc", path)
	if _, err := io.Read(nil); err == nil {
		t.Fatal("wrong class id should fail")
	}
}

func TestMmapReadMatchesPosix(t *testing.T) {
	if _, err := core.NewIO("mmap"); err != nil {
		t.Skip("mmap plugin not available on this platform")
	}
	path := tempPath(t, "m.bin")
	d := sample32()
	posix := newIO(t, "posix", path)
	if err := posix.Write(d); err != nil {
		t.Fatal(err)
	}
	mm := newIO(t, "mmap", path)
	got, err := mm.Read(core.NewEmpty(core.DTypeFloat32, 6, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("mmap read mismatch")
	}
	// Write path.
	path2 := tempPath(t, "m2.bin")
	mm2 := newIO(t, "mmap", path2)
	if err := mm2.Write(d); err != nil {
		t.Fatal(err)
	}
	got2, err := mm2.Read(core.NewEmpty(core.DTypeFloat32, 6, 8))
	if err != nil || !got2.Equal(d) {
		t.Fatalf("mmap write round trip: %v", err)
	}
}
