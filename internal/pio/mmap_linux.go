//go:build linux

package pio

import (
	"fmt"
	"os"
	"syscall"

	"pressio/internal/core"
)

func init() {
	core.RegisterIO("mmap", func() core.IOPlugin { return &mmapIO{} })
}

// mmapIO reads files through the mmap system call — the paper's "mmap" IO
// plugin, whose point is that the Data abstraction's ownership model
// accommodates memory it did not allocate. The mapping is copied into the
// returned Data on read (Go's GC cannot track mapped pages safely across
// arbitrary lifetimes), demonstrating the borrow-then-adopt pattern; Write
// falls back to an ordinary file write plus sync.
type mmapIO struct {
	pathConfig
}

func (m *mmapIO) Prefix() string { return "mmap" }

func (m *mmapIO) Options() *core.Options {
	return core.NewOptions().SetValue(core.KeyIOPath, m.path)
}

func (m *mmapIO) SetOptions(o *core.Options) error { m.applyPath(o); return nil }

func (m *mmapIO) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", "1.0.0", false)
}

func (m *mmapIO) Read(hint *core.Data) (*core.Data, error) {
	f, err := os.Open(m.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(fi.Size())
	if size == 0 {
		return core.NewBytes(nil), nil
	}
	mapped, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	defer syscall.Munmap(mapped)
	buf := append([]byte(nil), mapped...)
	if hint != nil && hint.DType() != core.DTypeUnset && hint.NumDims() > 0 {
		return core.NewMove(hint.DType(), buf, hint.Dims()...)
	}
	return core.NewBytes(buf), nil
}

func (m *mmapIO) Write(d *core.Data) error {
	f, err := os.Create(m.path)
	if err != nil {
		return err
	}
	if _, err := f.Write(d.Bytes()); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // likewise: surface the sync failure
		return err
	}
	return f.Close()
}

func (m *mmapIO) Clone() core.IOPlugin {
	clone := *m
	return &clone
}
