package pio

import (
	"os"

	"pressio/internal/fsx"
)

// atomicWriteFile writes data to path crash-consistently via the shared
// internal/fsx primitive (same-directory temp file, fsync, rename, directory
// fsync). The crash points the old package-local crashPoint hook exposed are
// now the declared internal/faultinject points fsx.atomic.{write, fsync,
// rename, dirsync}, so the store's crash matrix and these IO plugins prove
// the same property with the same machinery: a reader racing a crashed
// writer sees either the complete old file or the complete new one.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	return fsx.AtomicWriteFile(path, data, perm)
}
