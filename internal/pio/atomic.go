package pio

import (
	"os"
	"path/filepath"
)

// crashPoint is a fault-injection hook for crash-consistency tests: when
// non-nil it runs after the temp file is written and fsynced but before the
// rename publishes it, simulating a process killed mid-write. Returning an
// error aborts the write exactly where a crash would — the destination must
// be left untouched.
var crashPoint func(tmpPath string) error

// atomicWriteFile writes data to path crash-consistently. The bytes go to a
// temporary file in the same directory (rename is only atomic within one
// filesystem), the temp file is fsynced so the data reaches the device before
// the new name does, then a rename publishes it and the directory is fsynced
// so the name itself survives a crash. A reader racing a crashed writer sees
// either the complete old file or the complete new one, never a torn prefix.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		// On any failure the temp file is withdrawn; after a successful
		// rename tmpName is cleared and this is a no-op.
		if tmpName != "" {
			_ = tmp.Close()
			_ = os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if crashPoint != nil {
		if err := crashPoint(tmpName); err != nil {
			return err
		}
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = ""
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
