// Package pio implements the pressio_io plugin family: configurable
// sources and sinks of Data buffers. It covers flat binary files ("posix"),
// character-delimited values ("csv"), the NumPy .npy format ("npy"),
// synthetic sequential data ("iota"), sub-region selection ("select"), an
// in-memory buffer ("noop"), and the h5lite chunked container ("h5lite").
package pio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Option keys the iota and select IO plugins own.
const (
	keyIotaDims    = "iota:dims"
	keyIotaDType   = "iota:dtype"
	keyIotaStart   = "iota:start"
	keySelectIO    = "select:io"
	keySelectStart = "select:start"
	keySelectEnd   = "select:end"
)

// ErrFormat reports an unreadable file format.
var ErrFormat = errors.New("pio: bad format")

// classify maps an OS-level IO error into the shared core taxonomy: busy,
// interrupted, and deadline conditions are marked transient (a retrying
// caller such as the guard meta-compressor may succeed on the next attempt),
// while missing files, permission problems, and format errors stay permanent.
func classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EBUSY) || errors.Is(err, os.ErrDeadlineExceeded) {
		return core.Transient(err)
	}
	return err
}

// ioSpan opens a span for one IO operation ("pio.read"/"pio.write") tagged
// with the plugin and path; nil (free) when tracing is disabled.
func ioSpan(op, plugin, path string) *trace.Span {
	if !trace.Enabled() {
		return nil
	}
	return trace.Start("pio."+op, trace.Str("io", plugin), trace.Str("path", path))
}

func init() {
	core.RegisterIO("posix", func() core.IOPlugin { return &posix{} })
	core.RegisterIO("csv", func() core.IOPlugin { return &csvIO{} })
	core.RegisterIO("npy", func() core.IOPlugin { return &npy{} })
	core.RegisterIO("iota", func() core.IOPlugin { return &iota{dtype: core.DTypeFloat32} })
	core.RegisterIO("noop", func() core.IOPlugin { return &noop{} })
	core.RegisterIO("select", func() core.IOPlugin { return &selectIO{io: "posix"} })
}

// pathConfig handles the common io:path option.
type pathConfig struct {
	path string
}

func (p *pathConfig) applyPath(o *core.Options) {
	if v, err := o.GetString(core.KeyIOPath); err == nil {
		p.path = v
	}
}

// posix reads and writes flat binary files, relying on the caller's Data
// hint for dtype and dims (like the POSIX read/write plugin of the paper).
type posix struct {
	pathConfig
}

func (p *posix) Prefix() string { return "posix" }

func (p *posix) Options() *core.Options {
	return core.NewOptions().SetValue(core.KeyIOPath, p.path)
}

func (p *posix) SetOptions(o *core.Options) error { p.applyPath(o); return nil }

func (p *posix) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", "1.0.0", false)
}

func (p *posix) Read(hint *core.Data) (*core.Data, error) {
	sp := ioSpan("read", "posix", p.path)
	defer sp.End()
	b, err := os.ReadFile(p.path)
	if err != nil {
		return nil, classify(err)
	}
	if hint != nil && hint.DType() != core.DTypeUnset && hint.NumDims() > 0 {
		d, err := core.NewMove(hint.DType(), b, hint.Dims()...)
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	return core.NewBytes(b), nil
}

func (p *posix) Write(d *core.Data) error {
	sp := ioSpan("write", "posix", p.path)
	defer sp.End()
	return classify(atomicWriteFile(p.path, d.Bytes(), 0o644))
}

func (p *posix) Clone() core.IOPlugin {
	clone := *p
	return &clone
}

// csvIO reads and writes 2-D data as comma-separated values (one row per
// line); 1-D data is a single column.
type csvIO struct {
	pathConfig
}

func (c *csvIO) Prefix() string { return "csv" }

func (c *csvIO) Options() *core.Options {
	return core.NewOptions().SetValue(core.KeyIOPath, c.path)
}

func (c *csvIO) SetOptions(o *core.Options) error { c.applyPath(o); return nil }

func (c *csvIO) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", "1.0.0", false)
}

func (c *csvIO) Read(hint *core.Data) (*core.Data, error) {
	sp := ioSpan("read", "csv", c.path)
	defer sp.End()
	f, err := os.Open(c.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var vals []float64
	rows, cols := 0, -1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("%w: ragged csv row %d", ErrFormat, rows+1)
		}
		for _, fld := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(fld), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			vals = append(vals, v)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out *core.Data
	if cols <= 1 {
		out = core.FromFloat64s(vals, uint64(len(vals)))
	} else {
		out = core.FromFloat64s(vals, uint64(rows), uint64(cols))
	}
	if hint != nil && hint.DType() != core.DTypeUnset && hint.DType() != core.DTypeFloat64 {
		return out.CastTo(hint.DType())
	}
	return out, nil
}

func (c *csvIO) Write(d *core.Data) error {
	if !d.DType().Numeric() {
		return fmt.Errorf("%w: cannot write %s as csv", core.ErrInvalidDType, d.DType())
	}
	sp := ioSpan("write", "csv", c.path)
	defer sp.End()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	vals := d.AsFloat64s()
	cols := 1
	if d.NumDims() >= 2 {
		cols = 1
		for _, dim := range d.Dims()[1:] {
			cols *= int(dim)
		}
	} else if d.NumDims() == 1 {
		cols = 1
	}
	if d.NumDims() == 1 {
		cols = 1
	}
	for i, v := range vals {
		if i > 0 {
			if i%cols == 0 {
				if _, err := w.WriteString("\n"); err != nil {
					return err
				}
			} else {
				if _, err := w.WriteString(","); err != nil {
					return err
				}
			}
		}
		if _, err := w.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
	}
	if _, err := w.WriteString("\n"); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return atomicWriteFile(c.path, buf.Bytes(), 0o644)
}

func (c *csvIO) Clone() core.IOPlugin {
	clone := *c
	return &clone
}

// iota generates synthetic sequentially increasing data, the std::iota
// plugin of the paper used for tests and demos.
type iota struct {
	dims  []uint64
	dtype core.DType
	start float64
}

func (i *iota) Prefix() string { return "iota" }

func (i *iota) Options() *core.Options {
	o := core.NewOptions()
	dimsData := core.NewData(core.DTypeUint64, uint64(len(i.dims)))
	copy(dimsData.Uint64s(), i.dims)
	o.Set(keyIotaDims, core.NewOption(dimsData))
	o.SetValue(keyIotaDType, i.dtype.String())
	o.SetValue(keyIotaStart, i.start)
	return o
}

func (i *iota) SetOptions(o *core.Options) error {
	if d, err := o.GetData(keyIotaDims); err == nil {
		if d.DType() != core.DTypeUint64 {
			return fmt.Errorf("%w: iota:dims must be uint64 data", core.ErrInvalidOption)
		}
		i.dims = append([]uint64(nil), d.Uint64s()...)
	}
	if s, err := o.GetString(keyIotaDType); err == nil {
		dt, err := core.ParseDType(s)
		if err != nil {
			return err
		}
		i.dtype = dt
	}
	if v, err := o.GetFloat64(keyIotaStart); err == nil {
		i.start = v
	}
	return nil
}

func (i *iota) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", "1.0.0", false)
}

func (i *iota) Read(hint *core.Data) (*core.Data, error) {
	dims := i.dims
	dtype := i.dtype
	if hint != nil && hint.NumDims() > 0 {
		dims = hint.Dims()
		if hint.DType() != core.DTypeUnset {
			dtype = hint.DType()
		}
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: iota needs dims", core.ErrInvalidDims)
	}
	n := uint64(1)
	for _, d := range dims {
		n *= d
	}
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = i.start + float64(k)
	}
	d64 := core.FromFloat64s(vals, dims...)
	if dtype == core.DTypeFloat64 {
		return d64, nil
	}
	return d64.CastTo(dtype)
}

func (i *iota) Write(d *core.Data) error {
	return fmt.Errorf("%w: iota is read-only", core.ErrNotImplemented)
}

func (i *iota) Clone() core.IOPlugin {
	clone := *i
	clone.dims = append([]uint64(nil), i.dims...)
	return &clone
}

// noop stores data in memory; it backs unit tests and meta-IO composition.
type noop struct {
	stored *core.Data
}

func (n *noop) Prefix() string                   { return "noop" }
func (n *noop) Options() *core.Options           { return core.NewOptions() }
func (n *noop) SetOptions(o *core.Options) error { return nil }
func (n *noop) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "stable", "1.0.0", false)
}

func (n *noop) Read(hint *core.Data) (*core.Data, error) {
	if n.stored == nil {
		return nil, fmt.Errorf("noop: %w", os.ErrNotExist)
	}
	return n.stored.Clone(), nil
}

func (n *noop) Write(d *core.Data) error {
	n.stored = d.Clone()
	return nil
}

func (n *noop) Clone() core.IOPlugin {
	clone := &noop{}
	if n.stored != nil {
		clone.stored = n.stored.Clone()
	}
	return clone
}

// selectIO reads through a child IO plugin and extracts a box-shaped
// sub-region, the "select" plugin of the paper.
type selectIO struct {
	io    string
	child core.IOPlugin
	opts  *core.Options
	start []uint64
	end   []uint64
}

func (s *selectIO) Prefix() string { return "select" }

func (s *selectIO) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keySelectIO, s.io)
	o.SetType(keySelectStart, core.OptData)
	o.SetType(keySelectEnd, core.OptData)
	return o
}

func (s *selectIO) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keySelectIO); err == nil {
		s.io = v
		s.child = nil
	}
	if d, err := o.GetData(keySelectStart); err == nil {
		if d.DType() != core.DTypeUint64 {
			return fmt.Errorf("%w: select:start must be uint64 data", core.ErrInvalidOption)
		}
		s.start = append([]uint64(nil), d.Uint64s()...)
	}
	if d, err := o.GetData(keySelectEnd); err == nil {
		if d.DType() != core.DTypeUint64 {
			return fmt.Errorf("%w: select:end must be uint64 data", core.ErrInvalidOption)
		}
		s.end = append([]uint64(nil), d.Uint64s()...)
	}
	if s.opts == nil {
		s.opts = core.NewOptions()
	}
	s.opts.Merge(o)
	return nil
}

func (s *selectIO) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "stable", "1.0.0", false)
}

func (s *selectIO) ensureChild() error {
	if s.child != nil {
		return nil
	}
	child, err := core.NewIO(s.io)
	if err != nil {
		return err
	}
	if s.opts != nil {
		if err := child.SetOptions(s.opts); err != nil {
			return err
		}
	}
	s.child = child
	return nil
}

func (s *selectIO) Read(hint *core.Data) (*core.Data, error) {
	if err := s.ensureChild(); err != nil {
		return nil, err
	}
	full, err := s.child.Read(hint)
	if err != nil {
		return nil, err
	}
	return Subregion(full, s.start, s.end)
}

func (s *selectIO) Write(d *core.Data) error {
	return fmt.Errorf("%w: select is read-only", core.ErrNotImplemented)
}

func (s *selectIO) Clone() core.IOPlugin {
	clone := &selectIO{io: s.io,
		start: append([]uint64(nil), s.start...),
		end:   append([]uint64(nil), s.end...)}
	if s.opts != nil {
		clone.opts = s.opts.Clone()
	}
	return clone
}

// Subregion copies the box [start, end) out of d.
func Subregion(d *core.Data, start, end []uint64) (*core.Data, error) {
	dims := d.Dims()
	if len(start) != len(dims) || len(end) != len(dims) {
		return nil, fmt.Errorf("%w: select box rank %d vs data rank %d",
			core.ErrInvalidDims, len(start), len(dims))
	}
	outDims := make([]uint64, len(dims))
	for i := range dims {
		if start[i] >= end[i] || end[i] > dims[i] {
			return nil, fmt.Errorf("%w: box [%v,%v) outside dims %v", core.ErrInvalidDims, start, end, dims)
		}
		outDims[i] = end[i] - start[i]
	}
	elem := uint64(d.DType().Size())
	out := core.NewData(d.DType(), outDims...)
	src := d.Bytes()
	dst := out.Bytes()
	// Copy contiguous runs along the last dimension.
	idx := make([]uint64, len(dims))
	copy(idx, start)
	rowLen := outDims[len(outDims)-1] * elem
	dstOff := uint64(0)
	for {
		lin := uint64(0)
		for i := range dims {
			lin = lin*dims[i] + idx[i]
		}
		copy(dst[dstOff:dstOff+rowLen], src[lin*elem:lin*elem+rowLen])
		dstOff += rowLen
		// Advance all but the last dimension.
		d2 := len(dims) - 2
		for d2 >= 0 {
			idx[d2]++
			if idx[d2] < end[d2] {
				break
			}
			idx[d2] = start[d2]
			d2--
		}
		if d2 < 0 {
			break
		}
	}
	return out, nil
}
