package pio

import (
	"encoding/binary"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pressio/internal/core"
)

// npy reads and writes the NumPy .npy array format (version 1.0,
// little-endian, C order) — the "NumPY" IO plugin of the paper.
type npy struct {
	pathConfig
}

func (n *npy) Prefix() string { return "npy" }

func (n *npy) Options() *core.Options {
	return core.NewOptions().SetValue(core.KeyIOPath, n.path)
}

func (n *npy) SetOptions(o *core.Options) error { n.applyPath(o); return nil }

func (n *npy) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", "1.0.0", false)
}

var npyMagic = []byte("\x93NUMPY")

var descrToDType = map[string]core.DType{
	"<f4": core.DTypeFloat32, "<f8": core.DTypeFloat64,
	"<i1": core.DTypeInt8, "<i2": core.DTypeInt16, "<i4": core.DTypeInt32, "<i8": core.DTypeInt64,
	"<u1": core.DTypeUint8, "<u2": core.DTypeUint16, "<u4": core.DTypeUint32, "<u8": core.DTypeUint64,
	"|i1": core.DTypeInt8, "|u1": core.DTypeUint8,
}

var dtypeToDescr = map[core.DType]string{
	core.DTypeFloat32: "<f4", core.DTypeFloat64: "<f8",
	core.DTypeInt8: "|i1", core.DTypeInt16: "<i2", core.DTypeInt32: "<i4", core.DTypeInt64: "<i8",
	core.DTypeUint8: "|u1", core.DTypeUint16: "<u2", core.DTypeUint32: "<u4", core.DTypeUint64: "<u8",
	core.DTypeByte: "|u1",
}

// ParseNPY decodes a .npy byte stream.
func ParseNPY(b []byte) (*core.Data, error) {
	if len(b) < 10 || string(b[:6]) != string(npyMagic) {
		return nil, fmt.Errorf("%w: not an npy file", ErrFormat)
	}
	major := b[6]
	if major != 1 {
		return nil, fmt.Errorf("%w: unsupported npy version %d", ErrFormat, major)
	}
	hlen := int(binary.LittleEndian.Uint16(b[8:10]))
	if len(b) < 10+hlen {
		return nil, fmt.Errorf("%w: truncated npy header", ErrFormat)
	}
	header := string(b[10 : 10+hlen])
	payload := b[10+hlen:]

	descr, err := dictValue(header, "descr")
	if err != nil {
		return nil, err
	}
	descr = strings.Trim(descr, "'\" ")
	dtype, ok := descrToDType[descr]
	if !ok {
		return nil, fmt.Errorf("%w: unsupported descr %q", ErrFormat, descr)
	}
	order, err := dictValue(header, "fortran_order")
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(order) != "False" {
		return nil, fmt.Errorf("%w: fortran_order arrays unsupported", ErrFormat)
	}
	shapeStr, err := dictValue(header, "shape")
	if err != nil {
		return nil, err
	}
	dims, err := parseShape(shapeStr)
	if err != nil {
		return nil, err
	}
	want := uint64(dtype.Size())
	for _, d := range dims {
		want *= d
	}
	if uint64(len(payload)) < want {
		return nil, fmt.Errorf("%w: payload %d bytes, need %d", ErrFormat, len(payload), want)
	}
	return core.NewMove(dtype, append([]byte(nil), payload[:want]...), dims...)
}

// dictValue extracts the raw value string for a key in the Python-dict
// style npy header.
func dictValue(header, key string) (string, error) {
	i := strings.Index(header, "'"+key+"'")
	if i < 0 {
		return "", fmt.Errorf("%w: missing %q in npy header", ErrFormat, key)
	}
	rest := header[i+len(key)+2:]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return "", fmt.Errorf("%w: malformed npy header", ErrFormat)
	}
	rest = rest[colon+1:]
	// Value ends at a comma that is not inside parentheses.
	depth := 0
	for j, r := range rest {
		switch r {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				return strings.TrimSpace(rest[:j]), nil
			}
		case '}':
			if depth == 0 {
				return strings.TrimSpace(rest[:j]), nil
			}
		}
	}
	return strings.TrimSpace(rest), nil
}

func parseShape(s string) ([]uint64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, ",")
	var dims []uint64
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad shape element %q", ErrFormat, p)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		dims = []uint64{1}
	}
	return dims, nil
}

// FormatNPY encodes d as a .npy byte stream.
func FormatNPY(d *core.Data) ([]byte, error) {
	descr, ok := dtypeToDescr[d.DType()]
	if !ok {
		return nil, fmt.Errorf("%w: cannot store %s as npy", core.ErrInvalidDType, d.DType())
	}
	shape := make([]string, d.NumDims())
	for i, dim := range d.Dims() {
		shape[i] = strconv.FormatUint(dim, 10)
	}
	shapeStr := strings.Join(shape, ", ")
	if d.NumDims() == 1 {
		shapeStr += ","
	}
	header := fmt.Sprintf("{'descr': '%s', 'fortran_order': False, 'shape': (%s), }", descr, shapeStr)
	// Pad so that the payload starts at a multiple of 64 bytes.
	total := 10 + len(header) + 1
	pad := (64 - total%64) % 64
	header += strings.Repeat(" ", pad) + "\n"

	out := make([]byte, 0, 10+len(header)+len(d.Bytes()))
	out = append(out, npyMagic...)
	out = append(out, 1, 0)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(header)))
	out = append(out, header...)
	out = append(out, d.Bytes()...)
	return out, nil
}

func (n *npy) Read(hint *core.Data) (*core.Data, error) {
	sp := ioSpan("read", "npy", n.path)
	defer sp.End()
	b, err := os.ReadFile(n.path)
	if err != nil {
		return nil, err
	}
	return ParseNPY(b)
}

func (n *npy) Write(d *core.Data) error {
	sp := ioSpan("write", "npy", n.path)
	defer sp.End()
	b, err := FormatNPY(d)
	if err != nil {
		return err
	}
	return atomicWriteFile(n.path, b, 0o644)
}

func (n *npy) Clone() core.IOPlugin {
	clone := *n
	return &clone
}
