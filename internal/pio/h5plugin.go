package pio

import (
	"fmt"
	"os"

	"pressio/internal/core"
	"pressio/internal/h5lite"
)

func init() {
	core.RegisterIO("h5lite", func() core.IOPlugin { return &h5io{dataset: "data"} })
}

// h5io reads and writes datasets inside h5lite containers, the HDF5 IO
// plugin analogue. Options: io:path, h5:dataset, h5:filter (compressor name
// applied per chunk), h5:chunk_rows.
type h5io struct {
	pathConfig
	dataset   string
	filter    string
	chunkRows uint64
	filterAbs float64
}

func (h *h5io) Prefix() string { return "h5lite" }

func (h *h5io) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(core.KeyIOPath, h.path)
	o.SetValue("h5:dataset", h.dataset)
	o.SetValue("h5:filter", h.filter)
	o.SetValue("h5:chunk_rows", h.chunkRows)
	o.SetValue("h5:filter_abs", h.filterAbs)
	return o
}

func (h *h5io) SetOptions(o *core.Options) error {
	h.applyPath(o)
	if v, err := o.GetString("h5:dataset"); err == nil {
		h.dataset = v
	}
	if v, err := o.GetString("h5:filter"); err == nil {
		h.filter = v
	}
	if v, err := o.GetUint64("h5:chunk_rows"); err == nil {
		h.chunkRows = v
	}
	if v, err := o.GetFloat64("h5:filter_abs"); err == nil {
		h.filterAbs = v
	}
	return nil
}

func (h *h5io) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "stable", "1.0.0", false)
}

func (h *h5io) Read(hint *core.Data) (*core.Data, error) {
	f, err := h5lite.Open(h.path)
	if err != nil {
		return nil, err
	}
	return f.ReadDataset(h.dataset)
}

func (h *h5io) Write(d *core.Data) error {
	var f *h5lite.File
	if _, err := os.Stat(h.path); err == nil {
		f, err = h5lite.Open(h.path)
		if err != nil {
			return fmt.Errorf("h5lite: rewriting %s: %w", h.path, err)
		}
	} else {
		f = h5lite.Create(h.path)
	}
	opts := h5lite.DatasetOptions{ChunkRows: h.chunkRows, Filter: h.filter}
	if h.filter != "" && h.filterAbs > 0 {
		opts.FilterOptions = map[string]float64{core.KeyAbs: h.filterAbs}
	}
	if err := f.WriteDataset(h.dataset, d, opts); err != nil {
		return err
	}
	return f.Save()
}

func (h *h5io) Clone() core.IOPlugin {
	clone := *h
	return &clone
}
