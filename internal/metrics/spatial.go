package metrics

import (
	"fmt"
	"math"
	"sort"

	"pressio/internal/core"
)

// Option and result keys these metrics own.
const (
	keySpatialThreshold = "spatial_error:threshold"
	keyKthK             = "kth_error:k"
	keyROIStart         = "region_of_interest:start"
	keyROIEnd           = "region_of_interest:end"
)

// spatialError reports the percentage of elements whose absolute error
// exceeds a threshold (the paper's "Spatial Error" module).
type spatialError struct {
	capture
	threshold float64
	computed  bool
	percent   float64
	count     uint64
}

func newSpatialError() *spatialError { return &spatialError{threshold: 1e-4} }

func (m *spatialError) Prefix() string { return "spatial_error" }

func (m *spatialError) Options() *core.Options {
	return core.NewOptions().SetValue(keySpatialThreshold, m.threshold)
}

func (m *spatialError) SetOptions(o *core.Options) error {
	if v, err := o.GetFloat64(keySpatialThreshold); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: spatial_error:threshold must be >= 0", core.ErrInvalidOption)
		}
		m.threshold = v
	}
	return nil
}

func (m *spatialError) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok || len(orig) == 0 {
		return
	}
	var count uint64
	for i := range orig {
		if math.Abs(dec[i]-orig[i]) > m.threshold {
			count++
		}
	}
	m.count = count
	m.percent = 100 * float64(count) / float64(len(orig))
	m.computed = true
}

func (m *spatialError) Results() *core.Options {
	o := core.NewOptions()
	if m.computed {
		o.SetValue("spatial_error:percent", m.percent)
		o.SetValue("spatial_error:count", m.count)
		o.SetValue(keySpatialThreshold, m.threshold)
	}
	return o
}

func (m *spatialError) Clone() core.Metric { return &spatialError{threshold: m.threshold} }

// kthError reports the k-th largest absolute error (the "k-th order error"
// module): more robust than the maximum against isolated outliers.
type kthError struct {
	capture
	k        uint64
	computed bool
	value    float64
}

func newKthError() *kthError { return &kthError{k: 1} }

func (m *kthError) Prefix() string { return "kth_error" }

func (m *kthError) Options() *core.Options {
	return core.NewOptions().SetValue(keyKthK, m.k)
}

func (m *kthError) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keyKthK); err == nil {
		if v == 0 {
			return fmt.Errorf("%w: kth_error:k must be >= 1", core.ErrInvalidOption)
		}
		m.k = v
	}
	return nil
}

func (m *kthError) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok || len(orig) == 0 || m.k > uint64(len(orig)) {
		return
	}
	errs := make([]float64, len(orig))
	for i := range orig {
		errs[i] = math.Abs(dec[i] - orig[i])
	}
	sort.Float64s(errs)
	m.value = errs[uint64(len(errs))-m.k]
	m.computed = true
}

func (m *kthError) Results() *core.Options {
	o := core.NewOptions()
	if m.computed {
		o.SetValue("kth_error:value", m.value)
		o.SetValue(keyKthK, m.k)
	}
	return o
}

func (m *kthError) Clone() core.Metric { return &kthError{k: m.k} }

// regionOfInterest reports the arithmetic mean of a box-shaped region of
// both the original and decompressed data, to check that features of
// interest survive compression.
type regionOfInterest struct {
	capture
	start    []uint64 // per-dimension inclusive start
	end      []uint64 // per-dimension exclusive end
	computed bool
	origMean float64
	decMean  float64
}

func (m *regionOfInterest) Prefix() string { return "region_of_interest" }

func (m *regionOfInterest) Options() *core.Options {
	o := core.NewOptions()
	o.SetType(keyROIStart, core.OptData)
	o.SetType(keyROIEnd, core.OptData)
	return o
}

func (m *regionOfInterest) SetOptions(o *core.Options) error {
	if d, err := o.GetData(keyROIStart); err == nil {
		if d.DType() != core.DTypeUint64 {
			return fmt.Errorf("%w: region_of_interest:start must be uint64 data", core.ErrInvalidOption)
		}
		m.start = append([]uint64(nil), d.Uint64s()...)
	}
	if d, err := o.GetData(keyROIEnd); err == nil {
		if d.DType() != core.DTypeUint64 {
			return fmt.Errorf("%w: region_of_interest:end must be uint64 data", core.ErrInvalidOption)
		}
		m.end = append([]uint64(nil), d.Uint64s()...)
	}
	return nil
}

// roiMean averages the values inside the box [start, end) of a tensor.
func roiMean(vals []float64, dims, start, end []uint64) (float64, uint64) {
	if len(start) != len(dims) || len(end) != len(dims) {
		return 0, 0
	}
	for i := range dims {
		if start[i] >= end[i] || end[i] > dims[i] {
			return 0, 0
		}
	}
	var sum float64
	var count uint64
	idx := make([]uint64, len(dims))
	copy(idx, start)
	for {
		lin := uint64(0)
		for i := range dims {
			lin = lin*dims[i] + idx[i]
		}
		sum += vals[lin]
		count++
		// Advance the multi-index within the box.
		d := len(dims) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < end[d] {
				break
			}
			idx[d] = start[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return sum / float64(count), count
}

func (m *regionOfInterest) EndDecompress(in, out *core.Data, err error) {
	if err != nil || m.input == nil || len(m.start) == 0 {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok {
		return
	}
	origMean, n := roiMean(orig, m.input.Dims(), m.start, m.end)
	if n == 0 {
		return
	}
	decMean, _ := roiMean(dec, m.input.Dims(), m.start, m.end)
	m.origMean, m.decMean = origMean, decMean
	m.computed = true
}

func (m *regionOfInterest) Results() *core.Options {
	o := core.NewOptions()
	if m.computed {
		o.SetValue("region_of_interest:original_mean", m.origMean)
		o.SetValue("region_of_interest:decompressed_mean", m.decMean)
		o.SetValue("region_of_interest:mean_drift", math.Abs(m.decMean-m.origMean))
	}
	return o
}

func (m *regionOfInterest) Clone() core.Metric {
	return &regionOfInterest{
		start: append([]uint64(nil), m.start...),
		end:   append([]uint64(nil), m.end...),
	}
}

// printer is a diagnostic metric that records the sequence of hook
// invocations; tests and tutorials use it to observe the framework's hook
// protocol.
type printer struct {
	noOptions
	events []string
}

func (m *printer) Prefix() string { return "printer" }

func (m *printer) BeginCompress(in *core.Data) { m.events = append(m.events, "begin_compress") }
func (m *printer) EndCompress(in, out *core.Data, err error) {
	m.events = append(m.events, "end_compress")
}
func (m *printer) BeginDecompress(in *core.Data) { m.events = append(m.events, "begin_decompress") }
func (m *printer) EndDecompress(in, out *core.Data, e error) {
	m.events = append(m.events, "end_decompress")
}

func (m *printer) Results() *core.Options {
	return core.NewOptions().SetValue("printer:events", append([]string(nil), m.events...))
}

func (m *printer) Clone() core.Metric { return &printer{} }
