package metrics

import (
	"pressio/internal/core"
	"pressio/internal/trace"
)

// Option keys the trace metric owns.
const (
	keyTraceEnabled = "trace:enabled"
)

func init() {
	core.RegisterMetric("trace", func() core.Metric { return &traceMetric{enable: 1} })
}

// traceMetric exposes the observability layer the LibPressio way: attach the
// "trace" metrics plugin to a compressor and its Results() report span
// rollups, telemetry counters, and latency histograms as introspectable
// Options — no new client API needed. Attaching it (or setting
// keyTraceEnabled=1) turns global span collection on; the underlying trace
// buffer and registry are process-wide, which the plugin advertises by
// behaving like a view rather than a per-instance store.
type traceMetric struct {
	// enable mirrors the keyTraceEnabled option; non-zero switches global
	// span collection on at the first hook.
	enable int32
}

func (m *traceMetric) Prefix() string { return "trace" }

func (m *traceMetric) Options() *core.Options {
	return core.NewOptions().SetValue(keyTraceEnabled, m.enable)
}

func (m *traceMetric) SetOptions(o *core.Options) error {
	if v, err := o.GetInt32(keyTraceEnabled); err == nil {
		m.enable = v
		trace.SetEnabled(v != 0)
	}
	return nil
}

func (m *traceMetric) BeginCompress(in *core.Data) {
	if m.enable != 0 && !trace.Enabled() {
		trace.Enable()
	}
}

func (m *traceMetric) EndCompress(in, out *core.Data, err error) {}

func (m *traceMetric) BeginDecompress(in *core.Data) {
	if m.enable != 0 && !trace.Enabled() {
		trace.Enable()
	}
}

func (m *traceMetric) EndDecompress(in, out *core.Data, err error) {}

// Results reports one entry per span name ("trace:span/<name>/count",
// ".../total_ms", ".../mean_ms"), every registry counter
// ("trace:counter/<name>") and histogram summary
// ("trace:hist/<name>/count", ".../mean_ms", ".../max_ms"), plus the total
// buffered span count under "trace:span_count".
func (m *traceMetric) Results() *core.Options {
	o := core.NewOptions()
	spans := trace.Snapshot()
	o.SetValue("trace:span_count", uint64(len(spans)))
	for name, r := range trace.RollupByName(spans) {
		base := "trace:span/" + name
		o.SetValue(base+"/count", uint64(r.Count))
		o.SetValue(base+"/total_ms", float64(r.Total.Nanoseconds())/1e6)
		o.SetValue(base+"/mean_ms", float64(r.Mean().Nanoseconds())/1e6)
	}
	for name, v := range trace.Counters() {
		o.SetValue("trace:counter/"+name, v)
	}
	for name, h := range trace.Histograms() {
		if h.Count == 0 {
			continue
		}
		base := "trace:hist/" + name
		o.SetValue(base+"/count", h.Count)
		o.SetValue(base+"/mean_ms", float64(h.Mean().Nanoseconds())/1e6)
		o.SetValue(base+"/max_ms", float64(h.Max.Nanoseconds())/1e6)
	}
	return o
}

// Clone returns an instance with the same configuration. Span and counter
// state is process-global by design (the registry is one per process), so
// clones share the underlying measurements — analogous to plugins that
// advertise pressio:shared_instance.
func (m *traceMetric) Clone() core.Metric { return &traceMetric{enable: m.enable} }
