package metrics

import (
	"strings"
	"testing"

	"pressio/internal/core"
	"pressio/internal/trace"

	_ "pressio/internal/lossless"
)

func TestTraceMetricReportsSpanRollups(t *testing.T) {
	trace.Reset()
	trace.ResetTelemetry()
	defer func() {
		trace.Disable()
		trace.Reset()
		trace.ResetTelemetry()
	}()

	c, err := core.NewCompressor("noop")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMetric("trace")
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(m)

	in := core.FromFloat32s(make([]float32, 256), 16, 16)
	out := core.NewEmpty(core.DTypeByte, 0)
	// The wrapper decides traced-vs-untraced before the Begin hook runs, so
	// the first call only flips the switch; the second call records spans.
	if err := c.Compress(in, out); err != nil {
		t.Fatal(err)
	}
	if !trace.Enabled() {
		t.Fatal("trace metric did not enable collection")
	}
	if err := c.Compress(in, out); err != nil {
		t.Fatal(err)
	}

	res := c.MetricsResults()
	n, err := res.GetUint64("trace:span_count")
	if err != nil || n == 0 {
		t.Fatalf("trace:span_count = %d (%v)", n, err)
	}
	if v, err := res.GetUint64("trace:span/pressio.compress/count"); err != nil || v == 0 {
		t.Fatalf("wrapper span rollup missing: %d (%v)", v, err)
	}
	if v, err := res.GetUint64("trace:span/noop.compress_impl/count"); err != nil || v == 0 {
		t.Fatalf("impl span rollup missing: %d (%v)", v, err)
	}
	if v, err := res.GetInt64("trace:counter/" + trace.CtrCompressCalls); err != nil || v == 0 {
		t.Fatalf("compress calls counter missing: %d (%v)", v, err)
	}
	if _, err := res.GetFloat64("trace:hist/" + trace.HistCompress + "/mean_ms"); err != nil {
		t.Fatalf("latency histogram missing: %v", err)
	}
	found := false
	for _, k := range res.Keys() {
		if strings.HasPrefix(k, "trace:span/") && strings.HasSuffix(k, "/total_ms") {
			found = true
		}
	}
	if !found {
		t.Fatal("no total_ms rollup keys")
	}
}

func TestTraceMetricDisableOption(t *testing.T) {
	defer func() {
		trace.Disable()
		trace.Reset()
	}()
	m, err := core.NewMetric("trace")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetOptions(core.NewOptions().SetValue("trace:enabled", int32(0))); err != nil {
		t.Fatal(err)
	}
	if trace.Enabled() {
		t.Fatal("trace:enabled=0 should disable collection")
	}
	m.BeginCompress(nil)
	if trace.Enabled() {
		t.Fatal("disabled trace metric re-enabled collection from a hook")
	}
	if err := m.SetOptions(core.NewOptions().SetValue("trace:enabled", int32(1))); err != nil {
		t.Fatal(err)
	}
	if !trace.Enabled() {
		t.Fatal("trace:enabled=1 should enable collection")
	}
}
