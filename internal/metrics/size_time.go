package metrics

import (
	"time"

	"pressio/internal/core"
)

// sizeMetric reports compressed/uncompressed sizes, the compression ratio,
// and the bit rate — the metric used in the paper's Appendix A example
// ("size:compression_ratio").
type sizeMetric struct {
	noOptions
	uncompressed uint64
	compressed   uint64
	decompressed uint64
	elements     uint64
}

func (m *sizeMetric) Prefix() string { return "size" }

func (m *sizeMetric) BeginCompress(in *core.Data) {
	m.uncompressed = in.ByteLen()
	m.elements = in.Len()
}

func (m *sizeMetric) EndCompress(in, out *core.Data, err error) {
	if err == nil && out != nil {
		m.compressed = out.ByteLen()
	}
}

func (m *sizeMetric) BeginDecompress(in *core.Data) {
	if m.compressed == 0 && in != nil {
		m.compressed = in.ByteLen()
	}
}

func (m *sizeMetric) EndDecompress(in, out *core.Data, err error) {
	if err == nil && out != nil {
		m.decompressed = out.ByteLen()
		if m.uncompressed == 0 {
			m.uncompressed = out.ByteLen()
			m.elements = out.Len()
		}
	}
}

func (m *sizeMetric) Results() *core.Options {
	o := core.NewOptions()
	o.SetValue("size:uncompressed_size", m.uncompressed)
	o.SetValue("size:compressed_size", m.compressed)
	o.SetValue("size:decompressed_size", m.decompressed)
	if m.compressed > 0 && m.uncompressed > 0 {
		o.SetValue("size:compression_ratio", float64(m.uncompressed)/float64(m.compressed))
	}
	if m.elements > 0 && m.compressed > 0 {
		o.SetValue("size:bit_rate", float64(m.compressed*8)/float64(m.elements))
	}
	return o
}

func (m *sizeMetric) Clone() core.Metric { return &sizeMetric{} }

// timeMetric reports wall-clock times of the wrapped operations in
// milliseconds, accumulating across calls.
type timeMetric struct {
	noOptions
	compressStart   time.Time
	decompressStart time.Time
	compressMS      float64
	decompressMS    float64
	compressN       uint64
	decompressN     uint64
}

func (m *timeMetric) Prefix() string { return "time" }

func (m *timeMetric) BeginCompress(in *core.Data) { m.compressStart = time.Now() }

func (m *timeMetric) EndCompress(in, out *core.Data, err error) {
	m.compressMS += float64(time.Since(m.compressStart).Nanoseconds()) / 1e6
	m.compressN++
}

func (m *timeMetric) BeginDecompress(in *core.Data) { m.decompressStart = time.Now() }

func (m *timeMetric) EndDecompress(in, out *core.Data, err error) {
	m.decompressMS += float64(time.Since(m.decompressStart).Nanoseconds()) / 1e6
	m.decompressN++
}

func (m *timeMetric) Results() *core.Options {
	o := core.NewOptions()
	o.SetValue("time:compress", m.compressMS)
	o.SetValue("time:decompress", m.decompressMS)
	o.SetValue("time:compress_calls", m.compressN)
	o.SetValue("time:decompress_calls", m.decompressN)
	return o
}

func (m *timeMetric) Clone() core.Metric { return &timeMetric{} }
