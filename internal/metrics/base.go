// Package metrics implements the pressio_metrics plugin family: modules
// whose hooks run around compression and decompression and report
// measurements as introspectable options. The modules mirror the paper's
// glossary: size, timing, single-pass error statistics, Pearson
// correlation, autocorrelation, the Kolmogorov-Smirnov test, KL divergence,
// difference PDFs, spatial error, k-th order error, region-of-interest
// means, and masked variants.
package metrics

import (
	"pressio/internal/core"
)

// capture is the shared state for metrics that compare the compressor's
// input with the decompressed output: BeginCompress stashes the input, and
// EndDecompress pairs it with the reconstruction.
type capture struct {
	input *core.Data
}

// BeginCompress records the uncompressed input (shallow reference; the
// framework guarantees inputs are not clobbered).
func (c *capture) BeginCompress(in *core.Data) { c.input = in }

// EndCompress implements the Metric hook (no-op).
func (c *capture) EndCompress(in, out *core.Data, err error) {}

// BeginDecompress implements the Metric hook (no-op).
func (c *capture) BeginDecompress(in *core.Data) {}

// pair returns the (original, decompressed) value slices when both are
// available and comparable.
func (c *capture) pair(out *core.Data) (orig, dec []float64, ok bool) {
	if c.input == nil || out == nil || !out.HasData() || !c.input.DType().Numeric() {
		return nil, nil, false
	}
	if !out.DType().Numeric() || out.Len() != c.input.Len() {
		return nil, nil, false
	}
	return c.input.AsFloat64s(), out.AsFloat64s(), true
}

// noOptions is embedded by metrics without settable options.
type noOptions struct{}

// Options implements Metric.
func (noOptions) Options() *core.Options { return core.NewOptions() }

// SetOptions implements Metric.
func (noOptions) SetOptions(*core.Options) error { return nil }

func init() {
	core.RegisterMetric("size", func() core.Metric { return &sizeMetric{} })
	core.RegisterMetric("time", func() core.Metric { return &timeMetric{} })
	core.RegisterMetric("error_stat", func() core.Metric { return &errorStat{} })
	core.RegisterMetric("pearson", func() core.Metric { return &pearson{} })
	core.RegisterMetric("autocorrelation", func() core.Metric { return newAutocorr() })
	core.RegisterMetric("ks_test", func() core.Metric { return &ksTest{} })
	core.RegisterMetric("kl_divergence", func() core.Metric { return newKL() })
	core.RegisterMetric("diff_pdf", func() core.Metric { return newDiffPDF() })
	core.RegisterMetric("spatial_error", func() core.Metric { return newSpatialError() })
	core.RegisterMetric("kth_error", func() core.Metric { return newKthError() })
	core.RegisterMetric("region_of_interest", func() core.Metric { return &regionOfInterest{} })
	core.RegisterMetric("printer", func() core.Metric { return &printer{} })
}
