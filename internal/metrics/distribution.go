package metrics

import (
	"math"
	"sort"

	"pressio/internal/core"
)

// Option keys the distribution metrics own.
const (
	keyKLBins      = "kl_divergence:bins"
	keyDiffPDFBins = "diff_pdf:bins"
)

// ksTest computes the two-sample Kolmogorov-Smirnov statistic between the
// original and decompressed value distributions, with the asymptotic
// p-value, testing the hypothesis that compression preserved the
// distribution.
type ksTest struct {
	noOptions
	capture
	computed bool
	d        float64
	p        float64
}

func (m *ksTest) Prefix() string { return "ks_test" }

func (m *ksTest) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok || len(orig) == 0 {
		return
	}
	m.d = ksStatistic(orig, dec)
	n := float64(len(orig))
	en := math.Sqrt(n * n / (2 * n)) // effective sample size for equal-size samples
	m.p = ksPValue((en + 0.12 + 0.11/en) * m.d)
	m.computed = true
}

// ksStatistic computes the two-sample KS statistic D.
func ksStatistic(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		va, vb := as[i], bs[j]
		// Advance both sides on ties so equal samples contribute no
		// spurious CDF gap.
		if va <= vb {
			i++
		}
		if vb <= va {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// ksPValue evaluates the asymptotic Kolmogorov distribution
// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	return math.Max(0, math.Min(1, p))
}

func (m *ksTest) Results() *core.Options {
	o := core.NewOptions()
	if m.computed {
		o.SetValue("ks_test:d", m.d)
		o.SetValue("ks_test:pvalue", m.p)
	}
	return o
}

func (m *ksTest) Clone() core.Metric { return &ksTest{} }

// kl computes the Kullback-Leibler divergence D(P||Q) between histograms of
// the original (P) and decompressed (Q) values over a shared binning.
type kl struct {
	capture
	bins     uint64
	computed bool
	value    float64
}

func newKL() *kl { return &kl{bins: 64} }

func (m *kl) Prefix() string { return "kl_divergence" }

func (m *kl) Options() *core.Options {
	return core.NewOptions().SetValue(keyKLBins, m.bins)
}

func (m *kl) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keyKLBins); err == nil && v >= 2 && v <= 1<<20 {
		m.bins = v
	}
	return nil
}

// histogram bins values into nb equal-width bins over [lo, hi], returning
// probabilities with add-one smoothing so the divergence stays finite.
func histogram(vals []float64, lo, hi float64, nb int) []float64 {
	counts := make([]float64, nb)
	width := (hi - lo) / float64(nb)
	if width <= 0 {
		counts[0] = float64(len(vals))
	} else {
		for _, v := range vals {
			b := int((v - lo) / width)
			if b < 0 {
				b = 0
			}
			if b >= nb {
				b = nb - 1
			}
			counts[b]++
		}
	}
	total := float64(len(vals)) + float64(nb)
	probs := make([]float64, nb)
	for i, c := range counts {
		probs[i] = (c + 1) / total
	}
	return probs
}

func (m *kl) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok || len(orig) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range orig {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, v := range dec {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	p := histogram(orig, lo, hi, int(m.bins))
	q := histogram(dec, lo, hi, int(m.bins))
	d := 0.0
	for i := range p {
		d += p[i] * math.Log(p[i]/q[i])
	}
	m.value = d
	m.computed = true
}

func (m *kl) Results() *core.Options {
	o := core.NewOptions()
	if m.computed {
		o.SetValue("kl_divergence:kl", m.value)
	}
	return o
}

func (m *kl) Clone() core.Metric { return newKL() }

// diffPDF reports the empirical probability density function of the
// pointwise differences as a Data-valued option plus its bin geometry.
type diffPDF struct {
	capture
	bins     uint64
	computed bool
	pdf      []float64
	lo, hi   float64
}

func newDiffPDF() *diffPDF { return &diffPDF{bins: 64} }

func (m *diffPDF) Prefix() string { return "diff_pdf" }

func (m *diffPDF) Options() *core.Options {
	return core.NewOptions().SetValue(keyDiffPDFBins, m.bins)
}

func (m *diffPDF) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keyDiffPDFBins); err == nil && v >= 2 && v <= 1<<20 {
		m.bins = v
	}
	return nil
}

func (m *diffPDF) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok || len(orig) == 0 {
		return
	}
	diffs := make([]float64, len(orig))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range orig {
		diffs[i] = dec[i] - orig[i]
		lo, hi = math.Min(lo, diffs[i]), math.Max(hi, diffs[i])
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	counts := make([]float64, m.bins)
	width := (hi - lo) / float64(m.bins)
	for _, d := range diffs {
		b := int((d - lo) / width)
		if b >= int(m.bins) {
			b = int(m.bins) - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	for i := range counts {
		counts[i] /= float64(len(diffs)) * width // density normalization
	}
	m.pdf, m.lo, m.hi = counts, lo, hi
	m.computed = true
}

func (m *diffPDF) Results() *core.Options {
	o := core.NewOptions()
	if m.computed {
		o.Set("diff_pdf:pdf", core.NewOption(core.FromFloat64s(m.pdf)))
		o.SetValue("diff_pdf:min_diff", m.lo)
		o.SetValue("diff_pdf:max_diff", m.hi)
		o.SetValue(keyDiffPDFBins, m.bins)
	}
	return o
}

func (m *diffPDF) Clone() core.Metric { return newDiffPDF() }
