package metrics

import (
	"math"
	"testing"

	"pressio/internal/core"
)

func TestMaskedExcludesPoints(t *testing.T) {
	orig := []float64{0, 0, 0, 0, 100} // last point is a dead pixel
	dec := []float64{0, 0, 0, 0, 0}    // compressor destroyed it
	mask := core.NewData(core.DTypeUint8, 5)
	mask.Bytes()[4] = 1 // exclude the dead pixel

	// Unmasked: huge max error.
	plain, _ := core.NewMetric("error_stat")
	res := run(plain, dataOf(orig), dataOf(dec), 5)
	if v, _ := res.GetFloat64("error_stat:max_abs_error"); v != 100 {
		t.Fatalf("unmasked max error %v", v)
	}

	// Masked: the dead pixel no longer counts.
	m, err := core.NewMetric("mask")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions().
		SetValue("mask:metric", "error_stat").
		Set("mask:mask", core.NewOption(mask))
	if err := m.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	res = run(m, dataOf(orig), dataOf(dec), 5)
	if v, _ := res.GetFloat64("error_stat:max_abs_error"); v != 0 {
		t.Fatalf("masked max error %v, want 0", v)
	}
}

func TestMaskedValidatesMaskType(t *testing.T) {
	m, _ := core.NewMetric("mask")
	bad := core.NewOptions().Set("mask:mask", core.NewOption(core.NewData(core.DTypeFloat64, 3)))
	if err := m.SetOptions(bad); err == nil {
		t.Fatal("float mask should be rejected")
	}
}

func TestCriticalPointsPreservation(t *testing.T) {
	// A clean sine has extrema every half period; identical data preserves
	// all of them.
	n := 500
	orig := make([]float64, n)
	for i := range orig {
		orig[i] = math.Sin(float64(i) / 10)
	}
	m, err := core.NewMetric("critical_points")
	if err != nil {
		t.Fatal(err)
	}
	res := run(m, dataOf(orig), dataOf(orig), n)
	oc, _ := res.GetUint64("critical_points:original")
	pf, _ := res.GetFloat64("critical_points:preserved_fraction")
	if oc < 10 {
		t.Fatalf("too few extrema detected: %d", oc)
	}
	if pf != 1 {
		t.Fatalf("identical data should preserve all extrema: %v", pf)
	}
	// Heavy smoothing (constant output) destroys every extremum.
	m2, _ := core.NewMetric("critical_points")
	flat := make([]float64, n)
	res = run(m2, dataOf(orig), dataOf(flat), n)
	if pf, _ := res.GetFloat64("critical_points:preserved_fraction"); pf != 0 {
		t.Fatalf("flat output should preserve nothing: %v", pf)
	}
}
