package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pressio/internal/core"
	_ "pressio/internal/sz" // register the sz plugin for end-to-end tests
)

// run pushes (orig, dec) through a metric as if a compressor had produced
// compressed bytes and then decompressed them.
func run(m core.Metric, orig, dec *core.Data, compressedLen int) *core.Options {
	comp := core.NewBytes(make([]byte, compressedLen))
	m.BeginCompress(orig)
	m.EndCompress(orig, comp, nil)
	m.BeginDecompress(comp)
	m.EndDecompress(comp, dec, nil)
	return m.Results()
}

func dataOf(vals []float64) *core.Data { return core.FromFloat64s(vals, uint64(len(vals))) }

func TestSizeMetric(t *testing.T) {
	orig := dataOf(make([]float64, 1000)) // 8000 bytes
	m, err := core.NewMetric("size")
	if err != nil {
		t.Fatal(err)
	}
	res := run(m, orig, orig.Clone(), 2000)
	ratio, err := res.GetFloat64("size:compression_ratio")
	if err != nil || ratio != 4 {
		t.Fatalf("ratio %v err %v", ratio, err)
	}
	br, _ := res.GetFloat64("size:bit_rate")
	if br != 16 {
		t.Fatalf("bit rate %v", br)
	}
	cs, _ := res.GetUint64("size:compressed_size")
	if cs != 2000 {
		t.Fatalf("compressed size %v", cs)
	}
}

func TestErrorStatAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	orig := make([]float64, n)
	dec := make([]float64, n)
	for i := range orig {
		orig[i] = rng.NormFloat64() * 10
		dec[i] = orig[i] + rng.NormFloat64()*0.1
	}
	m, _ := core.NewMetric("error_stat")
	res := run(m, dataOf(orig), dataOf(dec), n)

	// Brute force reference.
	var maxAbs, sumSq, sum float64
	minE, maxE := math.Inf(1), math.Inf(-1)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range orig {
		e := dec[i] - orig[i]
		maxAbs = math.Max(maxAbs, math.Abs(e))
		sumSq += e * e
		sum += e
		minE = math.Min(minE, e)
		maxE = math.Max(maxE, e)
		lo, hi = math.Min(lo, orig[i]), math.Max(hi, orig[i])
	}
	check := func(key string, want float64) {
		t.Helper()
		got, err := res.GetFloat64(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s: got %g want %g", key, got, want)
		}
	}
	check("error_stat:max_abs_error", maxAbs)
	check("error_stat:mse", sumSq/float64(n))
	check("error_stat:rmse", math.Sqrt(sumSq/float64(n)))
	check("error_stat:average_error", sum/float64(n))
	check("error_stat:min_error", minE)
	check("error_stat:max_error", maxE)
	check("error_stat:value_range", hi-lo)
	check("error_stat:psnr", 20*math.Log10(hi-lo)-10*math.Log10(sumSq/float64(n)))
}

func TestPearsonPerfectAndNoisy(t *testing.T) {
	orig := []float64{1, 2, 3, 4, 5, 6}
	m, _ := core.NewMetric("pearson")
	res := run(m, dataOf(orig), dataOf(orig), 10)
	if r, _ := res.GetFloat64("pearson:r"); math.Abs(r-1) > 1e-12 {
		t.Fatalf("identical data r = %v", r)
	}
	anti := []float64{6, 5, 4, 3, 2, 1}
	m2, _ := core.NewMetric("pearson")
	res = run(m2, dataOf(orig), dataOf(anti), 10)
	if r, _ := res.GetFloat64("pearson:r"); math.Abs(r+1) > 1e-12 {
		t.Fatalf("reversed data r = %v", r)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Construct decompressed = orig + alternating error: lag-1
	// autocorrelation of errors must be strongly negative.
	n := 1000
	orig := make([]float64, n)
	dec := make([]float64, n)
	for i := range orig {
		orig[i] = float64(i)
		e := 0.5
		if i%2 == 1 {
			e = -0.5
		}
		dec[i] = orig[i] + e
	}
	m, _ := core.NewMetric("autocorrelation")
	res := run(m, dataOf(orig), dataOf(dec), n)
	r, err := res.GetFloat64("autocorrelation:lag_1")
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.99 {
		t.Fatalf("alternating errors should give lag-1 autocorr near -1, got %v", r)
	}
}

func TestAutocorrelationMultipleLags(t *testing.T) {
	m, _ := core.NewMetric("autocorrelation")
	if err := m.SetOptions(core.NewOptions().SetValue("autocorrelation:max_lag", uint64(3))); err != nil {
		t.Fatal(err)
	}
	orig := make([]float64, 100)
	dec := make([]float64, 100)
	rng := rand.New(rand.NewSource(2))
	for i := range orig {
		orig[i] = rng.Float64()
		dec[i] = orig[i] + rng.Float64()*0.01
	}
	res := run(m, dataOf(orig), dataOf(dec), 10)
	for _, lag := range []string{"lag_1", "lag_2", "lag_3"} {
		if !res.Has("autocorrelation:" + lag) {
			t.Fatalf("missing %s", lag)
		}
	}
}

func TestKSTestIdenticalAndShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := make([]float64, 2000)
	for i := range orig {
		orig[i] = rng.NormFloat64()
	}
	m, _ := core.NewMetric("ks_test")
	res := run(m, dataOf(orig), dataOf(orig), 10)
	if d, _ := res.GetFloat64("ks_test:d"); d > 1e-9 {
		t.Fatalf("identical samples D = %v", d)
	}
	if p, _ := res.GetFloat64("ks_test:pvalue"); p < 0.99 {
		t.Fatalf("identical samples p = %v", p)
	}
	// Large shift must be detected.
	shifted := make([]float64, len(orig))
	for i := range shifted {
		shifted[i] = orig[i] + 3
	}
	m2, _ := core.NewMetric("ks_test")
	res = run(m2, dataOf(orig), dataOf(shifted), 10)
	if d, _ := res.GetFloat64("ks_test:d"); d < 0.5 {
		t.Fatalf("shifted samples D = %v", d)
	}
	if p, _ := res.GetFloat64("ks_test:pvalue"); p > 0.01 {
		t.Fatalf("shifted samples p = %v", p)
	}
}

func TestKSStatisticMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64() + 0.2
		}
		got := ksStatistic(a, b)
		// Brute force: evaluate |F1-F2| at all sample points.
		as := append([]float64(nil), a...)
		bs := append([]float64(nil), b...)
		sort.Float64s(as)
		sort.Float64s(bs)
		want := 0.0
		cdf := func(s []float64, x float64) float64 {
			c := sort.SearchFloat64s(s, x+1e-15) // count <= x
			for c < len(s) && s[c] <= x {
				c++
			}
			return float64(c) / float64(len(s))
		}
		for _, x := range append(as, bs...) {
			if d := math.Abs(cdf(as, x) - cdf(bs, x)); d > want {
				want = d
			}
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKLDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig := make([]float64, 5000)
	for i := range orig {
		orig[i] = rng.NormFloat64()
	}
	m, _ := core.NewMetric("kl_divergence")
	res := run(m, dataOf(orig), dataOf(orig), 10)
	klSame, _ := res.GetFloat64("kl_divergence:kl")
	if klSame > 1e-9 {
		t.Fatalf("KL of identical data %v", klSame)
	}
	shifted := make([]float64, len(orig))
	for i := range shifted {
		shifted[i] = orig[i]*2 + 1
	}
	m2, _ := core.NewMetric("kl_divergence")
	res = run(m2, dataOf(orig), dataOf(shifted), 10)
	klDiff, _ := res.GetFloat64("kl_divergence:kl")
	if klDiff < 0.05 {
		t.Fatalf("KL of different distributions too small: %v", klDiff)
	}
}

func TestDiffPDF(t *testing.T) {
	orig := make([]float64, 1000)
	dec := make([]float64, 1000)
	rng := rand.New(rand.NewSource(5))
	for i := range orig {
		orig[i] = rng.Float64()
		dec[i] = orig[i] + (rng.Float64()-0.5)*0.2
	}
	m, _ := core.NewMetric("diff_pdf")
	res := run(m, dataOf(orig), dataOf(dec), 10)
	pdf, err := res.GetData("diff_pdf:pdf")
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := res.GetFloat64("diff_pdf:min_diff")
	hi, _ := res.GetFloat64("diff_pdf:max_diff")
	// Density must integrate to ~1.
	width := (hi - lo) / float64(pdf.Len())
	integral := 0.0
	for _, p := range pdf.Float64s() {
		integral += p * width
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("pdf integrates to %v", integral)
	}
}

func TestSpatialError(t *testing.T) {
	orig := make([]float64, 100)
	dec := make([]float64, 100)
	copy(dec, orig)
	for i := 0; i < 25; i++ {
		dec[i] = 1 // error of 1 on 25% of points
	}
	m, _ := core.NewMetric("spatial_error")
	if err := m.SetOptions(core.NewOptions().SetValue("spatial_error:threshold", 0.5)); err != nil {
		t.Fatal(err)
	}
	res := run(m, dataOf(orig), dataOf(dec), 10)
	if pct, _ := res.GetFloat64("spatial_error:percent"); pct != 25 {
		t.Fatalf("percent %v", pct)
	}
	if err := m.SetOptions(core.NewOptions().SetValue("spatial_error:threshold", -1.0)); err == nil {
		t.Fatal("expected threshold validation error")
	}
}

func TestKthError(t *testing.T) {
	orig := make([]float64, 10)
	dec := make([]float64, 10)
	for i := range dec {
		dec[i] = float64(i) // errors 0..9
	}
	for k, want := range map[uint64]float64{1: 9, 2: 8, 5: 5, 10: 0} {
		m, _ := core.NewMetric("kth_error")
		if err := m.SetOptions(core.NewOptions().SetValue("kth_error:k", k)); err != nil {
			t.Fatal(err)
		}
		res := run(m, dataOf(orig), dataOf(dec), 10)
		if got, _ := res.GetFloat64("kth_error:value"); got != want {
			t.Fatalf("k=%d: got %v want %v", k, got, want)
		}
	}
}

func TestRegionOfInterest(t *testing.T) {
	// 4x4 grid, ROI = rows 1-2, cols 1-2.
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i)
	}
	orig := core.FromFloat64s(vals, 4, 4)
	dec := orig.Clone()
	m, _ := core.NewMetric("region_of_interest")
	opts := core.NewOptions()
	start := core.NewData(core.DTypeUint64, 2)
	copy(start.Uint64s(), []uint64{1, 1})
	end := core.NewData(core.DTypeUint64, 2)
	copy(end.Uint64s(), []uint64{3, 3})
	opts.Set("region_of_interest:start", core.NewOption(start))
	opts.Set("region_of_interest:end", core.NewOption(end))
	if err := m.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	res := run(m, orig, dec, 10)
	// ROI values: 5,6,9,10 → mean 7.5
	if got, _ := res.GetFloat64("region_of_interest:original_mean"); got != 7.5 {
		t.Fatalf("roi mean %v", got)
	}
	if drift, _ := res.GetFloat64("region_of_interest:mean_drift"); drift != 0 {
		t.Fatalf("drift %v", drift)
	}
}

func TestCompositeThroughCompressor(t *testing.T) {
	// End-to-end: metrics attached to a real compressor handle.
	rng := rand.New(rand.NewSource(6))
	vals := make([]float32, 32*32)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i)/10) + 0.01*rng.NormFloat64())
	}
	in := core.FromFloat32s(vals, 32, 32)
	c, err := core.NewCompressor("sz")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.001)); err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMetrics("size", "time", "error_stat")
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(m)
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Decompress(c, comp, core.DTypeFloat32, 32, 32); err != nil {
		t.Fatal(err)
	}
	res := c.MetricsResults()
	ratio, err := res.GetFloat64("size:compression_ratio")
	if err != nil || ratio <= 1 {
		t.Fatalf("ratio %v err %v", ratio, err)
	}
	maxAbs, err := res.GetFloat64("error_stat:max_abs_error")
	if err != nil || maxAbs > 0.001 {
		t.Fatalf("max_abs_error %v err %v", maxAbs, err)
	}
	if !res.Has("time:compress") {
		t.Fatal("missing time:compress")
	}
}

func TestPrinterHookOrder(t *testing.T) {
	m, _ := core.NewMetric("printer")
	orig := dataOf([]float64{1, 2, 3})
	run(m, orig, orig.Clone(), 3)
	events, err := m.Results().GetStrings("printer:events")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"begin_compress", "end_compress", "begin_decompress", "end_decompress"}
	if len(events) != len(want) {
		t.Fatalf("events %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events %v", events)
		}
	}
}

func TestCloneResetsState(t *testing.T) {
	m, _ := core.NewMetric("error_stat")
	orig := dataOf([]float64{1, 2, 3})
	dec := dataOf([]float64{1.1, 2.1, 3.1})
	run(m, orig, dec, 3)
	if !m.Results().Has("error_stat:max_abs_error") {
		t.Fatal("metric did not compute")
	}
	clone := m.Clone()
	if clone.Results().Has("error_stat:max_abs_error") {
		t.Fatal("clone inherited measurement state")
	}
}
