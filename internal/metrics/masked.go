package metrics

import (
	"fmt"

	"pressio/internal/core"
)

// Option keys the mask metric owns.
const (
	keyMaskMetric = "mask:metric"
	keyMaskMask   = "mask:mask"
)

func init() {
	core.RegisterMetric("mask", func() core.Metric { return newMasked() })
	core.RegisterMetric("critical_points", func() core.Metric { return &criticalPoints{} })
}

// masked wraps another metric, removing masked points from both the
// original and decompressed data before delegating — the paper's "masked"
// metrics module (e.g. exclude fill values or a detector's dead pixels
// from error statistics). Options: keyMaskMetric names the wrapped metric,
// keyMaskMask is a uint8 Data where nonzero marks points to EXCLUDE.
type masked struct {
	childName string
	child     core.Metric
	mask      []uint8
	input     *core.Data
}

func newMasked() *masked { return &masked{childName: "error_stat"} }

func (m *masked) Prefix() string { return "mask" }

func (m *masked) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyMaskMetric, m.childName)
	o.SetType(keyMaskMask, core.OptData)
	if m.child != nil {
		o.Merge(m.child.Options())
	}
	return o
}

func (m *masked) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keyMaskMetric); err == nil && v != m.childName {
		m.childName = v
		m.child = nil
	}
	if d, err := o.GetData(keyMaskMask); err == nil {
		if d.DType() != core.DTypeUint8 && d.DType() != core.DTypeByte {
			return fmt.Errorf("%w: mask:mask must be uint8 data", core.ErrInvalidOption)
		}
		m.mask = append([]uint8(nil), d.Bytes()...)
	}
	if m.child != nil {
		return m.child.SetOptions(o)
	}
	return nil
}

func (m *masked) ensureChild() core.Metric {
	if m.child == nil {
		child, err := core.NewMetric(m.childName)
		if err != nil {
			return nil
		}
		m.child = child
	}
	return m.child
}

// filter removes masked elements, returning a fresh 1-D float64 Data.
func (m *masked) filter(d *core.Data) *core.Data {
	if len(m.mask) == 0 || d == nil || !d.HasData() || !d.DType().Numeric() {
		return d
	}
	vals := d.AsFloat64s()
	if len(vals) != len(m.mask) {
		return d
	}
	kept := make([]float64, 0, len(vals))
	for i, v := range vals {
		if m.mask[i] == 0 {
			kept = append(kept, v)
		}
	}
	return core.FromFloat64s(kept, uint64(len(kept)))
}

func (m *masked) BeginCompress(in *core.Data) {
	m.input = m.filter(in)
	if c := m.ensureChild(); c != nil {
		c.BeginCompress(m.input)
	}
}

func (m *masked) EndCompress(in, out *core.Data, err error) {
	if c := m.ensureChild(); c != nil {
		c.EndCompress(m.input, out, err)
	}
}

func (m *masked) BeginDecompress(in *core.Data) {
	if c := m.ensureChild(); c != nil {
		c.BeginDecompress(in)
	}
}

func (m *masked) EndDecompress(in, out *core.Data, err error) {
	if c := m.ensureChild(); c != nil {
		c.EndDecompress(in, m.filter(out), err)
	}
}

func (m *masked) Results() *core.Options {
	if m.child == nil {
		return core.NewOptions()
	}
	return m.child.Results()
}

func (m *masked) Clone() core.Metric {
	c := newMasked()
	c.childName = m.childName
	c.mask = append([]uint8(nil), m.mask...)
	return c
}

// criticalPoints is a lightweight stand-in for the paper's FTK metric
// module: it counts the strict local extrema (1-D neighbors along the
// fastest dimension) of the original and decompressed fields and reports
// how many survive compression at the same locations — a cheap proxy for
// "are the features preserved?".
type criticalPoints struct {
	noOptions
	capture
	computed  bool
	origCount uint64
	decCount  uint64
	preserved uint64
}

func (m *criticalPoints) Prefix() string { return "critical_points" }

// extrema marks strict 1-D local extrema.
func extrema(vals []float64) []bool {
	out := make([]bool, len(vals))
	for i := 1; i+1 < len(vals); i++ {
		if (vals[i] > vals[i-1] && vals[i] > vals[i+1]) ||
			(vals[i] < vals[i-1] && vals[i] < vals[i+1]) {
			out[i] = true
		}
	}
	return out
}

func (m *criticalPoints) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok {
		return
	}
	eo := extrema(orig)
	ed := extrema(dec)
	m.origCount, m.decCount, m.preserved = 0, 0, 0
	for i := range eo {
		if eo[i] {
			m.origCount++
			if ed[i] {
				m.preserved++
			}
		}
		if ed[i] {
			m.decCount++
		}
	}
	m.computed = true
}

func (m *criticalPoints) Results() *core.Options {
	o := core.NewOptions()
	if !m.computed {
		return o
	}
	o.SetValue("critical_points:original", m.origCount)
	o.SetValue("critical_points:decompressed", m.decCount)
	o.SetValue("critical_points:preserved", m.preserved)
	if m.origCount > 0 {
		o.SetValue("critical_points:preserved_fraction", float64(m.preserved)/float64(m.origCount))
	}
	return o
}

func (m *criticalPoints) Clone() core.Metric { return &criticalPoints{} }
