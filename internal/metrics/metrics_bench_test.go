package metrics

import (
	"math/rand"
	"testing"

	"pressio/internal/core"
)

func benchPair(n int) (*core.Data, *core.Data) {
	rng := rand.New(rand.NewSource(1))
	orig := make([]float64, n)
	dec := make([]float64, n)
	for i := range orig {
		orig[i] = rng.NormFloat64() * 100
		dec[i] = orig[i] + rng.NormFloat64()*0.01
	}
	return core.FromFloat64s(orig, uint64(n)), core.FromFloat64s(dec, uint64(n))
}

func benchMetric(b *testing.B, name string) {
	orig, dec := benchPair(1 << 16)
	comp := core.NewBytes(make([]byte, 1024))
	b.SetBytes(int64(orig.ByteLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMetric(name)
		if err != nil {
			b.Fatal(err)
		}
		m.BeginCompress(orig)
		m.EndCompress(orig, comp, nil)
		m.BeginDecompress(comp)
		m.EndDecompress(comp, dec, nil)
		if m.Results().Len() == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkErrorStat(b *testing.B)    { benchMetric(b, "error_stat") }
func BenchmarkPearson(b *testing.B)      { benchMetric(b, "pearson") }
func BenchmarkKSTest(b *testing.B)       { benchMetric(b, "ks_test") }
func BenchmarkKLDivergence(b *testing.B) { benchMetric(b, "kl_divergence") }
func BenchmarkSpatialError(b *testing.B) { benchMetric(b, "spatial_error") }
