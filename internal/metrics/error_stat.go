package metrics

import (
	"math"

	"pressio/internal/core"
)

// Result and option keys these metrics own.
const (
	keyPSNR           = "error_stat:psnr"
	keyAutocorrMaxLag = "autocorrelation:max_lag"
)

// errorStat computes descriptive error statistics in a single pass over the
// data: min/max/average error, MSE, RMSE, PSNR, value range, and the
// maximum value-range-relative error.
type errorStat struct {
	noOptions
	capture
	computed bool
	n        uint64
	minErr   float64
	maxErr   float64
	sumErr   float64
	sumSq    float64
	maxAbs   float64
	valLo    float64
	valHi    float64
}

func (m *errorStat) Prefix() string { return "error_stat" }

func (m *errorStat) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok {
		return
	}
	m.computed = true
	m.n = uint64(len(orig))
	m.minErr, m.maxErr = math.Inf(1), math.Inf(-1)
	m.valLo, m.valHi = math.Inf(1), math.Inf(-1)
	m.sumErr, m.sumSq, m.maxAbs = 0, 0, 0
	for i := range orig {
		e := dec[i] - orig[i]
		if math.IsNaN(e) {
			continue
		}
		m.minErr = math.Min(m.minErr, e)
		m.maxErr = math.Max(m.maxErr, e)
		m.sumErr += e
		m.sumSq += e * e
		m.maxAbs = math.Max(m.maxAbs, math.Abs(e))
		m.valLo = math.Min(m.valLo, orig[i])
		m.valHi = math.Max(m.valHi, orig[i])
	}
}

func (m *errorStat) Results() *core.Options {
	o := core.NewOptions()
	if !m.computed || m.n == 0 {
		return o
	}
	mse := m.sumSq / float64(m.n)
	o.SetValue("error_stat:n", m.n)
	o.SetValue("error_stat:min_error", m.minErr)
	o.SetValue("error_stat:max_error", m.maxErr)
	o.SetValue("error_stat:average_error", m.sumErr/float64(m.n))
	o.SetValue("error_stat:max_abs_error", m.maxAbs)
	o.SetValue("error_stat:mse", mse)
	o.SetValue("error_stat:rmse", math.Sqrt(mse))
	o.SetValue("error_stat:value_range", m.valHi-m.valLo)
	o.SetValue("error_stat:value_min", m.valLo)
	o.SetValue("error_stat:value_max", m.valHi)
	if rng := m.valHi - m.valLo; rng > 0 {
		o.SetValue("error_stat:max_rel_error", m.maxAbs/rng)
		if mse > 0 {
			o.SetValue(keyPSNR, 20*math.Log10(rng)-10*math.Log10(mse))
		} else {
			o.SetValue(keyPSNR, math.Inf(1))
		}
	}
	return o
}

func (m *errorStat) Clone() core.Metric { return &errorStat{} }

// pearson computes Pearson's correlation coefficient between the original
// and decompressed values.
type pearson struct {
	noOptions
	capture
	computed bool
	r        float64
}

func (m *pearson) Prefix() string { return "pearson" }

func (m *pearson) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok || len(orig) == 0 {
		return
	}
	m.r = correlation(orig, dec)
	m.computed = true
}

// correlation computes Pearson's r in one pass.
func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab - sa*sb/n
	va := saa - sa*sa/n
	vb := sbb - sb*sb/n
	if va <= 0 || vb <= 0 {
		if va == 0 && vb == 0 {
			return 1 // both constant: identical up to shift
		}
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func (m *pearson) Results() *core.Options {
	o := core.NewOptions()
	if m.computed {
		o.SetValue("pearson:r", m.r)
		o.SetValue("pearson:r2", m.r*m.r)
	}
	return o
}

func (m *pearson) Clone() core.Metric { return &pearson{} }

// autocorr computes the autocorrelation of the pointwise errors at one or
// more lags; compression artifacts often show up as correlated errors.
type autocorr struct {
	capture
	lags     []uint64
	computed bool
	results  map[uint64]float64
}

func newAutocorr() *autocorr {
	return &autocorr{lags: []uint64{1}, results: map[uint64]float64{}}
}

func (m *autocorr) Prefix() string { return "autocorrelation" }

func (m *autocorr) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyAutocorrMaxLag, uint64(len(m.lags)))
	return o
}

func (m *autocorr) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keyAutocorrMaxLag); err == nil && v > 0 && v < 1<<20 {
		m.lags = m.lags[:0]
		for l := uint64(1); l <= v; l++ {
			m.lags = append(m.lags, l)
		}
	}
	return nil
}

func (m *autocorr) EndDecompress(in, out *core.Data, err error) {
	if err != nil {
		return
	}
	orig, dec, ok := m.pair(out)
	if !ok {
		return
	}
	errs := make([]float64, len(orig))
	for i := range orig {
		errs[i] = dec[i] - orig[i]
	}
	m.results = map[uint64]float64{}
	for _, lag := range m.lags {
		if lag >= uint64(len(errs)) {
			continue
		}
		m.results[lag] = correlation(errs[:len(errs)-int(lag)], errs[lag:])
	}
	m.computed = true
}

func (m *autocorr) Results() *core.Options {
	o := core.NewOptions()
	if !m.computed {
		return o
	}
	for lag, r := range m.results {
		o.SetValue(formatLagKey(lag), r)
	}
	return o
}

func formatLagKey(lag uint64) string {
	return "autocorrelation:lag_" + utoa(lag)
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func (m *autocorr) Clone() core.Metric {
	c := newAutocorr()
	c.lags = append([]uint64(nil), m.lags...)
	return c
}
