package h5lite

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/lossless" // register filter compressors
	_ "pressio/internal/zfp"
)

func TestMultiDatasetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.h5l")
	f := Create(path)
	a := core.FromFloat64s([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := core.FromInt32s([]int32{7, 8, 9}, 3)
	if err := f.WriteDataset("a", a, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteDataset("b", b, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
	gotA, err := g.ReadDataset("a")
	if err != nil || !gotA.Equal(a) {
		t.Fatalf("a mismatch: %v", err)
	}
	gotB, err := g.ReadDataset("b")
	if err != nil || !gotB.Equal(b) {
		t.Fatalf("b mismatch: %v", err)
	}
	if _, err := g.ReadDataset("missing"); err == nil {
		t.Fatal("expected ErrNotFound")
	}
}

func TestChunkingExactCoverage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.h5l")
	f := Create(path)
	vals := make([]float32, 10*4)
	for i := range vals {
		vals[i] = float32(i)
	}
	d := core.FromFloat32s(vals, 10, 4)
	// 3 rows per chunk over 10 rows: chunks of 3,3,3,1.
	if err := f.WriteDataset("d", d, DatasetOptions{ChunkRows: 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadDataset("d")
	if err != nil || !got.Equal(d) {
		t.Fatalf("chunked round trip: %v", err)
	}
}

func TestLosslessFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.h5l")
	f := Create(path)
	vals := make([]float64, 1000) // zeros compress very well
	d := core.FromFloat64s(vals, 10, 100)
	if err := f.WriteDataset("z", d, DatasetOptions{Filter: "gzip", ChunkRows: 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 2000 {
		t.Fatalf("gzip filter did not shrink zeros: %d bytes", fi.Size())
	}
	g, _ := Open(path)
	got, err := g.ReadDataset("z")
	if err != nil || !got.Equal(d) {
		t.Fatalf("filtered round trip: %v", err)
	}
}

func TestLossyFilterRespectsBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.h5l")
	f := Create(path)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, 16*16)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i)/7) + 0.01*rng.NormFloat64())
	}
	d := core.FromFloat32s(vals, 16, 16)
	err := f.WriteDataset("p", d, DatasetOptions{
		Filter:        "zfp",
		ChunkRows:     4,
		FilterOptions: map[string]float64{core.KeyAbs: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	g, _ := Open(path)
	got, err := g.ReadDataset("p")
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(float64(got.Float32s()[i]-vals[i])) > 1e-3 {
			t.Fatalf("elem %d exceeds filter bound", i)
		}
	}
}

func TestUnknownFilterRejected(t *testing.T) {
	f := Create(filepath.Join(t.TempDir(), "u.h5l"))
	d := core.FromFloat64s([]float64{1}, 1)
	if err := f.WriteDataset("x", d, DatasetOptions{Filter: "no_such_compressor"}); err == nil {
		t.Fatal("expected unknown plugin error")
	}
}

func TestCorruptContainer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.h5l")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("expected format error")
	}
	if err := os.WriteFile(path, append([]byte("H5LITE1\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("expected truncated header error")
	}
}

func TestRewritePreservesOtherDatasets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rw.h5l")
	f := Create(path)
	a := core.FromFloat64s([]float64{1, 2}, 2)
	if err := f.WriteDataset("a", a, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	b := core.FromFloat64s([]float64{3, 4, 5}, 3)
	if err := g.WriteDataset("b", b, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := g.Save(); err != nil {
		t.Fatal(err)
	}
	h, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := h.ReadDataset("a")
	if err != nil || !gotA.Equal(a) {
		t.Fatalf("a lost on rewrite: %v", err)
	}
	gotB, err := h.ReadDataset("b")
	if err != nil || !gotB.Equal(b) {
		t.Fatalf("b missing: %v", err)
	}
}

func TestReadRowsPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.h5l")
	f := Create(path)
	vals := make([]float32, 20*8)
	for i := range vals {
		vals[i] = float32(i)
	}
	d := core.FromFloat32s(vals, 20, 8)
	if err := f.WriteDataset("d", d, DatasetOptions{ChunkRows: 4, Filter: "gzip"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 5..12 span chunks 1, 2 and 3 partially.
	got, err := g.ReadRows("d", 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims()[0] != 8 || got.Dims()[1] != 8 {
		t.Fatalf("dims %v", got.Dims())
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			want := float32((5+r)*8 + c)
			if got.Float32s()[r*8+c] != want {
				t.Fatalf("row %d col %d: got %v want %v", r, c, got.Float32s()[r*8+c], want)
			}
		}
	}
	// Full-range read equals ReadDataset.
	all, err := g.ReadRows("d", 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !all.Equal(d) {
		t.Fatal("full-range ReadRows mismatch")
	}
	// Out-of-range requests fail.
	if _, err := g.ReadRows("d", 15, 10); err == nil {
		t.Fatal("out of range should fail")
	}
	if _, err := g.ReadRows("d", 0, 0); err == nil {
		t.Fatal("zero count should fail")
	}
	if _, err := g.ReadRows("missing", 0, 1); err == nil {
		t.Fatal("missing dataset should fail")
	}
}
