// Package h5lite implements a minimal self-describing chunked container
// file format standing in for HDF5 in this reproduction (the substitution
// is documented in DESIGN.md). Like HDF5 it stores named n-dimensional
// datasets with type metadata, splits them into chunks along the slowest
// dimension, and supports *filters*: per-chunk transforms applied on write
// and undone on read. Filters are compressor plugins from the framework
// registry, so the generic "HDF5 filter" client of Table II is a few lines
// — exactly the economics the paper measures.
//
// File layout:
//
//	magic "H5LITE1\n"
//	uint64 little-endian JSON index length
//	JSON index (datasets: name -> {dtype, dims, filter, options, chunks})
//	concatenated chunk payloads
package h5lite

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"pressio/internal/core"
	"pressio/internal/fsx"
)

// ErrFormat reports an unreadable container.
var ErrFormat = errors.New("h5lite: bad format")

// ErrNotFound reports a missing dataset.
var ErrNotFound = errors.New("h5lite: dataset not found")

var magic = []byte("H5LITE1\n")

// chunkInfo locates one stored chunk in the blob section.
type chunkInfo struct {
	Rows   uint64 `json:"rows"` // extent along dim 0 covered by this chunk
	Offset uint64 `json:"offset"`
	Length uint64 `json:"length"`
}

// datasetInfo is the stored metadata of one dataset.
type datasetInfo struct {
	DType   string             `json:"dtype"`
	Dims    []uint64           `json:"dims"`
	Filter  string             `json:"filter,omitempty"`
	Options map[string]float64 `json:"options,omitempty"`
	Chunks  []chunkInfo        `json:"chunks"`
}

type index struct {
	Datasets map[string]datasetInfo `json:"datasets"`
}

// DatasetOptions configures how a dataset is stored.
type DatasetOptions struct {
	// ChunkRows is the number of dim-0 rows per chunk (0 = single chunk).
	ChunkRows uint64
	// Filter names a registered compressor applied per chunk ("" = none).
	Filter string
	// FilterOptions are numeric options applied to the filter compressor
	// (e.g. {"pressio:abs": 1e-4}).
	FilterOptions map[string]float64
}

// File is an in-memory handle to a container; Save persists it.
type File struct {
	path  string
	idx   index
	blobs map[string][][]byte // per dataset, per chunk
}

// Create starts a new empty container that will be written to path.
func Create(path string) *File {
	return &File{
		path:  path,
		idx:   index{Datasets: map[string]datasetInfo{}},
		blobs: map[string][][]byte{},
	}
}

// Open reads an existing container.
func Open(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(magic)+8 || string(raw[:len(magic)]) != string(magic) {
		return nil, ErrFormat
	}
	hlen := binary.LittleEndian.Uint64(raw[len(magic):])
	base := uint64(len(magic)) + 8
	if hlen > uint64(len(raw))-base {
		return nil, ErrFormat
	}
	var idx index
	if err := json.Unmarshal(raw[base:base+hlen], &idx); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	f := &File{path: path, idx: idx, blobs: map[string][][]byte{}}
	blobBase := base + hlen
	for name, info := range idx.Datasets {
		chunks := make([][]byte, len(info.Chunks))
		for i, ch := range info.Chunks {
			if ch.Offset > uint64(len(raw)) || ch.Length > uint64(len(raw)) {
				return nil, ErrFormat
			}
			lo := blobBase + ch.Offset
			hi := lo + ch.Length
			if hi > uint64(len(raw)) || lo > hi {
				return nil, ErrFormat
			}
			chunks[i] = append([]byte(nil), raw[lo:hi]...)
		}
		f.blobs[name] = chunks
	}
	return f, nil
}

// Names lists the stored datasets, sorted.
func (f *File) Names() []string {
	names := make([]string, 0, len(f.idx.Datasets))
	for n := range f.idx.Datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// filterFor instantiates the filter compressor for a dataset.
func filterFor(name string, opts map[string]float64) (*core.Compressor, error) {
	c, err := core.NewCompressor(name)
	if err != nil {
		return nil, err
	}
	o := core.NewOptions()
	for k, v := range opts {
		o.SetValue(k, v)
	}
	if err := c.SetOptions(o); err != nil {
		return nil, err
	}
	return c, nil
}

// WriteDataset stores d under name, replacing any existing dataset.
func (f *File) WriteDataset(name string, d *core.Data, opts DatasetOptions) error {
	if d == nil || !d.HasData() || d.NumDims() == 0 {
		return fmt.Errorf("h5lite: %w", core.ErrNilData)
	}
	var filter *core.Compressor
	if opts.Filter != "" {
		var err error
		filter, err = filterFor(opts.Filter, opts.FilterOptions)
		if err != nil {
			return err
		}
	}
	dims := d.Dims()
	rowsTotal := dims[0]
	chunkRows := opts.ChunkRows
	if chunkRows == 0 || chunkRows > rowsTotal {
		chunkRows = rowsTotal
	}
	rowBytes := uint64(d.DType().Size())
	for _, dim := range dims[1:] {
		rowBytes *= dim
	}
	var chunks []chunkInfo
	var blobs [][]byte
	for start := uint64(0); start < rowsTotal; start += chunkRows {
		rows := chunkRows
		if start+rows > rowsTotal {
			rows = rowsTotal - start
		}
		raw := d.Bytes()[start*rowBytes : (start+rows)*rowBytes]
		var payload []byte
		if filter != nil {
			chunkDims := append([]uint64{rows}, dims[1:]...)
			chunk, err := core.NewMove(d.DType(), append([]byte(nil), raw...), chunkDims...)
			if err != nil {
				return err
			}
			comp, err := core.Compress(filter, chunk)
			if err != nil {
				return err
			}
			payload = comp.Bytes()
		} else {
			payload = append([]byte(nil), raw...)
		}
		chunks = append(chunks, chunkInfo{Rows: rows, Length: uint64(len(payload))})
		blobs = append(blobs, payload)
	}
	f.idx.Datasets[name] = datasetInfo{
		DType:   d.DType().String(),
		Dims:    append([]uint64(nil), dims...),
		Filter:  opts.Filter,
		Options: opts.FilterOptions,
		Chunks:  chunks,
	}
	f.blobs[name] = blobs
	return nil
}

// ReadDataset decodes the named dataset, undoing the filter per chunk.
func (f *File) ReadDataset(name string) (*core.Data, error) {
	info, ok := f.idx.Datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	dtype, err := core.ParseDType(info.DType)
	if err != nil {
		return nil, err
	}
	var filter *core.Compressor
	if info.Filter != "" {
		filter, err = filterFor(info.Filter, info.Options)
		if err != nil {
			return nil, err
		}
	}
	out := core.NewData(dtype, info.Dims...)
	rowBytes := uint64(dtype.Size())
	for _, dim := range info.Dims[1:] {
		rowBytes *= dim
	}
	offset := uint64(0)
	for i, ch := range info.Chunks {
		payload := f.blobs[name][i]
		var raw []byte
		if filter != nil {
			chunkDims := append([]uint64{ch.Rows}, info.Dims[1:]...)
			dec, err := core.Decompress(filter, core.NewBytes(payload), dtype, chunkDims...)
			if err != nil {
				return nil, err
			}
			raw = dec.Bytes()
		} else {
			raw = payload
		}
		if uint64(len(raw)) != ch.Rows*rowBytes {
			return nil, ErrFormat
		}
		copy(out.Bytes()[offset:], raw)
		offset += ch.Rows * rowBytes
	}
	if offset != out.ByteLen() {
		return nil, ErrFormat
	}
	return out, nil
}

// ReadRows decodes only the chunks overlapping rows [start, start+count)
// along dimension 0 — the payoff of chunked storage: a slab read touches
// (and decompresses) a fraction of the dataset.
func (f *File) ReadRows(name string, start, count uint64) (*core.Data, error) {
	info, ok := f.idx.Datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if count == 0 || start+count > info.Dims[0] {
		return nil, fmt.Errorf("h5lite: rows [%d, %d) outside extent %d", start, start+count, info.Dims[0])
	}
	dtype, err := core.ParseDType(info.DType)
	if err != nil {
		return nil, err
	}
	var filter *core.Compressor
	if info.Filter != "" {
		filter, err = filterFor(info.Filter, info.Options)
		if err != nil {
			return nil, err
		}
	}
	rowBytes := uint64(dtype.Size())
	for _, dim := range info.Dims[1:] {
		rowBytes *= dim
	}
	outDims := append([]uint64{count}, info.Dims[1:]...)
	out := core.NewData(dtype, outDims...)

	chunkStart := uint64(0)
	written := uint64(0)
	for i, ch := range info.Chunks {
		chunkEnd := chunkStart + ch.Rows
		if chunkEnd <= start || chunkStart >= start+count {
			chunkStart = chunkEnd
			continue // chunk does not overlap: never decompressed
		}
		var raw []byte
		if filter != nil {
			chunkDims := append([]uint64{ch.Rows}, info.Dims[1:]...)
			dec, err := core.Decompress(filter, core.NewBytes(f.blobs[name][i]), dtype, chunkDims...)
			if err != nil {
				return nil, err
			}
			raw = dec.Bytes()
		} else {
			raw = f.blobs[name][i]
		}
		if uint64(len(raw)) != ch.Rows*rowBytes {
			return nil, ErrFormat
		}
		lo := start
		if chunkStart > lo {
			lo = chunkStart
		}
		hi := start + count
		if chunkEnd < hi {
			hi = chunkEnd
		}
		copy(out.Bytes()[written*rowBytes:],
			raw[(lo-chunkStart)*rowBytes:(hi-chunkStart)*rowBytes])
		written += hi - lo
		chunkStart = chunkEnd
	}
	if written != count {
		return nil, ErrFormat
	}
	return out, nil
}

// RawChunk is one stored chunk in its on-disk (post-filter) form: the rows
// it covers along dimension 0 and the compressed payload bytes. The object
// store uses raw chunks to checksum, journal, and rebuild containers without
// re-running the filter.
type RawChunk struct {
	Rows    uint64
	Payload []byte
}

// DatasetMeta is the exported view of a stored dataset's metadata.
type DatasetMeta struct {
	DType   string
	Dims    []uint64
	Filter  string
	Options map[string]float64
}

// Meta returns the metadata of the named dataset.
func (f *File) Meta(name string) (DatasetMeta, error) {
	info, ok := f.idx.Datasets[name]
	if !ok {
		return DatasetMeta{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return DatasetMeta{
		DType:   info.DType,
		Dims:    append([]uint64(nil), info.Dims...),
		Filter:  info.Filter,
		Options: info.Options,
	}, nil
}

// RawChunks returns the stored chunks of the named dataset. Payloads alias
// the container's buffers; callers must not mutate them.
func (f *File) RawChunks(name string) ([]RawChunk, error) {
	info, ok := f.idx.Datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	out := make([]RawChunk, len(info.Chunks))
	for i, ch := range info.Chunks {
		out[i] = RawChunk{Rows: ch.Rows, Payload: f.blobs[name][i]}
	}
	return out, nil
}

// WriteRawDataset stores already-filtered chunks under name, bypassing the
// filter (the payloads are recorded as-is). The journal replay path of the
// object store uses it to rebuild a container from logged chunk payloads
// without owning the original uncompressed data. The chunk rows must sum to
// dims[0].
func (f *File) WriteRawDataset(name, dtype string, dims []uint64, filter string, options map[string]float64, chunks []RawChunk) error {
	if _, err := core.ParseDType(dtype); err != nil {
		return err
	}
	if len(dims) == 0 {
		return fmt.Errorf("h5lite: %w", core.ErrNilData)
	}
	var rows uint64
	infos := make([]chunkInfo, len(chunks))
	blobs := make([][]byte, len(chunks))
	for i, ch := range chunks {
		rows += ch.Rows
		infos[i] = chunkInfo{Rows: ch.Rows, Length: uint64(len(ch.Payload))}
		blobs[i] = append([]byte(nil), ch.Payload...)
	}
	if rows != dims[0] {
		return fmt.Errorf("h5lite: raw chunks cover %d rows, dims declare %d", rows, dims[0])
	}
	f.idx.Datasets[name] = datasetInfo{
		DType:   dtype,
		Dims:    append([]uint64(nil), dims...),
		Filter:  filter,
		Options: options,
		Chunks:  infos,
	}
	f.blobs[name] = blobs
	return nil
}

// Save writes the container to its path.
func (f *File) Save() error {
	// Assign blob offsets in sorted-name order for determinism.
	offset := uint64(0)
	var blobSection []byte
	for _, name := range f.Names() {
		info := f.idx.Datasets[name]
		for i := range info.Chunks {
			info.Chunks[i].Offset = offset
			offset += info.Chunks[i].Length
			blobSection = append(blobSection, f.blobs[name][i]...)
		}
		f.idx.Datasets[name] = info
	}
	hdr, err := json.Marshal(f.idx)
	if err != nil {
		return err
	}
	out := make([]byte, 0, len(magic)+8+len(hdr)+len(blobSection))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(hdr)))
	out = append(out, hdr...)
	out = append(out, blobSection...)
	// Crash-consistent publish: a container rewrite that dies mid-write must
	// leave the previous generation intact (same temp+fsync+rename path as
	// internal/pio; see the kill-mid-write tests).
	return fsx.AtomicWriteFile(f.path, out, 0o644)
}
