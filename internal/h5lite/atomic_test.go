package h5lite

import (
	"errors"
	"path/filepath"
	"testing"

	"pressio/internal/core"
	"pressio/internal/faultinject"
	"pressio/internal/fsx"
)

// TestSaveKillMidWriteLeavesOldContainerIntact mirrors the pio crash tests:
// a container rewrite killed between the temp-file fsync and the publishing
// rename must leave the previous generation parseable byte for byte — the
// crash-consistency contract Save inherits from internal/fsx.
func TestSaveKillMidWriteLeavesOldContainerIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.h5l")
	old := core.FromFloat64s([]float64{1, 2, 3, 4}, 4)
	f := Create(path)
	if err := f.WriteDataset("data", old, DatasetOptions{Filter: "flate", ChunkRows: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Save(); err != nil {
		t.Fatal(err)
	}

	for _, point := range []string{fsx.PointWrite, fsx.PointFsync, fsx.PointRename} {
		t.Run(point, func(t *testing.T) {
			if err := faultinject.ArmFS(faultinject.FSFault{Point: point}); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(faultinject.DisarmFS)
			g := Create(path)
			neu := core.FromFloat64s([]float64{9, 9, 9, 9, 9, 9}, 6)
			if err := g.WriteDataset("data", neu, DatasetOptions{}); err != nil {
				t.Fatal(err)
			}
			if err := g.Save(); !errors.Is(err, faultinject.ErrFSCrash) {
				t.Fatalf("crash at %s did not abort Save: %v", point, err)
			}
			faultinject.DisarmFS()

			reopened, err := Open(path)
			if err != nil {
				t.Fatalf("old container no longer parses after killed rewrite: %v", err)
			}
			got, err := reopened.ReadDataset("data")
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(old) {
				t.Fatalf("old container content corrupted: %v", got.AsFloat64s())
			}
		})
	}

	// With the fault gone, the rewrite publishes and the new generation wins.
	g := Create(path)
	neu := core.FromFloat64s([]float64{9, 8, 7}, 3)
	if err := g.WriteDataset("data", neu, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := g.Save(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.ReadDataset("data")
	if err != nil || !got.Equal(neu) {
		t.Fatalf("post-recovery rewrite lost: %v %v", got, err)
	}
}

// TestRawChunksRoundTrip pins the raw-chunk API the object store builds on:
// chunks extracted from a filtered dataset rebuild an identical container
// via WriteRawDataset, without re-running the filter.
func TestRawChunksRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.h5l")
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i % 7)
	}
	d := core.FromFloat64s(vals, 64)
	f := Create(path)
	if err := f.WriteDataset("data", d, DatasetOptions{Filter: "flate", ChunkRows: 10}); err != nil {
		t.Fatal(err)
	}
	chunks, err := f.RawChunks("data")
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 7 {
		t.Fatalf("got %d chunks, want 7", len(chunks))
	}
	meta, err := f.Meta("data")
	if err != nil {
		t.Fatal(err)
	}

	rebuilt := Create(filepath.Join(t.TempDir(), "b.h5l"))
	if err := rebuilt.WriteRawDataset("data", meta.DType, meta.Dims, meta.Filter, meta.Options, chunks); err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.ReadDataset("data")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Fatal("raw-chunk rebuild does not round-trip")
	}

	// Row coverage is validated: chunks must sum to dims[0].
	if err := rebuilt.WriteRawDataset("bad", meta.DType, []uint64{65}, meta.Filter, meta.Options, chunks); err == nil {
		t.Fatal("row-coverage mismatch accepted")
	}
}
