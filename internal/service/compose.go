package service

// ComposeResilience translates the resilience convenience flags shared by the
// pressio CLI and the pressiod daemon (-guard, -fallback, -breaker) into the
// equivalent meta-compressor composition. The wrapping order is deterministic
// and independent of flag order on the command line:
//
//	breaker{ guard{ fallback{ codec, backups... } } }
//
// fallback sits innermost (the selected compressor becomes tier zero of the
// chain), guard wraps the whole chain so retries and panic containment cover
// every tier, and the breaker wraps everything so a tripped circuit rejects
// instantly — before guard retries or fallback tier probing can burn more
// work on a failing backend.
//
// Synthesised options are prepended to the user's options, so an explicit
// key=value from the user always wins when the list is folded into a map.
func ComposeResilience(compressor string, guard bool, fallbackCSV string, breaker bool, opts []string) (string, []string) {
	out := opts
	if fallbackCSV != "" {
		out = append([]string{"fallback:compressors=" + compressor + "," + fallbackCSV}, out...)
		compressor = "fallback"
	}
	if guard {
		out = append([]string{"guard:compressor=" + compressor}, out...)
		compressor = "guard"
	}
	if breaker {
		out = append([]string{"breaker:compressor=" + compressor}, out...)
		compressor = "breaker"
	}
	return compressor, out
}
