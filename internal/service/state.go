package service

import (
	"sync"
	"time"

	"pressio/internal/obslog"
	"pressio/internal/trace"
)

// BreakerMode enumerates the classic three circuit states.
type BreakerMode int

const (
	// ModeClosed passes traffic and records outcomes in a sliding window.
	ModeClosed BreakerMode = iota
	// ModeOpen rejects traffic fast until the cooldown elapses.
	ModeOpen
	// ModeHalfOpen admits a bounded number of trial probes; their outcomes
	// decide whether the circuit closes again or re-opens.
	ModeHalfOpen
)

// String returns the lowercase state name used in the read-only
// "breaker:state" option.
func (m BreakerMode) String() string {
	switch m {
	case ModeClosed:
		return "closed"
	case ModeOpen:
		return "open"
	case ModeHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breakerConfig is the tunable half of a breaker's behavior.
type breakerConfig struct {
	window       int           // sliding window length in calls
	failures     int           // failures within the window that trip the circuit
	cooldown     time.Duration // open → half-open delay
	probes       int           // half-open probe budget; that many successes close
	latencyLimit time.Duration // >0: calls slower than this count as failures
}

// BreakerState is the shared, mutex-protected state machine behind one
// breaker scope. Every clone of a breaker plugin (e.g. the worker fleet a
// CompressMany spawns) holds the same *BreakerState, so one worker's
// failures protect all of them and one worker's successful probe re-opens
// traffic for all of them.
type BreakerState struct {
	mu    sync.Mutex
	clock Clock
	cfg   breakerConfig
	scope string

	mode      BreakerMode
	outcomes  []bool // ring buffer, true = failure
	next      int    // ring cursor
	filled    int    // valid entries in the ring
	failCount int    // failures currently in the ring
	openUntil time.Time

	probesInFlight int
	probeSuccesses int
}

// Mode returns the current state, applying the open→half-open transition if
// the cooldown has elapsed (so introspection agrees with admission).
func (s *BreakerState) Mode() BreakerMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeHalfOpen()
	return s.mode
}

// Scope returns the name this state is registered under.
func (s *BreakerState) Scope() string { return s.scope }

// SetClock injects a test clock. Call before traffic flows.
func (s *BreakerState) SetClock(c Clock) {
	s.mu.Lock()
	s.clock = c
	s.mu.Unlock()
}

// configure replaces the tunables, resizing the window ring. The circuit
// position (open/half-open) is preserved; the recorded window restarts.
func (s *BreakerState) configure(cfg breakerConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg == s.cfg {
		return
	}
	s.cfg = cfg
	s.outcomes = make([]bool, cfg.window)
	s.next, s.filled, s.failCount = 0, 0, 0
}

// maybeHalfOpen transitions open → half-open when the cooldown has elapsed.
// Callers must hold s.mu.
func (s *BreakerState) maybeHalfOpen() {
	if s.mode == ModeOpen && !s.clock.Now().Before(s.openUntil) {
		s.mode = ModeHalfOpen
		s.probesInFlight = 0
		s.probeSuccesses = 0
	}
}

// trip opens the circuit now. Callers must hold s.mu. Logging is split out
// into tripEvent and deferred until the lock is released: the logger writes
// to an io.Writer, and holding the breaker mutex across that write would
// convoy every admission decision behind the log sink (blockinglock).
func (s *BreakerState) trip() {
	s.mode = ModeOpen
	s.openUntil = s.clock.Now().Add(s.cfg.cooldown)
	s.next, s.filled, s.failCount = 0, 0, 0
	s.probesInFlight = 0
	s.probeSuccesses = 0
	trace.CounterAdd(trace.CtrBreakerOpened, 1)
	trace.CounterAdd(trace.BreakerScopeKey(s.scope), 1)
}

// tripEvent captures the trip log fields while s.mu is still held and
// returns the emission to run once it is released.
func (s *BreakerState) tripEvent() func() {
	scope, cooldown := s.scope, s.cfg.cooldown
	window, failures := s.cfg.window, s.cfg.failures
	return func() {
		obslog.Default().Warnw("breaker.trip",
			obslog.Str("scope", scope),
			obslog.Dur("cooldown", cooldown),
			obslog.Int("window", int64(window)),
			obslog.Int("failure_threshold", int64(failures)))
	}
}

// Allow decides whether one call may proceed. It returns probe=true when the
// call is a half-open trial (the caller must report its outcome via Done with
// the same flag), and ok=false when the circuit rejects the call outright.
func (s *BreakerState) Allow() (probe, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeHalfOpen()
	switch s.mode {
	case ModeClosed:
		return false, true
	case ModeHalfOpen:
		if s.probesInFlight < s.cfg.probes {
			s.probesInFlight++
			trace.CounterAdd(trace.CtrBreakerProbes, 1)
			return true, true
		}
		trace.CounterAdd(trace.CtrBreakerRejected, 1)
		return false, false
	default: // ModeOpen
		trace.CounterAdd(trace.CtrBreakerRejected, 1)
		return false, false
	}
}

// Done records the outcome of a call previously admitted by Allow. latency
// is compared against the configured latency limit: a technically successful
// but too-slow call counts as a failure (a stalling dependency should trip
// the breaker before timeouts cascade).
func (s *BreakerState) Done(probe bool, callErr error, latency time.Duration) {
	failure := callErr != nil ||
		(s.cfg.latencyLimit > 0 && latency > s.cfg.latencyLimit)
	if emit := s.record(probe, failure); emit != nil {
		emit()
	}
}

// record applies one call outcome under s.mu and returns the log emission to
// run after the lock is released (nil when the outcome logs nothing). State
// transitions log; logging does I/O; I/O must not happen inside the critical
// section — so the locked half decides and the unlocked half speaks.
func (s *BreakerState) record(probe, failure bool) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if probe {
		// A probe outcome is meaningful in half-open only; if another probe
		// already re-opened the circuit, this result arrives late and the
		// breaker ignores it (the next half-open round will re-probe).
		if s.mode != ModeHalfOpen {
			return nil
		}
		s.probesInFlight--
		if failure {
			s.trip()
			return s.tripEvent()
		}
		s.probeSuccesses++
		if s.probeSuccesses >= s.cfg.probes {
			s.mode = ModeClosed
			s.next, s.filled, s.failCount = 0, 0, 0
			trace.CounterAdd(trace.CtrBreakerRecovered, 1)
			scope := s.scope
			return func() {
				obslog.Default().Infow("breaker.recover", obslog.Str("scope", scope))
			}
		}
		return nil
	}
	if s.mode != ModeClosed {
		// A non-probe call that was admitted while closed but finished after
		// the circuit opened: its outcome no longer matters.
		return nil
	}
	if s.filled == len(s.outcomes) && s.outcomes[s.next] {
		s.failCount--
	}
	if s.filled < len(s.outcomes) {
		s.filled++
	}
	s.outcomes[s.next] = failure
	s.next = (s.next + 1) % len(s.outcomes)
	if failure {
		s.failCount++
		if s.failCount >= s.cfg.failures {
			s.trip()
			return s.tripEvent()
		}
	}
	return nil
}

// The scope registry: breakers created with the same "breaker:scope" (which
// defaults to the child compressor name) share one BreakerState even when
// they were constructed independently, so every path to a failing component
// trips together.
var (
	sharedMu sync.Mutex
	shared   = map[string]*BreakerState{}
)

// StateFor returns the shared BreakerState registered under scope, creating
// it with the given config on first use. Later callers with a different
// config retune the existing state (last writer wins), which keeps a fleet
// of clones coherent when options change.
func StateFor(scope string, cfg breakerConfig) *BreakerState {
	sharedMu.Lock()
	st, ok := shared[scope]
	if !ok {
		st = &BreakerState{
			clock:    RealClock{},
			cfg:      cfg,
			scope:    scope,
			outcomes: make([]bool, cfg.window),
		}
		shared[scope] = st
	}
	sharedMu.Unlock()
	if ok {
		st.configure(cfg)
	}
	return st
}

// BreakerConfig is the exported shape of a breaker's tunables, for callers
// outside the meta-compressor plugin (the cluster peer client guards each
// HTTP peer with one of these).
type BreakerConfig struct {
	// Window is the sliding outcome window length in calls.
	Window int
	// Failures within the window trip the circuit.
	Failures int
	// Cooldown is the open → half-open delay.
	Cooldown time.Duration
	// Probes is the half-open trial budget; that many successes close.
	Probes int
	// LatencyLimit, when >0, counts slower-than-this calls as failures.
	LatencyLimit time.Duration
}

// NewSharedBreaker returns the process-shared BreakerState registered under
// scope, creating or retuning it exactly like the breaker meta-compressor
// does — so an HTTP peer client and a breaker plugin pointed at the same
// scope trip together. Zero fields get the plugin defaults.
func NewSharedBreaker(scope string, cfg BreakerConfig) *BreakerState {
	if cfg.Window < 1 {
		cfg.Window = 16
	}
	if cfg.Failures < 1 {
		cfg.Failures = 8
	}
	if cfg.Failures > cfg.Window {
		cfg.Failures = cfg.Window
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Probes < 1 {
		cfg.Probes = 1
	}
	return StateFor(scope, breakerConfig{
		window:       cfg.Window,
		failures:     cfg.Failures,
		cooldown:     cfg.Cooldown,
		probes:       cfg.Probes,
		latencyLimit: cfg.LatencyLimit,
	})
}

// ResetShared drops every registered breaker state (tests only: the registry
// is process-global on purpose).
func ResetShared() {
	sharedMu.Lock()
	shared = map[string]*BreakerState{}
	sharedMu.Unlock()
}
