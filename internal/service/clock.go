package service

import (
	"sync"
	"time"
)

// Clock abstracts the wall clock so overload policy (breaker cooldowns,
// queue-wait estimates) can be driven deterministically in tests. Production
// code uses RealClock; tests inject a *FakeClock and advance it explicitly,
// which is what lets a chaos schedule replay bit-for-bit.
type Clock interface {
	Now() time.Time
}

// RealClock reads the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for deterministic tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
