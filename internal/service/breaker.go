package service

import (
	"errors"
	"fmt"
	"time"

	"pressio/internal/core"
)

// Option keys the breaker meta-compressor owns.
const (
	keyBreakerCompressor  = "breaker:compressor"
	keyBreakerScope       = "breaker:scope"
	keyBreakerWindow      = "breaker:window"
	keyBreakerFailures    = "breaker:failure_threshold"
	keyBreakerOpenMS      = "breaker:open_ms"
	keyBreakerProbes      = "breaker:halfopen_probes"
	keyBreakerLatencyMS   = "breaker:latency_threshold_ms"
	keyBreakerStateReport = "breaker:state"
)

// Version is the service meta-compressor family version.
const Version = "1.0.0"

// ErrBreakerOpen marks calls rejected because the circuit was open (or its
// half-open probe budget was spent). Returned errors wrap both this sentinel
// and core.ErrShed, so generic overload handling (a 503 in pressiod) and
// breaker-specific handling can each match with errors.Is.
var ErrBreakerOpen = errors.New("circuit breaker open")

// breakerWindowCap bounds the sliding window so a typo cannot allocate an
// absurd ring.
const breakerWindowCap = 1 << 16

func init() {
	core.RegisterCompressor("breaker", func() core.CompressorPlugin {
		return &breaker{
			childName: "sz_threadsafe",
			cfg: breakerConfig{
				window:   16,
				failures: 8,
				cooldown: time.Second,
				probes:   1,
			},
		}
	})
}

// breaker is the circuit-breaker meta-compressor: it passes calls to its
// child while the child is healthy, trips open after breaker:failure_threshold
// failures within the last breaker:window calls (slow calls count as failures
// when breaker:latency_threshold_ms is set), rejects instantly while open,
// and after breaker:open_ms admits breaker:halfopen_probes trial calls whose
// outcomes either close the circuit or re-open it.
//
// State lives in a shared per-scope BreakerState (scope defaults to the child
// compressor name), so clones — a CompressMany worker fleet, or independent
// breakers guarding the same backend — trip and recover together.
type breaker struct {
	childName string
	comp      *core.Compressor
	saved     *core.Options
	scope     string
	cfg       breakerConfig
	st        *BreakerState
}

func (p *breaker) Prefix() string  { return "breaker" }
func (p *breaker) Version() string { return Version }

func (p *breaker) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyBreakerCompressor, p.childName)
	o.SetValue(keyBreakerScope, p.scope)
	o.SetValue(keyBreakerWindow, uint64(p.cfg.window))
	o.SetValue(keyBreakerFailures, uint64(p.cfg.failures))
	o.SetValue(keyBreakerOpenMS, int64(p.cfg.cooldown/time.Millisecond))
	o.SetValue(keyBreakerProbes, uint64(p.cfg.probes))
	o.SetValue(keyBreakerLatencyMS, int64(p.cfg.latencyLimit/time.Millisecond))
	o.SetValue(keyBreakerStateReport, p.state().Mode().String())
	if p.comp != nil {
		o.Merge(p.comp.Options())
	}
	return o
}

func (p *breaker) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keyBreakerCompressor); err == nil && v != p.childName {
		p.childName = v
		p.comp = nil
		p.st = nil // default scope follows the child name
	}
	if v, err := o.GetString(keyBreakerScope); err == nil && v != p.scope {
		p.scope = v
		p.st = nil
	}
	if v, err := o.GetUint64(keyBreakerWindow); err == nil {
		if v < 1 || v > breakerWindowCap {
			return fmt.Errorf("%w: %s %d not in [1,%d]", core.ErrInvalidOption, keyBreakerWindow, v, breakerWindowCap)
		}
		p.cfg.window = int(v)
		p.st = nil
	}
	if v, err := o.GetUint64(keyBreakerFailures); err == nil {
		if v < 1 || v > breakerWindowCap {
			return fmt.Errorf("%w: %s %d not in [1,%d]", core.ErrInvalidOption, keyBreakerFailures, v, breakerWindowCap)
		}
		p.cfg.failures = int(v)
		p.st = nil
	}
	if v, err := o.GetInt64(keyBreakerOpenMS); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: %s %d", core.ErrInvalidOption, keyBreakerOpenMS, v)
		}
		p.cfg.cooldown = time.Duration(v) * time.Millisecond
		p.st = nil
	}
	if v, err := o.GetUint64(keyBreakerProbes); err == nil {
		if v < 1 || v > breakerWindowCap {
			return fmt.Errorf("%w: %s %d not in [1,%d]", core.ErrInvalidOption, keyBreakerProbes, v, breakerWindowCap)
		}
		p.cfg.probes = int(v)
		p.st = nil
	}
	if v, err := o.GetInt64(keyBreakerLatencyMS); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: %s %d", core.ErrInvalidOption, keyBreakerLatencyMS, v)
		}
		p.cfg.latencyLimit = time.Duration(v) * time.Millisecond
		p.st = nil
	}
	if p.cfg.failures > p.cfg.window {
		return fmt.Errorf("%w: %s %d exceeds %s %d (the circuit could never trip)",
			core.ErrInvalidOption, keyBreakerFailures, p.cfg.failures, keyBreakerWindow, p.cfg.window)
	}
	if p.saved == nil {
		p.saved = core.NewOptions()
	}
	p.saved.Merge(o)
	if p.comp != nil {
		return p.comp.SetOptions(o)
	}
	return nil
}

func (p *breaker) CheckOptions(o *core.Options) error {
	clone := p.cloneBreaker()
	return clone.SetOptions(o)
}

func (p *breaker) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetySerialized, "stable", Version, false)
	cfg.SetValue("breaker:resilient", int32(1))
	return cfg
}

// state resolves the shared per-scope BreakerState, creating or retuning it
// on first use after a configuration change.
func (p *breaker) state() *BreakerState {
	if p.st == nil {
		scope := p.scope
		if scope == "" {
			scope = p.childName
		}
		p.st = StateFor(scope, p.cfg)
	}
	return p.st
}

// child lazily instantiates the wrapped compressor, replaying saved options.
func (p *breaker) child() (*core.Compressor, error) {
	if p.comp == nil {
		comp, err := core.NewCompressor(p.childName)
		if err != nil {
			return nil, err
		}
		if p.saved != nil {
			if err := comp.SetOptions(p.saved); err != nil {
				return nil, err
			}
		}
		p.comp = comp
	}
	return p.comp, nil
}

// rejected builds the typed fast-rejection error for one operation.
func (p *breaker) rejected(st *BreakerState, op string) error {
	return fmt.Errorf("breaker[%s]: %w (%w): %s of %q rejected",
		st.Scope(), ErrBreakerOpen, core.ErrShed, op, p.childName)
}

// through runs one admitted call and reports its outcome to the shared
// state. Latency is measured on the real clock — the injectable Clock drives
// cooldown arithmetic, not stopwatch reads, and error-driven chaos schedules
// stay deterministic either way.
func (p *breaker) through(st *BreakerState, probe bool, op func(*core.Compressor) error) error {
	comp, err := p.child()
	if err != nil {
		// A child that cannot even be built counts as a failure: tripping
		// here stops a fleet from re-attempting a misconfigured backend.
		st.Done(probe, err, 0)
		return err
	}
	begin := time.Now()
	err = op(comp)
	st.Done(probe, err, time.Since(begin))
	return err
}

func (p *breaker) CompressImpl(in, out *core.Data) error {
	st := p.state()
	probe, ok := st.Allow()
	if !ok {
		return p.rejected(st, "compress")
	}
	return p.through(st, probe, func(comp *core.Compressor) error {
		tmp := core.NewEmpty(core.DTypeByte, 0)
		if err := comp.Compress(in, tmp); err != nil {
			return err
		}
		out.Become(tmp)
		return nil
	})
}

func (p *breaker) DecompressImpl(in, out *core.Data) error {
	st := p.state()
	probe, ok := st.Allow()
	if !ok {
		return p.rejected(st, "decompress")
	}
	return p.through(st, probe, func(comp *core.Compressor) error {
		tmp := core.NewEmpty(out.DType(), out.Dims()...)
		if err := comp.Decompress(in, tmp); err != nil {
			return err
		}
		out.Become(tmp)
		return nil
	})
}

func (p *breaker) cloneBreaker() *breaker {
	clone := &breaker{
		childName: p.childName,
		scope:     p.scope,
		cfg:       p.cfg,
		st:        p.st, // clones share the scope state by construction
	}
	if p.saved != nil {
		clone.saved = p.saved.Clone()
	}
	if p.comp != nil {
		clone.comp = p.comp.Clone()
	}
	return clone
}

func (p *breaker) Clone() core.CompressorPlugin { return p.cloneBreaker() }
