// Package service is the overload-protection layer: fleet-level robustness
// *across* calls, complementing internal/resilience which protects a single
// call. It provides a circuit-breaker meta-compressor ("breaker") that stops
// traffic to a failing child before the failures cascade, and admission
// control with weighted (memory-budget) semaphores, bounded FIFO queues,
// deadline-aware load shedding, and named bulkhead compartments.
//
// Everything composes through the ordinary plugin registry, so a production
// stack reads breaker{guard{fallback{codec}}}: the breaker is the outermost
// layer — an open circuit rejects in nanoseconds without burning the guard's
// retry budget — and its per-scope state is shared across clones, so a fleet
// of CompressMany workers trips and recovers together.
//
// All time-dependent behavior (breaker cooldowns, queue-wait estimates) goes
// through an injectable Clock, which is what makes the chaos tests replay
// bit-for-bit. cmd/pressiod serves this layer over HTTP.
package service
