package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

func TestAdmissionImmediateWithinBudget(t *testing.T) {
	trace.ResetTelemetry()
	a, err := NewBulkhead("t", 100, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.UsedBytes(); got != 100 {
		t.Fatalf("used %d, want 100", got)
	}
	r1()
	r2()
	if got := a.UsedBytes(); got != 0 {
		t.Fatalf("used after release %d, want 0", got)
	}
	if trace.CounterValue(trace.CtrAdmissionAdmitted) != 2 {
		t.Fatalf("admitted counter %d, want 2", trace.CounterValue(trace.CtrAdmissionAdmitted))
	}
}

func TestAdmissionOversizedRequestShedsTyped(t *testing.T) {
	a, err := NewBulkhead("t", 100, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background(), 101); !errors.Is(err, core.ErrShed) {
		t.Fatalf("oversized acquire: %v, want ErrShed", err)
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	trace.ResetTelemetry()
	a, err := NewBulkhead("compress", 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	release, err := a.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue...
	var wg sync.WaitGroup
	wg.Add(1)
	waiterErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		r, err := a.Acquire(context.Background(), 10)
		if err == nil {
			r()
		}
		waiterErr <- err
	}()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	// ...the next one is shed instantly.
	if _, err := a.Acquire(context.Background(), 10); !errors.Is(err, core.ErrShed) {
		t.Fatalf("queue-full acquire: %v, want ErrShed", err)
	}
	if trace.CounterValue(trace.BulkheadShedKey("compress")) != 1 {
		t.Fatal("per-bulkhead shed counter not incremented")
	}
	release()
	wg.Wait()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter should have been admitted on release: %v", err)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a, err := NewBulkhead("t", 10, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	hold, err := a.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Enqueue strictly one at a time so arrival order is defined.
		wg.Add(1)
		depth := a.QueueDepth()
		go func(i int) {
			defer wg.Done()
			r, err := a.Acquire(context.Background(), 10)
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			r()
		}(i)
		for a.QueueDepth() != depth+1 {
			time.Sleep(time.Millisecond)
		}
	}
	hold()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("admission order: got waiter %d, want %d (FIFO)", got, want)
		}
		want++
	}
}

func TestAdmissionDeadlineAwareShedding(t *testing.T) {
	fc := NewFakeClock(time.Unix(1000, 0))
	a, err := NewBulkhead("t", 100, 8, fc)
	if err != nil {
		t.Fatal(err)
	}
	// Train the hold-time estimator: one 500ms occupancy.
	r, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	fc.Advance(500 * time.Millisecond)
	r()
	// Occupy the whole budget so the next request must queue.
	hold, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	// A deadline shorter than the 500ms estimate is rejected up front.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, 10); !errors.Is(err, core.ErrShed) {
		t.Fatalf("doomed-deadline acquire: %v, want up-front ErrShed", err)
	}
	// A deadline with room to spare queues instead of shedding.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		r, err := a.Acquire(ctx2, 10)
		if err == nil {
			r()
		}
		done <- err
	}()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	hold()
	if err := <-done; err != nil {
		t.Fatalf("roomy-deadline acquire: %v, want admission after release", err)
	}
}

func TestAdmissionContextCancelledWhileQueued(t *testing.T) {
	a, err := NewBulkhead("t", 10, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	hold, err := a.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 5)
		done <- err
	}()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, core.ErrShed) {
		t.Fatalf("cancelled-in-queue acquire: %v, want ErrShed", err)
	}
	if a.QueueDepth() != 0 {
		t.Fatal("cancelled waiter left in queue")
	}
	hold()
	if got := a.UsedBytes(); got != 0 {
		t.Fatalf("used %d after all releases, want 0", got)
	}
}
