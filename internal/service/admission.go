package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Admission is one bulkhead compartment: a weighted semaphore whose weights
// are declared input bytes (so the budget is a memory budget, not a request
// count) in front of a bounded FIFO queue with deadline-aware load shedding.
// A request is shed — typed core.ErrShed, no work done — when it could never
// fit the budget, when the queue is full, when its context deadline would
// expire before its estimated turn, or when its context ends while queued.
//
// Separate compartments isolate workload classes from each other (the
// bulkhead pattern): pressiod runs one for compression and one for
// decompression, so a flood of huge compress jobs cannot starve reads.
type Admission struct {
	name     string
	budget   int64
	maxQueue int
	clock    Clock

	mu      sync.Mutex
	used    int64     // admitted weight currently held
	queue   []*waiter // FIFO; head is next to admit
	avgHold time.Duration
}

// waiter is one queued acquisition.
type waiter struct {
	weight   int64
	enqueued time.Time
	ready    chan struct{} // closed on admission
	admitted bool
}

// NewBulkhead builds a compartment. name tags the per-bulkhead shed counter
// (empty for anonymous), budget is the admitted-bytes ceiling (must be > 0),
// maxQueue bounds the waiters beyond the budget (0 disables queueing), and a
// nil clock means the real one.
func NewBulkhead(name string, budget int64, maxQueue int, clock Clock) (*Admission, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("%w: bulkhead budget %d must be positive", core.ErrInvalidOption, budget)
	}
	if maxQueue < 0 {
		return nil, fmt.Errorf("%w: bulkhead queue depth %d must be >= 0", core.ErrInvalidOption, maxQueue)
	}
	if clock == nil {
		clock = RealClock{}
	}
	return &Admission{name: name, budget: budget, maxQueue: maxQueue, clock: clock}, nil
}

// QueueDepth reports the current number of queued waiters (a live gauge for
// /metricz; the monotone counters live in the trace registry).
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// UsedBytes reports the admitted weight currently held.
func (a *Admission) UsedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// shed counts and types one rejection.
func (a *Admission) shed(format string, args ...any) error {
	trace.CounterAdd(trace.CtrAdmissionShed, 1)
	if a.name != "" {
		trace.CounterAdd(trace.BulkheadShedKey(a.name), 1)
	}
	return fmt.Errorf("admission[%s]: %w: %s", a.name, core.ErrShed, fmt.Sprintf(format, args...))
}

// estimateWait predicts how long the queuePos-th waiter will sit in queue,
// from the EWMA of observed hold times. With no history it is optimistic
// (zero): the policy sheds on evidence, not guesses.
func (a *Admission) estimateWait(queuePos int) time.Duration {
	return a.avgHold * time.Duration(queuePos+1)
}

// tryAdmit performs the locked half of Acquire: immediate admission, an
// up-front shed decision, or enqueueing.
func (a *Admission) tryAdmit(ctx context.Context, weight int64) (*waiter, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) == 0 && a.used+weight <= a.budget {
		a.used += weight
		trace.CounterAdd(trace.CtrAdmissionAdmitted, 1)
		return nil, nil
	}
	if len(a.queue) >= a.maxQueue {
		return nil, a.shed("queue full (%d waiting, %d/%d bytes held)",
			len(a.queue), a.used, a.budget)
	}
	// The deadline is compared on the real clock (it came from a real
	// context); the injectable clock only feeds the hold-time estimator, so
	// fake-clock tests stay coherent.
	if deadline, ok := ctx.Deadline(); ok {
		est := a.estimateWait(len(a.queue))
		if remaining := time.Until(deadline); est > remaining {
			return nil, a.shed("deadline %s away would expire during the estimated %s queue wait",
				remaining.Round(time.Millisecond), est)
		}
	}
	w := &waiter{weight: weight, enqueued: a.clock.Now(), ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	trace.CounterAdd(trace.CtrAdmissionQueued, 1)
	return w, nil
}

// cancelWaiter removes w from the queue after its context ended. If w was
// admitted concurrently, the grant is returned to the pool instead.
func (a *Admission) cancelWaiter(w *waiter, cause error) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.admitted {
		// Lost the race: admitted between ctx.Done and here. Hand the
		// capacity back and still report the shed — the caller's deadline
		// is gone, running the work would be wasted.
		a.used -= w.weight
		a.grantLocked()
		return a.shed("context ended as the request was admitted: %v", cause)
	}
	for i := range a.queue {
		if a.queue[i] == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			break
		}
	}
	return a.shed("context ended while queued: %v", cause)
}

// grantLocked admits queued waiters in FIFO order while they fit. Callers
// hold a.mu.
func (a *Admission) grantLocked() {
	for len(a.queue) > 0 && a.used+a.queue[0].weight <= a.budget {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.used += w.weight
		w.admitted = true
		// The registry helpers allocate only on the first use of a metric
		// name; every grant after process warm-up hits the cached cell.
		//lint:ignore hotalloc registry cell allocation happens once per metric name, not per admitted request
		trace.CounterAdd(trace.CtrAdmissionAdmitted, 1)
		//lint:ignore hotalloc registry cell allocation happens once per metric name, not per admitted request
		trace.ObserveDuration(trace.HistQueueWait, a.clock.Now().Sub(w.enqueued))
		close(w.ready)
	}
}

// Acquire admits one request of the given weight (declared input bytes),
// blocking in FIFO order behind the budget. On success it returns a release
// function that must be called exactly once when the work is done. On
// rejection the error wraps core.ErrShed.
func (a *Admission) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if weight < 0 {
		weight = 0
	}
	if weight > a.budget {
		return nil, a.shed("request weight %d exceeds the whole budget %d", weight, a.budget)
	}
	if err := ctx.Err(); err != nil {
		return nil, a.shed("context already ended: %v", err)
	}
	w, err := a.tryAdmit(ctx, weight)
	if err != nil {
		return nil, err
	}
	if w != nil {
		select {
		case <-w.ready:
		case <-ctx.Done():
			return nil, a.cancelWaiter(w, ctx.Err())
		}
	}
	admittedAt := a.clock.Now()
	return func() { a.release(weight, admittedAt) }, nil
}

// release returns capacity, folds the observed hold time into the wait
// estimator, and admits whoever now fits.
func (a *Admission) release(weight int64, admittedAt time.Time) {
	hold := a.clock.Now().Sub(admittedAt)
	if hold < 0 {
		hold = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.avgHold == 0 {
		a.avgHold = hold
	} else {
		a.avgHold = (a.avgHold*7 + hold) / 8
	}
	a.used -= weight
	a.grantLocked()
}
