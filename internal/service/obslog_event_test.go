package service

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"pressio/internal/obslog"
)

// Breaker state transitions are observable as structured events: a trip
// emits breaker.trip (warn) and a half-open recovery emits breaker.recover
// (info), both correlated by scope.
func TestBreakerTransitionsEmitObslogEvents(t *testing.T) {
	ResetShared()
	var buf bytes.Buffer
	obslog.SetDefault(obslog.New(&buf, obslog.Debug))
	defer obslog.SetDefault(nil)

	clk := NewFakeClock(time.Unix(0, 0))
	st := StateFor("evt-scope", breakerConfig{
		window: 2, failures: 1, cooldown: time.Second, probes: 1,
	})
	st.SetClock(clk)

	_, ok := st.Allow()
	if !ok {
		t.Fatal("closed breaker rejected")
	}
	st.Done(false, errors.New("boom"), 0)
	if st.Mode() != ModeOpen {
		t.Fatalf("mode %v, want open", st.Mode())
	}

	clk.Advance(2 * time.Second)
	probe, ok := st.Allow()
	if !probe || !ok {
		t.Fatalf("half-open probe not admitted (probe=%v ok=%v)", probe, ok)
	}
	st.Done(true, nil, 0)
	if st.Mode() != ModeClosed {
		t.Fatalf("mode %v, want closed after successful probe", st.Mode())
	}

	out := buf.String()
	if !strings.Contains(out, `"event":"breaker.trip"`) || !strings.Contains(out, `"scope":"evt-scope"`) {
		t.Errorf("missing breaker.trip event:\n%s", out)
	}
	if !strings.Contains(out, `"event":"breaker.recover"`) {
		t.Errorf("missing breaker.recover event:\n%s", out)
	}
}
