package service

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pressio/internal/core"
	"pressio/internal/meta"
	"pressio/internal/trace"
)

// chaosTranscript drives one scripted schedule through a breaker over the
// deterministic fault injector and renders everything observable — per-call
// outcome, state transitions, final counters — into one string, so replay
// equality is a single comparison.
func chaosTranscript(t *testing.T) string {
	t.Helper()
	ResetShared()
	trace.ResetTelemetry()
	comp, err := core.NewCompressor("breaker")
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.SetValue(keyBreakerCompressor, "faultinject")
	o.SetValue(keyBreakerScope, "chaos")
	o.SetValue(keyBreakerWindow, uint64(8))
	o.SetValue(keyBreakerFailures, uint64(3))
	o.SetValue(keyBreakerOpenMS, int64(1000))
	o.SetValue(keyBreakerProbes, uint64(2))
	o.SetValue("faultinject:compressor", "noop")
	o.SetValue("faultinject:seed", int64(42))
	o.SetValue("faultinject:error_rate", float64(0.5))
	if err := comp.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	b := comp.Plugin().(*breaker)
	fc := NewFakeClock(time.Unix(0, 0))
	b.state().SetClock(fc)

	var sb strings.Builder
	for i := 0; i < 40; i++ {
		if i == 20 {
			heal := core.NewOptions()
			heal.SetValue("faultinject:error_rate", float64(0))
			if err := comp.SetOptions(heal); err != nil {
				t.Fatal(err)
			}
		}
		err := compressOnce(comp)
		outcome := "ok"
		switch {
		case errors.Is(err, ErrBreakerOpen):
			outcome = "open"
		case err != nil:
			outcome = "fault"
		}
		fmt.Fprintf(&sb, "%02d %-5s %s\n", i, outcome, b.state().Mode())
		fc.Advance(300 * time.Millisecond)
	}
	for _, key := range []string{
		trace.CtrBreakerOpened, trace.CtrBreakerRejected,
		trace.CtrBreakerProbes, trace.CtrBreakerRecovered,
		"faultinject.errors",
	} {
		fmt.Fprintf(&sb, "%s=%d\n", key, trace.CounterValue(key))
	}
	return sb.String()
}

// TestChaosBreakerScheduleReplaysBitForBit is the acceptance criterion for
// breaker determinism: a scripted faultinject schedule trips the breaker,
// half-open probes recover it after the schedule heals, and the entire
// sequence — outcomes, state transitions, counters — replays identically.
func TestChaosBreakerScheduleReplaysBitForBit(t *testing.T) {
	first := chaosTranscript(t)
	second := chaosTranscript(t)
	if first != second {
		t.Fatalf("chaos schedule did not replay bit-for-bit:\n--- first\n%s--- second\n%s", first, second)
	}
	if !strings.Contains(first, "open") {
		t.Fatal("schedule never tripped the breaker")
	}
	if !strings.Contains(first, trace.CtrBreakerRecovered+"=") ||
		strings.Contains(first, trace.CtrBreakerRecovered+"=0") {
		t.Fatalf("breaker never recovered via half-open probes:\n%s", first)
	}
	if !strings.HasSuffix(strings.TrimSpace(strings.Split(first, "\n")[39]), "closed") {
		t.Fatalf("final state not closed after healing:\n%s", first)
	}
}

// TestChaosBreakerTripsAcrossCompressManyWorkers proves the per-scope shared
// state: a CompressMany worker fleet over an always-failing child trips
// *once*, and every worker sees the open circuit immediately afterwards.
func TestChaosBreakerTripsAcrossCompressManyWorkers(t *testing.T) {
	ResetShared()
	trace.ResetTelemetry()
	comp, err := core.NewCompressor("breaker")
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.SetValue(keyBreakerCompressor, "faultinject")
	o.SetValue(keyBreakerScope, "many")
	o.SetValue(keyBreakerWindow, uint64(8))
	o.SetValue(keyBreakerFailures, uint64(3))
	o.SetValue(keyBreakerOpenMS, int64(60000)) // no recovery within this test
	o.SetValue(keyBreakerProbes, uint64(1))
	o.SetValue("faultinject:compressor", "noop")
	o.SetValue("faultinject:seed", int64(7))
	o.SetValue("faultinject:error_rate", float64(1))
	if err := comp.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	bufs := make([]*core.Data, 32)
	for i := range bufs {
		bufs[i] = core.FromFloat64s([]float64{1, 2, 3, 4}, 4)
	}
	if _, err := meta.CompressMany(comp, bufs, 4); err == nil {
		t.Fatal("an always-failing child should fail the batch")
	}
	if got := trace.CounterValue(trace.CtrBreakerOpened); got != 1 {
		t.Fatalf("breaker opened %d times across the fleet, want exactly 1 (shared state)", got)
	}
	if trace.CounterValue(trace.CtrBreakerRejected) == 0 {
		t.Fatal("no fast rejections: workers did not share the tripped circuit")
	}
	// The child saw only the calls before the trip, never the whole batch.
	if faults := trace.CounterValue("faultinject.errors"); faults >= 32 {
		t.Fatalf("child absorbed %d calls; the shared breaker should have cut the batch short", faults)
	}
}
