package service

import (
	"errors"
	"testing"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"

	_ "pressio/internal/faultinject"
	_ "pressio/internal/lossless"
)

// newTestBreaker builds a breaker compressor over the deterministic fault
// injector with a fake clock installed, returning the handles tests drive.
func newTestBreaker(t *testing.T, scope string, opts map[string]any) (*core.Compressor, *breaker, *FakeClock) {
	t.Helper()
	ResetShared()
	trace.ResetTelemetry()
	comp, err := core.NewCompressor("breaker")
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.SetValue(keyBreakerCompressor, "faultinject")
	o.SetValue(keyBreakerScope, scope)
	o.SetValue(keyBreakerWindow, uint64(8))
	o.SetValue(keyBreakerFailures, uint64(3))
	o.SetValue(keyBreakerOpenMS, int64(1000))
	o.SetValue(keyBreakerProbes, uint64(1))
	o.SetValue("faultinject:compressor", "noop")
	o.SetValue("faultinject:seed", int64(7))
	for k, v := range opts {
		switch v := v.(type) {
		case string:
			o.SetValue(k, v)
		case int64:
			o.SetValue(k, v)
		case uint64:
			o.SetValue(k, v)
		case float64:
			o.SetValue(k, v)
		}
	}
	if err := comp.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	b := comp.Plugin().(*breaker)
	fc := NewFakeClock(time.Unix(0, 0))
	b.state().SetClock(fc)
	return comp, b, fc
}

func compressOnce(comp *core.Compressor) error {
	in := core.FromFloat64s([]float64{1, 2, 3, 4}, 4)
	out := core.NewEmpty(core.DTypeByte, 0)
	return comp.Compress(in, out)
}

func TestBreakerTripsAfterThresholdAndRejectsFast(t *testing.T) {
	comp, b, _ := newTestBreaker(t, "trip", map[string]any{
		"faultinject:error_rate": float64(1),
	})
	// failure_threshold=3: the first three calls reach the (failing) child,
	// the fourth is rejected without touching it.
	for i := 0; i < 3; i++ {
		err := compressOnce(comp)
		if err == nil || errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("call %d: want an injected child failure, got %v", i, err)
		}
	}
	if got := b.state().Mode(); got != ModeOpen {
		t.Fatalf("after %d failures state is %v, want open", 3, got)
	}
	injectedBefore := trace.CounterValue("faultinject.errors")
	err := compressOnce(comp)
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, core.ErrShed) {
		t.Fatalf("open circuit returned %v, want ErrBreakerOpen wrapping ErrShed", err)
	}
	if d := trace.CounterValue("faultinject.errors") - injectedBefore; d != 0 {
		t.Fatalf("open circuit still reached the child (%d injected faults)", d)
	}
	if trace.CounterValue(trace.CtrBreakerOpened) != 1 {
		t.Fatalf("opened counter %d, want 1", trace.CounterValue(trace.CtrBreakerOpened))
	}
	if trace.CounterValue(trace.BreakerScopeKey("trip")) != 1 {
		t.Fatal("per-scope opened counter not incremented")
	}
	if trace.CounterValue(trace.CtrBreakerRejected) == 0 {
		t.Fatal("rejected counter not incremented")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	comp, b, fc := newTestBreaker(t, "recover", map[string]any{
		"faultinject:error_rate": float64(1),
	})
	for i := 0; i < 3; i++ {
		_ = compressOnce(comp)
	}
	if b.state().Mode() != ModeOpen {
		t.Fatal("breaker did not open")
	}
	// Heal the child, then let the cooldown elapse on the fake clock.
	heal := core.NewOptions()
	heal.SetValue("faultinject:error_rate", float64(0))
	if err := comp.SetOptions(heal); err != nil {
		t.Fatal(err)
	}
	if err := compressOnce(comp); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("cooldown not elapsed yet, want rejection, got %v", err)
	}
	fc.Advance(1001 * time.Millisecond)
	if got := b.state().Mode(); got != ModeHalfOpen {
		t.Fatalf("after cooldown state is %v, want half-open", got)
	}
	if err := compressOnce(comp); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if got := b.state().Mode(); got != ModeClosed {
		t.Fatalf("after successful probe state is %v, want closed", got)
	}
	if trace.CounterValue(trace.CtrBreakerProbes) != 1 {
		t.Fatalf("probe counter %d, want 1", trace.CounterValue(trace.CtrBreakerProbes))
	}
	if trace.CounterValue(trace.CtrBreakerRecovered) != 1 {
		t.Fatalf("recovered counter %d, want 1", trace.CounterValue(trace.CtrBreakerRecovered))
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	comp, b, fc := newTestBreaker(t, "reopen", map[string]any{
		"faultinject:error_rate": float64(1),
	})
	for i := 0; i < 3; i++ {
		_ = compressOnce(comp)
	}
	fc.Advance(1001 * time.Millisecond)
	// Child still failing: the probe must send the circuit straight back to
	// open for a fresh cooldown.
	if err := compressOnce(comp); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe should reach the failing child, got %v", err)
	}
	if got := b.state().Mode(); got != ModeOpen {
		t.Fatalf("after failed probe state is %v, want open", got)
	}
	if trace.CounterValue(trace.CtrBreakerOpened) != 2 {
		t.Fatalf("opened counter %d, want 2 (initial trip + failed probe)",
			trace.CounterValue(trace.CtrBreakerOpened))
	}
}

func TestBreakerClonesShareScopeState(t *testing.T) {
	comp, _, _ := newTestBreaker(t, "fleet", map[string]any{
		"faultinject:error_rate": float64(1),
	})
	worker1 := comp.Clone()
	worker2 := comp.Clone()
	// All failures flow through worker1; worker2 must still see the trip.
	for i := 0; i < 3; i++ {
		_ = compressOnce(worker1)
	}
	if err := compressOnce(worker2); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("clone did not share the tripped state: %v", err)
	}
	// An independently constructed breaker with the same scope shares too.
	other, err := core.NewCompressor("breaker")
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.SetValue(keyBreakerCompressor, "faultinject")
	o.SetValue(keyBreakerScope, "fleet")
	o.SetValue(keyBreakerWindow, uint64(8))
	o.SetValue(keyBreakerFailures, uint64(3))
	o.SetValue(keyBreakerOpenMS, int64(1000))
	o.SetValue(keyBreakerProbes, uint64(1))
	if err := other.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	if err := compressOnce(other); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("same-scope breaker did not share the tripped state: %v", err)
	}
}

func TestBreakerOptionValidation(t *testing.T) {
	ResetShared()
	comp, err := core.NewCompressor("breaker")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []func(*core.Options){
		func(o *core.Options) { o.SetValue(keyBreakerWindow, uint64(0)) },
		func(o *core.Options) { o.SetValue(keyBreakerProbes, uint64(0)) },
		func(o *core.Options) { o.SetValue(keyBreakerOpenMS, int64(-1)) },
		func(o *core.Options) { o.SetValue(keyBreakerLatencyMS, int64(-5)) },
		func(o *core.Options) {
			o.SetValue(keyBreakerWindow, uint64(4))
			o.SetValue(keyBreakerFailures, uint64(9))
		},
	} {
		o := core.NewOptions()
		bad(o)
		if err := comp.CheckOptions(o); !errors.Is(err, core.ErrInvalidOption) {
			t.Errorf("CheckOptions(%v) = %v, want ErrInvalidOption", o.Keys(), err)
		}
	}
	// The read-only state option reports the live mode.
	opts := comp.Options()
	if s, err := opts.GetString(keyBreakerStateReport); err != nil || s != "closed" {
		t.Errorf("breaker:state = %q (%v), want closed", s, err)
	}
}

func TestBreakerLatencyThresholdCountsSlowCalls(t *testing.T) {
	comp, b, _ := newTestBreaker(t, "slow", map[string]any{
		keyBreakerLatencyMS:      int64(1),
		keyBreakerFailures:       uint64(2),
		"faultinject:delay_rate": float64(1),
		"faultinject:delay_ms":   int64(5),
	})
	// Calls succeed but take ~5ms against a 1ms limit: slow counts as failing.
	for i := 0; i < 2; i++ {
		if err := compressOnce(comp); err != nil {
			t.Fatalf("slow call %d errored: %v", i, err)
		}
	}
	if got := b.state().Mode(); got != ModeOpen {
		t.Fatalf("after slow calls state is %v, want open", got)
	}
}
