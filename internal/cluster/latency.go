package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is a fixed-size ring of a peer's recent round-trip times.
// The router derives each peer's hedge delay from its p99: hedge only when
// the primary is slower than essentially all of its recent history.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	filled  int
}

// latencyWindowSize bounds the history per peer. 128 samples make the p99
// track roughly the slowest-of-the-last-128, which adapts within a couple of
// seconds under steady load yet ignores one-off spikes.
const latencyWindowSize = 128

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{samples: make([]time.Duration, latencyWindowSize)}
}

// observe records one round-trip time.
func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.next] = d
	w.next = (w.next + 1) % len(w.samples)
	if w.filled < len(w.samples) {
		w.filled++
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile (0..1) of the recorded window, or 0 when
// no samples exist yet.
func (w *latencyWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	if w.filled == 0 {
		w.mu.Unlock()
		return 0
	}
	tmp := make([]time.Duration, w.filled)
	copy(tmp, w.samples[:w.filled])
	w.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := int(q * float64(len(tmp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// hedgeDelay maps the window to a hedge trigger: p99 clamped to
// [floor, ceiling]. Before any samples exist the floor applies, so a cold
// router hedges conservatively instead of instantly doubling its traffic.
func (w *latencyWindow) hedgeDelay(floor, ceiling time.Duration) time.Duration {
	d := w.quantile(0.99)
	if d < floor {
		d = floor
	}
	if ceiling > 0 && d > ceiling {
		d = ceiling
	}
	return d
}
