package cluster

import (
	"testing"
	"time"
)

func TestLatencyWindowQuantile(t *testing.T) {
	w := newLatencyWindow()
	if got := w.quantile(0.99); got != 0 {
		t.Fatalf("empty window p99 = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		w.observe(time.Duration(i) * time.Millisecond)
	}
	if got := w.quantile(0.5); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := w.quantile(0.99); got < 95*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
}

func TestLatencyWindowWrapsAround(t *testing.T) {
	w := newLatencyWindow()
	// Fill with slow samples, then overwrite the whole ring with fast ones:
	// the p99 must forget the old regime.
	for i := 0; i < latencyWindowSize; i++ {
		w.observe(time.Second)
	}
	for i := 0; i < latencyWindowSize; i++ {
		w.observe(time.Millisecond)
	}
	if got := w.quantile(0.99); got != time.Millisecond {
		t.Fatalf("p99 after full wrap = %v, want 1ms", got)
	}
}

func TestHedgeDelayClamps(t *testing.T) {
	w := newLatencyWindow()
	floor, ceiling := 25*time.Millisecond, 2*time.Second

	// Cold window: floor applies (never hedge instantly).
	if got := w.hedgeDelay(floor, ceiling); got != floor {
		t.Fatalf("cold hedge delay = %v, want floor %v", got, floor)
	}
	// Fast peer: p99 below the floor still hedges no earlier than the floor.
	for i := 0; i < 64; i++ {
		w.observe(time.Millisecond)
	}
	if got := w.hedgeDelay(floor, ceiling); got != floor {
		t.Fatalf("fast-peer hedge delay = %v, want floor %v", got, floor)
	}
	// Pathological peer: p99 above the ceiling is capped.
	for i := 0; i < latencyWindowSize; i++ {
		w.observe(10 * time.Second)
	}
	if got := w.hedgeDelay(floor, ceiling); got != ceiling {
		t.Fatalf("slow-peer hedge delay = %v, want ceiling %v", got, ceiling)
	}
}
