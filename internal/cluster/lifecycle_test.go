package cluster

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// fakeComp records start/stop order into a shared journal.
type fakeComp struct {
	name     string
	journal  *[]string
	startErr error
	stopErr  error
	ready    bool
}

func (f *fakeComp) Name() string { return f.name }
func (f *fakeComp) Start(context.Context) error {
	*f.journal = append(*f.journal, "start:"+f.name)
	return f.startErr
}
func (f *fakeComp) Stop(context.Context) error {
	*f.journal = append(*f.journal, "stop:"+f.name)
	return f.stopErr
}

// fakeReadyComp additionally reports readiness.
type fakeReadyComp struct {
	fakeComp
}

func (f *fakeReadyComp) Ready() bool { return f.ready }

func TestRuntimeStartsDependenciesFirstStopsInReverse(t *testing.T) {
	var journal []string
	rt := NewRuntime()
	// Register out of dependency order on purpose.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(rt.Register(&fakeComp{name: "listener", journal: &journal}, "router"))
	must(rt.Register(&fakeComp{name: "router", journal: &journal}, "health"))
	must(rt.Register(&fakeComp{name: "health", journal: &journal}))
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := rt.Components(); !reflect.DeepEqual(got, []string{"health", "router", "listener"}) {
		t.Fatalf("start order %v", got)
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"start:health", "start:router", "start:listener",
		"stop:listener", "stop:router", "stop:health",
	}
	if !reflect.DeepEqual(journal, want) {
		t.Fatalf("journal %v, want %v", journal, want)
	}
}

func TestRuntimeFailedStartUnwindsStartedComponents(t *testing.T) {
	var journal []string
	rt := NewRuntime()
	_ = rt.Register(&fakeComp{name: "a", journal: &journal})
	_ = rt.Register(&fakeComp{name: "b", journal: &journal, startErr: errors.New("boom")}, "a")
	err := rt.Start(context.Background())
	if err == nil || !strings.Contains(err.Error(), `start "b"`) {
		t.Fatalf("err = %v", err)
	}
	// a started and must have been stopped again; b never made it into the
	// started set so only its failed start appears.
	want := []string{"start:a", "start:b", "stop:a"}
	if !reflect.DeepEqual(journal, want) {
		t.Fatalf("journal %v, want %v", journal, want)
	}
	if rt.Ready() {
		t.Fatal("failed runtime must not report ready")
	}
}

func TestRuntimeRejectsCyclesAndUnknownDeps(t *testing.T) {
	var journal []string
	rt := NewRuntime()
	_ = rt.Register(&fakeComp{name: "a", journal: &journal}, "b")
	_ = rt.Register(&fakeComp{name: "b", journal: &journal}, "a")
	if err := rt.Start(context.Background()); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}

	rt2 := NewRuntime()
	_ = rt2.Register(&fakeComp{name: "a", journal: &journal}, "ghost")
	if err := rt2.Start(context.Background()); err == nil || !strings.Contains(err.Error(), `unregistered "ghost"`) {
		t.Fatalf("unknown dep not detected: %v", err)
	}

	rt3 := NewRuntime()
	if err := rt3.Register(&fakeComp{name: "a", journal: &journal}); err != nil {
		t.Fatal(err)
	}
	if err := rt3.Register(&fakeComp{name: "a", journal: &journal}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := rt3.Register(&fakeComp{name: "", journal: &journal}); err == nil {
		t.Fatal("nameless component accepted")
	}
}

func TestRuntimeReadyAggregatesReporters(t *testing.T) {
	var journal []string
	rt := NewRuntime()
	plain := &fakeComp{name: "plain", journal: &journal}
	gated := &fakeReadyComp{fakeComp: fakeComp{name: "gated", journal: &journal}}
	_ = rt.Register(plain)
	_ = rt.Register(gated)
	if rt.Ready() {
		t.Fatal("unstarted runtime reported ready")
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rt.Ready() {
		t.Fatal("runtime ready while a ReadyReporter says not ready")
	}
	gated.ready = true
	if !rt.Ready() {
		t.Fatal("runtime not ready though every reporter is")
	}
	if err := rt.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rt.Ready() {
		t.Fatal("stopped runtime reported ready")
	}
}

func TestRuntimeStopJoinsErrorsAndStopsEveryone(t *testing.T) {
	var journal []string
	rt := NewRuntime()
	_ = rt.Register(&fakeComp{name: "a", journal: &journal, stopErr: errors.New("a failed")})
	_ = rt.Register(&fakeComp{name: "b", journal: &journal, stopErr: errors.New("b failed")}, "a")
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := rt.Stop(context.Background())
	if err == nil || !strings.Contains(err.Error(), "a failed") || !strings.Contains(err.Error(), "b failed") {
		t.Fatalf("stop errors not joined: %v", err)
	}
	// Both stops ran despite both failing.
	want := []string{"start:a", "start:b", "stop:b", "stop:a"}
	if !reflect.DeepEqual(journal, want) {
		t.Fatalf("journal %v, want %v", journal, want)
	}
}
