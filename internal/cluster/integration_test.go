// Integration tests: the router over real in-process pressiod shards, the
// health checker driving placement, and a deterministic network-fault
// campaign through the faultinject HTTP round tripper. The external test
// package breaks the cluster→daemon import cycle.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"pressio/internal/cluster"
	"pressio/internal/core"
	"pressio/internal/daemon"
	"pressio/internal/faultinject"
	"pressio/internal/service"
	"pressio/internal/trace"

	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/resilience"
	_ "pressio/internal/sz"
)

// startShard boots a real pressiod on an ephemeral port with a lossless
// compressor, so router round-trips can assert byte equality.
func startShard(t *testing.T, compressor string) *daemon.Daemon {
	t.Helper()
	d, err := daemon.New(daemon.Config{
		Addr:         "127.0.0.1:0",
		Compressor:   compressor,
		Concurrency:  2,
		MemBudget:    1 << 28,
		QueueDepth:   32,
		ReqTimeout:   10 * time.Second,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	// Double-drain is safe (the lifecycle runtime's second Stop is a no-op),
	// so tests that kill a shard mid-run need no bookkeeping here.
	t.Cleanup(func() { _ = d.Drain() })
	return d
}

// float32Chunks builds n unique compressible float32 buffers; uniqueness
// (the index is baked into every chunk) makes lost or cross-wired results
// detectable.
func float32Chunks(n, valsPer int) []cluster.Chunk {
	chunks := make([]cluster.Chunk, n)
	for i := range chunks {
		buf := make([]byte, valsPer*4)
		for j := 0; j < valsPer; j++ {
			v := float32(i)*1000 + float32(math.Sin(float64(j)/10))
			binary.LittleEndian.PutUint32(buf[j*4:], math.Float32bits(v))
		}
		chunks[i] = cluster.Chunk{DType: core.DTypeFloat32, Dims: []uint64{uint64(valsPer)}, Payload: buf}
	}
	return chunks
}

func newShardRouter(t *testing.T, cfg cluster.RouterConfig) *cluster.Router {
	t.Helper()
	service.ResetShared()
	trace.ResetTelemetry()
	r, err := cluster.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Stop(context.Background()) })
	return r
}

// roundTripAll compresses every chunk through the router and decompresses
// the results back, asserting exact recovery at the original index — the
// zero-lost, zero-duplicated, zero-cross-wired invariant.
func roundTripAll(t *testing.T, r *cluster.Router, chunks []cluster.Chunk) {
	t.Helper()
	ctx := context.Background()
	compressed, err := r.CompressMany(ctx, chunks)
	if err != nil {
		t.Fatalf("CompressMany: %v", err)
	}
	back := make([]cluster.Chunk, len(chunks))
	for i := range chunks {
		if compressed[i] == nil {
			t.Fatalf("chunk %d lost in compression", i)
		}
		back[i] = cluster.Chunk{DType: chunks[i].DType, Dims: chunks[i].Dims, Payload: compressed[i]}
	}
	restored, err := r.DecompressMany(ctx, back)
	if err != nil {
		t.Fatalf("DecompressMany: %v", err)
	}
	for i := range chunks {
		if !bytes.Equal(restored[i], chunks[i].Payload) {
			t.Fatalf("chunk %d did not round-trip (lost, duplicated, or cross-wired)", i)
		}
	}
}

func TestRouterOverRealShardsRoundTrips(t *testing.T) {
	shards := []*daemon.Daemon{
		startShard(t, "flate"),
		startShard(t, "flate"),
		startShard(t, "flate"),
	}
	peers := make([]string, len(shards))
	for i, s := range shards {
		peers[i] = s.Addr()
	}
	r := newShardRouter(t, cluster.RouterConfig{
		Peers:    peers,
		Replicas: 2,
		Peer:     cluster.PeerConfig{Attempts: 2, Timeout: 10 * time.Second},
	})
	roundTripAll(t, r, float32Chunks(24, 512))
	if trace.CounterValue(trace.CtrClusterLocalFallback) != 0 {
		t.Fatal("healthy fleet degraded to local")
	}
}

func TestHealthCheckerDrivesRingAndRouterSurvivesShardDeath(t *testing.T) {
	shards := []*daemon.Daemon{
		startShard(t, "flate"),
		startShard(t, "flate"),
		startShard(t, "flate"),
	}
	peers := make([]string, len(shards))
	for i, s := range shards {
		peers[i] = s.Addr()
	}
	r := newShardRouter(t, cluster.RouterConfig{
		Peers:    peers,
		Replicas: 2,
		Peer:     cluster.PeerConfig{Attempts: 2, Timeout: 5 * time.Second},
	})
	transitions := make(chan string, 16)
	hc := cluster.NewHealthChecker(r, 50*time.Millisecond)
	hc.OnChange = func(peer string, up bool) {
		transitions <- fmt.Sprintf("%s up=%v", peer, up)
	}
	if err := hc.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hc.Stop(context.Background()) })
	if !hc.Ready() {
		t.Fatal("health checker not ready after first sweep")
	}
	if got := r.Ring().UpCount(); got != 3 {
		t.Fatalf("first sweep classified %d/3 peers up", got)
	}

	// Kill one shard; the checker must notice and flip the ring.
	dead := peers[0]
	if err := shards[0].Drain(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Ring().Up(dead) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if r.Ring().Up(dead) {
		t.Fatal("health checker never marked the dead shard down")
	}
	if trace.CounterValue(trace.CtrClusterPeerDown) == 0 {
		t.Fatal("peer-down transition not counted")
	}
	select {
	case ev := <-transitions:
		if ev != dead+" up=false" {
			t.Fatalf("unexpected transition %q", ev)
		}
	default:
		t.Fatal("OnChange not invoked for the down transition")
	}

	// Traffic keeps flowing: every key had R=2 replicas, so one dead shard
	// of three leaves every replica set with a live member.
	roundTripAll(t, r, float32Chunks(24, 512))
	if r.Ring().UpCount() != 2 {
		t.Fatalf("ring up-count %d after one death", r.Ring().UpCount())
	}
}

// TestChaosClusterNetworkFaultCampaign drives the router through a
// deterministic storm of injected network faults — refused connections,
// added latency, truncated response bodies — and requires every chunk to
// round-trip anyway: retries absorb refused dials, hedges and failover
// absorb latency, and truncated bodies are detected and retried.
func TestChaosClusterNetworkFaultCampaign(t *testing.T) {
	shards := []*daemon.Daemon{
		startShard(t, "flate"),
		startShard(t, "flate"),
		startShard(t, "flate"),
	}
	peers := make([]string, len(shards))
	for i, s := range shards {
		peers[i] = s.Addr()
	}
	rt, err := faultinject.NewRoundTripper(nil, faultinject.HTTPRates{
		Seed:     7,
		Refuse:   0.15,
		Delay:    0.10,
		DelayMS:  5,
		Truncate: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := newShardRouter(t, cluster.RouterConfig{
		Peers:      peers,
		Replicas:   2,
		HedgeFloor: 50 * time.Millisecond,
		Peer: cluster.PeerConfig{
			Transport: rt,
			Attempts:  3,
			Timeout:   10 * time.Second,
			// A generous breaker: the campaign tests retry/failover, and a
			// 15% refuse rate must not trip circuits mid-run.
			Breaker: service.BreakerConfig{Window: 64, Failures: 48, Cooldown: 100 * time.Millisecond, Probes: 4},
		},
	})

	before := runtime.NumGoroutine()
	roundTripAll(t, r, float32Chunks(48, 256))
	// Release pooled keep-alive connections before counting: their read
	// loops are idle-pool machinery, not leaked request goroutines.
	_ = r.Stop(context.Background())

	injected := trace.CounterValue(faultinject.CtrHTTPRefused) +
		trace.CounterValue(faultinject.CtrHTTPDelays) +
		trace.CounterValue(faultinject.CtrHTTPTruncated)
	if injected == 0 {
		t.Fatal("campaign injected no faults; the test proved nothing")
	}
	if trace.CounterValue(trace.CtrClusterRetries) == 0 && trace.CounterValue(trace.CtrClusterFailovers) == 0 {
		t.Fatal("faults were injected but neither retries nor failovers fired")
	}
	t.Logf("campaign: %d faults injected, %d retries, %d failovers, %d hedges",
		injected,
		trace.CounterValue(trace.CtrClusterRetries),
		trace.CounterValue(trace.CtrClusterFailovers),
		trace.CounterValue(trace.CtrClusterHedges))

	// The storm must not leak request goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+5 {
		t.Fatalf("goroutines leaked under fault campaign: %d before, %d after", before, got)
	}
}
