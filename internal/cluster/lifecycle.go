package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"pressio/internal/obslog"
)

// Component is one managed piece of a daemon: something with a bounded
// start, a bounded stop, and a name for dependency edges and logs.
type Component interface {
	Name() string
	// Start brings the component up. ctx bounds startup only; long-running
	// components own their run lifetime and join it in Stop.
	Start(ctx context.Context) error
	// Stop brings the component down, bounded by ctx.
	Stop(ctx context.Context) error
}

// ReadyReporter is optionally implemented by components with a readiness
// notion beyond "Start returned nil" (a health checker mid-first-sweep, a
// router with no live peers). Runtime.Ready aggregates these.
type ReadyReporter interface {
	Ready() bool
}

// Runtime is a small lifecycle manager: components register with dependency
// edges, Start brings them up in dependency order (dependencies first),
// Stop tears them down in exact reverse start order, and Ready aggregates
// component readiness. It exists so pressiod's router mode can sequence
// health-checker → router → listener without hand-rolled ordering in the
// daemon, and so a failed startup unwinds cleanly.
type Runtime struct {
	mu      sync.Mutex
	nodes   map[string]*runtimeNode
	started []*runtimeNode // in start order
}

type runtimeNode struct {
	comp Component
	deps []string
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{nodes: map[string]*runtimeNode{}}
}

// Register adds a component with its dependencies (by component name).
// Dependencies may be registered later; they are resolved at Start.
func (r *Runtime) Register(c Component, deps ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := c.Name()
	if name == "" {
		return errors.New("lifecycle: component has no name")
	}
	if _, dup := r.nodes[name]; dup {
		return fmt.Errorf("lifecycle: duplicate component %q", name)
	}
	r.nodes[name] = &runtimeNode{comp: c, deps: append([]string(nil), deps...)}
	return nil
}

// order topologically sorts the registered components, dependencies first.
// Ties break on name so the order is deterministic. Callers hold r.mu.
func (r *Runtime) order() ([]*runtimeNode, error) {
	names := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		names = append(names, n)
	}
	sort.Strings(names)

	indegree := make(map[string]int, len(names))
	dependents := make(map[string][]string, len(names))
	for _, n := range names {
		for _, d := range r.nodes[n].deps {
			if _, ok := r.nodes[d]; !ok {
				return nil, fmt.Errorf("lifecycle: component %q depends on unregistered %q", n, d)
			}
			indegree[n]++
			dependents[d] = append(dependents[d], n)
		}
	}
	var queue []string
	for _, n := range names {
		if indegree[n] == 0 {
			queue = append(queue, n)
		}
	}
	out := make([]*runtimeNode, 0, len(names))
	for len(queue) > 0 {
		sort.Strings(queue)
		n := queue[0]
		queue = queue[1:]
		out = append(out, r.nodes[n])
		for _, dep := range dependents[n] {
			indegree[dep]--
			if indegree[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if len(out) != len(names) {
		cyclic := make([]string, 0)
		for _, n := range names {
			if indegree[n] > 0 {
				cyclic = append(cyclic, n)
			}
		}
		return nil, fmt.Errorf("lifecycle: dependency cycle among %v", cyclic)
	}
	return out, nil
}

// Start brings every component up, dependencies first. If any Start fails,
// the components already started are stopped in reverse order and the
// startup error is returned (joined with any unwind errors).
func (r *Runtime) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.started) > 0 {
		return errors.New("lifecycle: already started")
	}
	order, err := r.order()
	if err != nil {
		return err
	}
	for _, node := range order {
		// The mutex is MEANT to cover the blocking Start: it serializes whole
		// lifecycle transitions so a concurrent Stop cannot interleave with a
		// half-finished startup. Component Starts are boot-time, not request-path.
		//lint:ignore blockinglock the lock's contract is mutual exclusion of full start/stop transitions, blocking included
		if err := node.comp.Start(ctx); err != nil {
			err = fmt.Errorf("lifecycle: start %q: %w", node.comp.Name(), err)
			//lint:ignore blockinglock the failed-start unwind must run under the same transition lock it began with
			if unwindErr := r.stopLocked(ctx); unwindErr != nil {
				err = errors.Join(err, unwindErr)
			}
			return err
		}
		//lint:ignore blockinglock boot-time log, once per component start, off any request path
		obslog.Default().Debugw("lifecycle.started", obslog.Str("component", node.comp.Name()))
		r.started = append(r.started, node)
	}
	return nil
}

// Stop tears the started components down in exact reverse start order,
// bounded by ctx. All stop errors are joined; every component gets its
// chance to stop even when an earlier one fails.
func (r *Runtime) Stop(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Same contract as Start: the lock serializes the whole (blocking)
	// transition so Start/Stop can never interleave.
	//lint:ignore blockinglock the lock's contract is mutual exclusion of full start/stop transitions, blocking included
	return r.stopLocked(ctx)
}

func (r *Runtime) stopLocked(ctx context.Context) error {
	var errs []error
	for i := len(r.started) - 1; i >= 0; i-- {
		node := r.started[i]
		if err := node.comp.Stop(ctx); err != nil {
			errs = append(errs, fmt.Errorf("lifecycle: stop %q: %w", node.comp.Name(), err))
		}
		obslog.Default().Debugw("lifecycle.stopped", obslog.Str("component", node.comp.Name()))
	}
	r.started = nil
	return errors.Join(errs...)
}

// Ready reports aggregate readiness: every registered component has started
// and every ReadyReporter among them answers true.
func (r *Runtime) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.started) != len(r.nodes) || len(r.nodes) == 0 {
		return false
	}
	for _, node := range r.started {
		if rr, ok := node.comp.(ReadyReporter); ok && !rr.Ready() {
			return false
		}
	}
	return true
}

// Components returns the started component names in start order (for logs
// and tests).
func (r *Runtime) Components() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.started))
	for i, node := range r.started {
		out[i] = node.comp.Name()
	}
	return out
}
