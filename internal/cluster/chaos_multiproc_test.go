// Multi-process chaos proof: three real pressiod shard processes, a router
// fanning CompressMany traffic across them, one shard SIGKILLed mid-load —
// and every chunk must still complete with a verified round-trip, zero lost,
// zero duplicated, zero cross-wired, with no goroutines leaked by the
// router. Run by scripts/check.sh and CI under the race detector.
package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"pressio/internal/cluster"
	"pressio/internal/service"
	"pressio/internal/trace"
)

// buildPressiod compiles the real daemon binary once per test invocation.
func buildPressiod(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH; cannot build pressiod")
	}
	bin := filepath.Join(t.TempDir(), "pressiod")
	cmd := exec.Command("go", "build", "-o", bin, "pressio/cmd/pressiod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build pressiod: %v\n%s", err, out)
	}
	return bin
}

// shardProc is one out-of-process pressiod shard.
type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

// startShardProc launches pressiod on an ephemeral port and parses the bound
// address from its "pressiod: listening on ADDR" stderr line (the same
// contract the smoke scripts rely on).
func startShardProc(t *testing.T, bin string) *shardProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-compressor", "flate",
		"-concurrency", "4",
		"-lame-duck", "1ms",
		"-drain-timeout", "5s",
		"-log-level", "error",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "pressiod: listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case addrCh <- addr:
				default:
				}
			}
			// Keep draining so the child never blocks on a full stderr pipe.
		}
	}()
	select {
	case addr := <-addrCh:
		return &shardProc{cmd: cmd, addr: addr}
	case <-time.After(15 * time.Second):
		t.Fatal("shard never reported its listen address")
		return nil
	}
}

func TestChaosClusterShardSIGKILLMidLoad(t *testing.T) {
	bin := buildPressiod(t)
	shards := []*shardProc{
		startShardProc(t, bin),
		startShardProc(t, bin),
		startShardProc(t, bin),
	}
	peers := make([]string, len(shards))
	for i, s := range shards {
		peers[i] = s.addr
	}

	service.ResetShared()
	trace.ResetTelemetry()
	baselineGoroutines := runtime.NumGoroutine()
	r, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:      peers,
		Replicas:   2, // every key survives any single shard death
		HedgeFloor: 25 * time.Millisecond,
		Fanout:     8,
		Peer:       cluster.PeerConfig{Attempts: 3, Timeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	hc := cluster.NewHealthChecker(r, 100*time.Millisecond)
	if err := hc.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hc.Stop(context.Background()) })
	if got := r.Ring().UpCount(); got != 3 {
		t.Fatalf("fleet not healthy before chaos: %d/3 up", got)
	}

	// Concurrent CompressMany load: unique payloads so a lost, duplicated,
	// or cross-wired chunk cannot escape the final equality sweep.
	chunks := float32Chunks(240, 1024)
	type waveResult struct {
		compressed [][]byte
		err        error
	}
	waveCh := make(chan waveResult, 1)
	go func() {
		compressed, err := r.CompressMany(context.Background(), chunks)
		waveCh <- waveResult{compressed, err}
	}()

	// SIGKILL one shard mid-load: wait until the wave is demonstrably in
	// flight (some requests routed, many still to go), then kill without
	// ceremony — no drain, no lame duck, in-flight requests die with it.
	deadline := time.Now().Add(10 * time.Second)
	for trace.CounterValue(trace.CtrClusterRequests) < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if trace.CounterValue(trace.CtrClusterRequests) < 20 {
		t.Fatal("load never ramped; cannot kill mid-load")
	}
	victim := shards[0]
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitErr := victim.cmd.Wait()
	if waitErr == nil {
		t.Fatal("SIGKILLed shard exited cleanly; the kill was not a kill")
	}

	wave := <-waveCh
	if wave.err != nil {
		t.Fatalf("chunks lost to the shard kill: %v", wave.err)
	}
	for i, c := range wave.compressed {
		if c == nil {
			t.Fatalf("chunk %d lost (nil result, nil error)", i)
		}
	}

	// The health checker must re-resolve placement: the victim goes down on
	// the ring, so post-kill traffic skips it without burning an attempt.
	ringDeadline := time.Now().Add(5 * time.Second)
	for r.Ring().Up(victim.addr) && time.Now().Before(ringDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if r.Ring().Up(victim.addr) {
		t.Fatal("health checker never marked the SIGKILLed shard down")
	}

	// Verified round-trips over the survivor fleet: exact recovery at the
	// original index proves zero lost and zero duplicated chunks.
	back := make([]cluster.Chunk, len(chunks))
	for i := range chunks {
		back[i] = cluster.Chunk{DType: chunks[i].DType, Dims: chunks[i].Dims, Payload: wave.compressed[i]}
	}
	restored, err := r.DecompressMany(context.Background(), back)
	if err != nil {
		t.Fatalf("decompression wave failed on the survivor fleet: %v", err)
	}
	for i := range chunks {
		if !bytes.Equal(restored[i], chunks[i].Payload) {
			t.Fatalf("chunk %d did not round-trip after the kill", i)
		}
	}

	t.Logf("chaos: %d requests, %d retries, %d failovers, %d hedges, %d peer-down transitions",
		trace.CounterValue(trace.CtrClusterRequests),
		trace.CounterValue(trace.CtrClusterRetries),
		trace.CounterValue(trace.CtrClusterFailovers),
		trace.CounterValue(trace.CtrClusterHedges),
		trace.CounterValue(trace.CtrClusterPeerDown))

	// Goroutine-leak assertion: after stopping the health checker and
	// releasing pooled connections, the process converges to its pre-router
	// baseline — hedged losers and killed-peer requests all joined.
	_ = hc.Stop(context.Background())
	_ = r.Stop(context.Background())
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baselineGoroutines+5 && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baselineGoroutines+5 {
		t.Fatalf("goroutines leaked through the chaos run: %d baseline, %d after", baselineGoroutines, got)
	}
}
