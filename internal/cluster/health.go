package cluster

import (
	"context"
	"sync/atomic"
	"time"

	"pressio/internal/obslog"
	"pressio/internal/trace"
)

// HealthChecker polls every peer's /readyz and flips health state on the
// router's ring, so placement re-resolves on peer-up/peer-down transitions
// instead of waiting for request-path failures. It is a lifecycle Component:
// Start launches the poll loop, Ready reports once the first full sweep has
// classified every peer, Stop joins the loop.
type HealthChecker struct {
	router   *Router
	interval time.Duration
	timeout  time.Duration
	// OnChange, when set before Start, is invoked (outside any lock) for
	// every up/down transition.
	OnChange func(peer string, up bool)

	cancel context.CancelFunc
	done   chan struct{}
	swept  atomic.Bool
}

// NewHealthChecker builds a checker over the router's peers. interval <= 0
// defaults to 1s; the per-probe timeout is interval capped at 2s.
func NewHealthChecker(router *Router, interval time.Duration) *HealthChecker {
	if interval <= 0 {
		interval = time.Second
	}
	timeout := interval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	return &HealthChecker{router: router, interval: interval, timeout: timeout}
}

// Name implements Component.
func (h *HealthChecker) Name() string { return "health" }

// Start implements Component: one immediate sweep (so Ready flips as soon as
// the fleet has been classified once), then a steady poll loop until Stop.
func (h *HealthChecker) Start(context.Context) error {
	// The loop outlives the startup call; it gets its own cancellable
	// lifetime, joined by Stop.
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.done = make(chan struct{})
	h.sweep(ctx)
	h.swept.Store(true)
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(h.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				h.sweep(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
	return nil
}

// Stop implements Component: cancel the loop and wait for it (bounded by
// ctx).
func (h *HealthChecker) Stop(ctx context.Context) error {
	if h.cancel == nil {
		return nil
	}
	h.cancel()
	select {
	case <-h.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Ready implements ReadyReporter: true once the first sweep completed.
func (h *HealthChecker) Ready() bool { return h.swept.Load() }

// sweep probes every peer once and records transitions.
func (h *HealthChecker) sweep(ctx context.Context) {
	for addr, pc := range h.router.clients {
		if ctx.Err() != nil {
			return
		}
		err := pc.CheckReady(ctx, h.timeout)
		up := err == nil
		if !h.router.ring.SetUp(addr, up) {
			continue // no transition
		}
		if up {
			trace.CounterAdd(trace.CtrClusterPeerUp, 1)
			obslog.Default().Infow("cluster.peer_up", obslog.Str("peer", addr))
		} else {
			trace.CounterAdd(trace.CtrClusterPeerDown, 1)
			obslog.Default().Warnw("cluster.peer_down", obslog.Str("peer", addr), obslog.Err(err))
		}
		if h.OnChange != nil {
			h.OnChange(addr, up)
		}
	}
}
