package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pressio/internal/core"
	"pressio/internal/service"
	"pressio/internal/trace"
)

// fakeShard is an httptest stand-in for a pressiod peer: it answers the data
// plane with tag+body so tests can tell which shard served, and counts hits.
type fakeShard struct {
	ts   *httptest.Server
	tag  string
	hits atomic.Int64
	// delay slows every response (hedging tests).
	delay time.Duration
	// status, when nonzero, short-circuits with that code.
	status atomic.Int64
	// lastTraceparent/lastRequestID record propagation headers.
	lastTraceparent atomic.Value
	lastRequestID   atomic.Value
}

func newFakeShard(t *testing.T, tag string, delay time.Duration) *fakeShard {
	t.Helper()
	s := &fakeShard{tag: tag, delay: delay}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		s.lastTraceparent.Store(r.Header.Get("Traceparent"))
		s.lastRequestID.Store(r.Header.Get("X-Pressio-Request-Id"))
		if s.delay > 0 {
			select {
			case <-time.After(s.delay):
			case <-r.Context().Done():
				return
			}
		}
		if code := s.status.Load(); code != 0 {
			if code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
				w.Header().Set("X-Pressio-Error", "shed")
			}
			http.Error(w, "injected", int(code))
			return
		}
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(r.Body)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(append([]byte(s.tag+":"), body.Bytes()...))
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *fakeShard) addr() string { return s.ts.Listener.Addr().String() }

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	service.ResetShared()
	trace.ResetTelemetry()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Stop(context.Background()) })
	return r
}

// payloadFor finds a payload whose primary replica is the given peer, so
// tests can aim traffic at a specific shard without faking the ring.
func payloadFor(t *testing.T, r *Router, primary string) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := []byte(fmt.Sprintf("aimed-payload-%d", i))
		if r.ring.Replicas(p, r.cfg.Replicas)[0] == primary {
			return p
		}
	}
	t.Fatal("no payload hashes to the requested primary")
	return nil
}

func TestRouterPlacementIsSticky(t *testing.T) {
	a := newFakeShard(t, "a", 0)
	b := newFakeShard(t, "b", 0)
	c := newFakeShard(t, "c", 0)
	r := newTestRouter(t, RouterConfig{Peers: []string{a.addr(), b.addr(), c.addr()}})

	payload := []byte("sticky-payload")
	first, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, first) {
			t.Fatalf("same key served by different shards: %q vs %q", again, first)
		}
	}
	if got := trace.CounterValue(trace.CtrClusterRequests); got != 6 {
		t.Fatalf("cluster.requests = %d, want 6", got)
	}
	if trace.CounterValue(trace.CtrClusterFailovers) != 0 {
		t.Fatal("healthy fleet recorded failovers")
	}
}

func TestRouterFailsOverToReplicaWhenPrimaryDies(t *testing.T) {
	a := newFakeShard(t, "a", 0)
	b := newFakeShard(t, "b", 0)
	c := newFakeShard(t, "c", 0)
	r := newTestRouter(t, RouterConfig{
		Peers: []string{a.addr(), b.addr(), c.addr()},
		Peer:  PeerConfig{Attempts: 2, Timeout: 2 * time.Second},
	})
	payload := payloadFor(t, r, a.addr())
	a.ts.Close() // the primary is gone; its port now refuses connections

	out, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload)
	if err != nil {
		t.Fatalf("failover did not save the request: %v", err)
	}
	if bytes.HasPrefix(out, []byte("a:")) {
		t.Fatalf("dead shard answered: %q", out)
	}
	if trace.CounterValue(trace.CtrClusterFailovers) == 0 {
		t.Fatal("failover not counted")
	}
	if trace.CounterValue(trace.CtrClusterRetries) == 0 {
		t.Fatal("in-peer retry not counted before failover")
	}
}

func TestRouterPeerShedFailsOverLikeTransportFault(t *testing.T) {
	a := newFakeShard(t, "a", 0)
	b := newFakeShard(t, "b", 0)
	r := newTestRouter(t, RouterConfig{
		Peers: []string{a.addr(), b.addr()},
		Peer:  PeerConfig{Attempts: 1, Timeout: 2 * time.Second},
	})
	payload := payloadFor(t, r, a.addr())
	a.status.Store(http.StatusServiceUnavailable)

	out, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload)
	if err != nil {
		t.Fatalf("peer shed should fail over: %v", err)
	}
	if !bytes.HasPrefix(out, []byte("b:")) {
		t.Fatalf("expected the replica to serve, got %q", out)
	}
}

func TestRouterDoesNotFailOver4xx(t *testing.T) {
	a := newFakeShard(t, "a", 0)
	b := newFakeShard(t, "b", 0)
	r := newTestRouter(t, RouterConfig{
		Peers: []string{a.addr(), b.addr()},
		Peer:  PeerConfig{Attempts: 2, Timeout: 2 * time.Second},
	})
	payload := payloadFor(t, r, a.addr())
	a.status.Store(http.StatusBadRequest)
	bHitsBefore := b.hits.Load()

	_, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload)
	if !errors.Is(err, core.ErrInvalidOption) {
		t.Fatalf("4xx should classify as invalid option, got %v", err)
	}
	if core.IsTransient(err) || errors.Is(err, core.ErrShed) {
		t.Fatalf("4xx must not be failoverable: %v", err)
	}
	if a.hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d attempts", a.hits.Load())
	}
	if b.hits.Load() != bHitsBefore {
		t.Fatal("bad request was failed over to the replica")
	}
}

func TestRouterHedgesSlowPrimary(t *testing.T) {
	slow := newFakeShard(t, "slow", 400*time.Millisecond)
	fast := newFakeShard(t, "fast", 0)
	r := newTestRouter(t, RouterConfig{
		Peers:      []string{slow.addr(), fast.addr()},
		HedgeFloor: 20 * time.Millisecond,
		Peer:       PeerConfig{Attempts: 1, Timeout: 5 * time.Second},
	})
	payload := payloadFor(t, r, slow.addr())

	begin := time.Now()
	out, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, []byte("fast:")) {
		t.Fatalf("hedge did not win: served by %q", out)
	}
	if elapsed := time.Since(begin); elapsed >= 400*time.Millisecond {
		t.Fatalf("hedging saved no latency: %v", elapsed)
	}
	if trace.CounterValue(trace.CtrClusterHedges) == 0 {
		t.Fatal("hedge launch not counted")
	}
	if trace.CounterValue(trace.CtrClusterHedgeWins) == 0 {
		t.Fatal("hedge win not counted")
	}
	if trace.CounterValue(trace.CtrClusterFailovers) != 0 {
		t.Fatal("a hedge win is not a failover")
	}
}

func TestRouterHedgedCallsDoNotLeakGoroutines(t *testing.T) {
	slow := newFakeShard(t, "slow", 200*time.Millisecond)
	fast := newFakeShard(t, "fast", 0)
	r := newTestRouter(t, RouterConfig{
		Peers:      []string{slow.addr(), fast.addr()},
		HedgeFloor: 5 * time.Millisecond,
		Peer:       PeerConfig{Attempts: 1, Timeout: 5 * time.Second},
	})
	payload := payloadFor(t, r, slow.addr())

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload); err != nil {
			t.Fatal(err)
		}
	}
	// hedged() joins every launched goroutine before returning, so after
	// releasing the idle connection pool the count converges back to the
	// baseline.
	_ = r.Stop(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+3 {
		t.Fatalf("goroutines leaked across hedged calls: %d before, %d after", before, got)
	}
}

func TestRouterBreakerOpenSkipsPrimary(t *testing.T) {
	a := newFakeShard(t, "a", 0)
	b := newFakeShard(t, "b", 0)
	r := newTestRouter(t, RouterConfig{
		Peers: []string{a.addr(), b.addr()},
		Peer: PeerConfig{
			Attempts: 1,
			Timeout:  time.Second,
			Breaker:  service.BreakerConfig{Window: 4, Failures: 2, Cooldown: time.Minute, Probes: 1},
		},
	})
	payload := payloadFor(t, r, a.addr())
	a.ts.Close()

	// Trip the primary's breaker through real failures.
	for i := 0; i < 3; i++ {
		if _, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload); err != nil {
			t.Fatalf("replica should absorb while breaker warms: %v", err)
		}
	}
	if r.clients[a.addr()].Available() {
		t.Fatal("primary breaker should be open after repeated refused connections")
	}
	// With the breaker open the primary is skipped outright: no dial, no
	// retry budget burned, still counted as a failover.
	failoversBefore := trace.CounterValue(trace.CtrClusterFailovers)
	out, err := r.Compress(context.Background(), core.DTypeByte, []uint64{uint64(len(payload))}, payload)
	if err != nil || !bytes.HasPrefix(out, []byte("b:")) {
		t.Fatalf("breaker-open skip failed: %q, %v", out, err)
	}
	if trace.CounterValue(trace.CtrClusterFailovers) != failoversBefore+1 {
		t.Fatal("breaker-open skip not counted as failover")
	}
}

func TestRouterShedsTypedWhenFleetUnreachableAndNoLocal(t *testing.T) {
	dead := newFakeShard(t, "dead", 0)
	addr := dead.addr()
	dead.ts.Close()
	r := newTestRouter(t, RouterConfig{
		Peers: []string{addr},
		Peer:  PeerConfig{Attempts: 1, Timeout: time.Second},
	})

	_, err := r.Compress(context.Background(), core.DTypeByte, []uint64{4}, []byte("data"))
	if !errors.Is(err, core.ErrShed) {
		t.Fatalf("fleet-unreachable error must wear the typed shed shape: %v", err)
	}
	// Peers are optimistically up until a health checker classifies them;
	// once it marks the fleet down, a no-local router stops reporting ready.
	r.ring.SetUp(addr, false)
	if r.Ready() {
		t.Fatal("router with no local path and no live peers must not report ready")
	}
}

func TestRouterDegradesToLocal(t *testing.T) {
	dead := newFakeShard(t, "dead", 0)
	addr := dead.addr()
	dead.ts.Close()
	var localCalls atomic.Int64
	r := newTestRouter(t, RouterConfig{
		Peers: []string{addr},
		Peer:  PeerConfig{Attempts: 1, Timeout: time.Second},
		Local: func(_ context.Context, op string, _ core.DType, _ []uint64, body []byte) ([]byte, error) {
			localCalls.Add(1)
			return append([]byte("local-"+op+":"), body...), nil
		},
	})

	out, err := r.Compress(context.Background(), core.DTypeByte, []uint64{4}, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte("local-compress:data")) {
		t.Fatalf("local degradation returned %q", out)
	}
	if localCalls.Load() != 1 || trace.CounterValue(trace.CtrClusterLocalFallback) != 1 {
		t.Fatalf("local fallback accounting wrong: calls=%d counter=%d",
			localCalls.Load(), trace.CounterValue(trace.CtrClusterLocalFallback))
	}
	if !r.Ready() {
		t.Fatal("router with a local path is always ready")
	}
}

func TestRouterPropagatesTraceContext(t *testing.T) {
	a := newFakeShard(t, "a", 0)
	r := newTestRouter(t, RouterConfig{Peers: []string{a.addr()}})

	rt := trace.NewRequestTrace("")
	ctx := trace.WithRequestTrace(context.Background(), rt)
	if _, err := r.Compress(ctx, core.DTypeByte, []uint64{4}, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if got := a.lastTraceparent.Load(); got != rt.Traceparent() {
		t.Fatalf("Traceparent not propagated: got %q want %q", got, rt.Traceparent())
	}
	if got := a.lastRequestID.Load(); got != rt.TraceID() {
		t.Fatalf("X-Pressio-Request-Id not propagated: got %q want %q", got, rt.TraceID())
	}
}

func TestRouterManyKeepsResultsIndexAligned(t *testing.T) {
	a := newFakeShard(t, "a", 0)
	b := newFakeShard(t, "b", 0)
	c := newFakeShard(t, "c", 0)
	r := newTestRouter(t, RouterConfig{
		Peers:  []string{a.addr(), b.addr(), c.addr()},
		Fanout: 4,
	})

	chunks := make([]Chunk, 40)
	for i := range chunks {
		p := []byte(fmt.Sprintf("chunk-%03d", i))
		chunks[i] = Chunk{DType: core.DTypeByte, Dims: []uint64{uint64(len(p))}, Payload: p}
	}
	results, err := r.CompressMany(context.Background(), chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(chunks) {
		t.Fatalf("got %d results for %d chunks", len(results), len(chunks))
	}
	served := map[string]int{}
	for i, out := range results {
		tag, body, ok := bytes.Cut(out, []byte(":"))
		if !ok || !bytes.Equal(body, chunks[i].Payload) {
			t.Fatalf("result %d misaligned: %q", i, out)
		}
		served[string(tag)]++
	}
	if len(served) < 2 {
		t.Fatalf("fan-out did not spread across shards: %v", served)
	}
}

func TestRouterManyJoinsErrorsWhenFleetUnreachable(t *testing.T) {
	dead := newFakeShard(t, "dead", 0)
	addr := dead.addr()
	dead.ts.Close()
	r := newTestRouter(t, RouterConfig{
		Peers: []string{addr},
		Peer:  PeerConfig{Attempts: 1, Timeout: time.Second},
	})
	chunks := []Chunk{
		{DType: core.DTypeByte, Dims: []uint64{1}, Payload: []byte("x")},
		{DType: core.DTypeByte, Dims: []uint64{1}, Payload: []byte("y")},
	}
	results, err := r.CompressMany(context.Background(), chunks)
	if !errors.Is(err, core.ErrShed) {
		t.Fatalf("joined error should carry the shed type: %v", err)
	}
	for i, out := range results {
		if out != nil {
			t.Fatalf("failed chunk %d has a result: %q", i, out)
		}
	}
}
