package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the per-peer virtual node count when unspecified.
// 64 points per peer keeps the max/mean load ratio under ~1.25 for small
// fleets while the ring stays tiny (3 peers × 64 points = 192 entries).
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over peer addresses. Each peer owns VNodes
// points on the ring; a key is placed on the first point at or after its
// hash, and its replica set is the next R distinct peers walking clockwise.
//
// Placement is a pure function of membership: health state is tracked on the
// side (SetUp) and never moves points, so a peer that flaps gets exactly its
// old keys back and no other peer's placement churns. All methods are safe
// for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	up     map[string]bool
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring with vnodes virtual nodes per peer (<=0 means
// DefaultVirtualNodes).
func NewRing(vnodes int, peers ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes, up: map[string]bool{}}
	for _, p := range peers {
		r.Add(p)
	}
	return r
}

// hash64 is FNV-1a over b: deterministic across processes and runs, cheap,
// and well-dispersed enough for placement (splitmix64 finalizes to break up
// FNV's avalanche weakness on short keys).
func hash64(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	// splitmix64 finalizer
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Add inserts a peer (idempotent). New peers start down until a health
// checker reports otherwise; callers without a health checker should SetUp
// explicitly.
func (r *Ring) Add(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.up[peer]; ok {
		return
	}
	r.up[peer] = false
	for i := 0; i < r.vnodes; i++ {
		h := hash64([]byte(peer + "#" + strconv.Itoa(i)))
		r.points = append(r.points, ringPoint{hash: h, peer: peer})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a peer and its points.
func (r *Ring) Remove(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.up[peer]; !ok {
		return
	}
	delete(r.up, peer)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.peer != peer {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// SetUp records peer health. It returns true when this call changed the
// state (so callers can count transitions exactly once). Unknown peers are
// ignored.
func (r *Ring) SetUp(peer string, up bool) (changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	was, ok := r.up[peer]
	if !ok || was == up {
		return false
	}
	r.up[peer] = up
	return true
}

// Up reports the recorded health of peer.
func (r *Ring) Up(peer string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.up[peer]
}

// Peers returns all members, sorted, regardless of health.
func (r *Ring) Peers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.up))
	for p := range r.up {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// UpCount reports how many members are currently healthy.
func (r *Ring) UpCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, up := range r.up {
		if up {
			n++
		}
	}
	return n
}

// Replicas returns the replica set for key: the first r distinct peers
// walking clockwise from the key's point, in preference order. Health is
// deliberately ignored — the caller decides what "down" means (skip, try
// last, ...) so placement itself never churns. r is clamped to the member
// count.
func (r *Ring) Replicas(key []byte, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.up) {
		n = len(r.up)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// String summarizes membership for logs: "3 peers (2 up)".
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	up := 0
	for _, u := range r.up {
		if u {
			up++
		}
	}
	return fmt.Sprintf("%d peers (%d up)", len(r.up), up)
}
