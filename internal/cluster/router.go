package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pressio/internal/core"
	"pressio/internal/obslog"
	"pressio/internal/trace"
)

// Operation names on the pressiod data plane (and so in the router API).
const (
	OpCompress   = "compress"
	OpDecompress = "decompress"
)

// LocalFunc is the router's degradation path: a local compressor invoked
// when every replica is unreachable. nil disables local degradation (the
// router then sheds with a typed 503-shaped error instead).
type LocalFunc func(ctx context.Context, op string, dtype core.DType, dims []uint64, body []byte) ([]byte, error)

// RouterConfig assembles a Router; Peers is the only required field.
type RouterConfig struct {
	// Peers are the shard addresses ("host:port").
	Peers []string
	// Replicas is the replica-set size R per key (default 2, clamped to the
	// fleet size). The primary serves; later replicas are hedge and
	// failover targets.
	Replicas int
	// VNodes is the virtual node count per peer (default DefaultVirtualNodes).
	VNodes int
	// Peer tunes the per-peer resilience stack.
	Peer PeerConfig
	// HedgeFloor is the minimum hedge delay (default 25ms): never hedge
	// faster than this even when the p99 is tiny, or a warmed-up router
	// would double its traffic for nothing.
	HedgeFloor time.Duration
	// HedgeCeiling caps the p99-derived hedge delay (default 2s).
	HedgeCeiling time.Duration
	// Fanout bounds concurrent chunk requests in CompressMany/DecompressMany
	// (default 8).
	Fanout int
	// Local is the degradation path when the whole fleet is unreachable.
	Local LocalFunc
}

// Router fans compression work out across a consistent-hash ring of pressiod
// peers. Placement is content-addressed (the key is a hash of the payload),
// each key has a replica set of R peers, slow primaries are hedged to the
// next replica after a p99-derived delay, failed or breaker-open peers fail
// over through the replica set, and a fully unreachable fleet degrades to
// local compression when configured.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	clients map[string]*PeerClient

	started sync.Once
}

// NewRouter builds the ring and one resilient client per peer.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: router needs at least one peer")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Peers) {
		cfg.Replicas = len(cfg.Peers)
	}
	if cfg.HedgeFloor <= 0 {
		cfg.HedgeFloor = 25 * time.Millisecond
	}
	if cfg.HedgeCeiling <= 0 {
		cfg.HedgeCeiling = 2 * time.Second
	}
	if cfg.Fanout < 1 {
		cfg.Fanout = 8
	}
	r := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.VNodes),
		clients: make(map[string]*PeerClient, len(cfg.Peers)),
	}
	for _, p := range cfg.Peers {
		if _, dup := r.clients[p]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		pc, err := NewPeerClient(p, cfg.Peer)
		if err != nil {
			return nil, err
		}
		r.clients[p] = pc
		r.ring.Add(p)
		// Until the health checker's first sweep says otherwise, assume
		// peers are up: the request path discovers dead ones by failing
		// over, which is exactly its job.
		r.ring.SetUp(p, true)
	}
	return r, nil
}

// Ring exposes the placement ring (the health checker flips peer state on
// it; tests inspect it).
func (r *Router) Ring() *Ring { return r.ring }

// candidates resolves the replica set for key and orders it for attempting:
// ring order, but peers marked down are moved to the back — placement never
// churns, yet a known-dead primary doesn't eat the first attempt's latency.
func (r *Router) candidates(key []byte) []*PeerClient {
	replicas := r.ring.Replicas(key, r.cfg.Replicas)
	out := make([]*PeerClient, 0, len(replicas))
	for _, p := range replicas {
		if r.ring.Up(p) {
			out = append(out, r.clients[p])
		}
	}
	for _, p := range replicas {
		if !r.ring.Up(p) {
			out = append(out, r.clients[p])
		}
	}
	return out
}

// Compress routes one buffer: placement by content hash, hedged primary,
// failover through the replica set, local degradation last.
func (r *Router) Compress(ctx context.Context, dtype core.DType, dims []uint64, payload []byte) ([]byte, error) {
	return r.route(ctx, OpCompress, dtype, dims, payload)
}

// Decompress routes one compressed buffer; dtype/dims describe the expected
// output (pressiod streams are not self-describing).
func (r *Router) Decompress(ctx context.Context, dtype core.DType, dims []uint64, payload []byte) ([]byte, error) {
	return r.route(ctx, OpDecompress, dtype, dims, payload)
}

func (r *Router) route(ctx context.Context, op string, dtype core.DType, dims []uint64, payload []byte) ([]byte, error) {
	trace.CounterAdd(trace.CtrClusterRequests, 1)
	cands := r.candidates(payload)
	var lastErr error
	for i := 0; i < len(cands); i++ {
		primary := cands[i]
		if !primary.Available() {
			trace.CounterAdd(trace.CtrClusterFailovers, 1)
			lastErr = fmt.Errorf("cluster: peer %s skipped: breaker open (%w)", primary.Addr(), core.ErrShed)
			continue
		}
		out, err := r.hedged(ctx, primary, r.nextHedge(cands, i+1), op, dtype, dims, payload)
		if err == nil {
			return out, nil
		}
		if !failoverable(err) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		trace.CounterAdd(trace.CtrClusterFailovers, 1)
		obslog.Default().Warnw("cluster.failover",
			obslog.Str("op", op),
			obslog.Str("peer", primary.Addr()),
			obslog.Err(err))
	}
	if r.cfg.Local != nil {
		trace.CounterAdd(trace.CtrClusterLocalFallback, 1)
		obslog.Default().Warnw("cluster.local_fallback",
			obslog.Str("op", op),
			obslog.Str("ring", r.ring.String()),
			obslog.Err(lastErr))
		return r.cfg.Local(ctx, op, dtype, dims, payload)
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: replica set empty")
	}
	// The whole fleet is unreachable and no local path exists: that is an
	// overload/availability shed, and it must wear the same typed-503 shape
	// a single node's sheds do.
	return nil, fmt.Errorf("cluster: no replica reachable for %s: %w: %w", op, core.ErrShed, lastErr)
}

// nextHedge picks the hedge target: the first later candidate that is up and
// whose breaker would admit a call, or nil.
func (r *Router) nextHedge(cands []*PeerClient, from int) *PeerClient {
	for _, pc := range cands[from:] {
		if pc.Available() && r.ring.Up(pc.Addr()) {
			return pc
		}
	}
	return nil
}

// attemptResult is one peer call's outcome inside a hedged pair.
type attemptResult struct {
	out   []byte
	err   error
	peer  *PeerClient
	hedge bool
}

// hedged runs the primary call, launching one hedge to the next replica if
// the primary exceeds its p99-derived hedge delay. First success wins and
// the loser is cancelled; the call returns only after every launched
// goroutine has finished, so callers never leak request goroutines.
func (r *Router) hedged(ctx context.Context, primary, hedge *PeerClient, op string, dtype core.DType, dims []uint64, payload []byte) ([]byte, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, 2) // buffered: a cancelled loser must never block on send
	var wg sync.WaitGroup
	defer wg.Wait()
	launch := func(pc *PeerClient, isHedge bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := pc.Do(cctx, op, dtype, dims, payload)
			results <- attemptResult{out: out, err: err, peer: pc, hedge: isHedge}
		}()
	}
	launch(primary, false)
	inFlight := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedge != nil {
		hedgeTimer = time.NewTimer(primary.HedgeDelay(r.cfg.HedgeFloor, r.cfg.HedgeCeiling))
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var firstErr error
	for {
		select {
		case res := <-results:
			inFlight--
			if res.err == nil {
				if res.hedge {
					trace.CounterAdd(trace.CtrClusterHedgeWins, 1)
					trace.CounterAdd(trace.ClusterPeerKey(res.peer.Addr(), "hedge_wins"), 1)
				}
				cancel() // the loser, if any, aborts promptly; deferred wg.Wait joins it
				return res.out, nil
			}
			if !failoverable(res.err) {
				cancel()
				return nil, res.err
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if inFlight == 0 {
				// Primary failed before the hedge fired (or both failed):
				// report and let the failover loop take the next replica.
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if hedge.Available() {
				trace.CounterAdd(trace.CtrClusterHedges, 1)
				obslog.Default().Debugw("cluster.hedge",
					obslog.Str("op", op),
					obslog.Str("primary", primary.Addr()),
					obslog.Str("hedge", hedge.Addr()))
				launch(hedge, true)
				inFlight++
			}
		case <-ctx.Done():
			cancel()
			return nil, core.Transient(fmt.Errorf("cluster: %s: %w", op, ctx.Err()))
		}
	}
}

// Chunk is one unit of CompressMany/DecompressMany fan-out: an independent
// buffer with its own shape.
type Chunk struct {
	DType   core.DType
	Dims    []uint64
	Payload []byte
}

// CompressMany routes every chunk across the ring concurrently (bounded by
// Fanout). Results are index-aligned with chunks: result i is chunk i's
// compressed payload or nil when errs[i] != nil. The returned error joins
// the per-chunk failures; callers that must not lose items check it against
// nil and retry only the nil slots.
func (r *Router) CompressMany(ctx context.Context, chunks []Chunk) ([][]byte, error) {
	return r.many(ctx, OpCompress, chunks)
}

// DecompressMany is the decompression counterpart of CompressMany.
func (r *Router) DecompressMany(ctx context.Context, chunks []Chunk) ([][]byte, error) {
	return r.many(ctx, OpDecompress, chunks)
}

func (r *Router) many(ctx context.Context, op string, chunks []Chunk) ([][]byte, error) {
	results := make([][]byte, len(chunks))
	errs := make([]error, len(chunks))
	workers := r.cfg.Fanout
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Static strided partition, as in meta.CompressMany: worker w takes
		// chunks w, w+W, ... — deterministic assignment, no shared cursor.
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(chunks); i += workers {
				results[i], errs[i] = r.route(ctx, op, chunks[i].DType, chunks[i].Dims, chunks[i].Payload)
			}
		}(w)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Router lifecycle component: Start validates, Ready means "can serve at
// least degraded traffic", Stop releases pooled connections.

// Name implements Component.
func (r *Router) Name() string { return "router" }

// Start implements Component.
func (r *Router) Start(context.Context) error {
	r.started.Do(func() {
		//lint:ignore blockinglock one-time boot log under the sync.Once mutex; never contended on a request path
		obslog.Default().Infow("cluster.router.start",
			obslog.Int("peers", int64(len(r.clients))),
			obslog.Int("replicas", int64(r.cfg.Replicas)))
	})
	return nil
}

// Stop implements Component.
func (r *Router) Stop(context.Context) error {
	for _, pc := range r.clients {
		pc.CloseIdle()
	}
	return nil
}

// Ready implements ReadyReporter: the router can serve once any peer is up,
// or always when a local degradation path exists.
func (r *Router) Ready() bool {
	return r.cfg.Local != nil || r.ring.UpCount() > 0
}
