// Package cluster shards pressiod compress/decompress work across a fleet
// of peer daemons and keeps it flowing when peers die.
//
// The pieces compose in layers, mirroring the single-node resilience stack:
//
//   - Ring: a consistent-hash ring over peer addresses (virtual nodes,
//     deterministic placement, replica sets of R distinct peers per key).
//     Placement depends only on membership, never on health, so a bounced
//     peer gets the same keys back.
//   - PeerClient: one HTTP client per peer wrapping every call in the
//     service-layer resilience stack — a process-shared circuit breaker, a
//     weighted admission bulkhead, capped-exponential-backoff retries with
//     deterministic splitmix64 jitter, and a per-request deadline.
//   - Router: fans CompressMany chunks out across the ring, hedges slow
//     primaries to the next replica after a p99-derived delay (first success
//     wins, loser cancelled), fails over through the replica set when peers
//     are down or their breakers open, and degrades to a local compressor
//     when the whole fleet is unreachable.
//   - HealthChecker: polls each peer's /readyz and flips ring health on
//     up/down transitions, so placement re-resolves without waiting for
//     request-path failures.
//   - Runtime: a small lifecycle manager (ordered start/stop along
//     dependency edges, readiness aggregation) that sequences
//     health-checker, router, and listener components in pressiod's router
//     mode.
//
// The proof is a multi-process chaos test (chaos_multiproc_test.go): three
// real pressiod shards, concurrent CompressMany load, one shard SIGKILLed
// mid-flight — every chunk completes exactly once with a verified
// round-trip. See docs/CLUSTER.md.
package cluster
