package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("chunk-%d", i))
	}
	return keys
}

func TestRingPlacementDeterministic(t *testing.T) {
	peers := []string{"10.0.0.1:8123", "10.0.0.2:8123", "10.0.0.3:8123"}
	a := NewRing(0, peers...)
	// A second ring built from the same membership (in a different insertion
	// order) must place every key identically: placement is a pure function
	// of membership, never of history.
	b := NewRing(0, peers[2], peers[0], peers[1])
	for _, key := range testKeys(200) {
		ra := a.Replicas(key, 2)
		rb := b.Replicas(key, 2)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("placement differs for %q: %v vs %v", key, ra, rb)
		}
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing(0, "a:1", "b:1", "c:1")
	for _, key := range testKeys(200) {
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("want 3 replicas, got %v", reps)
		}
		seen := map[string]bool{}
		for _, p := range reps {
			if seen[p] {
				t.Fatalf("duplicate peer %s in replica set %v for %q", p, reps, key)
			}
			seen[p] = true
		}
	}
}

func TestRingReplicasClampedToMembership(t *testing.T) {
	r := NewRing(0, "a:1", "b:1")
	if got := r.Replicas([]byte("k"), 5); len(got) != 2 {
		t.Fatalf("replicas %v, want clamped to 2 members", got)
	}
	if got := NewRing(0).Replicas([]byte("k"), 2); got != nil {
		t.Fatalf("empty ring returned %v, want nil", got)
	}
	if got := r.Replicas([]byte("k"), 0); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
}

// Health transitions must never move placement: a flapping peer gets exactly
// its old keys back, and keys placed on other peers do not churn.
func TestRingHealthDoesNotMovePlacement(t *testing.T) {
	r := NewRing(0, "a:1", "b:1", "c:1")
	for _, p := range r.Peers() {
		r.SetUp(p, true)
	}
	keys := testKeys(300)
	before := make([][]string, len(keys))
	for i, k := range keys {
		before[i] = r.Replicas(k, 2)
	}
	if changed := r.SetUp("b:1", false); !changed {
		t.Fatal("first down transition should report changed")
	}
	if changed := r.SetUp("b:1", false); changed {
		t.Fatal("repeated down transition should not report changed")
	}
	for i, k := range keys {
		if got := r.Replicas(k, 2); !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("placement churned on health flip for %q: %v vs %v", k, got, before[i])
		}
	}
	if !r.SetUp("b:1", true) {
		t.Fatal("up transition should report changed")
	}
	if r.SetUp("unknown:1", true) {
		t.Fatal("unknown peer must be ignored")
	}
}

// Removing one peer must only reassign the keys that peer owned; every other
// primary assignment stays put (the consistent-hashing contract).
func TestRingRemoveMinimalChurn(t *testing.T) {
	r := NewRing(0, "a:1", "b:1", "c:1", "d:1")
	keys := testKeys(500)
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Replicas(k, 1)[0]
	}
	r.Remove("c:1")
	for i, k := range keys {
		after := r.Replicas(k, 1)[0]
		if before[i] != "c:1" && after != before[i] {
			t.Fatalf("key %q moved %s -> %s though its primary was not removed", k, before[i], after)
		}
		if after == "c:1" {
			t.Fatalf("key %q still placed on removed peer", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0, "a:1", "b:1", "c:1")
	counts := map[string]int{}
	n := 3000
	for i := 0; i < n; i++ {
		counts[r.Replicas([]byte(fmt.Sprintf("key-%d", i)), 1)[0]]++
	}
	mean := float64(n) / 3
	for p, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("peer %s owns %d/%d keys (ratio %.2f); virtual nodes are not dispersing", p, c, n, ratio)
		}
	}
}

func TestRingAccounting(t *testing.T) {
	r := NewRing(0, "a:1", "b:1", "c:1")
	if got := r.Peers(); !reflect.DeepEqual(got, []string{"a:1", "b:1", "c:1"}) {
		t.Fatalf("Peers() = %v", got)
	}
	if r.UpCount() != 0 {
		t.Fatalf("new peers must start down, UpCount=%d", r.UpCount())
	}
	r.SetUp("a:1", true)
	r.SetUp("b:1", true)
	if r.UpCount() != 2 || !r.Up("a:1") || r.Up("c:1") {
		t.Fatalf("health accounting wrong: UpCount=%d", r.UpCount())
	}
	if got := r.String(); got != "3 peers (2 up)" {
		t.Fatalf("String() = %q", got)
	}
	r.Add("a:1") // idempotent
	if len(r.Peers()) != 3 {
		t.Fatalf("duplicate Add changed membership: %v", r.Peers())
	}
}

func TestHash64Dispersion(t *testing.T) {
	// Short sequential keys (the FNV weak spot the splitmix finalizer exists
	// for) must still land in both halves of the hash space.
	low, high := 0, 0
	for i := 0; i < 1000; i++ {
		if hash64([]byte(fmt.Sprintf("%d", i)))&(1<<63) == 0 {
			low++
		} else {
			high++
		}
	}
	if low < 300 || high < 300 {
		t.Fatalf("top-bit split %d/%d; finalizer is not dispersing", low, high)
	}
}
