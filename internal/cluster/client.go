package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pressio/internal/core"
	"pressio/internal/resilience"
	"pressio/internal/service"
	"pressio/internal/trace"
)

// PeerClient is the router's handle to one pressiod peer. Every call runs
// the single-node resilience stack, per peer: a process-shared circuit
// breaker (scope "cluster.peer.<addr>", so every client to the same peer
// trips together), a weighted admission bulkhead bounding in-flight bytes,
// capped-exponential-backoff retries with deterministic splitmix64 jitter,
// and a per-attempt deadline.
type PeerClient struct {
	addr    string
	hc      *http.Client
	breaker *service.BreakerState
	admit   *service.Admission
	backoff resilience.Backoff
	// attempts bounds the in-peer tries (1 = no retry); failover across
	// peers is the router's job.
	attempts int
	timeout  time.Duration
	lat      *latencyWindow
}

// PeerConfig tunes the per-peer resilience stack; the zero value gets
// serving-appropriate defaults.
type PeerConfig struct {
	// Transport overrides the HTTP transport (fault injection, tests).
	Transport http.RoundTripper
	// Timeout is the per-attempt deadline (default 10s).
	Timeout time.Duration
	// Attempts is the per-peer try budget including the first (default 2).
	Attempts int
	// Backoff tunes the retry schedule; zero fields get resilience defaults
	// (1ms initial, 250ms cap). The seed is re-derived per peer so fleets
	// retry out of phase.
	Backoff resilience.Backoff
	// Breaker tunes the per-peer circuit; zero fields get breaker-plugin
	// defaults (16-call window, 8 failures, 1s cooldown, 1 probe).
	Breaker service.BreakerConfig
	// MemBudget bounds bytes in flight to one peer (default 256 MiB).
	MemBudget int64
	// QueueDepth bounds callers queued at the per-peer bulkhead (default 32).
	QueueDepth int
}

// NewPeerClient builds the resilient client for one peer address
// ("host:port").
func NewPeerClient(addr string, cfg PeerConfig) (*PeerClient, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Attempts < 1 {
		cfg.Attempts = 2
	}
	if cfg.MemBudget <= 0 {
		cfg.MemBudget = 256 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	bo := cfg.Backoff
	if bo.Seed == 0 {
		// Distinct deterministic seed per peer: retries against different
		// peers de-synchronize while a fixed fleet reproduces exactly.
		bo.Seed = int64(hash64([]byte(addr)))
	}
	admit, err := service.NewBulkhead("cluster.peer."+addr, cfg.MemBudget, cfg.QueueDepth, nil)
	if err != nil {
		return nil, err
	}
	hc := &http.Client{Transport: cfg.Transport}
	return &PeerClient{
		addr:     addr,
		hc:       hc,
		breaker:  service.NewSharedBreaker("cluster.peer."+addr, cfg.Breaker),
		admit:    admit,
		backoff:  bo,
		attempts: cfg.Attempts,
		timeout:  cfg.Timeout,
		lat:      newLatencyWindow(),
	}, nil
}

// Addr returns the peer address the client targets.
func (c *PeerClient) Addr() string { return c.addr }

// Available reports whether the peer's breaker would admit a call right now
// (without consuming a half-open probe — Do performs the real admission).
func (c *PeerClient) Available() bool {
	return c.breaker.Mode() != service.ModeOpen
}

// HedgeDelay derives this peer's hedge trigger from its recent latency
// window: p99 clamped to [floor, ceiling].
func (c *PeerClient) HedgeDelay(floor, ceiling time.Duration) time.Duration {
	return c.lat.hedgeDelay(floor, ceiling)
}

// errPeer wraps a peer failure so the router can decide whether to fail
// over. Transient transport faults and peer-side sheds are failoverable;
// 4xx rejections are the caller's fault everywhere and propagate unchanged.
func failoverable(err error) bool {
	return core.IsTransient(err) || errors.Is(err, core.ErrShed)
}

// Do performs one operation ("compress" or "decompress") against the peer
// and returns the response payload. The request trace in ctx, when present,
// is propagated to the peer via Traceparent and X-Pressio-Request-Id so the
// peer's /tracez records the same trace id as the router's.
func (c *PeerClient) Do(ctx context.Context, op string, dtype core.DType, dims []uint64, body []byte) ([]byte, error) {
	release, err := c.admit.Acquire(ctx, int64(len(body)))
	if err != nil {
		return nil, err
	}
	defer release()

	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			trace.CounterAdd(trace.CtrClusterRetries, 1)
			select {
			case <-time.After(c.backoff.Delay(attempt - 1)):
			case <-ctx.Done():
				return nil, core.Transient(fmt.Errorf("cluster: peer %s: %w", c.addr, ctx.Err()))
			}
		}
		probe, ok := c.breaker.Allow()
		if !ok {
			return nil, fmt.Errorf("cluster: peer %s: %w (%w)", c.addr, service.ErrBreakerOpen, core.ErrShed)
		}
		begin := time.Now()
		out, err := c.attempt(ctx, op, dtype, dims, body)
		elapsed := time.Since(begin)
		c.breaker.Done(probe, err, elapsed)
		if err == nil {
			c.lat.observe(elapsed)
			trace.ObserveDuration(trace.HistClusterPeer, elapsed)
			trace.CounterAdd(trace.ClusterPeerKey(c.addr, "requests"), 1)
			return out, nil
		}
		trace.CounterAdd(trace.ClusterPeerKey(c.addr, "failures"), 1)
		lastErr = err
		if !core.IsTransient(err) || ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// attempt is one HTTP round trip with its own deadline.
func (c *PeerClient) attempt(ctx context.Context, op string, dtype core.DType, dims []uint64, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()

	u := "http://" + c.addr + "/" + op + "?dims=" + dimsParam(dims) + "&dtype=" + dtype.String()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if rt := trace.RequestTraceFrom(ctx); rt != nil {
		req.Header.Set("Traceparent", rt.Traceparent())
		req.Header.Set("X-Pressio-Request-Id", rt.TraceID())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Refused, reset, injected, or timed-out transport: all retryable
		// here and failoverable above.
		return nil, core.Transient(fmt.Errorf("cluster: peer %s %s: %w", c.addr, op, err))
	}
	defer func() { _ = resp.Body.Close() }()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		// The peer died (or a fault injector truncated the stream) mid-body.
		return nil, core.Transient(fmt.Errorf("cluster: peer %s %s: truncated response: %w", c.addr, op, err))
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return payload, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		// The peer shed (admission or breaker). Mirror its error kind so the
		// router's own 503s look exactly like a single node's.
		kind := resp.Header.Get("X-Pressio-Error")
		if kind == "breaker-open" {
			return nil, fmt.Errorf("cluster: peer %s %s: %w (%w)", c.addr, op, service.ErrBreakerOpen, core.ErrShed)
		}
		return nil, fmt.Errorf("cluster: peer %s %s: %w: %s", c.addr, op, core.ErrShed, strings.TrimSpace(string(payload)))
	case resp.StatusCode >= 500:
		return nil, core.Transient(fmt.Errorf("cluster: peer %s %s: HTTP %d: %s", c.addr, op, resp.StatusCode, strings.TrimSpace(string(payload))))
	default:
		// 4xx: the request itself is bad; no other peer will accept it.
		// Classified as an invalid option so the router's own response is a
		// 400, exactly like a single node's.
		return nil, fmt.Errorf("cluster: peer %s %s: %w: HTTP %d: %s",
			c.addr, op, core.ErrInvalidOption, resp.StatusCode, strings.TrimSpace(string(payload)))
	}
}

// CheckReady probes the peer's /readyz with a short deadline; used by the
// health checker, bypassing breaker and admission (health must see through
// an open breaker or it could never close).
func (c *PeerClient) CheckReady(ctx context.Context, timeout time.Duration) error {
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, "http://"+c.addr+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s not ready: HTTP %d", c.addr, resp.StatusCode)
	}
	return nil
}

// CloseIdle releases pooled transport connections (router shutdown).
func (c *PeerClient) CloseIdle() { c.hc.CloseIdleConnections() }

func dimsParam(dims []uint64) string {
	var b strings.Builder
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(d, 10))
	}
	return b.String()
}
