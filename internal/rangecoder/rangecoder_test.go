package rangecoder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdaptiveBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bits := make([]int, 50000)
	for i := range bits {
		// Heavily biased source to exercise adaptation.
		if rng.Float64() < 0.9 {
			bits[i] = 0
		} else {
			bits[i] = 1
		}
	}
	enc := NewEncoder()
	p := NewProb()
	for _, b := range bits {
		enc.EncodeBit(&p, b)
	}
	out := enc.Finish()
	// A 0.9-biased source has entropy ~0.47 bits/bit; the coder should land
	// well under 0.6 bits/bit.
	if len(out)*8 > 30000 {
		t.Fatalf("biased stream poorly compressed: %d bytes", len(out))
	}
	dec := NewDecoder(out)
	q := NewProb()
	for i, want := range bits {
		if got := dec.DecodeBit(&q); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestRawBitsRoundTrip(t *testing.T) {
	enc := NewEncoder()
	vals := []struct {
		v uint32
		n uint
	}{{0, 1}, {1, 1}, {0xdead, 16}, {0xffffffff, 32}, {5, 3}, {0, 32}, {1 << 30, 31}}
	for _, x := range vals {
		enc.EncodeBitsRaw(x.v, x.n)
	}
	dec := NewDecoder(enc.Finish())
	for i, x := range vals {
		if got := dec.DecodeBitsRaw(x.n); got != x.v {
			t.Fatalf("raw %d: got %#x want %#x", i, got, x.v)
		}
	}
}

func TestMixedAdaptiveAndRaw(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		type op struct {
			raw  bool
			bit  int
			v    uint32
			w    uint
			pctx int
		}
		ops := make([]op, n)
		enc := NewEncoder()
		probs := make([]Prob, 8)
		for i := range probs {
			probs[i] = NewProb()
		}
		for i := range ops {
			if rng.Float64() < 0.3 {
				w := uint(1 + rng.Intn(32))
				v := rng.Uint32()
				if w < 32 {
					v &= (1 << w) - 1
				}
				ops[i] = op{raw: true, v: v, w: w}
				enc.EncodeBitsRaw(v, w)
			} else {
				ctx := rng.Intn(8)
				bit := 0
				if rng.Float64() < 0.3 {
					bit = 1
				}
				ops[i] = op{bit: bit, pctx: ctx}
				enc.EncodeBit(&probs[ctx], bit)
			}
		}
		dec := NewDecoder(enc.Finish())
		dprobs := make([]Prob, 8)
		for i := range dprobs {
			dprobs[i] = NewProb()
		}
		for _, o := range ops {
			if o.raw {
				if dec.DecodeBitsRaw(o.w) != o.v {
					return false
				}
			} else if dec.DecodeBit(&dprobs[o.pctx]) != o.bit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyStream(t *testing.T) {
	enc := NewEncoder()
	out := enc.Finish()
	dec := NewDecoder(out)
	// Decoding from an empty logical stream must not panic.
	_ = dec.DecodeBitsRaw(8)
}

func TestFinishIdempotent(t *testing.T) {
	enc := NewEncoder()
	p := NewProb()
	enc.EncodeBit(&p, 1)
	a := enc.Finish()
	b := enc.Finish()
	if len(a) != len(b) {
		t.Fatalf("Finish not idempotent: %d vs %d bytes", len(a), len(b))
	}
}

func BenchmarkEncodeBit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 1<<16)
	for i := range bits {
		if rng.Float64() < 0.8 {
			bits[i] = 0
		} else {
			bits[i] = 1
		}
	}
	b.SetBytes(int64(len(bits) / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := NewEncoder()
		p := NewProb()
		for _, bit := range bits {
			enc.EncodeBit(&p, bit)
		}
		enc.Finish()
	}
}
