// Package rangecoder implements an adaptive binary range coder (arithmetic
// coder) in the style used by fpzip and LZMA: a 32-bit range with 11-bit
// adaptive bit probabilities. The fpzip-family compressor uses it to entropy
// code residual magnitude classes.
package rangecoder

const (
	probBits  = 11
	probInit  = 1 << (probBits - 1) // 0.5
	probMoves = 5                   // adaptation rate
	topValue  = 1 << 24
)

// Prob is an adaptive probability state for a single binary context.
type Prob uint16

// NewProb returns an unbiased probability state.
func NewProb() Prob { return probInit }

// Encoder writes bits into a byte buffer using range coding. The carry
// propagation follows the classic LZMA scheme: the first emitted byte is a
// spurious zero the decoder skips during initialization.
type Encoder struct {
	low      uint64
	rng      uint32
	cacheSz  int64
	cache    byte
	out      []byte
	finished bool
}

// NewEncoder returns an Encoder ready for use.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSz: 1}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || (e.low>>32) != 0 {
		temp := e.cache
		for {
			e.out = append(e.out, temp+byte(e.low>>32))
			temp = 0xFF
			e.cacheSz--
			if e.cacheSz == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSz++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

//pressio:hotpath measured by the perf ledger
// EncodeBit encodes bit b (0 or 1) with the adaptive probability p,
// updating p toward the observed bit.
func (e *Encoder) EncodeBit(p *Prob, b int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if b == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> probMoves
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> probMoves
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeBitsRaw encodes n (≤ 32) equiprobable bits, MSB first.
func (e *Encoder) EncodeBitsRaw(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.rng >>= 1
		bit := (v >> uint(i)) & 1
		if bit != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// Finish flushes the coder and returns the encoded bytes. The Encoder must
// not be used afterwards.
func (e *Encoder) Finish() []byte {
	if !e.finished {
		for i := 0; i < 5; i++ {
			e.shiftLow()
		}
		e.finished = true
	}
	return e.out
}

// Decoder reads bits encoded by Encoder.
type Decoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
}

// NewDecoder wraps the encoded bytes for decoding.
func NewDecoder(b []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, in: b}
	// Read 5 bytes: the first is the encoder's spurious initial byte and
	// shifts out of the 32-bit code register entirely.
	for i := 0; i < 5; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return d
}

func (d *Decoder) nextByte() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	return 0
}

//pressio:hotpath measured by the perf ledger
// DecodeBit decodes one bit with the adaptive probability p.
func (d *Decoder) DecodeBit(p *Prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> probMoves
		bit = 0
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> probMoves
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return bit
}

// DecodeBitsRaw decodes n (≤ 32) equiprobable bits, MSB first.
func (d *Decoder) DecodeBitsRaw(n uint) uint32 {
	var v uint32
	for i := uint(0); i < n; i++ {
		d.rng >>= 1
		var bit uint32
		if d.code >= d.rng {
			d.code -= d.rng
			bit = 1
		}
		v = v<<1 | bit
		for d.rng < topValue {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.nextByte())
		}
	}
	return v
}
