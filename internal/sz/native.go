package sz

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"pressio/internal/core"
)

// The native API mirrors classic SZ's process-global configuration store:
// SZ_Init fills a global parameter block that every subsequent call reads,
// and SZ_Finalize releases it. This is exactly the construction-semantics
// hazard §IV-B of the paper discusses — a thread may only Finalize when it
// knows no other thread still uses SZ. The sz plugin serializes access; the
// sz_threadsafe plugin bypasses the store entirely.
var global struct {
	mu     sync.Mutex
	params Params
	inited bool
}

// ErrNotInitialized reports use of the global API before Init.
var ErrNotInitialized = errors.New("sz: not initialized (call Init first)")

// Init installs the process-global parameters (the analogue of SZ_Init).
func Init(p Params) {
	global.mu.Lock()
	defer global.mu.Unlock()
	global.params = p
	global.inited = true
}

// Finalize clears the process-global parameters (the analogue of
// SZ_Finalize).
func Finalize() {
	global.mu.Lock()
	defer global.mu.Unlock()
	global.inited = false
}

// Initialized reports whether the global store is live.
func Initialized() bool {
	global.mu.Lock()
	defer global.mu.Unlock()
	return global.inited
}

// globalParams snapshots the global store.
func globalParams() (Params, error) {
	global.mu.Lock()
	defer global.mu.Unlock()
	if !global.inited {
		return Params{}, ErrNotInitialized
	}
	return global.params, nil
}

// CompressFloat32 compresses using the global configuration, like the
// native SZ_compress entry point.
func CompressFloat32(vals []float32, dims []uint64) ([]byte, error) {
	p, err := globalParams()
	if err != nil {
		return nil, err
	}
	return CompressSlice(vals, dims, p)
}

// CompressFloat64 compresses float64 data using the global configuration.
func CompressFloat64(vals []float64, dims []uint64) ([]byte, error) {
	p, err := globalParams()
	if err != nil {
		return nil, err
	}
	return CompressSlice(vals, dims, p)
}

// DecompressFloat32 decodes a float32 stream (no global state needed, as in
// SZ where the stream is self-describing given the dims).
func DecompressFloat32(stream []byte) ([]float32, []uint64, error) {
	return DecompressSlice[float32](stream)
}

// DecompressFloat64 decodes a float64 stream.
func DecompressFloat64(stream []byte) ([]float64, []uint64, error) {
	return DecompressSlice[float64](stream)
}

// --- Parallel (OMP-style) variant -----------------------------------------

// ompMagic tags the framed multi-block format of the parallel variant.
const ompMagic = "SZMP"

// maxParallelBlocks caps the goroutine fan-out however large the nthreads
// option is, matching the 2^20 block ceiling DecompressParallel enforces.
const maxParallelBlocks = 1 << 20

// CompressParallel compresses by splitting the slowest dimension into
// roughly equal blocks compressed concurrently, the strategy of SZ-OMP.
// Each block is an independent CompressSlice stream, so the error bound is
// preserved per block. nthreads <= 0 selects GOMAXPROCS.
func CompressParallel[T Float](vals []T, dims []uint64, p Params, nthreads int) ([]byte, error) {
	if nthreads <= 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("sz: %w: no dimensions", core.ErrInvalidDims)
	}
	if p.Mode == core.BoundValueRangeRel {
		// Resolve the range globally so all blocks share one absolute
		// bound (a per-block range would change the bound semantics).
		lo, hi := sliceRange(vals)
		p.Mode = core.BoundAbs
		p.Bound = p.Bound * (hi - lo)
		if p.Bound <= 0 {
			p.Bound = 1e-38
		}
	}
	d0 := int(dims[0])
	blocks := nthreads
	if blocks > d0 {
		blocks = d0
	}
	if blocks < 1 {
		blocks = 1
	}
	if blocks > maxParallelBlocks {
		blocks = maxParallelBlocks
	}
	rowLen := 1
	for _, d := range dims[1:] {
		rowLen *= int(d)
	}
	type result struct {
		data []byte
		err  error
	}
	results := make([]result, blocks)
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		lo := b * d0 / blocks
		hi := (b + 1) * d0 / blocks
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			blockDims := append([]uint64{uint64(hi - lo)}, dims[1:]...)
			data, err := CompressSlice(vals[lo*rowLen:hi*rowLen], blockDims, p)
			results[b] = result{data, err}
		}(b, lo, hi)
	}
	wg.Wait()
	out := []byte(ompMagic)
	out = appendUvarint(out, uint64(blocks))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = appendUvarint(out, uint64(len(r.data)))
	}
	for _, r := range results {
		out = append(out, r.data...)
	}
	return out, nil
}

// DecompressParallel decodes a CompressParallel stream, decompressing
// blocks concurrently and reassembling along the slowest dimension.
func DecompressParallel[T Float](stream []byte, nthreads int) ([]T, []uint64, error) {
	if len(stream) < 4 || string(stream[:4]) != ompMagic {
		return nil, nil, ErrCorrupt
	}
	pos := 4
	nBlocks, sz := uvarint(stream[pos:])
	if sz <= 0 || nBlocks == 0 || nBlocks > 1<<20 {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	sizes := make([]uint64, nBlocks)
	var total uint64
	for i := range sizes {
		v, sz := uvarint(stream[pos:])
		if sz <= 0 {
			return nil, nil, ErrCorrupt
		}
		sizes[i] = v
		total += v
		pos += sz
	}
	if uint64(len(stream)-pos) < total {
		return nil, nil, ErrCorrupt
	}
	type result struct {
		vals []T
		dims []uint64
		err  error
	}
	results := make([]result, nBlocks)
	var wg sync.WaitGroup
	off := pos
	for i := uint64(0); i < nBlocks; i++ {
		blk := stream[off : off+int(sizes[i])]
		off += int(sizes[i])
		wg.Add(1)
		go func(i uint64, blk []byte) {
			defer wg.Done()
			vals, dims, err := DecompressSlice[T](blk)
			results[i] = result{vals, dims, err}
		}(i, blk)
	}
	wg.Wait()
	var out []T
	var dims []uint64
	var d0 uint64
	for i, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		if i == 0 {
			dims = append([]uint64(nil), r.dims...)
		} else if len(r.dims) != len(dims) {
			return nil, nil, ErrCorrupt
		}
		d0 += r.dims[0]
		out = append(out, r.vals...)
	}
	dims[0] = d0
	return out, dims, nil
}

// ParallelHeader reports the element type and total dims of a
// CompressParallel stream without decoding it.
func ParallelHeader(stream []byte) (core.DType, []uint64, error) {
	if len(stream) < 4 || string(stream[:4]) != ompMagic {
		return core.DTypeUnset, nil, ErrCorrupt
	}
	pos := 4
	nBlocks, sz := uvarint(stream[pos:])
	if sz <= 0 || nBlocks == 0 || nBlocks > 1<<20 {
		return core.DTypeUnset, nil, ErrCorrupt
	}
	pos += sz
	sizes := make([]uint64, nBlocks)
	for i := range sizes {
		v, sz := uvarint(stream[pos:])
		if sz <= 0 {
			return core.DTypeUnset, nil, ErrCorrupt
		}
		sizes[i] = v
		pos += sz
	}
	var dims []uint64
	var dtype core.DType
	off := pos
	for i, bs := range sizes {
		if off+int(bs) > len(stream) {
			return core.DTypeUnset, nil, ErrCorrupt
		}
		h, _, err := ParseHeader(stream[off : off+int(bs)])
		if err != nil {
			return core.DTypeUnset, nil, err
		}
		if i == 0 {
			dtype = h.DType
			dims = append([]uint64(nil), h.Dims...)
		} else {
			dims[0] += h.Dims[0]
		}
		off += int(bs)
	}
	return dtype, dims, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			if i > 9 {
				return 0, -1
			}
			return v | uint64(c)<<s, i + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}
