package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

// smooth3D generates a smooth field resembling scientific simulation data.
func smooth3D(nx, ny, nz int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, nx*ny*nz)
	fx, fy, fz := rng.Float64()*0.3, rng.Float64()*0.3, rng.Float64()*0.3
	i := 0
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				v := math.Sin(fx*float64(x))*math.Cos(fy*float64(y)) +
					0.5*math.Sin(fz*float64(z)) +
					0.01*rng.NormFloat64()
				out[i] = float32(100 * v)
				i++
			}
		}
	}
	return out
}

func maxAbsErr32(a, b []float32) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > worst {
			worst = d
		}
	}
	return worst
}

func TestAbsBoundHolds3D(t *testing.T) {
	vals := smooth3D(16, 20, 24, 1)
	for _, eb := range []float64{10, 1, 0.1, 0.01, 1e-4} {
		stream, err := CompressSlice(vals, []uint64{16, 20, 24}, Params{Mode: core.BoundAbs, Bound: eb})
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		dec, dims, err := DecompressSlice[float32](stream)
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		if len(dims) != 3 || dims[0] != 16 || dims[1] != 20 || dims[2] != 24 {
			t.Fatalf("dims: %v", dims)
		}
		if worst := maxAbsErr32(vals, dec); worst > eb {
			t.Fatalf("eb=%g: max error %g exceeds bound", eb, worst)
		}
	}
}

func TestValueRangeRelBound(t *testing.T) {
	vals := smooth3D(10, 30, 30, 2)
	lo, hi := sliceRange(vals)
	rel := 1e-3
	stream, err := CompressSlice(vals, []uint64{10, 30, 30}, Params{Mode: core.BoundValueRangeRel, Bound: rel})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if worst := maxAbsErr32(vals, dec); worst > rel*(hi-lo) {
		t.Fatalf("max error %g exceeds rel bound %g", worst, rel*(hi-lo))
	}
}

func TestBoundHoldsOnRandomData(t *testing.T) {
	// Pure noise is unpredictable: most points become outliers, stored
	// losslessly — the bound must still hold and ratio should be >= ~1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4)))
		}
		eb := math.Pow(10, float64(-rng.Intn(6)))
		stream, err := CompressSlice(vals, []uint64{uint64(n)}, Params{Mode: core.BoundAbs, Bound: eb})
		if err != nil {
			return false
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			return false
		}
		return maxAbsErr32(vals, dec) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Path(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 40*40)
	for i := range vals {
		vals[i] = math.Sin(float64(i)/30) + 0.001*rng.NormFloat64()
	}
	eb := 1e-6
	stream, err := CompressSlice(vals, []uint64{40, 40}, Params{Mode: core.BoundAbs, Bound: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float64](stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(vals[i]-dec[i]) > eb {
			t.Fatalf("elem %d: |%g-%g| > %g", i, vals[i], dec[i], eb)
		}
	}
}

func TestSpecialValuesPreserved(t *testing.T) {
	vals := []float32{1, 2, float32(math.NaN()), 4, float32(math.Inf(1)), 6, float32(math.Inf(-1)), 8}
	stream, err := CompressSlice(vals, []uint64{8}, Params{Mode: core.BoundAbs, Bound: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(dec[2])) {
		t.Fatalf("NaN not preserved: %v", dec[2])
	}
	if !math.IsInf(float64(dec[4]), 1) || !math.IsInf(float64(dec[6]), -1) {
		t.Fatalf("Inf not preserved: %v %v", dec[4], dec[6])
	}
}

func TestConstantField(t *testing.T) {
	vals := make([]float32, 1000)
	for i := range vals {
		vals[i] = 42.5
	}
	stream, err := CompressSlice(vals, []uint64{10, 100}, Params{Mode: core.BoundValueRangeRel, Bound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) > 500 {
		t.Fatalf("constant field should compress tiny, got %d bytes", len(stream))
	}
	dec, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i] != 42.5 {
			t.Fatalf("constant not preserved: %v", dec[i])
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	vals := smooth3D(32, 32, 32, 3)
	stream, err := CompressSlice(vals, []uint64{32, 32, 32}, Params{Mode: core.BoundValueRangeRel, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(vals)*4) / float64(len(stream))
	if ratio < 4 {
		t.Fatalf("smooth field ratio %f too low", ratio)
	}
}

func TestDimensionOrderingMatters(t *testing.T) {
	// The §V claim: reversing the dims degrades the ratio. Use an
	// anisotropic field (smooth along z, rough along x).
	nx, ny, nz := 8, 16, 64
	vals := smooth3D(nx, ny, nz, 7)
	correct, err := CompressSlice(vals, []uint64{uint64(nx), uint64(ny), uint64(nz)},
		Params{Mode: core.BoundAbs, Bound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	reversed, err := CompressSlice(vals, []uint64{uint64(nz), uint64(ny), uint64(nx)},
		Params{Mode: core.BoundAbs, Bound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(reversed) <= len(correct) {
		t.Fatalf("reversed dims should compress worse: correct=%d reversed=%d", len(correct), len(reversed))
	}
}

func TestFlattenTo1DMatters(t *testing.T) {
	vals := smooth3D(24, 24, 24, 8)
	n := uint64(len(vals))
	three, err := CompressSlice(vals, []uint64{24, 24, 24}, Params{Mode: core.BoundAbs, Bound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	one, err := CompressSlice(vals, []uint64{n}, Params{Mode: core.BoundAbs, Bound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) <= len(three) {
		t.Fatalf("1-D treatment should compress worse: 3d=%d 1d=%d", len(three), len(one))
	}
}

func TestHigherRankBatch(t *testing.T) {
	vals := smooth3D(4*6, 8, 10, 9) // treat as 4-D {4,6,8,10}
	stream, err := CompressSlice(vals, []uint64{4, 6, 8, 10}, Params{Mode: core.BoundAbs, Bound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	dec, dims, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 4 {
		t.Fatalf("dims %v", dims)
	}
	if worst := maxAbsErr32(vals, dec); worst > 0.05 {
		t.Fatalf("max error %g", worst)
	}
}

func TestGlobalAPIRequiresInit(t *testing.T) {
	Finalize()
	if _, err := CompressFloat32([]float32{1, 2, 3}, []uint64{3}); err == nil {
		t.Fatal("expected ErrNotInitialized")
	}
	Init(Params{Mode: core.BoundAbs, Bound: 0.1})
	defer Finalize()
	if !Initialized() {
		t.Fatal("Initialized() false after Init")
	}
	stream, err := CompressFloat32([]float32{1, 2, 3}, []uint64{3})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressFloat32(stream)
	if err != nil || len(dec) != 3 {
		t.Fatalf("decompress: %v %v", dec, err)
	}
}

func TestParallelMatchesSerialBound(t *testing.T) {
	vals := smooth3D(32, 16, 16, 11)
	dims := []uint64{32, 16, 16}
	eb := 0.01
	stream, err := CompressParallel(vals, dims, Params{Mode: core.BoundAbs, Bound: eb}, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, outDims, err := DecompressParallel[float32](stream, 4)
	if err != nil {
		t.Fatal(err)
	}
	if outDims[0] != 32 || outDims[1] != 16 || outDims[2] != 16 {
		t.Fatalf("dims %v", outDims)
	}
	if worst := maxAbsErr32(vals, dec); worst > eb {
		t.Fatalf("parallel max error %g exceeds %g", worst, eb)
	}
}

func TestParallelRelBoundUsesGlobalRange(t *testing.T) {
	// With a value-range-relative bound the parallel path must resolve the
	// range over the whole field, not per block.
	vals := make([]float32, 64*8)
	for i := range vals {
		vals[i] = float32(i / 64) // block-constant ramp
	}
	dims := []uint64{64, 8}
	rel := 1e-3
	stream, err := CompressParallel(vals, dims, Params{Mode: core.BoundValueRangeRel, Bound: rel}, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressParallel[float32](stream, 8)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sliceRange(vals)
	if worst := maxAbsErr32(vals, dec); worst > rel*float64(hi-lo) {
		t.Fatalf("max error %g exceeds global rel bound %g", worst, rel*(hi-lo))
	}
}

func TestParallelHeader(t *testing.T) {
	vals := smooth3D(20, 10, 10, 12)
	stream, err := CompressParallel(vals, []uint64{20, 10, 10}, Params{Mode: core.BoundAbs, Bound: 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	dtype, dims, err := ParallelHeader(stream)
	if err != nil {
		t.Fatal(err)
	}
	if dtype != core.DTypeFloat32 || dims[0] != 20 {
		t.Fatalf("header: %v %v", dtype, dims)
	}
}

func TestCorruptStreams(t *testing.T) {
	vals := smooth3D(8, 8, 8, 13)
	stream, err := CompressSlice(vals, []uint64{8, 8, 8}, Params{Mode: core.BoundAbs, Bound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 3, 5, 10, len(stream) / 2, len(stream) - 1} {
		if _, _, err := DecompressSlice[float32](stream[:cut]); err == nil {
			t.Fatalf("truncation at %d: expected error", cut)
		}
	}
	if _, _, err := DecompressSlice[float64](stream); err == nil {
		t.Fatal("expected dtype mismatch error")
	}
	garbage := append([]byte("SZG1"), 0xff, 0xff, 0xff)
	if _, _, err := DecompressSlice[float32](garbage); err == nil {
		t.Fatal("expected garbage error")
	}
}

func TestInvalidParams(t *testing.T) {
	vals := []float32{1, 2, 3}
	cases := []Params{
		{Mode: core.BoundAbs, Bound: 0},
		{Mode: core.BoundAbs, Bound: -1},
		{Mode: core.BoundAbs, Bound: math.NaN()},
		{Mode: core.BoundAbs, Bound: math.Inf(1)},
	}
	for i, p := range cases {
		if _, err := CompressSlice(vals, []uint64{3}, p); err == nil {
			t.Fatalf("case %d: expected parameter error", i)
		}
	}
	if _, err := CompressSlice(vals, []uint64{4}, Params{Mode: core.BoundAbs, Bound: 1}); err == nil {
		t.Fatal("expected dims/length mismatch error")
	}
	if _, err := CompressSlice(vals, []uint64{0}, Params{Mode: core.BoundAbs, Bound: 1}); err == nil {
		t.Fatal("expected zero-extent error")
	}
}

func TestPluginRoundTrip(t *testing.T) {
	vals := smooth3D(16, 16, 16, 21)
	in := core.FromFloat32s(vals, 16, 16, 16)
	for _, name := range []string{"sz", "sz_threadsafe", "sz_omp"} {
		c, err := core.NewCompressor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opts := core.NewOptions().SetValue(core.KeyAbs, 0.01)
		if err := c.SetOptions(opts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		comp, err := core.Compress(c, in)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		dec, err := core.Decompress(c, comp, core.DTypeFloat32, 16, 16, 16)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if worst := maxAbsErr32(vals, dec.Float32s()); worst > 0.01 {
			t.Fatalf("%s: max error %g", name, worst)
		}
	}
}

func TestPluginIntrospection(t *testing.T) {
	c, _ := core.NewCompressor("sz")
	opts := c.Options()
	if !opts.Has("sz:error_bound_mode_str") {
		t.Fatal("missing sz:error_bound_mode_str")
	}
	cfg := c.Configuration()
	if s, _ := cfg.GetString(core.KeyThreadSafe); s != "single" {
		t.Fatalf("sz thread safety: %q", s)
	}
	shared, _ := cfg.GetInt32(core.KeyShared)
	if shared != 1 {
		t.Fatal("sz should report a shared instance")
	}
	ts, _ := core.NewCompressor("sz_threadsafe")
	if s, _ := ts.Configuration().GetString(core.KeyThreadSafe); s != "multiple" {
		t.Fatalf("sz_threadsafe thread safety: %q", s)
	}
}

func TestPluginRejectsIntInput(t *testing.T) {
	c, _ := core.NewCompressor("sz")
	in := core.FromInt32s([]int32{1, 2, 3})
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.1)); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Compress(c, in); err == nil {
		t.Fatal("expected dtype error for int input")
	}
}

func BenchmarkCompress3D(b *testing.B) {
	vals := smooth3D(64, 64, 64, 1)
	dims := []uint64{64, 64, 64}
	p := Params{Mode: core.BoundValueRangeRel, Bound: 1e-3}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressSlice(vals, dims, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress3D(b *testing.B) {
	vals := smooth3D(64, 64, 64, 1)
	stream, err := CompressSlice(vals, []uint64{64, 64, 64}, Params{Mode: core.BoundValueRangeRel, Bound: 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressSlice[float32](stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressParallel(b *testing.B) {
	vals := smooth3D(64, 64, 64, 1)
	dims := []uint64{64, 64, 64}
	p := Params{Mode: core.BoundValueRangeRel, Bound: 1e-3}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressParallel(vals, dims, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
