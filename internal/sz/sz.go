// Package sz implements a prediction-based error-bounded lossy compressor
// in the style of SZ (Di & Cappello, IPDPS'16): a Lorenzo predictor over the
// reconstructed field, linear-scaling quantization of prediction residuals,
// canonical Huffman coding of the quantization codes, and a DEFLATE backend.
// Unpredictable points are stored losslessly, so the pointwise absolute
// error bound always holds.
//
// Like the original SZ, the package exposes a native API configured through
// a process-global parameter store (Init/Finalize) — the thread-safety
// hazard the paper discusses — plus explicit-parameter entry points that
// back the "sz_threadsafe" and "sz_omp" plugins.
package sz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"pressio/internal/core"
	"pressio/internal/huffman"
	"pressio/internal/lossless"
	"pressio/internal/trace"
)

// Version is the compressor version reported through the plugin interface.
const Version = "2.1.10-go"

// ErrCorrupt reports a malformed sz stream.
var ErrCorrupt = errors.New("sz: corrupt stream")

// Float constrains the element types the compressor accepts.
type Float interface {
	~float32 | ~float64
}

// Params configures a compression call.
type Params struct {
	// Mode selects how Bound is interpreted (absolute or value-range
	// relative).
	Mode core.ErrorBoundMode
	// Bound is the error bound in the units Mode implies. It must be > 0.
	Bound float64
	// MaxQuantIntervals is the number of linear quantization intervals
	// (default 65536). Larger values capture wider residuals at the cost
	// of a larger Huffman alphabet.
	MaxQuantIntervals uint32
	// LosslessLevel is the DEFLATE effort for the backend stage (0 =
	// library default).
	LosslessLevel int
	// PointwiseRel, when > 0, selects SZ's PW_REL mode instead of
	// Mode/Bound: each point's error is bounded by PointwiseRel * |value|.
	// Implemented, as in SZ, by compressing the logarithms of the
	// magnitudes under an absolute bound of log1p(PointwiseRel), with the
	// signs and exact zeros carried alongside.
	PointwiseRel float64
}

// DefaultParams returns the defaults matching SZ's out-of-the-box
// configuration: value-range relative bound of 1e-4 and 65536 intervals.
func DefaultParams() Params {
	return Params{Mode: core.BoundValueRangeRel, Bound: 1e-4, MaxQuantIntervals: 65536}
}

func (p Params) normalized() (Params, error) {
	if p.Bound <= 0 || math.IsNaN(p.Bound) || math.IsInf(p.Bound, 0) {
		return p, fmt.Errorf("sz: error bound %v must be positive and finite", p.Bound)
	}
	if p.MaxQuantIntervals == 0 {
		p.MaxQuantIntervals = 65536
	}
	if p.MaxQuantIntervals < 4 {
		p.MaxQuantIntervals = 4
	}
	if p.MaxQuantIntervals > 1<<24 {
		return p, fmt.Errorf("sz: max_quant_intervals %d too large", p.MaxQuantIntervals)
	}
	return p, nil
}

const (
	magic     = "SZG1"
	dtF32     = 1
	dtF64     = 2
	maxStream = 1 << 40
)

// geometry reduces arbitrary-rank dims to (outer, nx, ny, nz): prediction
// runs over the trailing three dimensions while leading dimensions are
// treated as an independent batch, mirroring how SZ handles 4-D data.
// maxGeomElems bounds the declared element count (and so every extent and
// partial product): 2^42 elements is 32 TiB of float64s, far past any slab
// this codec meets, while keeping products of capped extents overflow-free.
const maxGeomElems = 1 << 42

func geometry(dims []uint64) (outer, nx, ny, nz int, err error) {
	if len(dims) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("sz: %w: no dimensions", core.ErrInvalidDims)
	}
	total := uint64(1)
	for _, d := range dims {
		if d == 0 {
			return 0, 0, 0, 0, fmt.Errorf("sz: %w: zero extent", core.ErrInvalidDims)
		}
		if d > maxGeomElems || total > maxGeomElems/d {
			return 0, 0, 0, 0, fmt.Errorf("sz: %w: declared geometry %v exceeds %d elements", core.ErrInvalidDims, dims, uint64(maxGeomElems))
		}
		total *= d
	}
	outer, nx, ny, nz = 1, 1, 1, 1
	switch len(dims) {
	case 1:
		nz = int(dims[0])
	case 2:
		ny, nz = int(dims[0]), int(dims[1])
	case 3:
		nx, ny, nz = int(dims[0]), int(dims[1]), int(dims[2])
	default:
		for _, d := range dims[:len(dims)-3] {
			outer *= int(d)
		}
		nx, ny, nz = int(dims[len(dims)-3]), int(dims[len(dims)-2]), int(dims[len(dims)-1])
	}
	if outer > maxGeomElems || nx > maxGeomElems || ny > maxGeomElems || nz > maxGeomElems {
		return 0, 0, 0, 0, fmt.Errorf("sz: %w: extent exceeds %d", core.ErrInvalidDims, uint64(maxGeomElems))
	}
	return outer, nx, ny, nz, nil
}

// lorenzo computes the restricted Lorenzo prediction for position (x,y,z)
// from the reconstructed slice: the inclusion-exclusion sum over the
// neighbors available within bounds (dimensions at index 0 drop out, so the
// predictor degrades gracefully from 3-D to 2-D to 1-D at boundaries).
func lorenzo[T Float](r []T, x, y, z, ny, nz int) float64 {
	base := (x*ny + y) * nz
	switch {
	case x > 0 && y > 0 && z > 0:
		pm := ((x-1)*ny + y) * nz // x-1 plane
		qm := ((x-1)*ny + y - 1) * nz
		rm := (x*ny + y - 1) * nz // y-1 row
		return float64(r[pm+z]) + float64(r[rm+z]) + float64(r[base+z-1]) -
			float64(r[qm+z]) - float64(r[pm+z-1]) - float64(r[rm+z-1]) +
			float64(r[qm+z-1])
	case x > 0 && y > 0:
		pm := ((x-1)*ny + y) * nz
		qm := ((x-1)*ny + y - 1) * nz
		rm := (x*ny + y - 1) * nz
		return float64(r[pm+z]) + float64(r[rm+z]) - float64(r[qm+z])
	case x > 0 && z > 0:
		pm := ((x-1)*ny + y) * nz
		return float64(r[pm+z]) + float64(r[base+z-1]) - float64(r[pm+z-1])
	case y > 0 && z > 0:
		rm := (x*ny + y - 1) * nz
		return float64(r[rm+z]) + float64(r[base+z-1]) - float64(r[rm+z-1])
	case x > 0:
		return float64(r[((x-1)*ny+y)*nz+z])
	case y > 0:
		return float64(r[(x*ny+y-1)*nz+z])
	case z > 0:
		return float64(r[base+z-1])
	default:
		return 0
	}
}

//pressio:hotpath measured by the perf ledger
// CompressSlice compresses vals shaped dims (C order) under p and returns
// the self-describing stream.
func CompressSlice[T Float](vals []T, dims []uint64, p Params) ([]byte, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	outer, nx, ny, nz, err := geometry(dims)
	if err != nil {
		return nil, err
	}
	n := outer * nx * ny * nz
	if n != len(vals) {
		return nil, fmt.Errorf("sz: %w: dims %v describe %d elements, have %d",
			core.ErrInvalidDims, dims, n, len(vals))
	}
	eb := p.Bound
	if p.Mode == core.BoundValueRangeRel {
		lo, hi := sliceRange(vals)
		eb = p.Bound * (hi - lo)
		if eb <= 0 {
			// Constant (or empty) field: any positive bound works.
			eb = math.SmallestNonzeroFloat32
		}
	}
	radius := int64(p.MaxQuantIntervals / 2)
	twoEb := 2 * eb

	codes := make([]uint32, n)
	recon := make([]T, n)
	var outliers []T

	// Stage spans expose where time goes inside the codec: the Lorenzo
	// prediction + linear quantization sweep vs the entropy/lossless encode.
	spPredict := trace.Start("sz.predict_quantize")
	slice := nx * ny * nz
	for o := 0; o < outer; o++ {
		v := vals[o*slice : (o+1)*slice]
		r := recon[o*slice : (o+1)*slice]
		c := codes[o*slice : (o+1)*slice]
		i := 0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					pred := lorenzo(r, x, y, z, ny, nz)
					fv := float64(v[i])
					diff := fv - pred
					q := int64(math.Floor(diff/twoEb + 0.5))
					if q > -radius && q < radius {
						dec := T(pred + float64(q)*twoEb)
						if d := float64(dec) - fv; d <= eb && d >= -eb {
							c[i] = uint32(q + radius)
							r[i] = dec
							i++
							continue
						}
					}
					c[i] = 0
					// Outlier count is data-dependent (near zero on smooth
					// fields); preallocating len(v) would defeat the bound's
					// purpose.
					//lint:ignore hotalloc outlier accumulation is data-dependent and amortized; typical outlier rates are far below 1%
					outliers = append(outliers, v[i])
					r[i] = v[i]
					i++
				}
			}
		}
	}

	spPredict.End()

	spEncode := trace.Start("sz.encode")
	huff, err := huffman.Encode(codes, uint32(2*radius))
	if err != nil {
		spEncode.End()
		return nil, err
	}
	outlierBytes := floatBytes(outliers)

	var hdr []byte
	hdr = append(hdr, magic...)
	hdr = append(hdr, dtypeByte[T]())
	hdr = append(hdr, byte(len(dims)))
	for _, d := range dims {
		hdr = binary.AppendUvarint(hdr, d)
	}
	hdr = binary.AppendUvarint(hdr, math.Float64bits(eb))
	hdr = binary.AppendUvarint(hdr, uint64(radius))
	hdr = binary.AppendUvarint(hdr, uint64(len(outliers)))
	hdr = binary.AppendUvarint(hdr, uint64(len(huff)))

	body := make([]byte, 0, len(huff)+len(outlierBytes))
	body = append(body, huff...)
	body = append(body, outlierBytes...)
	packed, err := lossless.Deflate(body, p.LosslessLevel)
	spEncode.End()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(hdr)+len(packed))
	out = append(out, hdr...)
	out = append(out, packed...)
	return out, nil
}

// Header describes a compressed stream without decoding its payload.
type Header struct {
	DType core.DType
	Dims  []uint64
	Bound float64 // resolved absolute bound
}

// ParseHeader reads the stream header.
func ParseHeader(stream []byte) (Header, int, error) {
	var h Header
	if len(stream) < 6 || string(stream[:4]) != magic {
		return h, 0, ErrCorrupt
	}
	switch stream[4] {
	case dtF32:
		h.DType = core.DTypeFloat32
	case dtF64:
		h.DType = core.DTypeFloat64
	default:
		return h, 0, ErrCorrupt
	}
	rank := int(stream[5])
	if rank == 0 || rank > 16 {
		return h, 0, ErrCorrupt
	}
	pos := 6
	h.Dims = make([]uint64, rank)
	for i := 0; i < rank; i++ {
		d, sz := binary.Uvarint(stream[pos:])
		if sz <= 0 || d == 0 || d > maxStream {
			return h, 0, ErrCorrupt
		}
		h.Dims[i] = d
		pos += sz
	}
	ebBits, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 {
		return h, 0, ErrCorrupt
	}
	pos += sz
	h.Bound = math.Float64frombits(ebBits)
	return h, pos, nil
}

//pressio:hotpath measured by the perf ledger
// DecompressSlice decodes a stream produced by CompressSlice. The type
// parameter must match the stream's recorded element type.
func DecompressSlice[T Float](stream []byte) ([]T, []uint64, error) {
	h, pos, err := ParseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	if h.DType != wantDType[T]() {
		return nil, nil, fmt.Errorf("sz: %w: stream holds %s", core.ErrInvalidDType, h.DType)
	}
	radius64, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 || radius64 == 0 || radius64 > 1<<23 {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	nOut, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	huffLen, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	spDecode := trace.Start("sz.decode")
	body, err := lossless.Inflate(stream[pos:])
	if err != nil {
		spDecode.End()
		return nil, nil, err
	}
	if huffLen > uint64(len(body)) {
		spDecode.End()
		return nil, nil, ErrCorrupt
	}
	codes, _, err := huffman.Decode(body[:huffLen])
	if err != nil {
		spDecode.End()
		return nil, nil, err
	}
	outliers, err := floatsFrom[T](body[huffLen:], nOut)
	spDecode.End()
	if err != nil {
		return nil, nil, err
	}
	outer, nx, ny, nz, err := geometry(h.Dims)
	if err != nil {
		return nil, nil, err
	}
	n := outer * nx * ny * nz
	if len(codes) != n {
		return nil, nil, ErrCorrupt
	}
	radius := int64(radius64)
	twoEb := 2 * h.Bound
	recon := make([]T, n)
	spRecon := trace.Start("sz.reconstruct")
	defer spRecon.End()
	oi := 0
	slice := nx * ny * nz
	for o := 0; o < outer; o++ {
		r := recon[o*slice : (o+1)*slice]
		c := codes[o*slice : (o+1)*slice]
		i := 0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					code := c[i]
					if code == 0 {
						if oi >= len(outliers) {
							return nil, nil, ErrCorrupt
						}
						r[i] = outliers[oi]
						oi++
					} else {
						pred := lorenzo(r, x, y, z, ny, nz)
						q := int64(code) - radius
						r[i] = T(pred + float64(q)*twoEb)
					}
					i++
				}
			}
		}
	}
	if oi != len(outliers) {
		return nil, nil, ErrCorrupt
	}
	return recon, h.Dims, nil
}

func sliceRange[T Float](vals []T) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

func dtypeByte[T Float]() byte {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return dtF32
	}
	return dtF64
}

func wantDType[T Float]() core.DType {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return core.DTypeFloat32
	}
	return core.DTypeFloat64
}

func floatBytes[T Float](vals []T) []byte {
	var zero T
	if _, ok := any(zero).(float32); ok {
		out := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
		}
		return out
	}
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(float64(v)))
	}
	return out
}

func floatsFrom[T Float](b []byte, n uint64) ([]T, error) {
	var zero T
	size := uint64(4)
	if _, ok := any(zero).(float64); ok {
		size = 8
	}
	// Divide rather than multiply: n*size can wrap for a hostile count.
	if n > uint64(len(b))/size {
		return nil, ErrCorrupt
	}
	out := make([]T, n)
	for i := uint64(0); i < n; i++ {
		if size == 4 {
			out[i] = T(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		} else {
			out[i] = T(math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
	}
	return out, nil
}
