package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func TestPWRelBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Values spanning 12 orders of magnitude — the workload PW_REL exists
	// for, where any absolute bound is wrong for most of the data.
	vals := make([]float32, 4096)
	for i := range vals {
		mag := math.Pow(10, float64(rng.Intn(12))-6)
		sign := 1.0
		if rng.Float64() < 0.5 {
			sign = -1
		}
		vals[i] = float32(sign * mag * (1 + 0.3*rng.Float64()))
	}
	for _, rel := range []float64{0.1, 0.01, 1e-3} {
		stream, err := CompressSlicePW(vals, []uint64{64, 64}, rel, Params{})
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		dec, dims, err := DecompressSlicePW[float32](stream)
		if err != nil {
			t.Fatalf("rel %g: %v", rel, err)
		}
		if len(dims) != 2 {
			t.Fatalf("dims %v", dims)
		}
		for i := range vals {
			limit := rel*math.Abs(float64(vals[i]))*1.001 + 1e-30
			if d := math.Abs(float64(dec[i]) - float64(vals[i])); d > limit {
				t.Fatalf("rel %g elem %d: |%g-%g| = %g > %g", rel, i, dec[i], vals[i], d, limit)
			}
		}
	}
}

func TestPWRelSpecials(t *testing.T) {
	vals := []float32{0, -0, 1, -1, float32(math.NaN()), float32(math.Inf(1)), 1e-30, -1e30}
	stream, err := CompressSlicePW(vals, []uint64{8}, 0.01, Params{})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlicePW[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0] != 0 || dec[1] != 0 {
		t.Fatal("zeros not exact")
	}
	if !math.IsNaN(float64(dec[4])) || !math.IsInf(float64(dec[5]), 1) {
		t.Fatal("specials not preserved")
	}
	for _, i := range []int{2, 3, 6, 7} {
		rel := math.Abs(float64(dec[i])-float64(vals[i])) / math.Abs(float64(vals[i]))
		if rel > 0.0101 {
			t.Fatalf("elem %d rel error %g", i, rel)
		}
	}
}

func TestPWRelFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = math.Exp(20 * rng.NormFloat64()) // extreme dynamic range
	}
	stream, err := CompressSlicePW(vals, []uint64{500}, 1e-4, Params{})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := DecompressSlicePW[float64](stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if rel := math.Abs(dec[i]-vals[i]) / vals[i]; rel > 1e-4*1.001 {
			t.Fatalf("elem %d rel error %g", i, rel)
		}
	}
}

func TestPWRelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(300)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(10)-5)))
		}
		rel := math.Pow(10, -1-float64(rng.Intn(3)))
		stream, err := CompressSlicePW(vals, []uint64{uint64(n)}, rel, Params{})
		if err != nil {
			return false
		}
		dec, _, err := DecompressSlicePW[float32](stream)
		if err != nil {
			return false
		}
		for i := range vals {
			if math.Abs(float64(dec[i])-float64(vals[i])) > rel*math.Abs(float64(vals[i]))*1.001+1e-30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPWRelInvalidParams(t *testing.T) {
	vals := []float32{1, 2}
	for _, rel := range []float64{0, -0.1, 1, 2, math.NaN()} {
		if _, err := CompressSlicePW(vals, []uint64{2}, rel, Params{}); err == nil {
			t.Fatalf("rel %v should be rejected", rel)
		}
	}
}

func TestPWRelThroughPlugin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float32, 32*32)
	for i := range vals {
		vals[i] = float32(math.Exp(rng.NormFloat64() * 5))
	}
	in := core.FromFloat32s(vals, 32, 32)
	c, _ := core.NewCompressor("sz")
	if err := c.SetOptions(core.NewOptions().SetValue("sz:pw_rel_err_bound", 0.01)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Float32s() {
		if rel := math.Abs(float64(v)-float64(vals[i])) / float64(vals[i]); rel > 0.0101 {
			t.Fatalf("elem %d rel error %g", i, rel)
		}
	}
	// Switching back to an absolute mode disables PW_REL.
	if err := c.SetOptions(core.NewOptions().
		SetValue("sz:error_bound_mode_str", "abs").
		SetValue("sz:abs_err_bound", 0.5)); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Options().GetFloat64("sz:pw_rel_err_bound"); err == nil {
		t.Fatalf("pw_rel still set: %v", v)
	}
	// Validation.
	if err := c.SetOptions(core.NewOptions().SetValue("sz:pw_rel_err_bound", 2.0)); err == nil {
		t.Fatal("pw_rel 2.0 should be rejected")
	}
}

func TestPWRelOMPUnsupported(t *testing.T) {
	c, _ := core.NewCompressor("sz_omp")
	if err := c.SetOptions(core.NewOptions().SetValue("sz_omp:pw_rel_err_bound", 0.01)); err != nil {
		t.Fatal(err)
	}
	in := core.FromFloat32s(make([]float32, 64), 64)
	if _, err := core.Compress(c, in); err == nil {
		t.Fatal("sz_omp PW_REL should report not implemented")
	}
}
