package sz

import (
	"encoding/binary"
	"fmt"
	"math"

	"pressio/internal/core"
	"pressio/internal/lossless"
)

// pwMagic tags the pointwise-relative wrapper stream.
const pwMagic = "SZPW"

// Per-point classification codes for PW_REL streams.
const (
	pwNegative = iota
	pwPositive
	pwZero
	pwException // non-finite, stored verbatim
)

// CompressSlicePW compresses under a pointwise relative bound: for every
// finite nonzero value, |dec - v| <= rel * |v|. Following SZ's PW_REL
// design, the logarithms of the magnitudes are compressed under an
// absolute bound of log1p(rel); signs, exact zeros, and non-finite values
// travel in a side channel.
func CompressSlicePW[T Float](vals []T, dims []uint64, rel float64, p Params) ([]byte, error) {
	if rel <= 0 || rel >= 1 || math.IsNaN(rel) {
		return nil, fmt.Errorf("sz: pointwise relative bound %v must be in (0,1)", rel)
	}
	outer, nx, ny, nz, err := geometry(dims)
	if err != nil {
		return nil, err
	}
	if outer*nx*ny*nz != len(vals) {
		return nil, fmt.Errorf("sz: %w: dims %v vs %d elements", core.ErrInvalidDims, dims, len(vals))
	}
	logs := make([]T, len(vals))
	codes := make([]byte, len(vals))
	var exceptions []T
	for i, v := range vals {
		f := float64(v)
		switch {
		case math.IsNaN(f) || math.IsInf(f, 0):
			codes[i] = pwException
			exceptions = append(exceptions, v)
			logs[i] = 0
		case f == 0:
			codes[i] = pwZero
			logs[i] = 0
		case f > 0:
			codes[i] = pwPositive
			logs[i] = T(math.Log(f))
		default:
			codes[i] = pwNegative
			logs[i] = T(math.Log(-f))
		}
	}
	inner := p
	inner.Mode = core.BoundAbs
	inner.Bound = math.Log1p(rel)
	inner.PointwiseRel = 0
	logStream, err := CompressSlice(logs, dims, inner)
	if err != nil {
		return nil, err
	}
	// 2-bit pack the codes and DEFLATE them (they are highly repetitive).
	packed := make([]byte, (len(codes)+3)/4)
	for i, c := range codes {
		packed[i/4] |= c << ((i % 4) * 2)
	}
	packedCodes, err := lossless.Deflate(packed, p.LosslessLevel)
	if err != nil {
		return nil, err
	}
	excBytes := floatBytes(exceptions)

	var out []byte
	out = append(out, pwMagic...)
	out = binary.AppendUvarint(out, math.Float64bits(rel))
	out = binary.AppendUvarint(out, uint64(len(vals)))
	out = binary.AppendUvarint(out, uint64(len(packedCodes)))
	out = binary.AppendUvarint(out, uint64(len(exceptions)))
	out = append(out, packedCodes...)
	out = append(out, excBytes...)
	out = append(out, logStream...)
	return out, nil
}

// IsPWStream reports whether the stream was produced by CompressSlicePW.
func IsPWStream(stream []byte) bool {
	return len(stream) >= 4 && string(stream[:4]) == pwMagic
}

// DecompressSlicePW decodes a stream produced by CompressSlicePW.
func DecompressSlicePW[T Float](stream []byte) ([]T, []uint64, error) {
	if !IsPWStream(stream) {
		return nil, nil, ErrCorrupt
	}
	pos := 4
	relBits, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	if rel := math.Float64frombits(relBits); rel <= 0 || rel >= 1 {
		return nil, nil, ErrCorrupt
	}
	n64, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 || n64 > maxStream {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	codesLen, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 || codesLen > uint64(len(stream)) {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	nExc, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 || nExc > n64 {
		return nil, nil, ErrCorrupt
	}
	pos += sz
	if uint64(pos)+codesLen > uint64(len(stream)) {
		return nil, nil, ErrCorrupt
	}
	packed, err := lossless.Inflate(stream[pos : pos+int(codesLen)])
	if err != nil {
		return nil, nil, err
	}
	pos += int(codesLen)
	if uint64(len(packed)) < (n64+3)/4 {
		return nil, nil, ErrCorrupt
	}
	var zero T
	excSize := 4
	if _, ok := any(zero).(float64); ok {
		excSize = 8
	}
	if uint64(pos)+nExc*uint64(excSize) > uint64(len(stream)) {
		return nil, nil, ErrCorrupt
	}
	exceptions, err := floatsFrom[T](stream[pos:pos+int(nExc)*excSize], nExc)
	if err != nil {
		return nil, nil, err
	}
	pos += int(nExc) * excSize

	logs, dims, err := DecompressSlice[T](stream[pos:])
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(logs)) != n64 {
		return nil, nil, ErrCorrupt
	}
	out := make([]T, n64)
	ei := 0
	for i := range out {
		code := (packed[i/4] >> ((i % 4) * 2)) & 3
		switch code {
		case pwZero:
			out[i] = 0
		case pwPositive:
			out[i] = T(math.Exp(float64(logs[i])))
		case pwNegative:
			out[i] = T(-math.Exp(float64(logs[i])))
		case pwException:
			if ei >= len(exceptions) {
				return nil, nil, ErrCorrupt
			}
			out[i] = exceptions[ei]
			ei++
		}
	}
	if ei != len(exceptions) {
		return nil, nil, ErrCorrupt
	}
	return out, dims, nil
}
