package sz

import (
	"math"
	"testing"

	"pressio/internal/core"
)

// FuzzDecompressSlice drives the decoder with arbitrary bytes: it must
// never panic, and whenever it accepts a stream the result must match the
// header's shape. (Runs its seed corpus under plain `go test`; use
// `go test -fuzz=FuzzDecompressSlice ./internal/sz` to explore further.)
func FuzzDecompressSlice(f *testing.F) {
	good, _ := CompressSlice([]float32{1, 2, 3, 4, 5, 6}, []uint64{2, 3},
		Params{Mode: core.BoundAbs, Bound: 0.1})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("SZG1"))
	f.Add(append(append([]byte{}, good[:8]...), 0xff, 0xff, 0xff))
	f.Fuzz(func(t *testing.T, stream []byte) {
		vals, dims, err := DecompressSlice[float32](stream)
		if err != nil {
			return
		}
		n := uint64(1)
		for _, d := range dims {
			n *= d
		}
		if uint64(len(vals)) != n {
			t.Fatalf("accepted stream with inconsistent shape: %d vs %v", len(vals), dims)
		}
	})
}

// FuzzCompressRoundTrip drives the full pipeline with arbitrary float bit
// patterns: every accepted input must round trip within the bound (or
// bit-exactly for non-finite values).
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}) // [1.0, 2.0]
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 4 || len(raw) > 1<<14 {
			return
		}
		n := len(raw) / 4
		vals := make([]float32, n)
		for i := range vals {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
				uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			vals[i] = math.Float32frombits(bits)
		}
		const eb = 0.01
		stream, err := CompressSlice(vals, []uint64{uint64(n)}, Params{Mode: core.BoundAbs, Bound: eb})
		if err != nil {
			t.Fatalf("compress rejected valid input: %v", err)
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			t.Fatalf("decompress of own stream failed: %v", err)
		}
		for i := range vals {
			a, b := float64(vals[i]), float64(dec[i])
			if math.IsNaN(a) {
				if !math.IsNaN(b) {
					t.Fatalf("elem %d: NaN not preserved", i)
				}
				continue
			}
			if math.IsInf(a, 0) {
				if a != b {
					t.Fatalf("elem %d: Inf not preserved", i)
				}
				continue
			}
			if math.Abs(a-b) > eb {
				t.Fatalf("elem %d: |%g-%g| > %g", i, a, b, eb)
			}
		}
	})
}
