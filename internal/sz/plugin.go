package sz

import (
	"fmt"

	"pressio/internal/core"
)

// variant selects between the three plugin flavors the paper's plugin list
// includes: sz (global-config, serialized), sz_threadsafe (per-instance
// config), and sz_omp (block-parallel).
type variant int

const (
	variantGlobal variant = iota
	variantThreadsafe
	variantOMP
)

type plugin struct {
	variant  variant
	name     string
	bound    core.BoundConfig
	pwRel    float64 // > 0 selects the PW_REL mode
	intvs    uint32
	level    int32
	nthreads int32
}

func newPlugin(v variant, name string) func() core.CompressorPlugin {
	return func() core.CompressorPlugin {
		return &plugin{
			variant: v,
			name:    name,
			bound:   core.BoundConfig{Mode: core.BoundValueRangeRel, Bound: 1e-4},
			intvs:   65536,
		}
	}
}

func init() {
	core.RegisterCompressor("sz", newPlugin(variantGlobal, "sz"))
	core.RegisterCompressor("sz_threadsafe", newPlugin(variantThreadsafe, "sz_threadsafe"))
	core.RegisterCompressor("sz_omp", newPlugin(variantOMP, "sz_omp"))
}

func (p *plugin) Prefix() string  { return p.name }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	p.bound.Describe(p.name, o)
	o.SetValue(p.name+":max_quant_intervals", p.intvs)
	if p.pwRel > 0 {
		o.SetValue(p.name+":pw_rel_err_bound", p.pwRel)
	} else {
		o.SetType(p.name+":pw_rel_err_bound", core.OptDouble)
	}
	o.SetValue(p.name+":lossless_level", p.level)
	o.SetValue(core.KeyLossless, p.level)
	if p.variant == variantOMP {
		o.SetValue(p.name+":nthreads", p.nthreads)
		o.SetValue(core.KeyNThreads, p.nthreads)
	}
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if err := p.bound.ApplyOptions(p.name, o); err != nil {
		return err
	}
	if v, err := o.GetFloat64(p.name + ":pw_rel_err_bound"); err == nil {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("%w: pw_rel_err_bound %v outside (0,1)", core.ErrInvalidOption, v)
		}
		p.pwRel = v
	}
	if s, err := o.GetString(p.name + ":error_bound_mode_str"); err == nil && s != "pw_rel" {
		p.pwRel = 0 // an explicit abs/rel mode turns PW_REL off
	}
	if o.Has(core.KeyAbs) || o.Has(core.KeyRel) {
		p.pwRel = 0 // generic bounds also supersede PW_REL
	}
	if v, err := o.GetUint64(p.name + ":max_quant_intervals"); err == nil {
		if v < 4 || v > 1<<24 {
			return fmt.Errorf("%w: max_quant_intervals %d outside [4, 2^24]", core.ErrInvalidOption, v)
		}
		p.intvs = uint32(v)
	}
	if v, err := o.GetInt32(core.KeyLossless); err == nil {
		p.level = v
	}
	if v, err := o.GetInt32(p.name + ":lossless_level"); err == nil {
		p.level = v
	}
	if p.variant == variantOMP {
		if v, err := o.GetInt32(core.KeyNThreads); err == nil {
			p.nthreads = v
		}
		if v, err := o.GetInt32(p.name + ":nthreads"); err == nil {
			p.nthreads = v
		}
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := *p
	if err := clone.SetOptions(o); err != nil {
		return err
	}
	if clone.bound.Bound <= 0 {
		return fmt.Errorf("%w: error bound must be positive", core.ErrInvalidOption)
	}
	return nil
}

func (p *plugin) Configuration() *core.Options {
	switch p.variant {
	case variantGlobal:
		// The classic-SZ flavor shares the process-global parameter
		// store, so instances must be serialized and are "shared".
		return core.StandardConfiguration(core.ThreadSafetySingle, "stable", Version, true)
	default:
		return core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", Version, false)
	}
}

func (p *plugin) params() Params {
	return Params{
		Mode:              p.bound.Mode,
		Bound:             p.bound.Bound,
		MaxQuantIntervals: p.intvs,
		LosslessLevel:     int(p.level),
	}
}

func (p *plugin) CompressImpl(in, out *core.Data) error {
	var stream []byte
	var err error
	if p.pwRel > 0 {
		if p.variant == variantOMP {
			return fmt.Errorf("%w: sz_omp does not support PW_REL", core.ErrNotImplemented)
		}
		switch in.DType() {
		case core.DTypeFloat32:
			stream, err = CompressSlicePW(in.Float32s(), in.Dims(), p.pwRel, p.params())
		case core.DTypeFloat64:
			stream, err = CompressSlicePW(in.Float64s(), in.Dims(), p.pwRel, p.params())
		default:
			err = fmt.Errorf("%w: sz supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
		}
		if err != nil {
			return err
		}
		out.Become(core.NewBytes(stream))
		return nil
	}
	switch p.variant {
	case variantGlobal:
		// Route through the global store exactly like the C plugin does
		// with SZ_Init / compress / SZ_Finalize. The lock makes the
		// "single" thread-safety contract concrete.
		global.mu.Lock()
		global.params = p.params()
		global.inited = true
		global.mu.Unlock()
		switch in.DType() {
		case core.DTypeFloat32:
			stream, err = CompressFloat32(in.Float32s(), in.Dims())
		case core.DTypeFloat64:
			stream, err = CompressFloat64(in.Float64s(), in.Dims())
		default:
			err = fmt.Errorf("%w: sz supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
		}
	case variantThreadsafe:
		switch in.DType() {
		case core.DTypeFloat32:
			stream, err = CompressSlice(in.Float32s(), in.Dims(), p.params())
		case core.DTypeFloat64:
			stream, err = CompressSlice(in.Float64s(), in.Dims(), p.params())
		default:
			err = fmt.Errorf("%w: sz supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
		}
	case variantOMP:
		switch in.DType() {
		case core.DTypeFloat32:
			stream, err = CompressParallel(in.Float32s(), in.Dims(), p.params(), int(p.nthreads))
		case core.DTypeFloat64:
			stream, err = CompressParallel(in.Float64s(), in.Dims(), p.params(), int(p.nthreads))
		default:
			err = fmt.Errorf("%w: sz supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
		}
	}
	if err != nil {
		return err
	}
	out.Become(core.NewBytes(stream))
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	// The stream self-describes dtype and dims; the hint only needs to be
	// compatible when set.
	stream := in.Bytes()
	if p.variant == variantOMP {
		return p.decompressOMP(stream, out)
	}
	if IsPWStream(stream) {
		return decompressPW(stream, out)
	}
	h, _, err := ParseHeader(stream)
	if err != nil {
		return err
	}
	switch h.DType {
	case core.DTypeFloat32:
		vals, dims, err := DecompressSlice[float32](stream)
		if err != nil {
			return err
		}
		out.Become(core.FromFloat32s(vals, dims...))
	case core.DTypeFloat64:
		vals, dims, err := DecompressSlice[float64](stream)
		if err != nil {
			return err
		}
		out.Become(core.FromFloat64s(vals, dims...))
	default:
		return ErrCorrupt
	}
	return nil
}

// decompressPW handles pointwise-relative streams for both float widths.
func decompressPW(stream []byte, out *core.Data) error {
	// The inner log stream records the element type; peek via a 32-bit
	// attempt first.
	if vals, dims, err := DecompressSlicePW[float32](stream); err == nil {
		out.Become(core.FromFloat32s(vals, dims...))
		return nil
	}
	vals, dims, err := DecompressSlicePW[float64](stream)
	if err != nil {
		return err
	}
	out.Become(core.FromFloat64s(vals, dims...))
	return nil
}

func (p *plugin) decompressOMP(stream []byte, out *core.Data) error {
	dtype, _, err := ParallelHeader(stream)
	if err != nil {
		return err
	}
	switch dtype {
	case core.DTypeFloat64:
		vals, dims, err := DecompressParallel[float64](stream, int(p.nthreads))
		if err != nil {
			return err
		}
		out.Become(core.FromFloat64s(vals, dims...))
	case core.DTypeFloat32:
		vals, dims, err := DecompressParallel[float32](stream, int(p.nthreads))
		if err != nil {
			return err
		}
		out.Become(core.FromFloat32s(vals, dims...))
	default:
		return ErrCorrupt
	}
	return nil
}

func (p *plugin) Clone() core.CompressorPlugin {
	clone := *p
	return &clone
}
