package sdrbench

import (
	"math"
	"testing"

	"pressio/internal/core"
	"pressio/internal/sz"
)

func TestDeterministicInSeed(t *testing.T) {
	for _, name := range Names() {
		a, ok := Generate(name, 1, 42)
		if !ok {
			t.Fatalf("unknown dataset %s", name)
		}
		b, _ := Generate(name, 1, 42)
		if !a.Equal(b) {
			t.Fatalf("%s: not deterministic", name)
		}
		c, _ := Generate(name, 1, 43)
		if a.Equal(c) {
			t.Fatalf("%s: seed ignored", name)
		}
	}
}

func TestShapesAndFiniteness(t *testing.T) {
	for _, name := range Names() {
		d, _ := Generate(name, 1, 1)
		if d.Len() == 0 {
			t.Fatalf("%s: empty", name)
		}
		for i, v := range d.Float32s() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite at %d", name, i)
			}
		}
		lo, hi := core.ValueRange(d)
		if hi <= lo {
			t.Fatalf("%s: degenerate range [%v,%v]", name, lo, hi)
		}
	}
}

func TestHurricaneIsSparseAndPositive(t *testing.T) {
	d := HurricaneCloud(16, 32, 32, 7)
	zeroish := 0
	for _, v := range d.Float32s() {
		if v < 0 {
			t.Fatal("cloud field must be non-negative")
		}
		if v < 1e-5 {
			zeroish++
		}
	}
	if float64(zeroish) < 0.2*float64(d.Len()) {
		t.Fatalf("cloud field should be mostly near-zero: %d of %d", zeroish, d.Len())
	}
}

func TestSmoothFieldsCompressBetterThanParticles(t *testing.T) {
	// The generators must reproduce the key SDRBench contrast: smooth
	// fields (hurricane, scale) compress far better than particle data
	// (HACC) at the same value-range-relative bound.
	ratio := func(d *core.Data) float64 {
		stream, err := sz.CompressSlice(d.Float32s(), d.Dims(),
			sz.Params{Mode: core.BoundValueRangeRel, Bound: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		return float64(d.ByteLen()) / float64(len(stream))
	}
	hurricane, _ := Generate(NameHurricane, 1, 5)
	hacc, _ := Generate(NameHACC, 1, 5)
	rh := ratio(hurricane)
	rp := ratio(hacc)
	if rh < 4*rp {
		t.Fatalf("smooth field should compress much better: hurricane %f vs hacc %f", rh, rp)
	}
	if rp < 0.8 {
		t.Fatalf("hacc ratio %f should not balloon", rp)
	}
}

func TestScaleParameterGrowsData(t *testing.T) {
	small, _ := Generate(NameNYX, 1, 1)
	big, _ := Generate(NameNYX, 2, 1)
	if big.Len() != small.Len()*8 {
		t.Fatalf("scale 2 should give 8x the voxels: %d vs %d", big.Len(), small.Len())
	}
}

func TestUnknownName(t *testing.T) {
	if _, ok := Generate("miranda", 1, 1); ok {
		t.Fatal("unknown dataset should report false")
	}
}
