// Package sdrbench generates synthetic stand-ins for the SDRBench
// scientific datasets the paper's evaluation uses (Hurricane-CLOUD,
// ScaleLetKF, NYX, HACC). Real SDRBench data is not redistributable inside
// this repository, so each generator reproduces the statistical character
// that drives error-bounded lossy compressor behaviour — smoothness,
// anisotropy, value range, sparsity — rather than the exact bytes; the
// substitution is recorded in DESIGN.md. All generators are deterministic
// in their seed.
package sdrbench

import (
	"math"
	"math/rand"

	"pressio/internal/core"
)

// Field names the generators support, mirroring the datasets of §VI.
const (
	NameHurricane  = "hurricane-CLOUD"
	NameScaleLetKF = "scale-letkf"
	NameNYX        = "nyx-density"
	NameHACC       = "hacc-x"
)

// blob is a Gaussian bump used to synthesize smooth fields.
type blob struct {
	cx, cy, cz float64
	amp        float64
	invR2      float64
}

func makeBlobs(rng *rand.Rand, n int, ampScale float64) []blob {
	blobs := make([]blob, n)
	for i := range blobs {
		r := 0.05 + 0.25*rng.Float64() // radius as a fraction of the domain
		blobs[i] = blob{
			cx: rng.Float64(), cy: rng.Float64(), cz: rng.Float64(),
			amp:   ampScale * (0.2 + rng.Float64()),
			invR2: 1 / (r * r),
		}
	}
	return blobs
}

func evalBlobs(blobs []blob, x, y, z float64) float64 {
	v := 0.0
	for _, b := range blobs {
		dx, dy, dz := x-b.cx, y-b.cy, z-b.cz
		v += b.amp * math.Exp(-(dx*dx+dy*dy+dz*dz)*b.invR2)
	}
	return v
}

// HurricaneCloud synthesizes a CLOUD-like 3-D moisture field: mostly
// near-zero with smooth positive cloud structures, strong anisotropy
// (smooth horizontally, banded vertically) — the field used in the paper's
// dimension-ordering measurement.
func HurricaneCloud(nz, ny, nx int, seed int64) *core.Data {
	rng := rand.New(rand.NewSource(seed))
	// Cloud cells several voxels across: wide enough that the field is
	// smooth in all three dimensions (what spatial predictors exploit),
	// compact enough that most of the domain stays clear.
	blobs := make([]blob, 14)
	for i := range blobs {
		r := 0.10 + 0.15*rng.Float64()
		blobs[i] = blob{
			cx: rng.Float64(), cy: rng.Float64(), cz: rng.Float64(),
			amp:   2e-3 * (0.3 + rng.Float64()),
			invR2: 1 / (r * r),
		}
	}
	const cutoff = 2e-4
	vals := make([]float32, nz*ny*nx)
	i := 0
	for z := 0; z < nz; z++ {
		fz := float64(z) / float64(max(nz-1, 1))
		// Vertical banding: clouds concentrate at some altitudes.
		band := math.Exp(-8 * (fz - 0.35) * (fz - 0.35))
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(max(ny-1, 1))
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(max(nx-1, 1))
				v := band*evalBlobs(blobs, fx, fy, fz) - cutoff
				if v < 0 {
					v = 0
				}
				vals[i] = float32(v)
				i++
			}
		}
	}
	return core.FromFloat32s(vals, uint64(nz), uint64(ny), uint64(nx))
}

// ScaleLetKF synthesizes an ensemble-weather-model state: a large smooth
// pressure-like field with small correlated perturbations.
func ScaleLetKF(nz, ny, nx int, seed int64) *core.Data {
	rng := rand.New(rand.NewSource(seed))
	blobs := makeBlobs(rng, 16, 500)
	vals := make([]float32, nz*ny*nx)
	i := 0
	for z := 0; z < nz; z++ {
		fz := float64(z) / float64(max(nz-1, 1))
		base := 101325 * math.Exp(-fz) // pressure falls with altitude
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(max(ny-1, 1))
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(max(nx-1, 1))
				v := base + evalBlobs(blobs, fx, fy, fz) + 0.05*rng.NormFloat64()
				vals[i] = float32(v)
				i++
			}
		}
	}
	return core.FromFloat32s(vals, uint64(nz), uint64(ny), uint64(nx))
}

// NYXDensity synthesizes a cosmology baryon-density-like field: log-normal
// with a large dynamic range and filament-ish concentration.
func NYXDensity(nz, ny, nx int, seed int64) *core.Data {
	rng := rand.New(rand.NewSource(seed))
	blobs := makeBlobs(rng, 40, 2.5)
	vals := make([]float32, nz*ny*nx)
	i := 0
	for z := 0; z < nz; z++ {
		fz := float64(z) / float64(max(nz-1, 1))
		for y := 0; y < ny; y++ {
			fy := float64(y) / float64(max(ny-1, 1))
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(max(nx-1, 1))
				g := evalBlobs(blobs, fx, fy, fz) - 1.2
				vals[i] = float32(math.Exp(g) * (1 + 0.01*rng.NormFloat64()))
				i++
			}
		}
	}
	return core.FromFloat32s(vals, uint64(nz), uint64(ny), uint64(nx))
}

// HACCParticles synthesizes a cosmology particle coordinate stream (the
// HACC "x" buffer): a 1-D float32 array of positions clustered into halos,
// which is hard for spatial predictors — matching HACC's low
// compressibility in practice.
func HACCParticles(n int, seed int64) *core.Data {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, n)
	// Halo centers across a 256 Mpc box.
	nHalos := max(n/4096, 4)
	centers := make([]float64, nHalos)
	for i := range centers {
		centers[i] = rng.Float64() * 256
	}
	for i := range vals {
		c := centers[rng.Intn(nHalos)]
		vals[i] = float32(c + rng.NormFloat64()*2.5)
	}
	return core.FromFloat32s(vals, uint64(n))
}

// Generate returns the named dataset at the given scale (a multiplier on
// each spatial extent: scale 1 is a small test size).
func Generate(name string, scale int, seed int64) (*core.Data, bool) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case NameHurricane:
		return HurricaneCloud(16*scale, 32*scale, 32*scale, seed), true
	case NameScaleLetKF:
		return ScaleLetKF(8*scale, 32*scale, 32*scale, seed), true
	case NameNYX:
		return NYXDensity(16*scale, 16*scale, 16*scale, seed), true
	case NameHACC:
		return HACCParticles(64*1024*scale, seed), true
	default:
		return nil, false
	}
}

// Names lists the supported synthetic datasets.
func Names() []string {
	return []string{NameHurricane, NameScaleLetKF, NameNYX, NameHACC}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
