package tthresh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"pressio/internal/core"
	"pressio/internal/lossless"
)

// Version is the compressor version reported through the plugin interface.
const Version = "0.3.0-go"

// ErrCorrupt reports a malformed tthresh stream.
var ErrCorrupt = errors.New("tthresh: corrupt stream")

// ErrNonFinite reports NaN or Inf input.
var ErrNonFinite = errors.New("tthresh: non-finite values unsupported")

// Float constrains the element types the compressor accepts.
type Float interface {
	~float32 | ~float64
}

// Params configures a compression call.
type Params struct {
	// Eps is the target relative Frobenius error:
	// ||X - X'||_F <= Eps * ||X||_F. Must be in (0, 1).
	Eps float64
	// LosslessLevel is the DEFLATE effort for the backend (0 = default).
	LosslessLevel int
}

const magic = "TTH1"

// maxModeDim bounds the per-mode extent so the Jacobi solve stays tractable.
const maxModeDim = 1024

func dims3(dims []uint64) (d0, d1, d2 int, err error) {
	if len(dims) == 0 || len(dims) > 3 {
		return 0, 0, 0, fmt.Errorf("tthresh: %w: supports 1-3 dimensions, got %d", core.ErrInvalidDims, len(dims))
	}
	d0, d1, d2 = 1, 1, 1
	switch len(dims) {
	case 1:
		d2 = int(dims[0])
	case 2:
		d1, d2 = int(dims[0]), int(dims[1])
	case 3:
		d0, d1, d2 = int(dims[0]), int(dims[1]), int(dims[2])
	}
	if d0 < 1 || d1 < 1 || d2 < 1 {
		return 0, 0, 0, fmt.Errorf("tthresh: %w: zero or overflowed extent", core.ErrInvalidDims)
	}
	if d0 > maxModeDim || d1 > maxModeDim || d2 > maxModeDim {
		return 0, 0, 0, fmt.Errorf("tthresh: %w: extents %dx%dx%d exceed %d", core.ErrInvalidDims, d0, d1, d2, maxModeDim)
	}
	return d0, d1, d2, nil
}

// CompressSlice compresses vals shaped dims (C order, rank 1-3) under p.
func CompressSlice[T Float](vals []T, dims []uint64, p Params) ([]byte, error) {
	if p.Eps <= 0 || p.Eps >= 1 || math.IsNaN(p.Eps) {
		return nil, fmt.Errorf("tthresh: eps %v must be in (0,1)", p.Eps)
	}
	d0, d1, d2, err := dims3(dims)
	if err != nil {
		return nil, err
	}
	n := d0 * d1 * d2
	if n != len(vals) {
		return nil, fmt.Errorf("tthresh: %w: dims %v describe %d elements, have %d",
			core.ErrInvalidDims, dims, n, len(vals))
	}
	x := make([]float64, n)
	normSq := 0.0
	for i, v := range vals {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, ErrNonFinite
		}
		x[i] = f
		normSq += f * f
	}

	// HOSVD: factor matrices from the Gram matrices of each unfolding.
	sizes := [3]int{d0, d1, d2}
	factors := make([][]float64, 3)
	for mode := 0; mode < 3; mode++ {
		if sizes[mode] == 1 {
			factors[mode] = []float64{1}
			continue
		}
		g := gram(x, d0, d1, d2, mode)
		_, v := jacobiEig(g, sizes[mode])
		factors[mode] = v
	}
	// Core = X ×_k U_k^T.
	c := x
	for mode := 0; mode < 3; mode++ {
		if sizes[mode] > 1 {
			c = ttm(c, d0, d1, d2, mode, factors[mode], true)
		}
	}

	// Threshold: discard the smallest coefficients while the discarded
	// energy stays within half the budget; quantize the rest with the
	// other half.
	budgetSq := p.Eps * p.Eps * normSq
	absSorted := make([]float64, n)
	for i, v := range c {
		absSorted[i] = math.Abs(v)
	}
	sort.Float64s(absSorted)
	discardSq := 0.0
	discarded := 0
	threshold := 0.0
	for _, a := range absSorted {
		if discardSq+a*a > budgetSq/2 {
			break
		}
		discardSq += a * a
		threshold = a
		discarded++
	}
	// Ties at the threshold value must be discarded only as many times as
	// the budget loop counted them, or the discarded energy could exceed
	// the budget.
	tieBudget := 0
	for i := 0; i < discarded; i++ {
		if absSorted[i] == threshold {
			tieBudget++
		}
	}
	kept := n - discarded
	var bin float64
	if kept > 0 {
		bin = math.Sqrt(budgetSq / 2 / float64(kept))
	} else {
		bin = 1
	}
	if bin == 0 || math.IsNaN(bin) {
		bin = math.SmallestNonzeroFloat64
	}

	// Serialize: bitmap + zig-zag varint codes + factors.
	bitmap := make([]byte, (n+7)/8)
	var codes []byte
	codes = binary.AppendUvarint(codes, uint64(kept))
	ties := 0
	for i, v := range c {
		a := math.Abs(v)
		if a < threshold {
			continue
		}
		if a == threshold && ties < tieBudget {
			ties++
			continue
		}
		bitmap[i/8] |= 1 << (i % 8)
		q := int64(math.Floor(v/(2*bin) + 0.5))
		codes = binary.AppendVarint(codes, q)
	}
	var facBytes []byte
	for mode := 0; mode < 3; mode++ {
		for _, f := range factors[mode] {
			facBytes = binary.LittleEndian.AppendUint64(facBytes, math.Float64bits(f))
		}
	}
	body := make([]byte, 0, len(bitmap)+len(codes)+len(facBytes)+16)
	body = binary.AppendUvarint(body, uint64(len(bitmap)))
	body = append(body, bitmap...)
	body = binary.AppendUvarint(body, uint64(len(codes)))
	body = append(body, codes...)
	body = append(body, facBytes...)
	packed, err := lossless.Deflate(body, p.LosslessLevel)
	if err != nil {
		return nil, err
	}

	var out []byte
	out = append(out, magic...)
	out = append(out, dtypeByte[T]())
	out = append(out, byte(len(dims)))
	for _, d := range dims {
		out = binary.AppendUvarint(out, d)
	}
	out = binary.AppendUvarint(out, math.Float64bits(bin))
	out = append(out, packed...)
	return out, nil
}

// Header describes a compressed stream.
type Header struct {
	DType core.DType
	Dims  []uint64
	Bin   float64
}

// ParseHeader reads the stream header.
func ParseHeader(stream []byte) (Header, int, error) {
	var h Header
	if len(stream) < 6 || string(stream[:4]) != magic {
		return h, 0, ErrCorrupt
	}
	switch stream[4] {
	case 1:
		h.DType = core.DTypeFloat32
	case 2:
		h.DType = core.DTypeFloat64
	default:
		return h, 0, ErrCorrupt
	}
	rank := int(stream[5])
	if rank == 0 || rank > 3 {
		return h, 0, ErrCorrupt
	}
	pos := 6
	h.Dims = make([]uint64, rank)
	for i := range h.Dims {
		v, sz := binary.Uvarint(stream[pos:])
		if sz <= 0 || v == 0 || v > maxModeDim {
			return h, 0, ErrCorrupt
		}
		h.Dims[i] = v
		pos += sz
	}
	binBits, sz := binary.Uvarint(stream[pos:])
	if sz <= 0 {
		return h, 0, ErrCorrupt
	}
	pos += sz
	h.Bin = math.Float64frombits(binBits)
	if h.Bin <= 0 || math.IsNaN(h.Bin) || math.IsInf(h.Bin, 0) {
		return h, 0, ErrCorrupt
	}
	return h, pos, nil
}

// DecompressSlice decodes a stream produced by CompressSlice.
func DecompressSlice[T Float](stream []byte) ([]T, []uint64, error) {
	h, pos, err := ParseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	if h.DType != wantDType[T]() {
		return nil, nil, fmt.Errorf("tthresh: %w: stream holds %s", core.ErrInvalidDType, h.DType)
	}
	d0, d1, d2, err := dims3(h.Dims)
	if err != nil {
		return nil, nil, err
	}
	n := d0 * d1 * d2
	body, err := lossless.Inflate(stream[pos:])
	if err != nil {
		return nil, nil, err
	}
	bmLen, sz := binary.Uvarint(body)
	if sz <= 0 || bmLen != uint64((n+7)/8) || uint64(len(body)) < uint64(sz)+bmLen {
		return nil, nil, ErrCorrupt
	}
	off := sz
	bitmap := body[off : off+int(bmLen)]
	off += int(bmLen)
	codesLen, sz := binary.Uvarint(body[off:])
	if sz <= 0 || uint64(len(body)) < uint64(off+sz)+codesLen {
		return nil, nil, ErrCorrupt
	}
	off += sz
	codes := body[off : off+int(codesLen)]
	off += int(codesLen)

	kept64, sz := binary.Uvarint(codes)
	if sz <= 0 || kept64 > uint64(n) {
		return nil, nil, ErrCorrupt
	}
	cpos := sz
	c := make([]float64, n)
	seen := uint64(0)
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		q, sz := binary.Varint(codes[cpos:])
		if sz <= 0 {
			return nil, nil, ErrCorrupt
		}
		cpos += sz
		c[i] = float64(q) * 2 * h.Bin
		seen++
	}
	if seen != kept64 {
		return nil, nil, ErrCorrupt
	}

	sizes := [3]int{d0, d1, d2}
	factors := make([][]float64, 3)
	for mode := 0; mode < 3; mode++ {
		m := sizes[mode]
		need := m * m * 8
		if len(body)-off < need {
			return nil, nil, ErrCorrupt
		}
		f := make([]float64, m*m)
		for i := range f {
			f[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8*i:]))
		}
		off += need
		factors[mode] = f
	}

	for mode := 2; mode >= 0; mode-- {
		if sizes[mode] > 1 {
			c = ttm(c, d0, d1, d2, mode, factors[mode], false)
		}
	}
	out := make([]T, n)
	for i, v := range c {
		out[i] = T(v)
	}
	return out, h.Dims, nil
}

func dtypeByte[T Float]() byte {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return 1
	}
	return 2
}

func wantDType[T Float]() core.DType {
	var zero T
	if _, ok := any(zero).(float32); ok {
		return core.DTypeFloat32
	}
	return core.DTypeFloat64
}
