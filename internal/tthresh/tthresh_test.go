package tthresh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pressio/internal/core"
)

func TestJacobiEigIdentity(t *testing.T) {
	a := []float64{1, 0, 0, 0, 2, 0, 0, 0, 3}
	vals, v := jacobiEig(append([]float64(nil), a...), 3)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalues %v", vals)
		}
	}
	// Eigenvectors must be orthonormal.
	checkOrthonormal(t, v, 3)
}

func checkOrthonormal(t *testing.T, v []float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dot := 0.0
			for k := 0; k < n; k++ {
				dot += v[k*n+i] * v[k*n+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("columns %d,%d: dot %g", i, j, dot)
			}
		}
	}
}

func TestJacobiEigRandomSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := rng.NormFloat64()
				a[i*n+j], a[j*n+i] = x, x
			}
		}
		orig := append([]float64(nil), a...)
		vals, v := jacobiEig(a, n)
		// Check A v_j = lambda_j v_j.
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				av := 0.0
				for k := 0; k < n; k++ {
					av += orig[i*n+k] * v[k*n+j]
				}
				if math.Abs(av-vals[j]*v[i*n+j]) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTTMInverseWithOrthogonal(t *testing.T) {
	// For an orthogonal U, ttm(ttm(x, U^T), U) must recover x.
	rng := rand.New(rand.NewSource(3))
	d0, d1, d2 := 5, 6, 7
	x := make([]float64, d0*d1*d2)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for mode, n := range []int{d0, d1, d2} {
		g := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				g[i*n+j], g[j*n+i] = v, v
			}
		}
		_, u := jacobiEig(g, n)
		y := ttm(x, d0, d1, d2, mode, u, true)
		back := ttm(y, d0, d1, d2, mode, u, false)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10 {
				t.Fatalf("mode %d: elem %d %g vs %g", mode, i, back[i], x[i])
			}
		}
	}
}

func frobRel(a, b []float32) float64 {
	num, den := 0.0, 0.0
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		num += d * d
		den += float64(a[i]) * float64(a[i])
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

func field(d0, d1, d2 int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, d0*d1*d2)
	i := 0
	for a := 0; a < d0; a++ {
		for b := 0; b < d1; b++ {
			for c := 0; c < d2; c++ {
				out[i] = float32(math.Sin(float64(a)/3)*math.Cos(float64(b)/4)*math.Exp(-float64(c)/20) +
					0.01*rng.NormFloat64())
				i++
			}
		}
	}
	return out
}

func TestFrobeniusBoundHolds(t *testing.T) {
	vals := field(12, 14, 16, 1)
	dims := []uint64{12, 14, 16}
	for _, eps := range []float64{0.1, 0.01, 1e-3} {
		stream, err := CompressSlice(vals, dims, Params{Eps: eps})
		if err != nil {
			t.Fatalf("eps %g: %v", eps, err)
		}
		dec, outDims, err := DecompressSlice[float32](stream)
		if err != nil {
			t.Fatalf("eps %g: %v", eps, err)
		}
		if len(outDims) != 3 {
			t.Fatalf("dims %v", outDims)
		}
		if got := frobRel(vals, dec); got > eps*1.01 {
			t.Fatalf("eps %g: relative frobenius error %g", eps, got)
		}
	}
}

func TestBoundPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d0, d1, d2 := 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6)
		vals := make([]float32, d0*d1*d2)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
		}
		eps := math.Pow(10, -1-2*rng.Float64())
		stream, err := CompressSlice(vals, []uint64{uint64(d0), uint64(d1), uint64(d2)}, Params{Eps: eps})
		if err != nil {
			return false
		}
		dec, _, err := DecompressSlice[float32](stream)
		if err != nil {
			return false
		}
		return frobRel(vals, dec) <= eps*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLowRankDataCompressesWell(t *testing.T) {
	// A rank-1 tensor should compress extremely well under HOSVD.
	d := 24
	vals := make([]float32, d*d*d)
	i := 0
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			for c := 0; c < d; c++ {
				vals[i] = float32(math.Sin(float64(a)) * math.Cos(float64(b)) * float64(c+1))
				i++
			}
		}
	}
	stream, err := CompressSlice(vals, []uint64{uint64(d), uint64(d), uint64(d)}, Params{Eps: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(vals)*4) / float64(len(stream))
	if ratio < 2 {
		t.Fatalf("rank-1 tensor ratio %f too low", ratio)
	}
	dec, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := frobRel(vals, dec); got > 1e-4*1.01 {
		t.Fatalf("error %g", got)
	}
}

func TestLowerRanks(t *testing.T) {
	vals := field(1, 8, 64, 2)
	// 1-D.
	stream, err := CompressSlice(vals[:64], []uint64{64}, Params{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dec1, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if frobRel(vals[:64], dec1) > 0.011 {
		t.Fatal("1-D bound violated")
	}
	// 2-D.
	stream, err = CompressSlice(vals, []uint64{8, 64}, Params{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dec2, _, err := DecompressSlice[float32](stream)
	if err != nil {
		t.Fatal(err)
	}
	if frobRel(vals, dec2) > 0.011 {
		t.Fatal("2-D bound violated")
	}
}

func TestInvalidInputs(t *testing.T) {
	vals := []float32{1, 2, 3, 4}
	if _, err := CompressSlice(vals, []uint64{4}, Params{Eps: 0}); err == nil {
		t.Fatal("expected eps error")
	}
	if _, err := CompressSlice(vals, []uint64{4}, Params{Eps: 2}); err == nil {
		t.Fatal("expected eps error")
	}
	if _, err := CompressSlice(vals, []uint64{2, 2, 1, 1}, Params{Eps: 0.1}); err == nil {
		t.Fatal("expected rank error")
	}
	if _, err := CompressSlice([]float32{1, float32(math.Inf(1))}, []uint64{2}, Params{Eps: 0.1}); err == nil {
		t.Fatal("expected non-finite error")
	}
}

func TestCorruptStreams(t *testing.T) {
	vals := field(4, 5, 6, 3)
	stream, err := CompressSlice(vals, []uint64{4, 5, 6}, Params{Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 6, 10} {
		if _, _, err := DecompressSlice[float32](stream[:cut]); err == nil {
			t.Fatalf("truncation %d: expected error", cut)
		}
	}
	if _, _, err := DecompressSlice[float64](stream); err == nil {
		t.Fatal("expected dtype mismatch")
	}
}

func TestPluginRoundTrip(t *testing.T) {
	vals := field(10, 10, 10, 4)
	in := core.FromFloat32s(vals, 10, 10, 10)
	c, err := core.NewCompressor("tthresh")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().SetValue("tthresh:eps", 0.01)); err != nil {
		t.Fatal(err)
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.Decompress(c, comp, core.DTypeFloat32, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := frobRel(vals, dec.Float32s()); got > 0.0101 {
		t.Fatalf("error %g", got)
	}
	if err := c.CheckOptions(core.NewOptions().SetValue("tthresh:eps", 5.0)); err == nil {
		t.Fatal("expected CheckOptions failure")
	}
}

func BenchmarkCompress(b *testing.B) {
	vals := field(32, 32, 32, 1)
	dims := []uint64{32, 32, 32}
	b.SetBytes(int64(len(vals) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompressSlice(vals, dims, Params{Eps: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}
