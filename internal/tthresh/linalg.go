// Package tthresh implements a Tucker/HOSVD-based lossy compressor in the
// style of tthresh (Ballester-Ripoll et al.): the tensor is decomposed into
// orthonormal factor matrices (eigenvectors of the Gram matrices of each
// mode unfolding, computed with a cyclic Jacobi eigensolver) and a core
// tensor whose coefficients are thresholded and quantized against a target
// relative Frobenius error. Orthogonal invariance makes the error budget
// analysis exact: discarded energy plus quantization energy stays below
// (eps * ||X||_F)^2.
package tthresh

import "math"

// jacobiEig computes the eigendecomposition of the symmetric matrix a
// (n x n, row-major, destroyed) with the cyclic Jacobi method. It returns
// eigenvalues (descending) and the matching orthonormal eigenvectors as
// columns of v (v[i*n+j] = component i of eigenvector j).
func jacobiEig(a []float64, n int) (vals []float64, v []float64) {
	v = make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	if n == 1 {
		return []float64{a[0]}, v
	}
	for sweep := 0; sweep < 60; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += a[p*n+q] * a[p*n+q]
			}
		}
		norm := 0.0
		for i := 0; i < n*n; i++ {
			norm += a[i] * a[i]
		}
		if off <= 1e-26*math.Max(norm, 1e-300) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if apq == 0 {
					continue
				}
				app, aqq := a[p*n+p], a[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of a.
				for k := 0; k < n; k++ {
					akp, akq := a[k*n+p], a[k*n+q]
					a[k*n+p] = c*akp - s*akq
					a[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p*n+k], a[q*n+k]
					a[p*n+k] = c*apk - s*aqk
					a[q*n+k] = s*apk + c*aqk
				}
				// Accumulate the rotation into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i*n+i]
	}
	// Sort eigenpairs by descending eigenvalue (selection sort on columns).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for k := 0; k < n; k++ {
				v[k*n+i], v[k*n+best] = v[k*n+best], v[k*n+i]
			}
		}
	}
	return vals, v
}

// gram computes the Gram matrix of the mode-k unfolding of the 3-D tensor x
// with dims (d0, d1, d2): G[i][j] = sum over all fibers of x_i * x_j along
// mode k.
func gram(x []float64, d0, d1, d2, mode int) []float64 {
	var n int
	switch mode {
	case 0:
		n = d0
	case 1:
		n = d1
	default:
		n = d2
	}
	g := make([]float64, n*n)
	switch mode {
	case 0:
		stride := d1 * d2
		for i := 0; i < d0; i++ {
			xi := x[i*stride : (i+1)*stride]
			for j := i; j < d0; j++ {
				xj := x[j*stride : (j+1)*stride]
				s := 0.0
				for k := range xi {
					s += xi[k] * xj[k]
				}
				g[i*n+j], g[j*n+i] = s, s
			}
		}
	case 1:
		for a := 0; a < d0; a++ {
			base := a * d1 * d2
			for i := 0; i < d1; i++ {
				xi := x[base+i*d2 : base+(i+1)*d2]
				for j := i; j < d1; j++ {
					xj := x[base+j*d2 : base+(j+1)*d2]
					s := 0.0
					for k := range xi {
						s += xi[k] * xj[k]
					}
					g[i*n+j] += s
					if i != j {
						g[j*n+i] += s
					}
				}
			}
		}
	default:
		rows := d0 * d1
		for r := 0; r < rows; r++ {
			row := x[r*d2 : (r+1)*d2]
			for i := 0; i < d2; i++ {
				for j := i; j < d2; j++ {
					s := row[i] * row[j]
					g[i*n+j] += s
					if i != j {
						g[j*n+i] += s
					}
				}
			}
		}
	}
	return g
}

// ttm multiplies the tensor x (dims d0,d1,d2) along the given mode by the
// n x n matrix u: out_fiber = U^T * fiber when transpose is true, U * fiber
// otherwise. u is row-major with u[i*n+j] = U[i][j].
func ttm(x []float64, d0, d1, d2, mode int, u []float64, transpose bool) []float64 {
	out := make([]float64, len(x))
	var n int
	switch mode {
	case 0:
		n = d0
	case 1:
		n = d1
	default:
		n = d2
	}
	fiber := make([]float64, n)
	res := make([]float64, n)
	apply := func(get func(int) float64, set func(int, float64)) {
		for i := 0; i < n; i++ {
			fiber[i] = get(i)
		}
		for j := 0; j < n; j++ {
			s := 0.0
			if transpose {
				for i := 0; i < n; i++ {
					s += u[i*n+j] * fiber[i]
				}
			} else {
				for i := 0; i < n; i++ {
					s += u[j*n+i] * fiber[i]
				}
			}
			res[j] = s
		}
		for j := 0; j < n; j++ {
			set(j, res[j])
		}
	}
	switch mode {
	case 0:
		stride := d1 * d2
		for rest := 0; rest < stride; rest++ {
			apply(func(i int) float64 { return x[i*stride+rest] },
				func(j int, v float64) { out[j*stride+rest] = v })
		}
	case 1:
		for a := 0; a < d0; a++ {
			base := a * d1 * d2
			for c := 0; c < d2; c++ {
				apply(func(i int) float64 { return x[base+i*d2+c] },
					func(j int, v float64) { out[base+j*d2+c] = v })
			}
		}
	default:
		rows := d0 * d1
		for r := 0; r < rows; r++ {
			base := r * d2
			apply(func(i int) float64 { return x[base+i] },
				func(j int, v float64) { out[base+j] = v })
		}
	}
	return out
}
