package tthresh

import (
	"fmt"

	"pressio/internal/core"
)

// Option keys the tthresh plugin owns.
const (
	keyEps = "tthresh:eps"
)

// plugin adapts tthresh to the framework. tthresh targets a relative
// Frobenius-norm error (keyEps) rather than a pointwise bound —
// another example of bound-semantics diversity the uniform interface must
// surface through introspection rather than pretend away.
type plugin struct {
	eps   float64
	level int32
}

func init() {
	core.RegisterCompressor("tthresh", func() core.CompressorPlugin {
		return &plugin{eps: 1e-3}
	})
}

func (p *plugin) Prefix() string  { return "tthresh" }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyEps, p.eps)
	o.SetValue(core.KeyLossless, p.level)
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if v, err := o.GetFloat64(keyEps); err == nil {
		p.eps = v
	}
	if v, err := o.GetInt32(core.KeyLossless); err == nil {
		p.level = v
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := *p
	if err := clone.SetOptions(o); err != nil {
		return err
	}
	if clone.eps <= 0 || clone.eps >= 1 {
		return fmt.Errorf("%w: tthresh:eps must be in (0,1)", core.ErrInvalidOption)
	}
	return nil
}

func (p *plugin) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetyMultiple, "experimental", Version, false)
	cfg.SetValue("tthresh:error_norm", "frobenius_relative")
	return cfg
}

func (p *plugin) CompressImpl(in, out *core.Data) error {
	prm := Params{Eps: p.eps, LosslessLevel: int(p.level)}
	var stream []byte
	var err error
	switch in.DType() {
	case core.DTypeFloat32:
		stream, err = CompressSlice(in.Float32s(), in.Dims(), prm)
	case core.DTypeFloat64:
		stream, err = CompressSlice(in.Float64s(), in.Dims(), prm)
	default:
		return fmt.Errorf("%w: tthresh supports float32/float64, got %s", core.ErrInvalidDType, in.DType())
	}
	if err != nil {
		return err
	}
	out.Become(core.NewBytes(stream))
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	h, _, err := ParseHeader(in.Bytes())
	if err != nil {
		return err
	}
	switch h.DType {
	case core.DTypeFloat32:
		vals, dims, err := DecompressSlice[float32](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat32s(vals, dims...))
	case core.DTypeFloat64:
		vals, dims, err := DecompressSlice[float64](in.Bytes())
		if err != nil {
			return err
		}
		out.Become(core.FromFloat64s(vals, dims...))
	default:
		return ErrCorrupt
	}
	return nil
}

func (p *plugin) Clone() core.CompressorPlugin {
	clone := *p
	return &clone
}
