// Package bitstream provides the bit-granular writer and reader shared by
// the entropy coders and the zfp-family block codec. Bits are packed
// LSB-first into little-endian 64-bit words, matching the layout of the zfp
// reference bit stream so block codecs can reason in terms of bit budgets.
package bitstream

import "math/bits"

// Writer accumulates bits into a growable byte buffer.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, LSB-first
	nacc uint   // number of valid bits in acc (< 64)
	n    uint64 // total bits written
}

// NewWriter returns an empty Writer. The initial capacity hint is in bytes.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

//pressio:hotpath measured by the perf ledger
// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.acc |= uint64(b&1) << w.nacc
	w.nacc++
	w.n++
	if w.nacc == 64 {
		w.flushWord()
	}
}

//pressio:hotpath measured by the perf ledger
// WriteBits appends the low n bits of v, LSB first. n must be ≤ 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.acc |= v << w.nacc
	free := 64 - w.nacc
	if n < free {
		w.nacc += n
	} else {
		w.flushWord()
		if n > free {
			w.acc = v >> free
			w.nacc = n - free
		}
	}
	w.n += uint64(n)
}

// WriteUnary appends v as a unary run: v zero bits then a one bit.
func (w *Writer) WriteUnary(v uint) {
	for v >= 64 {
		w.WriteBits(0, 64)
		v -= 64
	}
	w.WriteBits(1<<v, v+1)
}

func (w *Writer) flushWord() {
	w.buf = append(w.buf,
		byte(w.acc), byte(w.acc>>8), byte(w.acc>>16), byte(w.acc>>24),
		byte(w.acc>>32), byte(w.acc>>40), byte(w.acc>>48), byte(w.acc>>56))
	w.acc = 0
	w.nacc = 0
}

// Len returns the number of bits written so far.
func (w *Writer) Len() uint64 { return w.n }

// Bytes finalizes the stream, flushing any partial word, and returns the
// packed bytes. The Writer may continue to be used; subsequent Bytes calls
// reflect additional writes.
func (w *Writer) Bytes() []byte {
	out := make([]byte, 0, len(w.buf)+8)
	out = append(out, w.buf...)
	if w.nacc > 0 {
		acc := w.acc
		for i := uint(0); i < w.nacc; i += 8 {
			out = append(out, byte(acc))
			acc >>= 8
		}
	}
	return out
}

// Reader consumes bits from a byte slice produced by Writer.
type Reader struct {
	buf  []byte
	pos  int    // next byte to load
	acc  uint64 // loaded bits, LSB-first
	nacc uint   // valid bits in acc
}

// NewReader wraps b for reading.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// fill ensures at least n (≤ 57) bits are available unless the input is
// exhausted; reads beyond the end return zero bits, which lets fixed-budget
// block codecs pad naturally.
func (r *Reader) fill(n uint) {
	for r.nacc < n && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

//pressio:hotpath measured by the perf ledger
// ReadBit consumes and returns one bit (0 when past the end).
func (r *Reader) ReadBit() uint {
	r.fill(1)
	b := uint(r.acc & 1)
	r.acc >>= 1
	if r.nacc > 0 {
		r.nacc--
	}
	return b
}

//pressio:hotpath measured by the perf ledger
// ReadBits consumes and returns n (≤ 64) bits, LSB-first.
func (r *Reader) ReadBits(n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n <= 57 {
		r.fill(n)
		var v uint64
		if n < 64 {
			v = r.acc & ((1 << n) - 1)
		} else {
			v = r.acc
		}
		r.acc >>= n
		if r.nacc >= n {
			r.nacc -= n
		} else {
			r.nacc = 0
		}
		return v
	}
	lo := r.ReadBits(32)
	hi := r.ReadBits(n - 32)
	return lo | hi<<32
}

// ReadUnary consumes a unary run (zeros then a one) and returns the count of
// zeros. Returns maxInt when the stream ends without a one (corrupt input);
// callers bound their loops separately.
func (r *Reader) ReadUnary() uint {
	var count uint
	for {
		r.fill(57)
		if r.nacc == 0 {
			return count // exhausted
		}
		avail := r.nacc
		chunk := r.acc
		if avail < 64 {
			chunk |= ^uint64(0) << avail // sentinel beyond valid bits
		}
		tz := uint(bits.TrailingZeros64(chunk))
		if tz < avail {
			// Found the terminating one within valid bits.
			r.acc >>= tz + 1
			r.nacc -= tz + 1
			return count + tz
		}
		// All valid bits are zero; consume them and continue.
		count += avail
		r.acc = 0
		r.nacc = 0
	}
}
