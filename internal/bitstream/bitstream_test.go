package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBitsRoundTrip(t *testing.T) {
	w := NewWriter(16)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsWidths(t *testing.T) {
	for width := uint(1); width <= 64; width++ {
		w := NewWriter(64)
		vals := make([]uint64, 20)
		rng := rand.New(rand.NewSource(int64(width)))
		for i := range vals {
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			vals[i] = v
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes())
		for i, want := range vals {
			if got := r.ReadBits(width); got != want {
				t.Fatalf("width %d val %d: got %#x want %#x", width, i, got, want)
			}
		}
	}
}

func TestMixedWidthsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(200)
		type rec struct {
			v uint64
			w uint
		}
		recs := make([]rec, n)
		wtr := NewWriter(0)
		for i := range recs {
			width := uint(1 + rng.Intn(64))
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			recs[i] = rec{v, width}
			wtr.WriteBits(v, width)
		}
		r := NewReader(wtr.Bytes())
		for _, rc := range recs {
			if r.ReadBits(rc.w) != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint{0, 1, 2, 5, 63, 64, 65, 130, 7, 0, 1}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		if got := r.ReadUnary(); got != want {
			t.Fatalf("unary %d: got %d want %d", i, got, want)
		}
	}
}

func TestLenCountsBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xff, 3)
	w.WriteBit(1)
	w.WriteBits(0, 60)
	w.WriteBits(1, 64)
	if w.Len() != 3+1+60+64 {
		t.Fatalf("Len = %d, want 128", w.Len())
	}
	if len(w.Bytes()) != 16 {
		t.Fatalf("Bytes len = %d, want 16", len(w.Bytes()))
	}
}

func TestReadPastEndIsZero(t *testing.T) {
	r := NewReader([]byte{0xff})
	if got := r.ReadBits(8); got != 0xff {
		t.Fatalf("got %#x", got)
	}
	if got := r.ReadBits(16); got != 0 {
		t.Fatalf("past-end bits = %#x, want 0", got)
	}
	if got := r.ReadBit(); got != 0 {
		t.Fatalf("past-end bit = %d, want 0", got)
	}
}

func TestWriterReusableAfterBytes(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	first := w.Bytes()
	if NewReader(first).ReadBits(3) != 0b101 {
		t.Fatal("first snapshot wrong")
	}
	w.WriteBits(0b11, 2)
	r := NewReader(w.Bytes())
	if r.ReadBits(3) != 0b101 || r.ReadBits(2) != 0b11 {
		t.Fatal("second snapshot wrong")
	}
}

func BenchmarkWriteBits(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(1 << 13)
		for j := 0; j < 1024; j++ {
			w.WriteBits(uint64(j)*0x9e3779b97f4a7c15, 37)
		}
		_ = w.Bytes()
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 13)
	for j := 0; j < 1024; j++ {
		w.WriteBits(uint64(j)*0x9e3779b97f4a7c15, 37)
	}
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		var sink uint64
		for j := 0; j < 1024; j++ {
			sink += r.ReadBits(37)
		}
		_ = sink
	}
}
