package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"syscall"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Trace counters for the HTTP fault injector, mirroring the IO wrapper's
// per-kind accounting. trace.CtrFaultsInjected aggregates these too.
const (
	CtrHTTPRefused   = "faultinject.http.refused"
	CtrHTTPDelays    = "faultinject.http.delays"
	CtrHTTPTruncated = "faultinject.http.truncated"
	CtrHTTPCorrupted = "faultinject.http.corrupted"
)

// HTTPRates configures the per-request fault probabilities of a
// RoundTripper. Draws happen in a fixed order (delay, refuse, then on the
// response truncate, corrupt), so a given seed and configuration replays the
// same fault schedule — the network-level analogue of the compressor
// injector's determinism contract.
type HTTPRates struct {
	Seed int64
	// Refuse is the probability the request never reaches the network:
	// it fails immediately with a connection-refused error (ECONNREFUSED
	// wrapped, so callers classifying syscall errors see the real thing).
	Refuse float64
	// Delay is the probability of sleeping DelayMS before the round trip —
	// injected latency ahead of the dial, where a hedging client feels it.
	Delay   float64
	DelayMS int64
	// Truncate is the probability the response body is cut to a strict
	// prefix that ends in io.ErrUnexpectedEOF, as a torn connection would.
	Truncate float64
	// Corrupt is the probability one bit of the response body is flipped
	// (body length preserved — only integrity checking catches it).
	Corrupt float64
}

// RoundTripper wraps an http.RoundTripper with deterministic fault
// injection: refused connections, injected latency, truncated and corrupted
// response bodies. It is the transport-level sibling of the compressor and
// IO injectors, for driving router/peer-client resilience tests without real
// network failures.
type RoundTripper struct {
	next  http.RoundTripper
	rates HTTPRates

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRoundTripper wraps next (nil means http.DefaultTransport).
func NewRoundTripper(next http.RoundTripper, rates HTTPRates) (*RoundTripper, error) {
	for _, r := range []struct {
		key string
		v   float64
	}{
		{"refuse_rate", rates.Refuse},
		{"delay_rate", rates.Delay},
		{"truncate_rate", rates.Truncate},
		{"corrupt_rate", rates.Corrupt},
	} {
		if err := checkRate("faultinject_http:"+r.key, r.v); err != nil {
			return nil, err
		}
	}
	if rates.DelayMS < 0 {
		return nil, fmt.Errorf("%w: faultinject_http:delay_ms %d", core.ErrInvalidOption, rates.DelayMS)
	}
	if next == nil {
		next = http.DefaultTransport
	}
	return &RoundTripper{next: next, rates: rates}, nil
}

// Clone derives an injector with the same rates but an independent fault
// schedule, using the same stable seed derivation as the compressor and IO
// injectors — clone fleets draw distinct but reproducible schedules.
func (t *RoundTripper) Clone() *RoundTripper {
	rates := t.rates
	rates.Seed = rates.Seed*0x9e3779b9 + 1
	return &RoundTripper{next: t.next, rates: rates}
}

func (t *RoundTripper) roll() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(t.rates.Seed))
	}
	return t.rng.Float64()
}

func (t *RoundTripper) pick(n int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(t.rates.Seed))
	}
	return t.rng.Intn(n)
}

// CloseIdleConnections forwards to the wrapped transport when it supports
// the optional interface, so a router draining through an injector still
// releases its pooled connections.
func (t *RoundTripper) CloseIdleConnections() {
	if ci, ok := t.next.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.rates.Delay > 0 && t.roll() < t.rates.Delay {
		trace.CounterAdd(CtrHTTPDelays, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		select {
		case <-time.After(time.Duration(t.rates.DelayMS) * time.Millisecond):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if t.rates.Refuse > 0 && t.roll() < t.rates.Refuse {
		trace.CounterAdd(CtrHTTPRefused, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		// The request never happened; close the body as the transport
		// contract requires and report the classic refused dial.
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: dial %s: %w", req.URL.Host, syscall.ECONNREFUSED)
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.rates.Truncate > 0 && t.roll() < t.rates.Truncate {
		trace.CounterAdd(CtrHTTPTruncated, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		resp.Body = &truncatingBody{body: resp.Body, inject: t}
		return resp, nil
	}
	if t.rates.Corrupt > 0 && t.roll() < t.rates.Corrupt {
		trace.CounterAdd(CtrHTTPCorrupted, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		resp.Body = &corruptingBody{body: resp.Body, inject: t}
		return resp, nil
	}
	return resp, nil
}

// truncatingBody delivers a strict prefix of the real body, then fails with
// io.ErrUnexpectedEOF — what a client sees when the peer dies mid-response.
// The cut point is drawn deterministically from the injector's PRNG on the
// first read (when the first chunk's size is known).
type truncatingBody struct {
	body   io.ReadCloser
	inject *RoundTripper
	limit  int // bytes still deliverable; -1 before the first read
	set    bool
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if !b.set {
		n, err := b.body.Read(p)
		if n <= 1 {
			if err != nil {
				return n, err
			}
			return n, io.ErrUnexpectedEOF
		}
		cut := 1 + b.inject.pick(n-1) // strict prefix of what arrived
		b.set = true
		b.limit = 0
		return cut, io.ErrUnexpectedEOF
	}
	return 0, io.ErrUnexpectedEOF
}

func (b *truncatingBody) Close() error { return b.body.Close() }

// corruptingBody flips one deterministic bit in the first chunk read,
// preserving length — only checksums or decode failures can catch it.
type corruptingBody struct {
	body    io.ReadCloser
	inject  *RoundTripper
	flipped bool
}

func (b *corruptingBody) Read(p []byte) (int, error) {
	n, err := b.body.Read(p)
	if n > 0 && !b.flipped {
		b.flipped = true
		pos := b.inject.pick(n * 8)
		p[pos/8] ^= 1 << (pos % 8)
	}
	return n, err
}

func (b *corruptingBody) Close() error { return b.body.Close() }
