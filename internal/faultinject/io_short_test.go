package faultinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"pressio/internal/core"
	"pressio/internal/resilience"
	"pressio/internal/trace"
)

// newShortIO builds a faultinject IO wrapper over posix with the given
// short-read/short-write rates and a fixed seed.
func newShortIO(t *testing.T, path string, readRate, writeRate float64) core.IOPlugin {
	t.Helper()
	ioP, err := core.NewIO("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.SetValue(core.KeyIOPath, path)
	o.SetValue(keyIOChild, "posix")
	o.SetValue(keyIOSeed, int64(11))
	o.SetValue(keyIOShortReadRate, readRate)
	o.SetValue(keyIOShortWriteRate, writeRate)
	if err := ioP.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	return ioP
}

func TestIOShortReadDeliversDeterministicPrefix(t *testing.T) {
	trace.ResetTelemetry()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	read := func() int {
		d, err := newShortIO(t, path, 1, 0).Read(nil)
		if err != nil {
			t.Fatal(err)
		}
		return int(d.ByteLen())
	}
	first := read()
	if first <= 0 || first >= len(payload) {
		t.Fatalf("short read returned %d bytes of %d, want a strict prefix", first, len(payload))
	}
	if second := read(); second != first {
		t.Fatalf("short read not deterministic: %d then %d bytes", first, second)
	}
	if trace.CounterValue(CtrShortReads) != 2 {
		t.Fatalf("short-read counter %d, want 2", trace.CounterValue(CtrShortReads))
	}
}

// TestIOShortReadCaughtByFrameDecoder is the point of the fault: a truncated
// integrity frame read back from storage must fail decoding with a typed
// error instead of yielding a silently corrupt payload.
func TestIOShortReadCaughtByFrameDecoder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.lpfr")
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	frame, err := resilience.EncodeFrame("noop", core.DTypeByte, []uint64{256}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	// Intact read decodes fine...
	d, err := newShortIO(t, path, 0, 0).Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resilience.DecodeFrame(d.Bytes()); err != nil {
		t.Fatalf("intact frame failed to decode: %v", err)
	}
	// ...a short read must be rejected by the decoder, not accepted torn.
	d, err = newShortIO(t, path, 1, 0).Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(d.ByteLen()) >= len(frame) {
		t.Fatal("short read did not truncate the frame")
	}
	if _, err := resilience.DecodeFrame(d.Bytes()); err == nil {
		t.Fatal("decoder accepted a truncated frame")
	}
}

// TestIOShortWriteErrorsAndAtomicSinkStaysConsistent: a short write surfaces
// a transient io.ErrShortWrite, and because posix writes are atomic
// (temp+fsync+rename) the destination is either absent or a *complete* file
// of the truncated payload — never a half-renamed mess; a prior generation
// would have survived untouched mid-write.
func TestIOShortWriteErrorsAndAtomicSinkStaysConsistent(t *testing.T) {
	trace.ResetTelemetry()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.bin")
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	err := newShortIO(t, path, 0, 1).Write(core.NewBytes(payload))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write error %v, want io.ErrShortWrite", err)
	}
	if !core.IsTransient(err) {
		t.Fatalf("short write should be transient (retryable): %v", err)
	}
	got, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("torn artifact is %d bytes of %d, want a strict prefix", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("torn artifact is not a prefix at byte %d", i)
		}
	}
	if trace.CounterValue(CtrShortWrites) != 1 {
		t.Fatalf("short-write counter %d, want 1", trace.CounterValue(CtrShortWrites))
	}
}
