package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Option keys the faultinject IO wrapper owns.
const (
	keyIOChild          = "faultinject_io:io"
	keyIOSeed           = "faultinject_io:seed"
	keyIOErrorRate      = "faultinject_io:error_rate"
	keyIODelayRate      = "faultinject_io:delay_rate"
	keyIODelayMS        = "faultinject_io:delay_ms"
	keyIOBitflipRate    = "faultinject_io:bitflip_rate"
	keyIOShortReadRate  = "faultinject_io:shortread_rate"
	keyIOShortWriteRate = "faultinject_io:shortwrite_rate"
)

func init() {
	core.RegisterIO("faultinject", func() core.IOPlugin {
		return &ioPlugin{childName: "posix", seed: 1}
	})
}

// ioPlugin wraps a child IO plugin with the same deterministic fault
// schedule the compressor injector uses: transient errors, delays, and bit
// flips in the bytes read. It lets IO-level failure handling (retry-on-read,
// integrity validation of frames loaded from disk) be tested without real
// storage faults.
type ioPlugin struct {
	childName string
	child     core.IOPlugin
	saved     *core.Options

	seed           int64
	errorRate      float64
	delayRate      float64
	delayMS        int64
	bitflipRate    float64
	shortReadRate  float64
	shortWriteRate float64

	mu  sync.Mutex
	rng *rand.Rand
}

func (p *ioPlugin) Prefix() string { return "faultinject" }

func (p *ioPlugin) get() (core.IOPlugin, error) {
	if p.child == nil {
		child, err := core.NewIO(p.childName)
		if err != nil {
			return nil, err
		}
		if p.saved != nil {
			if err := child.SetOptions(p.saved); err != nil {
				return nil, err
			}
		}
		p.child = child
	}
	return p.child, nil
}

func (p *ioPlugin) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyIOChild, p.childName)
	o.SetValue(keyIOSeed, p.seed)
	o.SetValue(keyIOErrorRate, p.errorRate)
	o.SetValue(keyIODelayRate, p.delayRate)
	o.SetValue(keyIODelayMS, p.delayMS)
	o.SetValue(keyIOBitflipRate, p.bitflipRate)
	o.SetValue(keyIOShortReadRate, p.shortReadRate)
	o.SetValue(keyIOShortWriteRate, p.shortWriteRate)
	if p.child != nil {
		o.Merge(p.child.Options())
	}
	return o
}

func (p *ioPlugin) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keyIOChild); err == nil && v != p.childName {
		p.childName = v
		p.child = nil
	}
	if v, err := o.GetInt64(keyIOSeed); err == nil && v != p.seed {
		p.seed = v
		p.mu.Lock()
		p.rng = nil
		p.mu.Unlock()
	}
	for _, r := range []struct {
		key string
		dst *float64
	}{
		{keyIOErrorRate, &p.errorRate},
		{keyIODelayRate, &p.delayRate},
		{keyIOBitflipRate, &p.bitflipRate},
		{keyIOShortReadRate, &p.shortReadRate},
		{keyIOShortWriteRate, &p.shortWriteRate},
	} {
		if v, err := o.GetFloat64(r.key); err == nil {
			if err := checkRate(r.key, v); err != nil {
				return err
			}
			*r.dst = v
		}
	}
	if v, err := o.GetInt64(keyIODelayMS); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: %s %d", core.ErrInvalidOption, keyIODelayMS, v)
		}
		p.delayMS = v
	}
	if p.saved == nil {
		p.saved = core.NewOptions()
	}
	p.saved.Merge(o)
	if p.child != nil {
		return p.child.SetOptions(o)
	}
	return nil
}

func (p *ioPlugin) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "experimental", Version, false)
}

func (p *ioPlugin) roll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.seed))
	}
	return p.rng.Float64()
}

func (p *ioPlugin) bit(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.seed))
	}
	return p.rng.Intn(n)
}

func (p *ioPlugin) inject(op string) error {
	if p.delayRate > 0 && p.roll() < p.delayRate {
		trace.CounterAdd(CtrDelays, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		time.Sleep(time.Duration(p.delayMS) * time.Millisecond)
	}
	if p.errorRate > 0 && p.roll() < p.errorRate {
		trace.CounterAdd(CtrErrors, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		return core.Transient(fmt.Errorf("faultinject: injected transient IO failure in %s", op))
	}
	return nil
}

func (p *ioPlugin) Read(hint *core.Data) (*core.Data, error) {
	child, err := p.get()
	if err != nil {
		return nil, err
	}
	if err := p.inject("read"); err != nil {
		return nil, err
	}
	d, err := child.Read(hint)
	if err != nil {
		return nil, err
	}
	if p.shortReadRate > 0 && d.ByteLen() > 1 && p.roll() < p.shortReadRate {
		// A short read delivers a strict prefix of the stream, as a torn
		// storage read or truncated transfer would. The prefix has no valid
		// shape, so it comes back as plain bytes; consumers (the frame
		// decoder, format parsers) must detect the truncation themselves.
		trace.CounterAdd(CtrShortReads, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		cut := 1 + p.bit(int(d.ByteLen())-1)
		return core.NewBytes(append([]byte(nil), d.Bytes()[:cut]...)), nil
	}
	if p.bitflipRate > 0 && d.ByteLen() > 0 && p.roll() < p.bitflipRate {
		trace.CounterAdd(CtrBitflips, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		buf := append([]byte(nil), d.Bytes()...)
		pos := p.bit(len(buf) * 8)
		buf[pos/8] ^= 1 << (pos % 8)
		flipped := core.NewBytes(buf)
		if d.DType() != core.DTypeByte || d.NumDims() != 1 {
			if reshaped, err := core.NewMove(d.DType(), buf, d.Dims()...); err == nil {
				flipped = reshaped
			}
		}
		return flipped, nil
	}
	return d, nil
}

func (p *ioPlugin) Write(d *core.Data) error {
	child, err := p.get()
	if err != nil {
		return err
	}
	if err := p.inject("write"); err != nil {
		return err
	}
	if p.shortWriteRate > 0 && d.ByteLen() > 1 && p.roll() < p.shortWriteRate {
		// A short write persists a strict prefix and reports the failure, as
		// an interrupted transfer would: only part of the payload reaches the
		// sink, and the caller gets a transient io.ErrShortWrite to retry on.
		// The torn artifact is what integrity frames must catch on read.
		trace.CounterAdd(CtrShortWrites, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		cut := 1 + p.bit(int(d.ByteLen())-1)
		if err := child.Write(core.NewBytes(append([]byte(nil), d.Bytes()[:cut]...))); err != nil {
			return err
		}
		return core.Transient(fmt.Errorf("faultinject: %w after %d of %d bytes", io.ErrShortWrite, cut, d.ByteLen()))
	}
	return child.Write(d)
}

func (p *ioPlugin) Clone() core.IOPlugin {
	clone := &ioPlugin{
		childName:      p.childName,
		seed:           p.seed*0x9e3779b9 + 1,
		errorRate:      p.errorRate,
		delayRate:      p.delayRate,
		delayMS:        p.delayMS,
		bitflipRate:    p.bitflipRate,
		shortReadRate:  p.shortReadRate,
		shortWriteRate: p.shortWriteRate,
	}
	if p.saved != nil {
		clone.saved = p.saved.Clone()
	}
	if p.child != nil {
		clone.child = p.child.Clone()
	}
	return clone
}
