package faultinject

import (
	"pressio/internal/fsx"
)

// Filesystem-operation fault injection: the generalization of the crashPoint
// hook that used to live in internal/pio/atomic.go. Durable-storage code
// (internal/fsx, internal/h5lite via fsx, internal/store) declares named
// crash points at the filesystem operations whose ordering its
// crash-consistency argument depends on — write, fsync, rename, truncate —
// and a campaign arms exactly one of them to fire, either as an error
// (FSModeFail) or as a SIGKILL-equivalent hard stop (FSModeExit).
//
// The implementation lives in internal/fsx — the package at the bottom of
// the storage stack — because fsx is imported by internal/pio, whose tests
// exercise this package's IO fault injector: hosting the hooks here would
// cycle. This file re-exports the whole surface so fault-injection users
// keep a single import, and so FSPoints() enumerates the same registry the
// storage code declares into.

// FS fault modes and the hard-stop exit status.
const (
	// FSModeFail makes FSCrash return ErrFSCrash at the armed point.
	FSModeFail = fsx.FSModeFail
	// FSModeExit makes FSCrash hard-stop the process (os.Exit(FSExitCode))
	// at the armed point — no deferred cleanup runs, exactly as with
	// SIGKILL.
	FSModeExit = fsx.FSModeExit
	// FSExitCode is the exit status of an FSModeExit hard stop.
	FSExitCode = fsx.FSExitCode
	// EnvFSCrash is the environment variable ArmFSFromEnv reads:
	// "point[:mode[:after]]".
	EnvFSCrash = fsx.EnvFSCrash
	// CtrFSCrashes counts filesystem faults fired.
	CtrFSCrashes = fsx.CtrFSCrashes
)

// ErrFSCrash is the injected filesystem crash error (FSModeFail). It is
// deliberately not transient: retry loops must not absorb a simulated crash.
var ErrFSCrash = fsx.ErrFSCrash

// FSFault is one armed filesystem fault.
type FSFault = fsx.FSFault

// RegisterFSPoint declares a named filesystem crash point (idempotent).
func RegisterFSPoint(name string) string { return fsx.RegisterFSPoint(name) }

// FSPoints lists every declared crash point, sorted — the enumeration a
// crash matrix iterates.
func FSPoints() []string { return fsx.FSPoints() }

// ArmFS arms one filesystem fault; the point must have been declared.
func ArmFS(f FSFault) error { return fsx.ArmFS(f) }

// DisarmFS clears any armed filesystem fault.
func DisarmFS() { fsx.DisarmFS() }

// ArmFSFromEnv arms a fault from PRESSIO_FS_CRASH; reports whether one was
// armed.
func ArmFSFromEnv() (bool, error) { return fsx.ArmFSFromEnv() }

// FSArmed reports whether the named point is armed and due to fire next hit.
func FSArmed(point string) bool { return fsx.FSArmed(point) }

// FSCrash is the hook durable-storage code calls at each declared point.
func FSCrash(point string) error { return fsx.FSCrash(point) }
