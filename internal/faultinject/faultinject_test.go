package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pressio/internal/core"
	"pressio/internal/trace"

	_ "pressio/internal/lossless"
	_ "pressio/internal/pio"
)

func bytesData(n int) *core.Data {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return core.NewBytes(b)
}

func newInjector(t *testing.T, opts *core.Options) *core.Compressor {
	t.Helper()
	c, err := core.NewCompressor("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInjectedErrorsAreTransient(t *testing.T) {
	c := newInjector(t, core.NewOptions().
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:error_rate", 1.0))
	_, err := core.Compress(c, bytesData(32))
	if err == nil {
		t.Fatal("error_rate=1 compress succeeded")
	}
	if !core.IsTransient(err) {
		t.Errorf("injected error %v is not transient", err)
	}
}

func TestInjectedPermanentErrorsAreNotTransient(t *testing.T) {
	c := newInjector(t, core.NewOptions().
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:permanent_error_rate", 1.0))
	_, err := core.Compress(c, bytesData(32))
	if err == nil {
		t.Fatal("permanent_error_rate=1 compress succeeded")
	}
	if core.IsTransient(err) {
		t.Errorf("permanent injected error %v classified transient", err)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		c := newInjector(t, core.NewOptions().
			SetValue("faultinject:compressor", "noop").
			SetValue("faultinject:error_rate", 0.5).
			SetValue("faultinject:seed", seed))
		out := make([]bool, 50)
		for i := range out {
			_, err := core.Compress(c, bytesData(8))
			out[i] = err != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical 50-call schedules")
	}
}

func TestRateValidation(t *testing.T) {
	c, err := core.NewCompressor("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	err = c.SetOptions(core.NewOptions().SetValue("faultinject:error_rate", 1.5))
	if !errors.Is(err, core.ErrInvalidOption) {
		t.Errorf("rate 1.5 accepted (err=%v)", err)
	}
	err = c.SetOptions(core.NewOptions().SetValue("faultinject:panic_rate", -0.1))
	if !errors.Is(err, core.ErrInvalidOption) {
		t.Errorf("rate -0.1 accepted (err=%v)", err)
	}
}

func TestBitflipCorruptsStreamAndCounts(t *testing.T) {
	before := trace.CounterValue(CtrBitflips)
	clean := newInjector(t, core.NewOptions().
		SetValue("faultinject:compressor", "noop"))
	flaky := newInjector(t, core.NewOptions().
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:bitflip_rate", 1.0))
	in := bytesData(64)
	want, err := core.Compress(clean, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Compress(flaky, in)
	if err != nil {
		t.Fatal(err)
	}
	if string(want.Bytes()) == string(got.Bytes()) {
		t.Error("bitflip_rate=1 produced a pristine stream")
	}
	if d := trace.CounterValue(CtrBitflips) - before; d != 1 {
		t.Errorf("CtrBitflips delta = %d, want 1", d)
	}
}

func TestCloneDerivesIndependentSchedule(t *testing.T) {
	parent := newInjector(t, core.NewOptions().
		SetValue("faultinject:compressor", "noop").
		SetValue("faultinject:error_rate", 0.5).
		SetValue("faultinject:seed", int64(7)))
	clone := parent.Clone()
	trial := func(c *core.Compressor) []bool {
		out := make([]bool, 40)
		for i := range out {
			_, err := core.Compress(c, bytesData(8))
			out[i] = err != nil
		}
		return out
	}
	a, b := trial(parent), trial(clone)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("clone replayed the parent's schedule; clones must derive fresh seeds")
	}
}

func TestIOWrapperInjectsTransientReadError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := os.WriteFile(path, []byte{1, 2, 3, 4}, 0o644); err != nil {
		t.Fatal(err)
	}
	io, err := core.NewIO("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions().
		SetValue("faultinject_io:io", "posix").
		SetValue("faultinject_io:error_rate", 1.0).
		SetValue(core.KeyIOPath, path)
	if err := io.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Read(nil); !core.IsTransient(err) {
		t.Errorf("injected IO error %v is not transient", err)
	}
}

func TestIOWrapperBitflip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	payload := make([]byte, 128)
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	io, err := core.NewIO("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions().
		SetValue("faultinject_io:io", "posix").
		SetValue("faultinject_io:bitflip_rate", 1.0).
		SetValue(core.KeyIOPath, path)
	if err := io.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	d, err := io.Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, b := range d.Bytes() {
		if b != 0 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("expected exactly one flipped bit's byte to differ, got %d differing bytes", diff)
	}
}

func TestIOWrapperPassthroughWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	io, err := core.NewIO("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions().
		SetValue("faultinject_io:io", "posix").
		SetValue(core.KeyIOPath, path)
	if err := io.SetOptions(opts); err != nil {
		t.Fatal(err)
	}
	if err := io.Write(core.NewBytes([]byte("hello"))); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Errorf("wrote %q", b)
	}
}
