package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"pressio/internal/trace"
)

func faultCampaignSchedule(t *testing.T, rt *RoundTripper, url string, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := rt.RoundTrip(mustRequest(t, url))
		switch {
		case err != nil:
			out = append(out, "refused")
		default:
			body, readErr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			switch {
			case readErr != nil:
				out = append(out, "truncated")
			case !bytes.Equal(body, httpPayload):
				out = append(out, "corrupted")
			default:
				out = append(out, "clean")
			}
		}
	}
	return out
}

var httpPayload = bytes.Repeat([]byte("pressio-http-fault-payload."), 16)

func mustRequest(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func newFaultServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(httpPayload)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestHTTPFaultScheduleDeterministic: same seed, same rates, same request
// sequence → the identical fault schedule. This is the contract chaos tests
// depend on to be replayable.
func TestHTTPFaultScheduleDeterministic(t *testing.T) {
	ts := newFaultServer(t)
	rates := HTTPRates{Seed: 42, Refuse: 0.2, Truncate: 0.2, Corrupt: 0.2}
	mk := func() *RoundTripper {
		rt, err := NewRoundTripper(nil, rates)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	first := faultCampaignSchedule(t, mk(), ts.URL, 50)
	second := faultCampaignSchedule(t, mk(), ts.URL, 50)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("schedule diverged at request %d: %s vs %s", i, first[i], second[i])
		}
	}
	kinds := map[string]int{}
	for _, k := range first {
		kinds[k]++
	}
	for _, want := range []string{"clean", "refused", "truncated", "corrupted"} {
		if kinds[want] == 0 {
			t.Fatalf("50-request campaign never produced %q: %v", want, kinds)
		}
	}
}

// TestHTTPCloneDerivesIndependentReproducibleSchedule: clones draw distinct
// schedules (clone fleets do not fault in lockstep) yet cloning twice gives
// the same derived seed — reproducibility survives the derivation.
func TestHTTPCloneDerivesIndependentReproducibleSchedule(t *testing.T) {
	ts := newFaultServer(t)
	rt, err := NewRoundTripper(nil, HTTPRates{Seed: 42, Refuse: 0.3, Truncate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	base := faultCampaignSchedule(t, rt, ts.URL, 40)
	cloneA := faultCampaignSchedule(t, rt.Clone(), ts.URL, 40)
	cloneB := faultCampaignSchedule(t, rt.Clone(), ts.URL, 40)
	same := true
	for i := range base {
		if base[i] != cloneA[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clone drew the parent's schedule; fleets would fault in lockstep")
	}
	for i := range cloneA {
		if cloneA[i] != cloneB[i] {
			t.Fatalf("two clones diverged at request %d; derivation is not stable", i)
		}
	}
}

func TestHTTPRefuseIsConnectionRefused(t *testing.T) {
	trace.ResetTelemetry()
	ts := newFaultServer(t)
	rt, err := NewRoundTripper(nil, HTTPRates{Seed: 1, Refuse: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := mustRequest(t, ts.URL)
	req.Body = io.NopCloser(bytes.NewReader([]byte("x")))
	_, err = rt.RoundTrip(req)
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("refused request error %v, want ECONNREFUSED", err)
	}
	if trace.CounterValue(CtrHTTPRefused) != 1 {
		t.Fatalf("refused counter %d, want 1", trace.CounterValue(CtrHTTPRefused))
	}
}

func TestHTTPTruncateDeliversStrictPrefixThenUnexpectedEOF(t *testing.T) {
	ts := newFaultServer(t)
	rt, err := NewRoundTripper(nil, HTTPRates{Seed: 1, Truncate: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.RoundTrip(mustRequest(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, readErr := io.ReadAll(resp.Body)
	if !errors.Is(readErr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body read error %v, want ErrUnexpectedEOF", readErr)
	}
	if len(body) == 0 || len(body) >= len(httpPayload) {
		t.Fatalf("truncated body is %d bytes of %d, want a strict prefix", len(body), len(httpPayload))
	}
	if !bytes.Equal(body, httpPayload[:len(body)]) {
		t.Fatal("truncated body is not a prefix of the real payload")
	}
}

func TestHTTPCorruptFlipsExactlyOneBitPreservingLength(t *testing.T) {
	ts := newFaultServer(t)
	rt, err := NewRoundTripper(nil, HTTPRates{Seed: 1, Corrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.RoundTrip(mustRequest(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(httpPayload) {
		t.Fatalf("corruption changed the length: %d vs %d", len(body), len(httpPayload))
	}
	flipped := 0
	for i := range body {
		diff := body[i] ^ httpPayload[i]
		for ; diff != 0; diff &= diff - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", flipped)
	}
}

func TestHTTPDelayHonorsContextCancellation(t *testing.T) {
	ts := newFaultServer(t)
	rt, err := NewRoundTripper(nil, HTTPRates{Seed: 1, Delay: 1, DelayMS: 60000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err = rt.RoundTrip(mustRequest(t, ts.URL).WithContext(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed request error %v, want DeadlineExceeded", err)
	}
	if time.Since(begin) > 5*time.Second {
		t.Fatal("injected delay ignored the context")
	}
}

func TestHTTPRatesValidated(t *testing.T) {
	if _, err := NewRoundTripper(nil, HTTPRates{Refuse: 1.5}); err == nil {
		t.Fatal("out-of-range refuse rate accepted")
	}
	if _, err := NewRoundTripper(nil, HTTPRates{DelayMS: -1}); err == nil {
		t.Fatal("negative delay accepted")
	}
}
