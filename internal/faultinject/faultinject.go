// Package faultinject is the deterministic chaos substrate for the
// resilience layer: a compressor plugin and an IO wrapper that misbehave on
// purpose — transient and permanent errors, panics, delays, and bit flips in
// the compressed stream — with per-operation probabilities driven by a
// seeded PRNG, so every failure schedule is reproducible. It registers like
// any other plugin, which means the guard and fallback meta-compressors (and
// any future policy code) can be driven to their failure paths through the
// same generic interface production code uses.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Option keys the faultinject compressor plugin owns.
const (
	keyCompressor    = "faultinject:compressor"
	keySeed          = "faultinject:seed"
	keyErrorRate     = "faultinject:error_rate"
	keyPermanentRate = "faultinject:permanent_error_rate"
	keyPanicRate     = "faultinject:panic_rate"
	keyDelayRate     = "faultinject:delay_rate"
	keyDelayMS       = "faultinject:delay_ms"
	keyBitflipRate   = "faultinject:bitflip_rate"
)

// Trace counters the injector maintains, one per fault kind, so chaos tests
// can reconcile what was injected against what the resilience layer reports
// having handled. trace.CtrFaultsInjected aggregates all kinds.
const (
	CtrErrors      = "faultinject.errors"
	CtrPanics      = "faultinject.panics"
	CtrDelays      = "faultinject.delays"
	CtrBitflips    = "faultinject.bitflips"
	CtrShortReads  = "faultinject.short_reads"
	CtrShortWrites = "faultinject.short_writes"
)

// Version is the faultinject plugin version.
const Version = "1.0.0"

func init() {
	core.RegisterCompressor("faultinject", func() core.CompressorPlugin {
		return &plugin{childName: "sz_threadsafe", rates: Rates{Seed: 1}}
	})
}

// Rates configures the per-operation fault probabilities. Each rate is the
// probability (0..1) that the corresponding fault fires on one call; draws
// happen in a fixed order (delay, panic, transient error, permanent error,
// bit flip) so a given seed and configuration replays the same schedule.
type Rates struct {
	Seed      int64
	Error     float64 // transient error (core.IsTransient reports true)
	Permanent float64 // permanent error
	Panic     float64 // panic with a recognizable message
	Delay     float64 // sleep DelayMS before operating
	DelayMS   int64
	Bitflip   float64 // flip one random bit of the compressed stream
}

func checkRate(key string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%w: %s %v not in [0,1]", core.ErrInvalidOption, key, v)
	}
	return nil
}

// plugin wraps a child compressor with the fault schedule. The PRNG is
// per-instance behind a mutex; clones derive fresh deterministic seeds so a
// cloned fleet (e.g. CompressMany workers) stays reproducible per clone.
type plugin struct {
	childName string
	comp      *core.Compressor
	saved     *core.Options
	rates     Rates

	mu     sync.Mutex
	rng    *rand.Rand
	clones int64
}

func (p *plugin) Prefix() string  { return "faultinject" }
func (p *plugin) Version() string { return Version }

func (p *plugin) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyCompressor, p.childName)
	o.SetValue(keySeed, p.rates.Seed)
	o.SetValue(keyErrorRate, p.rates.Error)
	o.SetValue(keyPermanentRate, p.rates.Permanent)
	o.SetValue(keyPanicRate, p.rates.Panic)
	o.SetValue(keyDelayRate, p.rates.Delay)
	o.SetValue(keyDelayMS, p.rates.DelayMS)
	o.SetValue(keyBitflipRate, p.rates.Bitflip)
	if p.comp != nil {
		o.Merge(p.comp.Options())
	}
	return o
}

func (p *plugin) SetOptions(o *core.Options) error {
	if v, err := o.GetString(keyCompressor); err == nil && v != p.childName {
		p.childName = v
		p.comp = nil
	}
	if v, err := o.GetInt64(keySeed); err == nil && v != p.rates.Seed {
		p.rates.Seed = v
		p.mu.Lock()
		p.rng = nil // reseed lazily from the new seed
		p.mu.Unlock()
	}
	for _, r := range []struct {
		key string
		dst *float64
	}{
		{keyErrorRate, &p.rates.Error},
		{keyPermanentRate, &p.rates.Permanent},
		{keyPanicRate, &p.rates.Panic},
		{keyDelayRate, &p.rates.Delay},
		{keyBitflipRate, &p.rates.Bitflip},
	} {
		if v, err := o.GetFloat64(r.key); err == nil {
			if err := checkRate(r.key, v); err != nil {
				return err
			}
			*r.dst = v
		}
	}
	if v, err := o.GetInt64(keyDelayMS); err == nil {
		if v < 0 {
			return fmt.Errorf("%w: %s %d", core.ErrInvalidOption, keyDelayMS, v)
		}
		p.rates.DelayMS = v
	}
	if p.saved == nil {
		p.saved = core.NewOptions()
	}
	p.saved.Merge(o)
	if p.comp != nil {
		return p.comp.SetOptions(o)
	}
	return nil
}

func (p *plugin) CheckOptions(o *core.Options) error {
	clone := &plugin{childName: p.childName, rates: p.rates}
	if p.saved != nil {
		clone.saved = p.saved.Clone()
	}
	return clone.SetOptions(o)
}

func (p *plugin) Configuration() *core.Options {
	return core.StandardConfiguration(core.ThreadSafetySerialized, "experimental", Version, false)
}

func (p *plugin) get() (*core.Compressor, error) {
	if p.comp == nil {
		comp, err := core.NewCompressor(p.childName)
		if err != nil {
			return nil, err
		}
		if p.saved != nil {
			if err := comp.SetOptions(p.saved); err != nil {
				return nil, err
			}
		}
		p.comp = comp
	}
	return p.comp, nil
}

// roll draws one uniform variate from the instance PRNG.
func (p *plugin) roll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.rates.Seed))
	}
	return p.rng.Float64()
}

// bit draws a bit position in [0, n) from the instance PRNG.
func (p *plugin) bit(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.rates.Seed))
	}
	return p.rng.Intn(n)
}

// inject runs the pre-operation faults (delay, panic, errors) for one call.
// It panics when the panic fault fires — the whole point is testing that the
// guard boundary converts it — and otherwise returns the injected error or
// nil.
func (p *plugin) inject(op string) error {
	if p.rates.Delay > 0 && p.roll() < p.rates.Delay {
		trace.CounterAdd(CtrDelays, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		time.Sleep(time.Duration(p.rates.DelayMS) * time.Millisecond)
	}
	if p.rates.Panic > 0 && p.roll() < p.rates.Panic {
		trace.CounterAdd(CtrPanics, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		panic(fmt.Sprintf("faultinject: injected panic in %s", op))
	}
	if p.rates.Error > 0 && p.roll() < p.rates.Error {
		trace.CounterAdd(CtrErrors, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		return core.Transient(fmt.Errorf("faultinject: injected transient failure in %s", op))
	}
	if p.rates.Permanent > 0 && p.roll() < p.rates.Permanent {
		trace.CounterAdd(CtrErrors, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		return fmt.Errorf("faultinject: injected permanent failure in %s", op)
	}
	return nil
}

func (p *plugin) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	if err := p.inject("compress"); err != nil {
		return err
	}
	inner, err := core.Compress(comp, in)
	if err != nil {
		return err
	}
	if p.rates.Bitflip > 0 && inner.ByteLen() > 0 && p.roll() < p.rates.Bitflip {
		trace.CounterAdd(CtrBitflips, 1)
		trace.CounterAdd(trace.CtrFaultsInjected, 1)
		buf := append([]byte(nil), inner.Bytes()...)
		pos := p.bit(len(buf) * 8)
		buf[pos/8] ^= 1 << (pos % 8)
		out.Become(core.NewBytes(buf))
		return nil
	}
	out.Become(inner)
	return nil
}

func (p *plugin) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	if err := p.inject("decompress"); err != nil {
		return err
	}
	return comp.Decompress(in, out)
}

// Clone derives an independent instance whose PRNG is seeded from the parent
// seed and a per-parent clone counter, so a fleet of clones is collectively
// deterministic without sharing a schedule.
func (p *plugin) Clone() core.CompressorPlugin {
	p.mu.Lock()
	p.clones++
	seq := p.clones
	p.mu.Unlock()
	rates := p.rates
	rates.Seed = p.rates.Seed*0x9e3779b9 + seq
	clone := &plugin{childName: p.childName, rates: rates}
	if p.saved != nil {
		clone.saved = p.saved.Clone()
	}
	if p.comp != nil {
		clone.comp = p.comp.Clone()
	}
	return clone
}
