package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMainListsAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Main([]string{"-analyzers"}, &out, &errOut); code != 0 {
		t.Fatalf("bare -analyzers exited %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, a := range Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-analyzers listing is missing %q", a.Name)
		}
	}
}

func TestMainRejectsUnknownAnalyzers(t *testing.T) {
	for _, args := range [][]string{
		{"-run", "nosuch", "testdata/src/hotalloc_bad"},
		{"-analyzers=hotalloc,nosuch", "testdata/src/hotalloc_bad"},
	} {
		var out, errOut bytes.Buffer
		if code := Main(args, &out, &errOut); code != 2 {
			t.Errorf("Main(%v) exited %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), `unknown analyzer "nosuch"`) {
			t.Errorf("Main(%v) stderr %q does not name the unknown analyzer", args, errOut.String())
		}
		if !strings.Contains(errOut.String(), "hotalloc") {
			t.Errorf("Main(%v) stderr %q does not list the known analyzers", args, errOut.String())
		}
	}
}

func TestMainAnalyzerSelection(t *testing.T) {
	var out, errOut bytes.Buffer
	code := Main([]string{"-analyzers=hotalloc", "testdata/src/hotalloc_bad"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("selection run exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[hotalloc]") {
		t.Error("selected analyzer produced no diagnostics")
	}
	for _, other := range []string{"[errcheck]", "[lockcheck]", "[goroutineleak]"} {
		if strings.Contains(out.String(), other) {
			t.Errorf("selection leaked diagnostics from %s", other)
		}
	}
}

func TestSARIFDeduplicatesResults(t *testing.T) {
	d := Diagnostic{File: "a.go", Line: 3, Col: 7, Analyzer: "hotalloc", Message: "boom"}
	other := d
	other.Line = 4
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, Analyzers(), []Diagnostic{d, d, other, d}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"ruleId"`); got != 2 {
		t.Errorf("SARIF has %d results after dedup, want 2\n%s", got, buf.String())
	}
}

func TestDiffBaseline(t *testing.T) {
	old := Diagnostic{File: "a.go", Line: 1, Col: 1, Analyzer: "hotalloc", Message: "known debt"}
	fresh := Diagnostic{File: "b.go", Line: 2, Col: 2, Analyzer: "ctxflow", Message: "regression"}
	gone := Diagnostic{File: "c.go", Line: 3, Col: 3, Analyzer: "errcheck", Message: "since fixed"}
	baseline := map[string]bool{old.Fingerprint(): true, gone.Fingerprint(): true}

	delta := DiffBaseline([]Diagnostic{old, fresh, fresh}, baseline)
	if delta.Baseline != 2 || delta.Current != 2 {
		t.Errorf("delta counts = %d baseline / %d current, want 2/2", delta.Baseline, delta.Current)
	}
	if len(delta.New) != 1 || delta.New[0].Fingerprint() != fresh.Fingerprint() {
		t.Errorf("delta.New = %v, want just the regression", delta.New)
	}
	if delta.Fixed != 1 {
		t.Errorf("delta.Fixed = %d, want 1", delta.Fixed)
	}
}

// TestMainBaselineGatesOnNewFindingsOnly round-trips the SARIF writer through
// the baseline reader: a run compared against its own baseline passes, and
// against an empty baseline fails with the delta table on stdout.
func TestMainBaselineGatesOnNewFindingsOnly(t *testing.T) {
	fixture := filepath.Join("testdata", "src", "hotalloc_bad")
	var sarif, errOut bytes.Buffer
	if code := Main([]string{"-sarif", "-run", "hotalloc", fixture}, &sarif, &errOut); code != 1 {
		t.Fatalf("SARIF run exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	dir := t.TempDir()
	selfBaseline := filepath.Join(dir, "self.sarif")
	if err := os.WriteFile(selfBaseline, sarif.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	errOut.Reset()
	code := Main([]string{"-baseline", selfBaseline, "-run", "hotalloc", fixture}, &out, &errOut)
	if code != 0 {
		t.Errorf("run against its own baseline exited %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "| new | 0 |") {
		t.Errorf("delta table missing zero-new row:\n%s", out.String())
	}

	empty := filepath.Join(dir, "empty.sarif")
	var emptyBuf bytes.Buffer
	if err := WriteSARIF(&emptyBuf, Analyzers(), nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(empty, emptyBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	code = Main([]string{"-baseline", empty, "-run", "hotalloc", fixture}, &out, &errOut)
	if code != 1 {
		t.Errorf("run against an empty baseline exited %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "New findings:") {
		t.Errorf("delta table does not list the new findings:\n%s", out.String())
	}
}

// TestRunParallelDeterministic pins the worker-pool contract: the parallel
// fan-out must produce byte-identical diagnostics, in the same order, as a
// sequential run — whatever the worker count.
func TestRunParallelDeterministic(t *testing.T) {
	pkgs := loadedModule(t)
	want := runWith(pkgs, Analyzers(), "", 1)
	for _, workers := range []int{2, 4, 16} {
		got := runWith(pkgs, Analyzers(), "", workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d diagnostics, sequential has %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: diagnostic %d differs:\n got %v\nwant %v", workers, i, got[i], want[i])
			}
		}
	}
}
