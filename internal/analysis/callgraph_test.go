package analysis

import (
	"go/ast"
	"path/filepath"
	"testing"
)

// loadCallgraphFixture loads testdata/src/callgraphx and builds its graph and
// summaries once per test.
func loadCallgraphFixture(t *testing.T) (*CallGraph, *Summaries, *Package) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("internal", "analysis", "testdata", "src", "callgraphx"))
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph([]*Package{pkg})
	return g, ComputeSummaries(g), pkg
}

func nodeByName(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("call graph has no node %q", name)
	return nil
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g, _, _ := loadCallgraphFixture(t)
	run := nodeByName(t, g, "callgraphx.run")
	targets := map[string]bool{}
	for _, e := range run.Calls {
		if !e.Dynamic {
			t.Errorf("run's edge to %s is static; interface dispatch must be dynamic", e.Callee.Name)
		}
		targets[e.Callee.Name] = true
	}
	for _, want := range []string{"callgraphx.padded.Compress", "callgraphx.noop.Compress"} {
		if !targets[want] {
			t.Errorf("interface dispatch from run missed implementation %s; got %v", want, targets)
		}
	}
}

func TestCallGraphGoEdges(t *testing.T) {
	g, _, pkg := loadCallgraphFixture(t)
	spawn := nodeByName(t, g, "callgraphx.spawn")
	found := false
	for _, e := range spawn.Calls {
		if e.Callee.Name == "callgraphx.worker" {
			found = true
			if !e.Go {
				t.Error("spawn's edge to worker lost its Go flag")
			}
		}
	}
	if !found {
		t.Fatal("spawn has no edge to worker")
	}

	// A bound method value spawned with go must resolve to the method node.
	ms := nodeByName(t, g, "callgraphx.methodSpawn")
	var goStmt *ast.GoStmt
	ast.Inspect(ms.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goStmt = gs
		}
		return true
	})
	if goStmt == nil {
		t.Fatal("methodSpawn fixture has no go statement")
	}
	entry := g.GoEntry(pkg, goStmt)
	if entry == nil || entry.Name != "callgraphx.padded.Compress" {
		t.Errorf("GoEntry resolved method-value spawn to %v, want callgraphx.padded.Compress", entry)
	}
}

func TestCallGraphSCCs(t *testing.T) {
	g, _, _ := loadCallgraphFixture(t)
	even := nodeByName(t, g, "callgraphx.even")
	odd := nodeByName(t, g, "callgraphx.odd")
	if even.SCC != odd.SCC {
		t.Errorf("mutually recursive even (SCC %d) and odd (SCC %d) must share a component", even.SCC, odd.SCC)
	}
	// Bottom-up order visits callees before callers outside a shared SCC.
	pos := map[string]int{}
	for i, n := range g.BottomUp() {
		pos[n.Name] = i
	}
	if pos["callgraphx.pad"] > pos["callgraphx.padded.Compress"] {
		t.Errorf("bottom-up order has pad (%d) after its caller padded.Compress (%d)",
			pos["callgraphx.pad"], pos["callgraphx.padded.Compress"])
	}
	if pos["callgraphx.wait"] > pos["callgraphx.caller"] {
		t.Errorf("bottom-up order has wait (%d) after its caller caller (%d)",
			pos["callgraphx.wait"], pos["callgraphx.caller"])
	}
}

func TestSummaryPropagation(t *testing.T) {
	g, sums, _ := loadCallgraphFixture(t)

	pad := sums.Of(nodeByName(t, g, "callgraphx.pad"))
	if pad == nil || !pad.Allocates {
		t.Fatalf("pad's summary must record its make allocation; got %+v", pad)
	}
	compress := sums.Of(nodeByName(t, g, "callgraphx.padded.Compress"))
	if compress == nil || !compress.Allocates || compress.AllocVia != "pad" {
		t.Errorf("padded.Compress must inherit Allocates via pad; got %+v", compress)
	}

	caller := sums.Of(nodeByName(t, g, "callgraphx.caller"))
	if caller == nil || !caller.Blocks {
		t.Errorf("caller must inherit Blocks from wait; got %+v", caller)
	}

	// The go edge is a concurrency boundary: worker's channel send must not
	// make spawn itself a blocking function.
	spawn := sums.Of(nodeByName(t, g, "callgraphx.spawn"))
	if spawn == nil {
		t.Fatal("spawn has no summary")
	}
	if spawn.Blocks {
		t.Errorf("spawn inherited Blocks across a go edge: %+v", spawn)
	}
	if !spawn.SpawnsGoroutine {
		t.Error("spawn's summary lost SpawnsGoroutine")
	}

	uses := sums.Of(nodeByName(t, g, "callgraphx.usesCtx"))
	if uses == nil || !uses.HasCtxParam || !uses.UsesCtx {
		t.Errorf("usesCtx must record both HasCtxParam and UsesCtx; got %+v", uses)
	}
	drops := sums.Of(nodeByName(t, g, "callgraphx.dropsCtx"))
	if drops == nil || !drops.HasCtxParam || drops.UsesCtx {
		t.Errorf("dropsCtx must record HasCtxParam without UsesCtx; got %+v", drops)
	}

	// Summaries converge for recursive components instead of looping.
	if even := sums.Of(nodeByName(t, g, "callgraphx.even")); even == nil {
		t.Error("mutually recursive even has no summary")
	}
}

func TestReachableStaticExcludesDynamicEdges(t *testing.T) {
	g, _, _ := loadCallgraphFixture(t)
	run := nodeByName(t, g, "callgraphx.run")
	static := g.ReachableStatic([]*FuncNode{run})
	full := g.Reachable([]*FuncNode{run})
	impl := nodeByName(t, g, "callgraphx.padded.Compress")
	if static[impl] {
		t.Error("ReachableStatic followed a dynamic interface-dispatch edge")
	}
	if !full[impl] {
		t.Error("Reachable must follow dynamic interface-dispatch edges")
	}
	if !static[run] {
		t.Error("roots must be in their own closure")
	}
}
