package analysis

import (
	"go/ast"
	"go/types"
)

// errcheckMethods are the calls whose errors must not be silently dropped:
// the compression hot path (Compress/Decompress and the plugin Impl
// variants), configuration application (SetOptions/CheckOptions — a dropped
// error here means the caller believes a bound was applied when it was not),
// and io.Closer.Close. Note that Options.Set is deliberately not listed: it
// returns the receiver for chaining, not an error, so discarding its result
// is the idiom, and the configuration invariant lives with SetOptions.
var errcheckMethods = map[string]bool{
	"Compress":       true,
	"Decompress":     true,
	"CompressImpl":   true,
	"DecompressImpl": true,
	"SetOptions":     true,
	"CheckOptions":   true,
	"Close":          true,
}

// ErrCheck is the errcheck-lite analyzer: a bare expression statement that
// calls one of the watched methods and discards a result set containing an
// error is flagged. `_ = f.Close()` and `defer f.Close()` are accepted — the
// first is an explicit acknowledgment, the second is the standard cleanup
// idiom whose error the surrounding function has usually already superseded.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "errors from Compress/Decompress/SetOptions/Close must not be discarded",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !errcheckMethods[name] {
				return true
			}
			if !returnsError(pass.Pkg, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s contains an error that is discarded: handle it or assign it explicitly",
				name)
			return true
		})
	}
}

// returnsError reports whether the call's result set includes an error. When
// type information is unavailable the watched names are trusted: every
// watched method in this codebase returns an error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	if pkg.Info == nil {
		return true
	}
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return true
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}
