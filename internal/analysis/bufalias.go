package analysis

import (
	"go/ast"
	"go/types"
)

// BufAlias enforces the buffer-ownership contract of the compression hot
// path: the caller owns the input Data it passes to Compress/Decompress, so
// a codec must neither retain a reference to it (in receiver fields or
// package-level state — the next call would overwrite a buffer the plugin
// still points at) nor return a slice aliasing it as its output (the caller
// may mutate the input after the call and silently corrupt the "compressed"
// result). The analyzer runs a flow-sensitive taint analysis over the
// function CFG: the input parameter is the taint source; view accessors
// (in.Bytes(), in.Float32s(), ...), slicing, field access, address-taking
// and the non-copying Data constructors (NewBytes, FromFloat64s, ...)
// propagate taint; element-copying operations (append into a fresh slice,
// string conversion) do not. Sinks are stores into receiver or package
// state and returns of tainted slices/pointers.
var BufAlias = &Analyzer{
	Name: "bufalias",
	Doc:  "Compress/Decompress must not retain or return references to the caller's input buffer",
	Run:  runBufAlias,
}

// hotPathMethods are the codec entry points whose first parameter is the
// caller-owned input buffer.
var hotPathMethods = map[string]bool{
	"Compress": true, "Decompress": true,
	"CompressImpl": true, "DecompressImpl": true,
}

// wrapConstructors are the Data constructors that wrap the given backing
// storage without copying; a tainted argument taints the result.
var wrapConstructors = map[string]bool{
	"NewBytes": true, "NewMove": true,
	"FromFloat32s": true, "FromFloat64s": true,
	"FromInt32s": true, "FromInt64s": true, "FromUint64s": true,
}

func runBufAlias(pass *Pass) {
	if pass.Pkg.Info == nil {
		return // taint tracking needs object resolution
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !hotPathMethods[fd.Name.Name] {
				continue
			}
			analyzeBufAlias(pass, fd)
		}
	}
}

// taintFact is the set of local variables that may alias the input buffer.
type taintFact map[*types.Var]bool

type bufAliasProblem struct {
	pass *Pass
	// in is the input parameter object (the taint source).
	in *types.Var
	// recv is the receiver object; stores into its fields are sinks.
	recv *types.Var
}

func (p *bufAliasProblem) EntryFact() any {
	return taintFact{p.in: true}
}

func (p *bufAliasProblem) Transfer(fact any, n ast.Node) any {
	f := fact.(taintFact)
	out := f
	mutated := false
	set := func(v *types.Var, tainted bool) {
		if out[v] == tainted {
			return
		}
		if !mutated {
			out = make(taintFact, len(f)+1)
			for k := range f {
				out[k] = true
			}
			mutated = true
		}
		if tainted {
			out[v] = true
		} else {
			delete(out, v)
		}
	}
	inspectNoFuncLit(n, func(m ast.Node) bool {
		switch st := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue // field/index stores handled as sinks, not defs
				}
				v, ok := p.pass.Pkg.Info.ObjectOf(id).(*types.Var)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				set(v, rhs != nil && p.tainted(out, rhs) && pointerish(v.Type()))
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				v, ok := p.pass.Pkg.Info.ObjectOf(name).(*types.Var)
				if !ok {
					continue
				}
				tainted := false
				if i < len(st.Values) {
					tainted = p.tainted(out, st.Values[i]) && pointerish(v.Type())
				}
				set(v, tainted)
			}
		}
		return true
	})
	return out
}

// tainted reports whether evaluating e may yield a value sharing storage
// with the input buffer, under the current fact.
func (p *bufAliasProblem) tainted(f taintFact, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := p.pass.Pkg.Info.ObjectOf(x).(*types.Var)
		return ok && f[v]
	case *ast.ParenExpr:
		return p.tainted(f, x.X)
	case *ast.StarExpr:
		return p.tainted(f, x.X)
	case *ast.UnaryExpr:
		return x.Op.String() == "&" && p.tainted(f, x.X)
	case *ast.SliceExpr:
		return p.tainted(f, x.X)
	case *ast.IndexExpr:
		// Indexing only aliases when the element itself is a reference.
		return p.tainted(f, x.X) && pointerish(p.typeOf(x))
	case *ast.SelectorExpr:
		// Field of a tainted struct value shares its storage. A package
		// qualifier is not a value at all.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := p.pass.Pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				return false
			}
		}
		return p.tainted(f, x.X) && pointerish(p.typeOf(x))
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if p.tainted(f, elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return p.taintedCall(f, x)
	}
	return false
}

func (p *bufAliasProblem) taintedCall(f taintFact, call *ast.CallExpr) bool {
	// append copies elements into the destination: the result aliases the
	// destination, never the appended source.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		return p.tainted(f, call.Args[0])
	}
	// Conversions share backing storage for slice->slice forms ([]byte(x))
	// and copy for string(x); treat as passthrough when the result can alias.
	if p.isConversion(call) && len(call.Args) == 1 {
		return p.tainted(f, call.Args[0]) && pointerish(p.typeOf(call))
	}
	// View accessors: a method on a tainted receiver whose result is a
	// reference type returns a view of its storage (in.Bytes(), ...).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if p.tainted(f, sel.X) && pointerish(p.typeOf(call)) {
			return true
		}
	}
	// Non-copying constructors wrap their (tainted) argument.
	if wrapConstructors[calleeName(call)] {
		for _, arg := range call.Args {
			if p.tainted(f, arg) {
				return true
			}
		}
	}
	return false
}

// isConversion reports whether the call expression is a type conversion.
func (p *bufAliasProblem) isConversion(call *ast.CallExpr) bool {
	tv, ok := p.pass.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

func (p *bufAliasProblem) typeOf(e ast.Expr) types.Type {
	tv, ok := p.pass.Pkg.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// pointerish reports whether values of t can share backing storage: nil
// (unknown) is treated as sharable so missing type info stays conservative.
// The error interface is excluded — the error result of a multi-value call
// never carries the buffer, and tainting it would flag every `return err`
// downstream of a wrapping constructor.
func pointerish(t types.Type) bool {
	if t == nil {
		return true
	}
	if t == types.Universe.Lookup("error").Type() {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Struct:
		return true // a struct value may embed slices (e.g. core.Data)
	case *types.Array:
		return pointerish(u.Elem())
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if pointerish(u.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

func (p *bufAliasProblem) Join(a, b any) any {
	fa, fb := a.(taintFact), b.(taintFact)
	out := make(taintFact, len(fa))
	for v := range fa {
		out[v] = true
	}
	for v := range fb {
		out[v] = true
	}
	return out
}

func (p *bufAliasProblem) Equal(a, b any) bool {
	fa, fb := a.(taintFact), b.(taintFact)
	if len(fa) != len(fb) {
		return false
	}
	for v := range fa {
		if !fb[v] {
			return false
		}
	}
	return true
}

func analyzeBufAlias(pass *Pass, fd *ast.FuncDecl) {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return
	}
	in, ok := pass.Pkg.Info.ObjectOf(params.List[0].Names[0]).(*types.Var)
	if !ok {
		return
	}
	var recv *types.Var
	if len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recv, _ = pass.Pkg.Info.ObjectOf(fd.Recv.List[0].Names[0]).(*types.Var)
	}
	problem := &bufAliasProblem{pass: pass, in: in, recv: recv}
	cfg := BuildCFG(fd.Name.Name, fd.Body)
	res := Solve(cfg, problem)
	scope := pass.Pkg.Types.Scope()

	WalkFacts(cfg, problem, res, func(fact any, n ast.Node) {
		f := fact.(taintFact)
		inspectNoFuncLit(n, func(m ast.Node) bool {
			switch st := m.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					var rhs ast.Expr
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
					if rhs == nil || !problem.tainted(f, rhs) {
						continue
					}
					root := rootIdent(lhs)
					if root == nil {
						continue
					}
					obj := pass.Pkg.Info.ObjectOf(root)
					v, isVar := obj.(*types.Var)
					if !isVar {
						continue
					}
					// Rebinding a LOCAL name is propagation (the transfer
					// function tracks it); stores rooted at the receiver or
					// at package scope let the buffer outlive the call.
					switch {
					case recv != nil && v == recv && root != lhs:
						pass.Reportf(st.Pos(),
							"%s stores a reference to the caller's input buffer in receiver state: copy the data, the caller owns and may reuse it",
							fd.Name.Name)
					case v.Parent() == scope:
						pass.Reportf(st.Pos(),
							"%s stores a reference to the caller's input buffer in package-level %s: copy the data, the caller owns and may reuse it",
							fd.Name.Name, root.Name)
					}
				}
			case *ast.ReturnStmt:
				for _, result := range st.Results {
					if problem.tainted(f, result) && pointerish(problem.typeOf(result)) {
						pass.Reportf(result.Pos(),
							"%s returns a value aliasing the caller's input buffer: the caller may mutate the input and corrupt it",
							fd.Name.Name)
					}
				}
			}
			return true
		})
	})
}
