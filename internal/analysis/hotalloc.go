package analysis

import (
	"go/ast"
)

// HotAlloc is the static counterpart of the perf ledger's allocs/op gates:
// it reports allocation sites reachable from //pressio:hotpath-marked
// functions, so a regression that would trip the dynamic gate is visible at
// review time, on every build, without running the ledger.
//
// The hot set is the static call-graph closure of the marked declarations
// (interface dispatch is not followed — marking the daemon data plane must
// not drag every registered test codec into the hot set; codec kernels carry
// their own marks). Within a hot function two shapes are reported:
//
//   - an allocation site syntactically inside a loop (make, new, append that
//     grows an unmanaged slice, slice/map literals, &T{} literals, closures,
//     []byte/string conversion copies);
//   - a call inside a loop to a module-local function whose summary says it
//     allocates (the chain is printed, so "WriteBits allocates via flushWord"
//     is actionable).
//
// Amortized patterns the ledger tolerates are exempt: appends that grow a
// receiver-owned buffer (w.buf = append(w.buf, ...)), appends into a local
// visibly made with a capacity, and error construction (cold path by
// convention).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no allocation in loops reachable from //pressio:hotpath functions (static form of the perf-ledger allocs/op gates)",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	g, sums := pass.Facts.Graph, pass.Facts.Summaries
	if g == nil || sums == nil {
		return
	}
	var roots []*FuncNode
	for _, n := range g.Nodes {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}
	closure := g.ReachableStatic(roots)
	for _, node := range g.Nodes {
		if node.Pkg != pass.Pkg || !closure[node] {
			continue
		}
		sum := sums.Of(node)
		if sum == nil {
			continue
		}
		// Own allocation sites in loops.
		for _, site := range sum.OwnAllocs {
			if site.InLoop {
				pass.Reportf(site.Pos, "%s in a loop on a hot path (%s): hoist or preallocate",
					site.What, node.ShortName())
			}
		}
		// In-loop calls to module-local allocating callees. The callee may be
		// outside the hot closure when only reached dynamically; the call
		// site here is what executes hot.
		forEachLoopCall(node, func(call *ast.CallExpr) {
			for _, e := range g.resolveCall(node.Pkg, call) {
				callee := sums.Of(e.Callee)
				if callee == nil || !callee.Allocates {
					continue
				}
				via := callee.AllocWhat
				if callee.AllocVia != "" {
					via += " via " + callee.AllocVia
				}
				pass.Reportf(call.Pos(), "call to %s allocates (%s) in a loop on a hot path (%s)",
					e.Callee.ShortName(), via, node.ShortName())
				return
			}
		})
	}
}

// forEachLoopCall visits every call expression syntactically inside a
// for/range loop of the node's body (not descending into nested literals —
// those are their own nodes), skipping cold-path error-construction
// subtrees.
func forEachLoopCall(n *FuncNode, visit func(*ast.CallExpr)) {
	var walk func(root ast.Node, loopDepth int)
	walk = func(root ast.Node, loopDepth int) {
		ast.Inspect(root, func(m ast.Node) bool {
			if m == nil || m == root {
				return true
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				if x.Init != nil {
					walk(x.Init, loopDepth)
				}
				if x.Cond != nil {
					walk(x.Cond, loopDepth)
				}
				if x.Post != nil {
					walk(x.Post, loopDepth)
				}
				walk(x.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(x.X, loopDepth)
				walk(x.Body, loopDepth+1)
				return false
			case *ast.CallExpr:
				if isColdPathCall(n.Pkg, x) {
					return false
				}
				if loopDepth > 0 {
					visit(x)
				}
			}
			return true
		})
	}
	walk(n.Body, 0)
}
