package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// BlockingLock flags program points where a mutex is provably held (the
// must-held CFG analysis lockcheck already runs) across an operation that can
// block: a channel operation, I/O, a sync wait, a Compress/Decompress
// dispatch, or a call to a module-local function whose interprocedural
// summary says it blocks. Holding a lock across any of these turns one slow
// peer into a convoy — every other goroutine contending for the mutex waits
// for the channel/socket/codec, which is exactly the latency coupling the
// serving plane's bulkheads exist to prevent.
//
// Lock acquisition itself is deliberately NOT a blocking operation here:
// nested short critical sections (a registry RLock under a component mutex)
// are bounded by code this analyzer also checks, while channel and I/O waits
// are bounded by nothing.
var BlockingLock = &Analyzer{
	Name: "blockinglock",
	Doc:  "no mutex may be held across channel operations, I/O, sync waits, compressor dispatch, or calls that transitively block",
	Run:  runBlockingLock,
}

func runBlockingLock(pass *Pass) {
	g, sums := pass.Facts.Graph, pass.Facts.Summaries
	for _, f := range pass.Pkg.Files {
		for _, unit := range funcUnits(f) {
			cfg := BuildCFG(cfgName(pass.Pkg.Fset, unit), unit.Body)
			problem := newHeldLocksProblem(pass.Pkg, unit)
			res := Solve(cfg, problem)
			// The CFG decomposes selects into per-clause comm nodes, so a
			// comm operation reaches the walk without its parent select. A
			// comm only runs once the runtime picked a ready case: the
			// *select* is the blocking point, and one with a default never
			// blocks at all.
			commHasDefault := map[ast.Node]bool{}
			inspectNoFuncLit(unit.Body, func(m ast.Node) bool {
				sel, ok := m.(*ast.SelectStmt)
				if !ok {
					return true
				}
				hasDefault := false
				for _, c := range sel.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				for _, c := range sel.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						commHasDefault[cc.Comm] = hasDefault
					}
				}
				return true
			})
			reported := map[token.Pos]bool{}
			WalkFacts(cfg, problem, res, func(fact any, n ast.Node) {
				held := fact.(heldFact)
				if len(held) == 0 {
					return
				}
				inspectNoFuncLit(n, func(m ast.Node) bool {
					if hasDefault, isComm := commHasDefault[m]; isComm {
						if !hasDefault && !reported[m.Pos()] {
							reported[m.Pos()] = true
							pass.Reportf(m.Pos(), "%s held across a blocking select; shrink the critical section so the lock is released before blocking",
								heldKeys(held))
						}
						return false // the comm runs only once its case is ready
					}
					pos, why := blockingPoint(pass.Pkg, g, sums, m)
					if why == "" || reported[pos] {
						return true
					}
					reported[pos] = true
					pass.Reportf(pos, "%s held across %s; shrink the critical section so the lock is released before blocking",
						heldKeys(held), why)
					return true
				})
			})
		}
	}
}

// blockingPoint classifies one node as a blocking operation, returning its
// position and a human reason ("" when not blocking).
func blockingPoint(pkg *Package, g *CallGraph, sums *Summaries, m ast.Node) (token.Pos, string) {
	switch x := m.(type) {
	case *ast.SendStmt:
		return x.Pos(), "a channel send"
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return x.Pos(), "a channel receive"
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return 0, "" // a default case makes the select non-blocking
			}
		}
		return x.Pos(), "a blocking select"
	case *ast.RangeStmt:
		if _, isChan := rangeOverChan(pkg, x); isChan {
			return x.Pos(), "a range over a channel"
		}
	case *ast.CallExpr:
		if _, isLock := classifyLockCall(pkg, x); isLock {
			return 0, "" // the lock's own Lock/Unlock
		}
		fn := calleeObject(pkg, x)
		if why, _, ok := stdlibBlocking(fn); ok {
			return x.Pos(), why
		}
		if isDispatchCall(pkg, x) {
			return x.Pos(), "a compressor dispatch"
		}
		if g == nil || sums == nil {
			return 0, ""
		}
		for _, e := range g.resolveCall(pkg, x) {
			if e.Go {
				continue
			}
			if sum := sums.Of(e.Callee); sum != nil && sum.Blocks {
				return x.Pos(), "a call to " + e.Callee.ShortName() + ", which blocks (" + sum.BlockWhy + ")"
			}
		}
	}
	return 0, ""
}

// heldKeys renders the held-lock set for diagnostics ("mu" / "mu and s.mu").
func heldKeys(held heldFact) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	if len(keys) == 1 {
		return keys[0]
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		switch {
		case i == 0:
			out = k
		case i == len(keys)-1:
			out += " and " + k
		default:
			out += ", " + k
		}
	}
	return out
}
