package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// optionMethods are the Options accessors whose first argument is an option
// key. Matching is by method name plus (when type information is available)
// a receiver type named Options, so fixture packages can model the API.
var optionMethods = map[string]bool{
	"Set": true, "SetValue": true, "SetType": true,
	"Get": true, "Has": true, "Delete": true,
	"GetInt32": true, "GetInt64": true, "GetUint64": true, "GetFloat64": true,
	"GetString": true, "GetStrings": true, "GetData": true, "GetUserPtr": true,
}

var (
	// reGenericKey matches exactly one well-known "pressio:*" option key,
	// e.g. "pressio:abs". Prose that merely mentions a key ("pressio: error")
	// contains spaces and does not match.
	reGenericKey = regexp.MustCompile(`^pressio:[a-z0-9_]+$`)
	// rePluginKey matches a plugin-prefixed key like "zfp:rate".
	rePluginKey = regexp.MustCompile(`^[a-z0-9_]+:[a-z0-9_]+$`)
)

// OptionKeys enforces the option-key naming contract: the generic "pressio:*"
// keys must be spelled via the constants internal/core declares (one source
// of truth for the cross-compressor vocabulary), and a plugin-prefixed key
// used with the Options API more than once per package must be hoisted into a
// named constant instead of being duplicated as ad-hoc literals that can
// silently drift apart.
var OptionKeys = &Analyzer{
	Name: "optionkeys",
	Doc:  `"pressio:*" and duplicated plugin-prefixed option keys must be named constants`,
	Run:  runOptionKeys,
}

func runOptionKeys(pass *Pass) {
	constRanges := constDeclRanges(pass.Pkg)
	dups := make(map[string][]token.Pos)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				v, ok := stringLit(n)
				if !ok || !reGenericKey.MatchString(v) {
					return true
				}
				if insideRange(n.Pos(), constRanges) {
					return true
				}
				pass.Reportf(n.Pos(), "ad-hoc %q literal: use the declared core.Key* constant", v)
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !optionMethods[sel.Sel.Name] || len(n.Args) == 0 {
					return true
				}
				v, ok := stringLit(n.Args[0])
				if !ok || !rePluginKey.MatchString(v) {
					return true
				}
				prefix := v[:strings.IndexByte(v, ':')]
				if prefix == "pressio" {
					return true // handled by the generic-key rule above
				}
				if !pass.Facts.Registered[prefix] {
					return true // not a plugin key (e.g. a CSV header name)
				}
				if !receiverIsOptions(pass.Pkg, sel.X) {
					return true
				}
				dups[v] = append(dups[v], n.Args[0].Pos())
			}
			return true
		})
	}
	keys := make([]string, 0, len(dups))
	for v, positions := range dups {
		if len(positions) > 1 {
			keys = append(keys, v)
		}
	}
	sort.Strings(keys)
	for _, v := range keys {
		for _, pos := range dups[v] {
			pass.Reportf(pos, "option key %q is spelled as a literal %d times in this package: hoist it into a named constant",
				v, len(dups[v]))
		}
	}
}

// constDeclRanges collects the source extents of const declarations; key
// literals inside them are the declarations the analyzer demands, not
// violations.
func constDeclRanges(pkg *Package) [][2]token.Pos {
	var ranges [][2]token.Pos
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.CONST {
				ranges = append(ranges, [2]token.Pos{gd.Pos(), gd.End()})
			}
			return true
		})
	}
	return ranges
}

func insideRange(pos token.Pos, ranges [][2]token.Pos) bool {
	for _, r := range ranges {
		if pos >= r[0] && pos <= r[1] {
			return true
		}
	}
	return false
}

// receiverIsOptions reports whether expr statically has the *Options (or
// Options) type. Without type information it conservatively answers true so
// the analyzer still works on partially checked packages.
func receiverIsOptions(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return true
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Options"
}
