package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// jsonReport is the -json output shape: an object (not a bare array) so
// future fields — timing, suppressed counts — can be added compatibly.
type jsonReport struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Count       int          `json:"count"`
}

// analyzersValue makes -analyzers serve double duty: bare -analyzers lists
// the registry and exits, -analyzers=a,b selects a subset (same semantics as
// -run). IsBoolFlag lets the flag package accept the bare form.
type analyzersValue struct {
	csv string
	set bool
}

func (v *analyzersValue) String() string   { return v.csv }
func (v *analyzersValue) IsBoolFlag() bool { return true }
func (v *analyzersValue) Set(s string) error {
	v.set = true
	v.csv = s
	return nil
}

// selectAnalyzers resolves a comma-separated name list against the registry,
// preserving registry order and deduplicating. Unknown names are an error
// that spells out what is available.
func selectAnalyzers(all []*Analyzer, names []string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == name {
				found = true
				break
			}
		}
		if !found {
			known := make([]string, 0, len(all))
			for _, a := range all {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (known analyzers: %s)", name, strings.Join(known, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return all, nil
	}
	var sel []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			sel = append(sel, a)
		}
	}
	return sel, nil
}

// Main is the pressiolint entry point, factored out of cmd/pressiolint so
// tests can drive the CLI in-process. It returns the process exit code:
// 0 clean, 1 diagnostics reported, 2 usage or load failure.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pressiolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	var sel analyzersValue
	fs.Var(&sel, "analyzers", "list analyzers and exit; -analyzers=a,b runs a subset")
	baselinePath := fs.String("baseline", "", "SARIF baseline file; fail only on findings not present in it")
	verbose := fs.Bool("v", false, "print soft type-check warnings to stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pressiolint [-json|-sarif] [-run a,b|-analyzers=a,b] [-baseline file.sarif] [-v] [packages]")
		fmt.Fprintln(stderr, "packages are directories; a trailing /... recurses (default ./...)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := Analyzers()
	if sel.set && (sel.csv == "" || sel.csv == "true" || sel.csv == "false") {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	var names []string
	if sel.set {
		names = append(names, strings.Split(sel.csv, ",")...)
	}
	if *runList != "" {
		names = append(names, strings.Split(*runList, ",")...)
	}
	if len(names) > 0 {
		var err error
		if analyzers, err = selectAnalyzers(analyzers, names); err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "pressiolint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	diags := Run(pkgs, analyzers, root)
	switch {
	case *sarifOut:
		if err := WriteSARIF(stdout, analyzers, diags); err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Diagnostics: diags, Count: len(diags)}); err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
	case *baselinePath != "":
		// Delta-only mode: the table is the output.
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *baselinePath != "" {
		// Baseline mode gates on NEW findings only: known debt stays recorded
		// in the committed SARIF file, while regressions fail the run. The
		// delta table goes to stdout (CI drops it into the job summary)
		// unless stdout already carries a report, in which case stderr.
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
		baseline, err := ReadSARIFBaseline(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
		delta := DiffBaseline(diags, baseline)
		out := stdout
		if *sarifOut || *jsonOut {
			out = stderr
		}
		delta.WriteDeltaTable(out)
		if len(delta.New) > 0 {
			return 1
		}
		return 0
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
