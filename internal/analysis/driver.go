package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// jsonReport is the -json output shape: an object (not a bare array) so
// future fields — timing, suppressed counts — can be added compatibly.
type jsonReport struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Count       int          `json:"count"`
}

// Main is the pressiolint entry point, factored out of cmd/pressiolint so
// tests can drive the CLI in-process. It returns the process exit code:
// 0 clean, 1 diagnostics reported, 2 usage or load failure.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pressiolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	listOnly := fs.Bool("analyzers", false, "list analyzers and exit")
	verbose := fs.Bool("v", false, "print soft type-check warnings to stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pressiolint [-json|-sarif] [-run a,b] [-v] [packages]")
		fmt.Fprintln(stderr, "packages are directories; a trailing /... recurses (default ./...)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := Analyzers()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		byName := make(map[string]*Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "pressiolint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "pressiolint:", err)
		return 2
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "pressiolint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	diags := Run(pkgs, analyzers, root)
	switch {
	case *sarifOut:
		if err := WriteSARIF(stdout, analyzers, diags); err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Diagnostics: diags, Count: len(diags)}); err != nil {
			fmt.Fprintln(stderr, "pressiolint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
