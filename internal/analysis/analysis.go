// Package analysis implements pressiolint, the project's static-analysis
// suite. It is a from-scratch analyzer driver built only on the standard
// library (go/parser, go/ast, go/types — no golang.org/x/tools) that loads
// every package in the module and enforces the plugin invariants the
// LibPressio architecture relies on: declared option-key constants, init-time
// plugin registration, honest pressio:thread_safe declarations, handled
// errors on the compression hot path, and deterministic, embeddable codec
// packages. See docs/STATIC_ANALYSIS.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Diagnostic is one finding, addressable by file position. File is relative
// to the base directory passed to Run (the module root for CLI runs).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the canonical
// "file:line:col [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over every analyzed package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// suppressions.
	Name string
	// Doc is a one-line description shown by pressiolint -analyzers.
	Doc string
	// Run reports findings for pass.Pkg through pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers returns the full suite in stable order: the six syntactic
// checks, the four flow-sensitive ones built on the CFG/dataflow layer, the
// four interprocedural ones built on the call-graph/summary layer, then the
// three taint-driven ones built on the untrusted-input engine (taint.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		OptionKeys, Registration, ThreadSafe, ErrCheck, Forbidden, PanicFree,
		LockCheck, BufAlias, OptionTypes, ErrFlow,
		GoroutineLeak, CtxFlow, BlockingLock, HotAlloc,
		UntrustedAlloc, UntrustedLoop, UntrustedIndex,
	}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts holds module-wide information gathered before analyzers run
	// (currently the registered plugin names).
	Facts *Facts

	base  string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:     relTo(p.base, position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func relTo(base, filename string) string {
	if base == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(base, filename)
	if err != nil {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// Plugin registration kinds, matching the core.Register* entry points.
const (
	kindCompressor = "compressor"
	kindMetric     = "metric"
	kindIO         = "io"
)

// registerFuncs maps the registration entry-point names to the plugin kind
// they register. Matching is by callee name so fixture packages can model
// registration without importing internal/core.
var registerFuncs = map[string]string{
	"RegisterCompressor": kindCompressor,
	"RegisterMetric":     kindMetric,
	"RegisterIO":         kindIO,
}

// RegSite is one Register* call observed anywhere in the analyzed set.
type RegSite struct {
	// Kind is "compressor", "metric" or "io".
	Kind string
	// Name is the registered plugin name when it is a string literal, ""
	// when computed dynamically.
	Name string
	// PkgPath is the import path of the registering package.
	PkgPath string
	// Pos locates the call.
	Pos token.Pos
	// Func is the enclosing top-level function name ("init" for conforming
	// registrations, "" for registrations in var initializers).
	Func string
	// FactoryType is the plugin implementation type name when the factory
	// argument is a func literal returning &T{...}; "" when unresolvable.
	FactoryType string
}

// Facts is the module-wide context shared by all analyzers.
type Facts struct {
	// Sites lists every Register* call seen across the analyzed packages.
	Sites []RegSite
	// Registered is the set of plugin names registered with a literal name,
	// across all kinds. The optionkeys analyzer treats these as the known
	// option-key prefixes.
	Registered map[string]bool
	// Graph is the module-local call graph over the analyzed set (static
	// dispatch + interface-method resolution), SCC-condensed.
	Graph *CallGraph
	// Summaries holds the per-function interprocedural summaries computed
	// bottom-up over Graph.
	Summaries *Summaries
	// Taint is the untrusted-input taint computation over Graph, consumed by
	// the untrustedalloc/untrustedloop/untrustedindex analyzers.
	Taint *TaintInfo
}

// gatherFacts scans every package for plugin registrations before the
// analyzers run, so per-package passes can consult module-wide state.
func gatherFacts(pkgs []*Package) *Facts {
	facts := &Facts{Registered: make(map[string]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, enclosing := "", ""
				var body ast.Node = decl
				if fd, ok := decl.(*ast.FuncDecl); ok {
					fn = fd.Name.Name
					if fd.Recv == nil {
						enclosing = fn
					} else {
						enclosing = "method " + fn
					}
					if fd.Body == nil {
						continue
					}
					body = fd.Body
				}
				ast.Inspect(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					kind, ok := registerFuncs[calleeName(call)]
					if !ok {
						return true
					}
					site := RegSite{
						Kind:    kind,
						PkgPath: pkg.Path,
						Pos:     call.Pos(),
						Func:    enclosing,
					}
					if len(call.Args) > 0 {
						if v, ok := stringLit(call.Args[0]); ok {
							site.Name = v
							facts.Registered[v] = true
						}
					}
					if len(call.Args) > 1 {
						site.FactoryType = factoryTypeName(call.Args[1])
					}
					facts.Sites = append(facts.Sites, site)
					return true
				})
			}
		}
	}
	return facts
}

// calleeName extracts the bare called name from pkg.F(...), recv.F(...) or
// F(...) call forms.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// stringLit unquotes e when it is a string literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	v, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return v, true
}

// factoryTypeName resolves the implementation type of a registration factory
// written as func() T { return &impl{...} } (the dominant idiom); "" when the
// factory delegates to a constructor or closure the analyzer cannot see
// through.
func factoryTypeName(e ast.Expr) string {
	fl, ok := e.(*ast.FuncLit)
	if !ok || fl.Body == nil || len(fl.Body.List) != 1 {
		return ""
	}
	ret, ok := fl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	expr := ret.Results[0]
	if un, ok := expr.(*ast.UnaryExpr); ok && un.Op == token.AND {
		expr = un.X
	}
	cl, ok := expr.(*ast.CompositeLit)
	if !ok {
		return ""
	}
	if id, ok := cl.Type.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// Run executes the given analyzers over the packages, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
// base is the directory diagnostics are relativized against. Packages are
// analyzed concurrently (bounded by GOMAXPROCS); the module-wide fact
// structures are built once up front and are read-only during the fan-out,
// and the final position sort makes the output order deterministic.
func Run(pkgs []*Package, analyzers []*Analyzer, base string) []Diagnostic {
	return runWith(pkgs, analyzers, base, runtime.GOMAXPROCS(0))
}

// runWith is Run with an explicit worker count, so tests and benchmarks can
// pin sequential-vs-parallel behavior.
func runWith(pkgs []*Package, analyzers []*Analyzer, base string, workers int) []Diagnostic {
	facts := gatherFacts(pkgs)
	facts.Graph = BuildCallGraph(pkgs)
	facts.Summaries = ComputeSummaries(facts.Graph)
	facts.Taint = ComputeTaint(facts.Graph, facts.Summaries)
	var diags []Diagnostic
	var sups []suppression
	for _, pkg := range pkgs {
		s, malformed := collectSuppressions(pkg, base)
		sups = append(sups, s...)
		diags = append(diags, malformed...)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	// Fan out per package: each worker owns a disjoint diagnostic slice, so
	// Pass.Reportf never races; facts/Graph/Summaries/Taint are read-only.
	perPkg := make([][]Diagnostic, len(pkgs))
	if workers <= 1 {
		for i, pkg := range pkgs {
			for _, a := range analyzers {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, Facts: facts, base: base, diags: &perPkg[i]})
			}
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					for _, a := range analyzers {
						a.Run(&Pass{Analyzer: a, Pkg: pkgs[i], Facts: facts, base: base, diags: &perPkg[i]})
					}
				}
			}()
		}
		for i := range pkgs {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	diags = filterSuppressed(diags, sups, newScopeIndex(pkgs, base))
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string // analyzer name or "all"
	file     string // relative to the run base, like Diagnostic.File
	line     int
	col      int
}

// collectSuppressions parses //lint:ignore <analyzer> <reason> comments. A
// suppression silences matching diagnostics on its own line or on the line
// directly below (comment-above-statement style). Ignore directives missing
// the analyzer or the reason are themselves reported under the "lint"
// pseudo-analyzer so suppressions stay auditable.
func collectSuppressions(pkg *Package, base string) ([]suppression, []Diagnostic) {
	var sups []suppression
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				file := relTo(base, position.Filename)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						File:     file,
						Line:     position.Line,
						Col:      position.Column,
						Analyzer: "lint",
						Message:  `malformed ignore directive: want "//lint:ignore <analyzer> <reason>"`,
					})
					continue
				}
				sups = append(sups, suppression{
					analyzer: fields[0],
					file:     file,
					line:     position.Line,
					col:      position.Column,
				})
			}
		}
	}
	return sups, malformed
}

// scopeIndex resolves a (file, line, col) position to the innermost
// enclosing function body — declared function or function literal — so
// suppressions match by scope, not just by line. A //lint:ignore inside a
// function literal passed to go/defer used to match by line alone and could
// mis-suppress a finding on the enclosing statement sharing that line.
type scopeIndex struct {
	files map[string][]scopeExtent
}

// scopeExtent is one function-body extent; parent indexes the enclosing
// extent in the same file (-1 for file scope).
type scopeExtent struct {
	parent             int
	startLine, startCol int
	endLine, endCol     int
}

func newScopeIndex(pkgs []*Package, base string) *scopeIndex {
	idx := &scopeIndex{files: make(map[string][]scopeExtent)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			pos := pkg.Fset.Position(f.Pos())
			file := relTo(base, pos.Filename)
			var extents []scopeExtent
			var stack []int // extent indexes of the enclosing bodies
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					return true
				}
				var body *ast.BlockStmt
				switch x := n.(type) {
				case *ast.FuncDecl:
					body = x.Body
				case *ast.FuncLit:
					body = x.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				start := pkg.Fset.Position(body.Pos())
				end := pkg.Fset.Position(body.End())
				parent := -1
				// Pop extents that no longer enclose this body.
				for len(stack) > 0 {
					top := extents[stack[len(stack)-1]]
					if beforeEq(top.startLine, top.startCol, start.Line, start.Column) &&
						beforeEq(end.Line, end.Column, top.endLine, top.endCol) {
						parent = stack[len(stack)-1]
						break
					}
					stack = stack[:len(stack)-1]
				}
				extents = append(extents, scopeExtent{
					parent:    parent,
					startLine: start.Line, startCol: start.Column,
					endLine: end.Line, endCol: end.Column,
				})
				stack = append(stack, len(extents)-1)
				return true
			})
			idx.files[file] = append(idx.files[file], extents...)
		}
	}
	return idx
}

// beforeEq reports (l1,c1) <= (l2,c2) in source order.
func beforeEq(l1, c1, l2, c2 int) bool {
	return l1 < l2 || (l1 == l2 && c1 <= c2)
}

// scopeOf returns the index of the innermost extent containing the position
// (-1 for file scope).
func (idx *scopeIndex) scopeOf(file string, line, col int) int {
	best := -1
	for i, e := range idx.files[file] {
		if !beforeEq(e.startLine, e.startCol, line, col) || !beforeEq(line, col, e.endLine, e.endCol) {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		b := idx.files[file][best]
		if beforeEq(b.startLine, b.startCol, e.startLine, e.startCol) {
			best = i // later-starting contained extent is innermore
		}
	}
	return best
}

// ancestorOf reports whether extent a encloses (or is) extent b in file.
func (idx *scopeIndex) ancestorOf(file string, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == -1 {
			return false
		}
		b = idx.files[file][b].parent
	}
}

// filterSuppressed drops diagnostics covered by a suppression. Matching is
// keyed by (line, analyzer, innermost enclosing function): a same-line
// directive only covers findings in its own scope, and a comment-above
// directive covers findings in its scope or any nested one — so a
// //lint:ignore inside `go func() { ... }` cannot silence the enclosing
// statement's finding on the shared line.
func filterSuppressed(diags []Diagnostic, sups []suppression, scopes *scopeIndex) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	index := make(map[key][]suppression)
	for _, s := range sups {
		index[key{s.file, s.line}] = append(index[key{s.file, s.line}], s)
	}
	matches := func(d Diagnostic, line int) bool {
		for _, s := range index[key{d.File, line}] {
			if s.analyzer != d.Analyzer && s.analyzer != "all" {
				continue
			}
			supScope := scopes.scopeOf(d.File, s.line, s.col)
			diagScope := scopes.scopeOf(d.File, d.Line, d.Col)
			if line == d.Line {
				// Trailing same-line directive: exact scope only.
				if supScope == diagScope {
					return true
				}
				continue
			}
			// Comment-above directive: its scope or any scope nested in it
			// (covers a comment above a closure suppressing inside it).
			if scopes.ancestorOf(d.File, supScope, diagScope) {
				return true
			}
		}
		return false
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "lint" && (matches(d, d.Line) || matches(d, d.Line-1)) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
