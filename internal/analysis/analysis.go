// Package analysis implements pressiolint, the project's static-analysis
// suite. It is a from-scratch analyzer driver built only on the standard
// library (go/parser, go/ast, go/types — no golang.org/x/tools) that loads
// every package in the module and enforces the plugin invariants the
// LibPressio architecture relies on: declared option-key constants, init-time
// plugin registration, honest pressio:thread_safe declarations, handled
// errors on the compression hot path, and deterministic, embeddable codec
// packages. See docs/STATIC_ANALYSIS.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding, addressable by file position. File is relative
// to the base directory passed to Run (the module root for CLI runs).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the canonical
// "file:line:col [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over every analyzed package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// suppressions.
	Name string
	// Doc is a one-line description shown by pressiolint -analyzers.
	Doc string
	// Run reports findings for pass.Pkg through pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers returns the full suite in stable order: the six syntactic
// checks, the four flow-sensitive ones built on the CFG/dataflow layer, then
// the four interprocedural ones built on the call-graph/summary layer.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		OptionKeys, Registration, ThreadSafe, ErrCheck, Forbidden, PanicFree,
		LockCheck, BufAlias, OptionTypes, ErrFlow,
		GoroutineLeak, CtxFlow, BlockingLock, HotAlloc,
	}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts holds module-wide information gathered before analyzers run
	// (currently the registered plugin names).
	Facts *Facts

	base  string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		File:     relTo(p.base, position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func relTo(base, filename string) string {
	if base == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(base, filename)
	if err != nil {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// Plugin registration kinds, matching the core.Register* entry points.
const (
	kindCompressor = "compressor"
	kindMetric     = "metric"
	kindIO         = "io"
)

// registerFuncs maps the registration entry-point names to the plugin kind
// they register. Matching is by callee name so fixture packages can model
// registration without importing internal/core.
var registerFuncs = map[string]string{
	"RegisterCompressor": kindCompressor,
	"RegisterMetric":     kindMetric,
	"RegisterIO":         kindIO,
}

// RegSite is one Register* call observed anywhere in the analyzed set.
type RegSite struct {
	// Kind is "compressor", "metric" or "io".
	Kind string
	// Name is the registered plugin name when it is a string literal, ""
	// when computed dynamically.
	Name string
	// PkgPath is the import path of the registering package.
	PkgPath string
	// Pos locates the call.
	Pos token.Pos
	// Func is the enclosing top-level function name ("init" for conforming
	// registrations, "" for registrations in var initializers).
	Func string
	// FactoryType is the plugin implementation type name when the factory
	// argument is a func literal returning &T{...}; "" when unresolvable.
	FactoryType string
}

// Facts is the module-wide context shared by all analyzers.
type Facts struct {
	// Sites lists every Register* call seen across the analyzed packages.
	Sites []RegSite
	// Registered is the set of plugin names registered with a literal name,
	// across all kinds. The optionkeys analyzer treats these as the known
	// option-key prefixes.
	Registered map[string]bool
	// Graph is the module-local call graph over the analyzed set (static
	// dispatch + interface-method resolution), SCC-condensed.
	Graph *CallGraph
	// Summaries holds the per-function interprocedural summaries computed
	// bottom-up over Graph.
	Summaries *Summaries
}

// gatherFacts scans every package for plugin registrations before the
// analyzers run, so per-package passes can consult module-wide state.
func gatherFacts(pkgs []*Package) *Facts {
	facts := &Facts{Registered: make(map[string]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, enclosing := "", ""
				var body ast.Node = decl
				if fd, ok := decl.(*ast.FuncDecl); ok {
					fn = fd.Name.Name
					if fd.Recv == nil {
						enclosing = fn
					} else {
						enclosing = "method " + fn
					}
					if fd.Body == nil {
						continue
					}
					body = fd.Body
				}
				ast.Inspect(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					kind, ok := registerFuncs[calleeName(call)]
					if !ok {
						return true
					}
					site := RegSite{
						Kind:    kind,
						PkgPath: pkg.Path,
						Pos:     call.Pos(),
						Func:    enclosing,
					}
					if len(call.Args) > 0 {
						if v, ok := stringLit(call.Args[0]); ok {
							site.Name = v
							facts.Registered[v] = true
						}
					}
					if len(call.Args) > 1 {
						site.FactoryType = factoryTypeName(call.Args[1])
					}
					facts.Sites = append(facts.Sites, site)
					return true
				})
			}
		}
	}
	return facts
}

// calleeName extracts the bare called name from pkg.F(...), recv.F(...) or
// F(...) call forms.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// stringLit unquotes e when it is a string literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	v, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return v, true
}

// factoryTypeName resolves the implementation type of a registration factory
// written as func() T { return &impl{...} } (the dominant idiom); "" when the
// factory delegates to a constructor or closure the analyzer cannot see
// through.
func factoryTypeName(e ast.Expr) string {
	fl, ok := e.(*ast.FuncLit)
	if !ok || fl.Body == nil || len(fl.Body.List) != 1 {
		return ""
	}
	ret, ok := fl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return ""
	}
	expr := ret.Results[0]
	if un, ok := expr.(*ast.UnaryExpr); ok && un.Op == token.AND {
		expr = un.X
	}
	cl, ok := expr.(*ast.CompositeLit)
	if !ok {
		return ""
	}
	if id, ok := cl.Type.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// Run executes the given analyzers over the packages, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
// base is the directory diagnostics are relativized against.
func Run(pkgs []*Package, analyzers []*Analyzer, base string) []Diagnostic {
	facts := gatherFacts(pkgs)
	facts.Graph = BuildCallGraph(pkgs)
	facts.Summaries = ComputeSummaries(facts.Graph)
	var diags []Diagnostic
	var sups []suppression
	for _, pkg := range pkgs {
		s, malformed := collectSuppressions(pkg, base)
		sups = append(sups, s...)
		diags = append(diags, malformed...)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Facts: facts, base: base, diags: &diags})
		}
	}
	diags = filterSuppressed(diags, sups)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string // analyzer name or "all"
	file     string // relative to the run base, like Diagnostic.File
	line     int
}

// collectSuppressions parses //lint:ignore <analyzer> <reason> comments. A
// suppression silences matching diagnostics on its own line or on the line
// directly below (comment-above-statement style). Ignore directives missing
// the analyzer or the reason are themselves reported under the "lint"
// pseudo-analyzer so suppressions stay auditable.
func collectSuppressions(pkg *Package, base string) ([]suppression, []Diagnostic) {
	var sups []suppression
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				file := relTo(base, position.Filename)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						File:     file,
						Line:     position.Line,
						Col:      position.Column,
						Analyzer: "lint",
						Message:  `malformed ignore directive: want "//lint:ignore <analyzer> <reason>"`,
					})
					continue
				}
				sups = append(sups, suppression{
					analyzer: fields[0],
					file:     file,
					line:     position.Line,
				})
			}
		}
	}
	return sups, malformed
}

// filterSuppressed drops diagnostics covered by a suppression.
func filterSuppressed(diags []Diagnostic, sups []suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	index := make(map[key][]string)
	for _, s := range sups {
		index[key{s.file, s.line}] = append(index[key{s.file, s.line}], s.analyzer)
	}
	matches := func(d Diagnostic, line int) bool {
		for _, name := range index[key{d.File, line}] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
		return false
	}
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "lint" && (matches(d, d.Line) || matches(d, d.Line-1)) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
