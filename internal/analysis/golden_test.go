package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// goldenCases pairs each fixture package under testdata/src with the single
// analyzer it exercises. Each analyzer has one positive case and one
// suppressed case; malformed //lint:ignore directives surface through the
// "lint" pseudo-analyzer regardless of the analyzer under test.
var goldenCases = []struct {
	name     string
	analyzer string
}{
	{"optionkeys_bad", "optionkeys"},
	{"optionkeys_suppressed", "optionkeys"},
	{"registration_bad", "registration"},
	{"registration_suppressed", "registration"},
	{"threadsafe_bad", "threadsafe"},
	{"threadsafe_suppressed", "threadsafe"},
	{"errcheck_bad", "errcheck"},
	{"errcheck_suppressed", "errcheck"},
	{"forbidden_bad", "forbidden"},
	{"forbidden_suppressed", "forbidden"},
	{"panicfree_bad", "panicfree"},
	{"panicfree_suppressed", "panicfree"},
	{"lockcheck_bad", "lockcheck"},
	{"lockcheck_suppressed", "lockcheck"},
	{"bufalias_bad", "bufalias"},
	{"bufalias_suppressed", "bufalias"},
	{"optiontypes_bad", "optiontypes"},
	{"optiontypes_suppressed", "optiontypes"},
	{"errflow_bad", "errflow"},
	{"errflow_suppressed", "errflow"},
	{"goroutineleak_bad", "goroutineleak"},
	{"goroutineleak_suppressed", "goroutineleak"},
	{"ctxflow_bad", "ctxflow"},
	{"ctxflow_suppressed", "ctxflow"},
	{"blockinglock_bad", "blockinglock"},
	{"blockinglock_suppressed", "blockinglock"},
	{"hotalloc_bad", "hotalloc"},
	{"hotalloc_suppressed", "hotalloc"},
	{"untrustedalloc_bad", "untrustedalloc"},
	{"untrustedalloc_suppressed", "untrustedalloc"},
	{"untrustedloop_bad", "untrustedloop"},
	{"untrustedloop_suppressed", "untrustedloop"},
	{"untrustedindex_bad", "untrustedindex"},
	{"untrustedindex_suppressed", "untrustedindex"},
	// The three PR-4 fuzz fixes, reverted: each regression fixture is the
	// pre-fix decoder shape and must stay flagged by its analyzer.
	{"regress_fpzip_bad", "untrustedalloc"},
	{"regress_zfp_bad", "untrustedloop"},
	{"regress_delta_bad", "untrustedindex"},
	// Sanitizer idioms: the accepted five produce an empty golden across all
	// three taint analyzers; the rejected shapes must each report.
	{"taintsan_accepted", "untrustedalloc,untrustedloop,untrustedindex"},
	{"taintsan_rejected_bad", "untrustedalloc"},
	// Suppression scope: a directive inside a go/defer literal must not
	// silence the enclosing statement's finding on the shared line.
	{"lintscope_bad", "errcheck"},
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("unknown analyzer %q", name)
	return nil
}

// loadCase loads every package beneath testdata/src/<name> with the shared
// loader and returns the diagnostics of the one analyzer the case targets,
// relativized to the case directory so goldens are location-independent.
func runCase(t *testing.T, loader *Loader, name, analyzer string) string {
	t.Helper()
	caseDir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand(caseDir, []string{"./..."})
	if err != nil {
		t.Fatalf("expand %s: %v", name, err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	var sel []*Analyzer
	for _, name := range strings.Split(analyzer, ",") {
		sel = append(sel, analyzerByName(t, name))
	}
	diags := Run(pkgs, sel, caseDir)
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestGolden(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got := runCase(t, loader, tc.name, tc.analyzer)
			goldenPath := filepath.Join("testdata", "golden", tc.name+".txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/analysis -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

// TestGoldenPositiveCasesReport guards against a silently broken analyzer:
// every _bad case must produce at least one diagnostic of its own analyzer,
// and every _suppressed case must produce none (a malformed-directive "lint"
// diagnostic is allowed).
func TestGoldenPositiveCasesReport(t *testing.T) {
	for _, tc := range goldenCases {
		goldenPath := filepath.Join("testdata", "golden", tc.name+".txt")
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run go test ./internal/analysis -update): %v", err)
		}
		tag := "[" + tc.analyzer + "]"
		switch {
		case strings.HasSuffix(tc.name, "_bad"):
			if !strings.Contains(string(data), tag) {
				t.Errorf("%s: golden has no %s diagnostics; the analyzer found nothing in its positive fixture", tc.name, tag)
			}
		case strings.HasSuffix(tc.name, "_suppressed"):
			if strings.Contains(string(data), tag) {
				t.Errorf("%s: golden still contains %s diagnostics; suppression is not working", tc.name, tag)
			}
		}
	}
}
