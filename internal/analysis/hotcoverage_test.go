package analysis

import (
	"path/filepath"
	"testing"
)

// TestHotClosureCoversPerfLedgerStages pins hotalloc's hot set to the
// perf-ledger surface: the five codec stages the ledger gates (huffman,
// rangecoder, bitstream, sz, zfp) and the daemon data plane must all carry
// //pressio:hotpath marks that the call graph turns into hot roots. If a
// refactor drops a mark or renames an entry point, this fails before the
// analyzer silently stops watching that stage.
func TestHotClosureCoversPerfLedgerStages(t *testing.T) {
	if testing.Short() {
		t.Skip("loads several module packages with full type information")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range []string{
		filepath.Join("internal", "huffman"),
		filepath.Join("internal", "rangecoder"),
		filepath.Join("internal", "bitstream"),
		filepath.Join("internal", "sz"),
		filepath.Join("internal", "zfp"),
		filepath.Join("internal", "daemon"),
	} {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	g := BuildCallGraph(pkgs)

	var roots []*FuncNode
	for _, n := range g.Nodes {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		t.Fatal("no //pressio:hotpath marks found in the perf-ledger packages")
	}
	closure := g.ReachableStatic(roots)
	covered := map[string]bool{}
	for n := range closure {
		covered[n.Name] = true
	}

	want := []string{
		// entropy coding stages
		"huffman.Encode",
		"huffman.Decode",
		"rangecoder.(*Encoder).EncodeBit",
		"rangecoder.(*Decoder).DecodeBit",
		"bitstream.(*Writer).WriteBits",
		"bitstream.(*Reader).ReadBits",
		// error-bounded codec stages
		"sz.CompressSlice",
		"sz.DecompressSlice",
		"zfp.CompressSlice",
		"zfp.DecompressSlice",
		// daemon data plane (both /compress and /decompress route here)
		"daemon.(*Daemon).handleData",
	}
	for _, name := range want {
		if !covered[name] {
			t.Errorf("perf-ledger stage %s is not in the hot closure; its allocations are invisible to hotalloc", name)
		}
	}
}
