package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"pressio/internal/core"
)

// ThreadSafe checks that a package whose plugins declare
// pressio:thread_safe of "serialized" or better does not mutate package-level
// state without synchronization. "serialized" promises that distinct
// instances may run concurrently, and "multiple" that a single instance may —
// so any bare write to a package-level variable from plugin code is a data
// race waiting for the `many` meta-compressor or sz_omp to schedule it. The
// check is a static complement to the -race stress tests: an assignment to a
// package-level variable inside a function that never takes a lock is flagged.
var ThreadSafe = &Analyzer{
	Name: "threadsafe",
	Doc:  "packages declaring pressio:thread_safe >= serialized must guard package-level writes",
	Run:  runThreadSafe,
}

func runThreadSafe(pass *Pass) {
	level := declaredSafety(pass.Pkg)
	if level == "" {
		return
	}
	if pass.Pkg.Info == nil || pass.Pkg.Types == nil {
		return // needs object resolution to identify package-level variables
	}
	scope := pass.Pkg.Types.Scope()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // single-threaded by the runtime's init contract
			}
			locks := lockPositions(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var targets []ast.Expr
				switch st := n.(type) {
				case *ast.AssignStmt:
					targets = st.Lhs
				case *ast.IncDecStmt:
					targets = []ast.Expr{st.X}
				default:
					return true
				}
				for _, lhs := range targets {
					id := rootIdent(lhs)
					if id == nil {
						continue
					}
					obj := pass.Pkg.Info.ObjectOf(id)
					v, ok := obj.(*types.Var)
					if !ok || v.Parent() != scope {
						continue
					}
					if guarded(locks, lhs.Pos()) {
						continue
					}
					pass.Reportf(lhs.Pos(),
						"package declares thread_safe=%s but %s writes package-level %s without holding a lock",
						level, fd.Name.Name, id.Name)
				}
				return true
			})
		}
	}
}

// declaredSafety scans for thread-safety declarations: a
// StandardConfiguration(core.ThreadSafetyMultiple|Serialized, ...) call or an
// explicit SetValue(core.KeyThreadSafe, "multiple"|"serialized"). It returns
// the strongest declared level at or above "serialized", or "".
func declaredSafety(pkg *Package) string {
	level := ""
	upgrade := func(l string) {
		if l == "multiple" || (l == "serialized" && level == "") {
			level = l
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "StandardConfiguration":
				if len(call.Args) == 0 {
					return true
				}
				ast.Inspect(call.Args[0], func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						switch id.Name {
						case "ThreadSafetyMultiple":
							upgrade("multiple")
						case "ThreadSafetySerialized":
							upgrade("serialized")
						}
					}
					return true
				})
			case "SetValue":
				if len(call.Args) != 2 {
					return true
				}
				if !isThreadSafeKey(call.Args[0]) {
					return true
				}
				if v, ok := stringLit(call.Args[1]); ok && (v == "multiple" || v == "serialized") {
					upgrade(v)
				}
			}
			return true
		})
	}
	return level
}

// isThreadSafeKey matches the pressio:thread_safe key expressed either as the
// core.KeyThreadSafe constant or (in packages that cannot import core) a
// literal with its value.
func isThreadSafeKey(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "KeyThreadSafe"
	case *ast.SelectorExpr:
		return e.Sel.Name == "KeyThreadSafe"
	case *ast.BasicLit:
		v, ok := stringLit(e)
		return ok && v == core.KeyThreadSafe
	}
	return false
}

// lockPositions collects the positions of .Lock()/.RLock()/.Do() calls in a
// function body. A write later in the source than any of them is considered
// guarded — a deliberately coarse rule: the analyzer flags lock-free writers,
// not lock-ordering bugs, which remain the -race tests' job.
func lockPositions(body *ast.BlockStmt) []token.Pos {
	var locks []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "Do":
				locks = append(locks, call.Pos())
			}
		}
		return true
	})
	return locks
}

func guarded(locks []token.Pos, pos token.Pos) bool {
	for _, l := range locks {
		if l < pos {
			return true
		}
	}
	return false
}

// rootIdent walks to the base identifier of an assignable expression:
// x, x.f, x[i], (*x).f all root at x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
