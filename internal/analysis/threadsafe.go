package analysis

import (
	"go/ast"
	"go/types"

	"pressio/internal/core"
)

// ThreadSafe checks that a package whose plugins declare
// pressio:thread_safe of "serialized" or better does not mutate package-level
// state without synchronization. "serialized" promises that distinct
// instances may run concurrently, and "multiple" that a single instance may —
// so any unguarded write to a package-level variable from plugin code is a
// data race waiting for the `many` meta-compressor or sz_omp to schedule it.
//
// The guard test is flow-sensitive: the function's CFG is solved with the
// must-held lock analysis (lockcheck.go), and a write is accepted only when
// at least one lock is held on EVERY path reaching it. The earlier syntactic
// version accepted any write textually below a Lock() call — which blessed
// writes after the Unlock and writes on branches that skip the Lock; those
// now flag. The check remains a static complement to the -race stress tests.
var ThreadSafe = &Analyzer{
	Name: "threadsafe",
	Doc:  "packages declaring pressio:thread_safe >= serialized must hold a lock on every path to a package-level write",
	Run:  runThreadSafe,
}

func runThreadSafe(pass *Pass) {
	level := declaredSafety(pass.Pkg)
	if level == "" {
		return
	}
	if pass.Pkg.Info == nil || pass.Pkg.Types == nil {
		return // needs object resolution to identify package-level variables
	}
	scope := pass.Pkg.Types.Scope()
	for _, f := range pass.Pkg.Files {
		for _, unit := range funcUnits(f) {
			if unit.Decl != nil && unit.Decl.Recv == nil && unit.Decl.Name.Name == "init" {
				continue // single-threaded by the runtime's init contract
			}
			cfg := BuildCFG(cfgName(pass.Pkg.Fset, unit), unit.Body)
			problem := newHeldLocksProblem(pass.Pkg, unit)
			res := Solve(cfg, problem)
			WalkFacts(cfg, problem, res, func(fact any, n ast.Node) {
				held := fact.(heldFact)
				var targets []ast.Expr
				switch st := n.(type) {
				case *ast.AssignStmt:
					targets = st.Lhs
				case *ast.IncDecStmt:
					targets = []ast.Expr{st.X}
				default:
					return
				}
				if len(held) > 0 {
					return // some lock is held on every path to this write
				}
				for _, lhs := range targets {
					id := rootIdent(lhs)
					if id == nil {
						continue
					}
					obj := pass.Pkg.Info.ObjectOf(id)
					v, ok := obj.(*types.Var)
					if !ok || v.Parent() != scope {
						continue
					}
					pass.Reportf(lhs.Pos(),
						"package declares thread_safe=%s but %s writes package-level %s without holding a lock on every path",
						level, cfg.Name, id.Name)
				}
			})
		}
	}
}

// declaredSafety scans for thread-safety declarations: a
// StandardConfiguration(core.ThreadSafetyMultiple|Serialized, ...) call or an
// explicit SetValue(core.KeyThreadSafe, "multiple"|"serialized"). It returns
// the strongest declared level at or above "serialized", or "".
func declaredSafety(pkg *Package) string {
	level := ""
	upgrade := func(l string) {
		if l == "multiple" || (l == "serialized" && level == "") {
			level = l
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "StandardConfiguration":
				if len(call.Args) == 0 {
					return true
				}
				ast.Inspect(call.Args[0], func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						switch id.Name {
						case "ThreadSafetyMultiple":
							upgrade("multiple")
						case "ThreadSafetySerialized":
							upgrade("serialized")
						}
					}
					return true
				})
			case "SetValue":
				if len(call.Args) != 2 {
					return true
				}
				if !isThreadSafeKey(call.Args[0]) {
					return true
				}
				if v, ok := stringLit(call.Args[1]); ok && (v == "multiple" || v == "serialized") {
					upgrade(v)
				}
			}
			return true
		})
	}
	return level
}

// isThreadSafeKey matches the pressio:thread_safe key expressed either as the
// core.KeyThreadSafe constant or (in packages that cannot import core) a
// literal with its value.
func isThreadSafeKey(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "KeyThreadSafe"
	case *ast.SelectorExpr:
		return e.Sel.Name == "KeyThreadSafe"
	case *ast.BasicLit:
		v, ok := stringLit(e)
		return ok && v == core.KeyThreadSafe
	}
	return false
}

// rootIdent walks to the base identifier of an assignable expression:
// x, x.f, x[i], (*x).f all root at x.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
