package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadTaintCase loads one fixture tree and runs the full taint pipeline over
// it, returning the info plus a name->node lookup.
func loadTaintCase(t *testing.T, name string) (*TaintInfo, map[string]*FuncNode) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	caseDir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand(caseDir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	graph := BuildCallGraph(pkgs)
	sums := ComputeSummaries(graph)
	ti := ComputeTaint(graph, sums)
	byName := make(map[string]*FuncNode)
	for _, n := range graph.Nodes {
		byName[n.Name] = n
	}
	return ti, byName
}

// TestTaintOutPropagatesParamMask: a helper that computes its result purely
// from a parameter must summarize that dependency, so callers can compose
// taint across the call.
func TestTaintOutPropagatesParamMask(t *testing.T) {
	ti, byName := loadTaintCase(t, "untrustedalloc_bad")
	n := byName["untrustedalloc_bad.parseCount"]
	if n == nil {
		t.Fatal("parseCount node missing")
	}
	tn := ti.nodes[n]
	if tn == nil || len(tn.out) != 1 {
		t.Fatalf("parseCount: want 1 result mask, got %+v", tn)
	}
	if tn.out[0]&taintParamBit(0) == 0 {
		t.Errorf("parseCount result mask %b does not carry param 0", tn.out[0])
	}
}

// TestDecodeEntryRootsByteSliceParams: Decompress-family entry points root
// their []byte parameters, and the rooting flows through call arguments to
// helpers that never see the stream themselves.
func TestDecodeEntryRootsByteSliceParams(t *testing.T) {
	ti, byName := loadTaintCase(t, "untrustedalloc_bad")
	entry := ti.nodes[byName["untrustedalloc_bad.Decompress"]]
	if entry == nil || entry.rooted&taintParamBit(0) == 0 {
		t.Fatalf("Decompress param 0 not rooted: %+v", entry)
	}
	helper := ti.nodes[byName["untrustedalloc_bad.grow"]]
	if helper == nil || helper.rooted&taintParamBit(1) == 0 {
		t.Fatalf("grow param n not rooted through the call chain: %+v", helper)
	}
	if !strings.Contains(helper.rootWhy, "DecompressImpl") {
		t.Errorf("grow rootWhy = %q, want the DecompressImpl call chain", helper.rootWhy)
	}
}

// TestTaintInRecordsSinkRefs: the summary's TaintIn facts must name the
// parameter and sink kind, so findings can print the missing check at the
// right place.
func TestTaintInRecordsSinkRefs(t *testing.T) {
	ti, byName := loadTaintCase(t, "untrustedalloc_bad")
	n := byName["untrustedalloc_bad.grow"]
	tn := ti.nodes[n]
	if tn == nil || len(tn.sinks) == 0 {
		t.Fatalf("grow: no sinks recorded")
	}
	found := false
	for _, s := range tn.sinks {
		if s.Kind == TaintAlloc && s.Mask&taintParamBit(1) != 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("grow: no TaintAlloc sink over param n; sinks %+v", tn.sinks)
	}
}

// TestSanitizersKillSinkMasks: the suppressed fixture repeats the bad
// shapes behind recognized guards, so no sink there may be runtime-tainted.
func TestSanitizersKillSinkMasks(t *testing.T) {
	for _, name := range []string{"untrustedalloc_suppressed", "untrustedloop_suppressed", "untrustedindex_suppressed", "taintsan_accepted"} {
		ti, _ := loadTaintCase(t, name)
		for _, n := range ti.Graph.Nodes {
			tn := ti.nodes[n]
			if tn == nil {
				continue
			}
			if name == "untrustedalloc_suppressed" && strings.HasSuffix(n.Name, "DecompressSlice") {
				// Waived by //lint:ignore at the driver layer: the engine
				// still sees the sink as tainted, and must.
				continue
			}
			for _, s := range tn.sinks {
				if ti.runtimeTainted(s.Mask, tn) {
					t.Errorf("%s: %s: sink %q (%v) still runtime-tainted", name, n.Name, s.Expr, s.Kind)
				}
			}
		}
	}
}

// TestInterfaceDispatchStaysNarrow: a method selected through an embedded
// interface (io.ReadCloser's Close comes from io.Closer) must resolve
// against the receiver expression's own interface, not the embedded one —
// otherwise every Close in the module becomes a callee and taint leaks into
// unrelated packages (the stream-writer contagion this fixes).
func TestInterfaceDispatchStaysNarrow(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, path := range []string{"internal/lossless", "clients/pressio/writer"} {
		pkg, err := loader.LoadDir(filepath.Join(root, path))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	graph := BuildCallGraph(pkgs)
	for _, n := range graph.Nodes {
		if !strings.HasSuffix(n.Name, "lossless.Inflate") {
			continue
		}
		for _, e := range n.Calls {
			if strings.Contains(e.Callee.Name, "(*Writer).Close") {
				t.Errorf("Inflate's r.Close() resolved to %s: embedded-interface dispatch is too wide", e.Callee.Name)
			}
		}
	}
}
