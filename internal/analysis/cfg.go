package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file builds intraprocedural control-flow graphs over go/ast function
// bodies. The CFG is the substrate the dataflow solver (dataflow.go) runs
// on: each basic block holds the statements and guard expressions executed
// in order, and edges model every way control can leave them — structured
// flow (if/for/range/switch/select), unstructured flow (goto, labeled
// break/continue, fallthrough), and function exit (return and falling off
// the end both reach the synthetic Exit block). Function literals are NOT
// inlined: a FuncLit inside a statement stays an opaque expression here and
// is analyzed as its own function unit (see funcUnits in dataflow.go),
// because its body runs at another time (or never).

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Name labels the function for dumps and diagnostics ("CompressImpl",
	// "func literal at plugin.go:42", ...).
	Name string
	// Blocks lists every block; Blocks[0] is the entry and the Exit block
	// is always last. Order is deterministic construction order.
	Blocks []*Block
	// Entry is where execution starts (== Blocks[0]).
	Entry *Block
	// Exit is the synthetic sink every return statement and the fall-off-end
	// path flow into. It holds no statements. Deferred calls conceptually run
	// here; analyses that care consult the DeferStmt nodes seen in flow order.
	Exit *Block
}

// Block is one basic block: statements executed strictly in order with no
// internal control transfer. Guard expressions (if/for conditions, switch
// tags, case expression lists) appear as nodes of the block that evaluates
// them.
type Block struct {
	Index int
	// Kind is a human-readable role label ("entry", "if.then", "for.body",
	// "select.default", "label.retry", "exit", ...) used by dumps.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// addEdge links b -> s, keeping Preds in sync.
func addEdge(b, s *Block) {
	for _, old := range b.Succs {
		if old == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// cfgBuilder carries the state of one CFG construction.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// frames is the stack of enclosing breakable/continuable constructs.
	frames []cfgFrame
	// labels maps label names to their target blocks; goto to a forward
	// label creates the block eagerly and the LabeledStmt adopts it.
	labels map[string]*Block
	// fallthroughTo is the next case-clause block while a switch clause
	// body is being built.
	fallthroughTo *Block
}

// cfgFrame is one enclosing loop/switch/select on the builder stack.
type cfgFrame struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select frames
}

// BuildCFG constructs the CFG of a function body. name labels the graph;
// body may be nil (declared-only functions), yielding a trivial CFG.
func BuildCFG(name string, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{Name: name, Exit: &Block{Kind: "exit"}},
		labels: make(map[string]*Block),
	}
	b.cur = b.newBlock("entry")
	b.cfg.Entry = b.cur
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body reaches Exit.
	addEdge(b.cur, b.cfg.Exit)
	b.prune()
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// dead starts a fresh unreachable block for statements after a terminator.
func (b *cfgBuilder) dead() {
	b.cur = b.newBlock("unreachable")
}

// prune drops unreachable empty blocks (artifacts of terminators with no
// trailing dead code) and renumbers. Blocks holding dead statements are
// kept so dumps show them.
func (b *cfgBuilder) prune() {
	kept := b.cfg.Blocks[:0]
	for _, blk := range b.cfg.Blocks {
		if blk != b.cfg.Entry && len(blk.Preds) == 0 && len(blk.Nodes) == 0 && len(blk.Succs) == 0 {
			continue
		}
		blk.Index = len(kept)
		kept = append(kept, blk)
	}
	b.cfg.Blocks = kept
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds one statement. pendingLabel is the label attached to the
// statement by an enclosing LabeledStmt ("" for unlabeled), consumed by the
// loop/switch/select constructs so labeled break/continue resolve.
func (b *cfgBuilder) stmt(s ast.Stmt, pendingLabel string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st, pendingLabel)
	case *ast.RangeStmt:
		b.rangeStmt(st, pendingLabel)
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		if st.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, st.Tag)
		}
		b.caseClauses(st.Body, pendingLabel, "switch", true)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.cur.Nodes = append(b.cur.Nodes, st.Assign)
		b.caseClauses(st.Body, pendingLabel, "typeswitch", false)
	case *ast.SelectStmt:
		b.selectStmt(st, pendingLabel)
	case *ast.LabeledStmt:
		target := b.labelBlock(st.Label.Name)
		addEdge(b.cur, target)
		b.cur = target
		b.stmt(st.Stmt, st.Label.Name)
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, st)
		addEdge(b.cur, b.cfg.Exit)
		b.dead()
	case *ast.BranchStmt:
		b.branchStmt(st)
	case *ast.EmptyStmt:
		// nothing
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// DeferStmt: straight-line nodes. DeferStmt stays a node so
		// transfer functions observe registration in flow order.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// labelBlock returns (creating on first use, e.g. by a forward goto) the
// block a label names.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.stmt(st.Init, "")
	}
	b.cur.Nodes = append(b.cur.Nodes, st.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	addEdge(cond, then)
	b.cur = then
	b.stmtList(st.Body.List)
	thenEnd := b.cur
	done := b.newBlock("if.done")
	if st.Else != nil {
		els := b.newBlock("if.else")
		addEdge(cond, els)
		b.cur = els
		b.stmt(st.Else, "")
		addEdge(b.cur, done)
	} else {
		addEdge(cond, done)
	}
	addEdge(thenEnd, done)
	b.cur = done
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.stmt(st.Init, "")
	}
	head := b.newBlock("for.head")
	addEdge(b.cur, head)
	if st.Cond != nil {
		head.Nodes = append(head.Nodes, st.Cond)
	}
	body := b.newBlock("for.body")
	addEdge(head, body)
	done := b.newBlock("for.done")
	if st.Cond != nil {
		addEdge(head, done)
	}
	cont := head
	var post *Block
	if st.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.frames = append(b.frames, cfgFrame{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmtList(st.Body.List)
	addEdge(b.cur, cont)
	b.frames = b.frames[:len(b.frames)-1]
	if post != nil {
		b.cur = post
		b.stmt(st.Post, "")
		addEdge(b.cur, head)
	}
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	addEdge(b.cur, head)
	// Model the per-iteration binding as an assignment node so reaching
	// definitions and taint see Key/Value defined from the ranged operand.
	// Child expressions are the original AST nodes, so positions and type
	// information resolve normally.
	var lhs []ast.Expr
	if st.Key != nil {
		lhs = append(lhs, st.Key)
	}
	if st.Value != nil {
		lhs = append(lhs, st.Value)
	}
	if len(lhs) > 0 && st.Tok != token.ILLEGAL {
		head.Nodes = append(head.Nodes, &ast.AssignStmt{Lhs: lhs, Tok: st.Tok, TokPos: st.For, Rhs: []ast.Expr{st.X}})
	} else {
		head.Nodes = append(head.Nodes, st.X)
	}
	body := b.newBlock("range.body")
	addEdge(head, body)
	done := b.newBlock("range.done")
	addEdge(head, done)
	b.frames = append(b.frames, cfgFrame{label: label, brk: done, cont: head})
	b.cur = body
	b.stmtList(st.Body.List)
	addEdge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// caseClauses builds the shared switch/type-switch clause structure.
// allowFallthrough wires `fallthrough` to the next clause body.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, label, kindPrefix string, allowFallthrough bool) {
	dispatch := b.cur
	done := b.newBlock(kindPrefix + ".done")
	var clauses []*ast.CaseClause
	for _, s := range body.List {
		clauses = append(clauses, s.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := kindPrefix + ".case"
		if cc.List == nil {
			kind = kindPrefix + ".default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		addEdge(dispatch, blocks[i])
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
	}
	if !hasDefault {
		addEdge(dispatch, done)
	}
	b.frames = append(b.frames, cfgFrame{label: label, brk: done})
	savedFT := b.fallthroughTo
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.fallthroughTo = nil
		if allowFallthrough && i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		}
		b.stmtList(cc.Body)
		addEdge(b.cur, done)
	}
	b.fallthroughTo = savedFT
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, label string) {
	dispatch := b.cur
	done := b.newBlock("select.done")
	b.frames = append(b.frames, cfgFrame{label: label, brk: done})
	for _, s := range st.Body.List {
		cc := s.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		addEdge(dispatch, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		b.stmtList(cc.Body)
		addEdge(b.cur, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	// A select with no clauses blocks forever; control never continues.
	if len(st.Body.List) == 0 {
		b.dead()
		return
	}
	b.cur = done
}

func (b *cfgBuilder) branchStmt(st *ast.BranchStmt) {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				addEdge(b.cur, f.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (label == "" || f.label == label) {
				addEdge(b.cur, f.cont)
				break
			}
		}
	case token.GOTO:
		if label != "" {
			addEdge(b.cur, b.labelBlock(label))
		}
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			addEdge(b.cur, b.fallthroughTo)
		}
	}
	b.dead()
}

// Dump renders the CFG as stable, human-reviewable text — the golden-file
// format of the CFG construction tests.
func (c *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", c.Name)
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "  b%d (%s):", blk.Index, blk.Kind)
		if len(blk.Nodes) == 0 {
			sb.WriteString(" <empty>")
		}
		sb.WriteString("\n")
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "    %s\n", renderNode(fset, n))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString("    ->")
			for _, s := range blk.Succs {
				if s == c.Exit {
					sb.WriteString(" exit")
				} else {
					fmt.Fprintf(&sb, " b%d", s.Index)
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// renderNode prints a node as a single line of source-like text.
func renderNode(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&sb, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}
