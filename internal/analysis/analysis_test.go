package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/sz/plugin.go", Line: 12, Col: 3, Analyzer: "errcheck", Message: "boom"}
	want := "internal/sz/plugin.go:12:3 [errcheck] boom"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAnalyzersStable(t *testing.T) {
	want := []string{
		"optionkeys", "registration", "threadsafe", "errcheck", "forbidden",
		"panicfree", "lockcheck", "bufalias", "optiontypes", "errflow",
		"goroutineleak", "ctxflow", "blockinglock", "hotalloc",
		"untrustedalloc", "untrustedloop", "untrustedindex",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

// TestExpandSkipsTestdata checks that wildcard expansion prunes testdata (so
// module-wide CLI runs never load the deliberately broken fixtures) while the
// fixtures stay addressable when the pattern points inside testdata.
func TestExpandSkipsTestdata(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand(root, []string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if strings.Contains(filepath.ToSlash(dir), "/testdata/") {
			t.Errorf("wildcard expansion included fixture directory %s", dir)
		}
	}

	abs, err := filepath.Abs(filepath.Join("testdata", "src", "errcheck_bad"))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := loader.Expand(root, []string{abs})
	if err != nil {
		t.Fatalf("explicit fixture pattern: %v", err)
	}
	if len(explicit) != 1 {
		t.Errorf("explicit fixture pattern matched %d dirs, want 1", len(explicit))
	}
}

// TestGatherFacts loads a fixture and checks the module-wide facts pass picks
// up literal registration names — the optionkeys analyzer's prefix source.
func TestGatherFacts(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("internal", "analysis", "testdata", "src", "optionkeys_bad"))
	if err != nil {
		t.Fatal(err)
	}
	facts := gatherFacts([]*Package{pkg})
	for _, prefix := range []string{"demo", "breaker"} {
		if !facts.Registered[prefix] {
			t.Errorf("facts missed the literal registration of %q; got %v", prefix, facts.Registered)
		}
	}
	if len(facts.Sites) != 2 {
		t.Fatalf("got %d registration sites, want 2", len(facts.Sites))
	}
	for _, site := range facts.Sites {
		if site.Kind != kindCompressor || site.Func != "init" || site.FactoryType != "plugin" {
			t.Errorf("site = %+v, want compressor registered from init with factory type plugin", site)
		}
	}
}

// TestLoadDirModuleRootRelative checks LoadDir resolves relative paths
// against the module root and that fixtures typecheck without soft errors.
func TestLoadDirModuleRootRelative(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("internal/analysis/testdata/src/errcheck_bad")
	if err != nil {
		t.Fatal(err)
	}
	if want := loader.ModulePath + "/internal/analysis/testdata/src/errcheck_bad"; pkg.Path != want {
		t.Errorf("pkg.Path = %q, want %q", pkg.Path, want)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Errorf("fixture should typecheck cleanly, got %v", pkg.TypeErrors)
	}
}
