package analysis

import (
	"go/ast"
)

// CtxFlow audits context plumbing on request paths. The daemon's overload
// story (admission deadlines, pool-wait cancellation, request timeouts) only
// works if the request context actually reaches the code doing the waiting;
// every place the chain is broken is a request that cannot be cancelled.
//
// Roots are the daemon's HTTP handlers — any function with a *http.Request
// parameter — plus functions marked //pressio:requestpath (how fixtures and
// non-HTTP entry points opt in). Within the full call-graph closure of the
// roots (dynamic dispatch included: a codec invoked by a handler runs on the
// request path), three breaks are reported:
//
//   - context.Background()/context.TODO() minted mid-path, severing the
//     caller's deadline and cancellation;
//   - a context parameter that is accepted but never used (cancellation
//     dead-ends here);
//   - a context stored into a struct field (contexts are call-scoped; a
//     stored one outlives its request and cancels arbitrary later work).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "request-path code must propagate the request context: no Background/TODO, no ignored ctx params, no ctx stored in structs",
	Run:  runCtxFlow,
}

// requestPathDirective marks non-HTTP request-path roots for ctxflow.
const requestPathDirective = "pressio:requestpath"

func runCtxFlow(pass *Pass) {
	g, sums := pass.Facts.Graph, pass.Facts.Summaries
	if g == nil || sums == nil {
		return
	}
	var roots []*FuncNode
	for _, n := range g.Nodes {
		if isRequestRoot(n) {
			roots = append(roots, n)
		}
	}
	closure := g.Reachable(roots)
	for _, node := range g.Nodes {
		if node.Pkg != pass.Pkg || !closure[node] {
			continue
		}
		// Break 1: minting a fresh root context mid-request.
		inspectNoFuncLit(node.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if ok && isContextCtorCall(node.Pkg, call) {
				pass.Reportf(call.Pos(),
					"%s runs on a request path but replaces the request context with a fresh root context; thread the caller's ctx through instead",
					node.ShortName())
			}
			return true
		})
		// Break 2: a context parameter nothing reads.
		if sum := sums.Of(node); sum != nil && sum.HasCtxParam && !sum.UsesCtx {
			pass.Reportf(node.Pos(),
				"%s takes a context on a request path but never uses it: cancellation and deadlines dead-end here",
				node.ShortName())
		}
		// Break 3: a context stored into a struct field.
		inspectNoFuncLit(node.Body, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if exprIsContext(node.Pkg, x.Rhs[i]) {
						pass.Reportf(sel.Pos(),
							"%s stores a request context in a struct field; contexts are call-scoped — pass it as a parameter",
							node.ShortName())
					}
				}
			case *ast.KeyValueExpr:
				if _, isIdent := x.Key.(*ast.Ident); isIdent && exprIsContext(node.Pkg, x.Value) {
					if insideCompositeLit(node.Body, x) {
						pass.Reportf(x.Pos(),
							"%s stores a request context in a struct literal field; contexts are call-scoped — pass it as a parameter",
							node.ShortName())
					}
				}
			}
			return true
		})
	}
}

// isRequestRoot recognizes the request-path entry points: HTTP handlers
// (some parameter is *<pkg>.Request — syntactic, so handler shims in any
// package qualify) and //pressio:requestpath-marked declarations.
func isRequestRoot(n *FuncNode) bool {
	if n.Decl == nil {
		return false
	}
	if hasDirective(n.Decl, requestPathDirective) {
		return true
	}
	if n.Decl.Type.Params == nil {
		return false
	}
	for _, f := range n.Decl.Type.Params.List {
		star, ok := f.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		if sel, ok := star.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Request" {
			return true
		}
	}
	return false
}

// exprIsContext reports whether the expression's static type is
// context.Context.
func exprIsContext(pkg *Package, e ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isContextType(tv.Type)
}

// insideCompositeLit confirms the key/value pair belongs to a composite
// literal (not, say, a map index — KeyValueExpr only appears in composite
// literals, so this is a structural sanity check).
func insideCompositeLit(body *ast.BlockStmt, kv *ast.KeyValueExpr) bool {
	found := false
	inspectNoFuncLit(body, func(m ast.Node) bool {
		cl, ok := m.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range cl.Elts {
			if el == kv {
				found = true
			}
		}
		return true
	})
	return found
}
