package analysis

// UntrustedLoop flags the unbounded-spin shape the PR-4 fuzzing found in
// zfp's fixed-rate padding loop: a loop whose bound is a value derived from
// the untrusted input stream with no dominating cap, or a loop-carried step
// that is stream-derived and can be zero (never progressing). Either way an
// adversarial header turns a decode into a CPU hostage.
var UntrustedLoop = &Analyzer{
	Name: "untrustedloop",
	Doc:  "loop bound or step controlled by untrusted input without a cap (unbounded spin)",
	Run: func(pass *Pass) {
		pass.Facts.Taint.reportKind(pass, TaintLoop)
	},
}
