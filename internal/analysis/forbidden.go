package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// codecPackages names the codec hot-path packages held to the determinism
// and embeddability bar: identical inputs must produce identical streams
// (the paper's reproducibility claim), and the codecs must be usable as a
// library inside HDF5 filters and MPI jobs without writing to stdout or
// killing the process.
var codecPackages = map[string]bool{
	"sz": true, "zfp": true, "fpzip": true, "mgard": true,
	"tthresh": true, "bitgroom": true, "huffman": true, "rangecoder": true,
}

// Forbidden flags nondeterminism and embeddability hazards in codec
// packages: math/rand imports (seeded or not, randomness does not belong in
// a codec), time.Now (wall-clock–dependent output or control flow),
// fmt.Print* (stdout chatter from library code), and panic (codecs must
// return errors; a corrupt stream must never kill the host process).
var Forbidden = &Analyzer{
	Name: "forbidden",
	Doc:  "no math/rand, time.Now, fmt.Print* or panic in codec hot-path packages",
	Run:  runForbidden,
}

func runForbidden(pass *Pass) {
	if !isCodecPackage(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, ok := stringLit(imp.Path)
			if !ok {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"codec package imports %s: compression must be deterministic, derive decisions from the input",
					path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					pass.Reportf(call.Pos(),
						"panic in codec hot path: return an error so corrupt streams cannot kill an embedding process")
				}
			case *ast.SelectorExpr:
				pkgPath, ok := importedPackage(pass.Pkg, f, fun)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "time" && fun.Sel.Name == "Now":
					pass.Reportf(call.Pos(),
						"time.Now in codec hot path: output and control flow must not depend on the wall clock (timing belongs to the time metric)")
				case pkgPath == "fmt" && (fun.Sel.Name == "Print" || fun.Sel.Name == "Printf" || fun.Sel.Name == "Println"):
					pass.Reportf(call.Pos(),
						"fmt.%s in codec hot path: library code must not write to stdout (use the printer metric or return data)",
						fun.Sel.Name)
				}
			}
			return true
		})
	}
}

// isCodecPackage reports whether any segment of the import path names a
// codec package (so fixtures under testdata/src/.../sz are covered too).
func isCodecPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if codecPackages[seg] {
			return true
		}
	}
	return false
}

// importedPackage resolves sel's qualifier to an imported package path,
// preferring type information (immune to shadowing) and falling back to the
// file's import table.
func importedPackage(pkg *Package, f *ast.File, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pkg.Info != nil {
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			pn, ok := obj.(*types.PkgName)
			if !ok {
				return "", false
			}
			return pn.Imported().Path(), true
		}
	}
	for _, imp := range f.Imports {
		path, ok := stringLit(imp.Path)
		if !ok {
			continue
		}
		local := path[strings.LastIndexByte(path, '/')+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == id.Name {
			return path, true
		}
	}
	return "", false
}
