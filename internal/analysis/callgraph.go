package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file grows the engine from intra- to interprocedural: a module-local
// call graph over every function body in the analyzed package set, with
// static dispatch resolved through go/types and dynamic (interface) dispatch
// resolved conservatively against the concrete module-local types that
// implement the interface — in particular the registered compressor plugins,
// whose CompressImpl/DecompressImpl methods are reached through the
// core.Compressor wrapper's interface call. Strongly connected components
// (Tarjan) give the bottom-up order the summary computation (summary.go)
// needs; the per-function summaries are then consumed by the worklist solver
// exactly like the intraprocedural facts were.

// FuncNode is one function body in the call graph: a declared function or
// method, or a function literal.
type FuncNode struct {
	// Name labels diagnostics: "pkg.Func", "pkg.(*T).Method", or
	// "pkg.Func$lit" for literals.
	Name string
	// Pkg is the package the body lives in.
	Pkg *Package
	// Decl is the declaration (nil for literals not inside a FuncDecl).
	Decl *ast.FuncDecl
	// Lit is non-nil for function-literal nodes.
	Lit *ast.FuncLit
	// Body is the analyzed block (never nil; bodiless declarations get no
	// node).
	Body *ast.BlockStmt
	// Obj is the types object of a declared function (nil for literals).
	Obj *types.Func
	// Calls lists the resolved outgoing edges in deterministic order.
	Calls []*CallEdge
	// Hot marks a `//pressio:hotpath` directive on the declaration.
	Hot bool

	// scc bookkeeping (Tarjan), and the final component id: nodes in the
	// same SCC share an ID, and IDs are a reverse topological order —
	// callees never have a larger ID than their callers outside the SCC.
	index, lowlink int
	onStack        bool
	SCC            int
}

// Pos locates the node's body for diagnostics.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// CallEdge is one resolved call site: Site is the CallExpr (or GoStmt/
// DeferStmt call), Callee the target node. Dynamic records that the edge
// came from interface-method resolution rather than static dispatch.
type CallEdge struct {
	Site    *ast.CallExpr
	Callee  *FuncNode
	Dynamic bool
	// Go marks the call as the operand of a go statement: the callee runs on
	// another goroutine, so blocking does not propagate to the spawner.
	Go bool
}

// CallGraph is the module-local call graph over one analyzed package set.
type CallGraph struct {
	// Nodes lists every function body in deterministic (package, position)
	// order.
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// methodsByName indexes module-local concrete methods for interface
	// resolution: name -> candidate nodes.
	methodsByName map[string][]*FuncNode
}

// NodeOf resolves the node of a declared function object (nil when the body
// is outside the analyzed set — the standard library, bodiless decls).
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// NodeOfLit resolves the node of a function literal.
func (g *CallGraph) NodeOfLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// hotDirective is the comment marking a function as a measured hot path; the
// hotalloc analyzer treats the call-graph closure of marked functions as the
// static counterpart of the perf ledger's allocs/op gates.
const hotDirective = "pressio:hotpath"

// hasHotDirective reports whether a declaration carries //pressio:hotpath in
// its doc comment.
func hasHotDirective(fd *ast.FuncDecl) bool {
	return hasDirective(fd, hotDirective)
}

// hasDirective reports whether a declaration's doc comment carries the given
// //-directive (exact word, optionally followed by explanatory text).
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// BuildCallGraph constructs the call graph over the packages and computes
// SCCs. The graph is deliberately module-local: calls into the standard
// library or other dependencies have no node and are instead classified by
// the curated tables in summary.go.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj:         make(map[*types.Func]*FuncNode),
		byLit:         make(map[*ast.FuncLit]*FuncNode),
		methodsByName: make(map[string][]*FuncNode),
	}
	// Pass 1: create nodes for every body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					node := &FuncNode{
						Name: nodeName(pkg, fd),
						Pkg:  pkg,
						Decl: fd,
						Body: fd.Body,
						Hot:  hasHotDirective(fd),
					}
					if pkg.Info != nil {
						if obj, k := pkg.Info.Defs[fd.Name].(*types.Func); k {
							node.Obj = obj
							g.byObj[obj] = node
						}
					}
					g.Nodes = append(g.Nodes, node)
					if fd.Recv != nil {
						g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], node)
					}
				}
				// Function literals anywhere in the declaration (including
				// var initializers) get their own nodes.
				parent := fd
				if !ok {
					parent = nil
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					lit, isLit := n.(*ast.FuncLit)
					if !isLit || lit.Body == nil {
						return true
					}
					name := pkg.Path + ".$lit"
					if parent != nil {
						name = nodeName(pkg, parent) + "$lit"
					}
					node := &FuncNode{Name: name, Pkg: pkg, Lit: lit, Body: lit.Body}
					g.byLit[lit] = node
					g.Nodes = append(g.Nodes, node)
					return true
				})
			}
		}
	}
	// Pass 2: resolve edges.
	for _, node := range g.Nodes {
		g.resolveEdges(node)
	}
	g.computeSCCs()
	return g
}

// nodeName renders "pkg.Func" / "pkg.(*T).Method" labels.
func nodeName(pkg *Package, fd *ast.FuncDecl) string {
	short := pkg.Path
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return short + "." + fd.Name.Name
	}
	recv := ""
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := unwrapRecvIdent(t.X); ok {
			recv = "(*" + id + ")"
		}
	default:
		if id, ok := unwrapRecvIdent(t); ok {
			recv = id
		}
	}
	if recv == "" {
		return short + "." + fd.Name.Name
	}
	return fmt.Sprintf("%s.%s.%s", short, recv, fd.Name.Name)
}

// unwrapRecvIdent digs the receiver type name out of generic receivers like
// T[E] as well as plain identifiers.
func unwrapRecvIdent(e ast.Expr) (string, bool) {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.IndexExpr:
		return unwrapRecvIdent(t.X)
	case *ast.IndexListExpr:
		return unwrapRecvIdent(t.X)
	}
	return "", false
}

// resolveEdges walks one body (not descending into nested literals — those
// are their own nodes) and resolves every call site.
func (g *CallGraph) resolveEdges(node *FuncNode) {
	goCalls := map[*ast.CallExpr]bool{}
	inspectNoFuncLit(node.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goCalls[gs.Call] = true
		}
		return true
	})
	inspectNoFuncLit(node.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, edge := range g.resolveCall(node.Pkg, call) {
			edge.Go = goCalls[call]
			node.Calls = append(node.Calls, edge)
		}
		return true
	})
}

// resolveCall maps one call expression to its possible module-local targets.
// Unresolvable calls (stdlib, function values, unexported indirection) yield
// no edges; summary.go classifies them by name instead.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr) []*CallEdge {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.FuncLit:
		// Immediately invoked literal: the body runs here.
		if node := g.byLit[f]; node != nil {
			return []*CallEdge{{Site: call, Callee: node}}
		}
	case *ast.Ident:
		return g.edgesForObject(pkg, call, pkg.objectOf(f))
	case *ast.SelectorExpr:
		obj := pkg.objectOf(f.Sel)
		if fn, ok := obj.(*types.Func); ok {
			if recvIsInterface(fn) {
				return g.interfaceEdges(pkg, call, fn)
			}
		}
		return g.edgesForObject(pkg, call, obj)
	case *ast.IndexExpr:
		// Generic instantiation F[T](...).
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return g.edgesForObject(pkg, call, pkg.objectOf(id))
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return g.edgesForObject(pkg, call, pkg.objectOf(id))
		}
	}
	return nil
}

// objectOf is a nil-safe Info.ObjectOf.
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// edgesForObject resolves a call through a named object: a direct function
// edge when the object is a declared function with a module-local body, or a
// function-value edge when the object is a variable whose type is a
// signature (no target — opaque).
func (g *CallGraph) edgesForObject(pkg *Package, call *ast.CallExpr, obj types.Object) []*CallEdge {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	// Generic functions: the Uses object of an instantiated call is the
	// instance; map back to the generic origin, which owns the body.
	if origin := fn.Origin(); origin != nil {
		fn = origin
	}
	if node := g.byObj[fn]; node != nil {
		return []*CallEdge{{Site: call, Callee: node}}
	}
	return nil
}

// recvIsInterface reports whether a method's receiver is an interface type.
func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// interfaceEdges resolves dynamic dispatch: a call to interface method M
// links to every module-local concrete method named M whose receiver type
// implements the interface. This is how the graph sees through the
// compressor registry — core.Compressor.Compress dispatches to the
// CompressImpl of whichever registered plugin was constructed, so every
// registered implementation is a possible callee.
func (g *CallGraph) interfaceEdges(pkg *Package, call *ast.CallExpr, ifaceMethod *types.Func) []*CallEdge {
	sig := ifaceMethod.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	// The method object of a selection through an embedded interface belongs
	// to the interface that declares it: io.ReadCloser's Close is io.Closer's
	// method, and matching candidates against bare io.Closer would link every
	// Close in the module. The static type of the receiver expression is the
	// narrowest interface the callee must satisfy, so prefer it when present.
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && pkg.Info != nil {
		if tv, known := pkg.Info.Types[sel.X]; known && tv.Type != nil {
			if narrow, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				iface = narrow
			}
		}
	}
	var edges []*CallEdge
	for _, cand := range g.methodsByName[ifaceMethod.Name()] {
		if cand.Obj == nil {
			continue
		}
		csig, ok := cand.Obj.Type().(*types.Signature)
		if !ok || csig.Recv() == nil {
			continue
		}
		recv := csig.Recv().Type()
		if types.Implements(recv, iface) || implementsPtr(recv, iface) {
			edges = append(edges, &CallEdge{Site: call, Callee: cand, Dynamic: true})
		}
	}
	return edges
}

// implementsPtr checks *T against the interface when T itself does not
// implement it (pointer-receiver method sets).
func implementsPtr(t types.Type, iface *types.Interface) bool {
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false
	}
	return types.Implements(types.NewPointer(t), iface)
}

// GoEntry resolves the function body a `go` statement starts, when it is
// statically visible: a literal (`go func(){...}()`), a declared function or
// method (`go d.run()`), or a method/function value bound to a local with a
// single visible definition (`f := d.run; go f()`). Returns nil for opaque
// entries.
func (g *CallGraph) GoEntry(pkg *Package, goStmt *ast.GoStmt) *FuncNode {
	return g.callTarget(pkg, goStmt.Call, make(map[*ast.Ident]bool))
}

// callTarget is GoEntry's resolver, reused for plain calls; seen guards
// against cyclic local rebinding.
func (g *CallGraph) callTarget(pkg *Package, call *ast.CallExpr, seen map[*ast.Ident]bool) *FuncNode {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		return g.byLit[lit]
	}
	if edges := g.resolveCall(pkg, call); len(edges) == 1 && !edges[0].Dynamic {
		return edges[0].Callee
	}
	// Method value bound to a local: follow a unique visible binding like
	// `f := d.run` within the same function body.
	id, ok := fun.(*ast.Ident)
	if !ok || seen[id] || pkg.Info == nil {
		return nil
	}
	seen[id] = true
	obj := pkg.objectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	var target *FuncNode
	unique := true
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, lhs := range asg.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || pkg.objectOf(lid) != v {
					continue
				}
				node := g.valueNode(pkg, asg.Rhs[i])
				if node == nil || (target != nil && target != node) {
					unique = false
					return false
				}
				target = node
			}
			return true
		})
	}
	if !unique {
		return nil
	}
	return target
}

// valueNode resolves a function-valued expression (method value, function
// name, literal) to its node.
func (g *CallGraph) valueNode(pkg *Package, e ast.Expr) *FuncNode {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.byLit[x]
	case *ast.Ident:
		if fn, ok := pkg.objectOf(x).(*types.Func); ok {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.objectOf(x.Sel).(*types.Func); ok && !recvIsInterface(fn) {
			return g.byObj[fn]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// SCCs (Tarjan) — the bottom-up order for summary computation.

func (g *CallGraph) computeSCCs() {
	index := 1
	var stack []*FuncNode
	nextSCC := 0
	var strongconnect func(v *FuncNode)
	strongconnect = func(v *FuncNode) {
		v.index, v.lowlink = index, index
		index++
		stack = append(stack, v)
		v.onStack = true
		for _, e := range v.Calls {
			w := e.Callee
			if w.index == 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				w.SCC = nextSCC
				if w == v {
					break
				}
			}
			nextSCC++
		}
	}
	for _, v := range g.Nodes {
		if v.index == 0 {
			strongconnect(v)
		}
	}
}

// BottomUp returns the nodes ordered callees-first: within the Tarjan
// numbering, a callee's SCC id is never larger than its caller's (outside
// the shared SCC), so ascending SCC order visits leaves before roots.
func (g *CallGraph) BottomUp() []*FuncNode {
	ordered := make([]*FuncNode, len(g.Nodes))
	copy(ordered, g.Nodes)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].SCC < ordered[j].SCC })
	return ordered
}

// Reachable computes the forward closure from the given roots, including the
// roots themselves, following every edge (static, dynamic, go).
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	return g.reachable(roots, true)
}

// ReachableStatic is Reachable restricted to statically dispatched edges:
// interface calls are not followed. Hot-path analyses use this so marking the
// daemon data plane does not smear every registered plugin (including the
// deliberately slow test codecs) into the daemon's hot set.
func (g *CallGraph) ReachableStatic(roots []*FuncNode) map[*FuncNode]bool {
	return g.reachable(roots, false)
}

func (g *CallGraph) reachable(roots []*FuncNode, dynamic bool) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var walk func(n *FuncNode)
	walk = func(n *FuncNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.Calls {
			if e.Dynamic && !dynamic {
				continue
			}
			walk(e.Callee)
		}
		// A literal nested in a node's body is not necessarily called at the
		// nesting site, but for reachability-style analyses (hot paths,
		// request paths) a closure built on a hot path is executed on it in
		// every in-tree idiom (defer/immediate/worker body), so include it.
		inspectNoFuncLit(n.Body, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				walk(g.byLit[lit])
			}
			return true
		})
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}
