package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package. Test files
// (*_test.go) are excluded: the invariants pressiolint enforces apply to
// shipping code, and tests legitimately use raw key literals, discarded
// errors and panics.
type Package struct {
	// Path is the import path, e.g. "pressio/internal/sz".
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset positions every file in the loader's shared FileSet.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package; non-nil even when checking was
	// incomplete (see TypeErrors).
	Types *types.Package
	// Info carries the use/def/type resolution analyzers consult. Analyzers
	// must tolerate missing entries: type checking is best-effort.
	Info *types.Info
	// TypeErrors collects soft type-check problems. Analyzers still run;
	// the driver surfaces these only in verbose mode.
	TypeErrors []error
}

// Loader loads module packages with full type information using only the
// standard library: module-internal imports resolve against the module
// directory tree, and everything else (the standard library) is type-checked
// from GOROOT source via go/importer's "source" compiler. No x/tools.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package // keyed by absolute directory
	loading map[string]bool     // cycle guard, keyed by directory
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// The standard-library importer is process-global: type-checking GOROOT from
// source dominates whole-module lint time, and the results are identical for
// every Loader in the process (GOROOT does not change underneath us). Sharing
// one importer means the stdlib is checked at most once per process instead
// of once per Loader — every CLI invocation, golden-test case and benchmark
// iteration after the first reuses the cache. The stdlib packages carry
// positions in their own private FileSet; that is fine because diagnostics
// only ever point into module sources, which live in the Loader's FileSet.
var (
	stdImporterOnce sync.Once
	stdImporter     types.Importer
)

// sharedStdImporter returns the lazily-built global GOROOT source importer.
func sharedStdImporter() types.Importer {
	stdImporterOnce.Do(func() {
		stdImporter = &lockedImporter{
			imp: importer.ForCompiler(token.NewFileSet(), "source", nil),
		}
	})
	return stdImporter
}

// lockedImporter serializes access to the wrapped importer: the go/importer
// source implementation mutates its package cache on Import and is not safe
// for concurrent use, but the global importer may be reached from parallel
// tests.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// lint:ignore is required: serializing the importer IS the point — the
	// wrapped cache is unsafe for concurrent use, so the I/O must happen
	// inside the critical section.
	//lint:ignore blockinglock the mutex exists to serialize this Import; the I/O cannot leave the critical section
	return l.imp.Import(path)
}

// NewLoader builds a loader rooted at the module containing moduleRoot. All
// loaders share the process-global standard-library importer.
func NewLoader(moduleRoot string) (*Loader, error) {
	return newLoaderWithStd(moduleRoot, sharedStdImporter())
}

// newLoaderWithStd is NewLoader with an explicit standard-library importer,
// so benchmarks can measure a cold (per-loader) importer against the shared
// one.
func newLoaderWithStd(moduleRoot string, std types.Importer) (*Loader, error) {
	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: root,
		ModulePath: mod,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else defers to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importPathFor maps an absolute directory to its module import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the package in dir (absolute or relative to
// the module root). Results are cached; import cycles are hard errors.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleRoot, dir)
	}
	dir = filepath.Clean(dir)
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("analysis: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	pkg := &Package{
		Path: l.importPathFor(dir),
		Dir:  dir,
		Fset: l.Fset,
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) package even on soft errors;
	// analyzers are written to tolerate missing type information.
	tpkg, _ := conf.Check(pkg.Path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[dir] = pkg
	return pkg, nil
}

// goSourceFiles lists the non-test Go files in dir that match the current
// build context (GOOS/GOARCH file suffixes and //go:build constraints),
// sorted for deterministic positions.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves package patterns relative to base into package directories.
// A trailing "/..." matches the directory and everything below it, skipping
// testdata, vendor and hidden directories (unless the pattern base itself
// points inside one, so fixtures remain addressable explicitly).
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pattern := range patterns {
		stem, recursive := strings.CutSuffix(pattern, "...")
		stem = strings.TrimSuffix(stem, "/")
		if stem == "" {
			stem = "."
		}
		if !filepath.IsAbs(stem) {
			stem = filepath.Join(base, stem)
		}
		fi, err := os.Stat(stem)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pattern, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: not a directory", pattern)
		}
		if !recursive {
			names, err := goSourceFiles(stem)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("analysis: no buildable Go files in %s", stem)
			}
			add(stem)
			continue
		}
		err = filepath.WalkDir(stem, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != stem && skipDirName(d.Name()) {
				return filepath.SkipDir
			}
			names, err := goSourceFiles(path)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDirName reports whether wildcard expansion should prune the directory,
// mirroring the go tool's treatment of testdata and hidden directories.
func skipDirName(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}
