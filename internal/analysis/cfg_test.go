package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseCFGFixtures parses the CFG edge-case file without type checking —
// CFG construction is purely syntactic.
func parseCFGFixtures(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", "cfg", "fixtures.go")
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return fset, f
}

// TestCFGDumps golden-tests the CFG builder over every function in the
// fixture file: goto, labeled break/continue, select with/without default,
// fallthrough and defer-inside-loop all have pinned block structure.
func TestCFGDumps(t *testing.T) {
	fset, f := parseCFGFixtures(t)
	var sb strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sb.WriteString(BuildCFG(fd.Name.Name, fd.Body).Dump(fset))
		sb.WriteString("\n")
	}
	got := sb.String()
	goldenPath := filepath.Join("testdata", "golden", "cfg_dumps.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/analysis -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dump mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCFGInvariants checks structural properties every built CFG must hold:
// entry is Blocks[0], exit is last and empty, edges are Succs/Preds
// symmetric, and every reachable block can reach exit or sits on an
// intentional infinite loop.
func TestCFGInvariants(t *testing.T) {
	fset, f := parseCFGFixtures(t)
	_ = fset
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		cfg := BuildCFG(fd.Name.Name, fd.Body)
		if cfg.Blocks[0] != cfg.Entry {
			t.Errorf("%s: Blocks[0] is not Entry", fd.Name.Name)
		}
		if cfg.Blocks[len(cfg.Blocks)-1] != cfg.Exit {
			t.Errorf("%s: Exit is not the last block", fd.Name.Name)
		}
		if len(cfg.Exit.Nodes) != 0 || len(cfg.Exit.Succs) != 0 {
			t.Errorf("%s: Exit must be an empty sink", fd.Name.Name)
		}
		for _, blk := range cfg.Blocks {
			if blk.Index != indexOf(cfg, blk) {
				t.Errorf("%s: block index %d out of sync", fd.Name.Name, blk.Index)
			}
			for _, s := range blk.Succs {
				if !containsBlock(s.Preds, blk) {
					t.Errorf("%s: edge b%d->b%d missing from Preds", fd.Name.Name, blk.Index, s.Index)
				}
			}
			for _, p := range blk.Preds {
				if !containsBlock(p.Succs, blk) {
					t.Errorf("%s: pred edge b%d->b%d missing from Succs", fd.Name.Name, p.Index, blk.Index)
				}
			}
		}
	}
}

func indexOf(cfg *CFG, blk *Block) int {
	for i, b := range cfg.Blocks {
		if b == blk {
			return i
		}
	}
	return -1
}

func containsBlock(list []*Block, blk *Block) bool {
	for _, b := range list {
		if b == blk {
			return true
		}
	}
	return false
}
