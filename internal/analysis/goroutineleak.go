package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeak flags go statements whose spawned body can block forever
// with no cancellation path. The serving plane leaks goroutines exactly this
// way: a worker parked on a channel nobody closes, a send to a receiver that
// returned early, an accept loop on a listener nothing shuts down. The check
// is interprocedural — the spawned function's transitive (static) closure is
// scanned for blocking hazards and for release mechanisms:
//
//   - a context reaching the body (cancel releases it),
//   - a channel receive anywhere in the closure (close releases it — this
//     also covers range-over-channel workers and select loops with a done
//     case),
//   - sends that only target channels visibly made with nonzero capacity in
//     the spawning or spawned scope (the buffered watchdog idiom: the send
//     completes even when the receiver is gone),
//   - a WaitGroup Done in the body (the worker-pool join idiom — a stuck
//     body stalls the Wait visibly instead of leaking silently).
//
// Hazards with none of those are reported at the go statement. Deliberately
// process-lifetime goroutines (an HTTP serve loop whose listener is closed
// by a shutdown path the analyzer cannot see) are waived with //lint:ignore.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "goroutines that can block forever with no context, close-able channel, or buffered send to release them",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) {
	g, sums := pass.Facts.Graph, pass.Facts.Summaries
	if g == nil || sums == nil {
		return
	}
	for _, node := range g.Nodes {
		if node.Pkg != pass.Pkg {
			continue
		}
		spawnerBuf := bufferedChanKeys(node.Body)
		inspectNoFuncLit(node.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			entry := g.GoEntry(pass.Pkg, gs)
			if entry == nil {
				return true // opaque entry (function value from elsewhere)
			}
			closure := spawnClosure(g, entry)
			why, hazard := closureHazard(closure, sums, spawnerBuf)
			if !hazard {
				return true
			}
			if closureCancellable(closure, sums) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine %s may block forever (%s) and nothing can release it: thread a context through it, receive on a channel a caller closes, or join it",
				entry.ShortName(), why)
			return true
		})
	}
}

// spawnClosure is the set of bodies the spawned goroutine can run: the entry
// plus its static (non-interface, non-go) call closure and nested literals.
// Dynamic edges are excluded for the same reason BlocksForever excludes them
// — one slow interface implementation must not condemn every spawn site that
// dispatches through the interface.
func spawnClosure(g *CallGraph, entry *FuncNode) []*FuncNode {
	seen := map[*FuncNode]bool{}
	var order []*FuncNode
	var walk func(n *FuncNode)
	walk = func(n *FuncNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		order = append(order, n)
		for _, e := range n.Calls {
			if e.Dynamic || e.Go {
				continue
			}
			walk(e.Callee)
		}
		inspectNoFuncLit(n.Body, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				walk(g.NodeOfLit(lit))
			}
			return true
		})
	}
	walk(entry)
	return order
}

// closureHazard scans the closure bodies for constructs that can park the
// goroutine forever. Receives are NOT hazards here (close releases them);
// they are counted as cancellation evidence instead.
func closureHazard(closure []*FuncNode, sums *Summaries, spawnerBuf map[string]bool) (string, bool) {
	buffered := map[string]bool{}
	for k := range spawnerBuf {
		buffered[k] = true
	}
	for _, n := range closure {
		for k := range bufferedChanKeys(n.Body) {
			buffered[k] = true
		}
	}
	for _, n := range closure {
		var why string
		inspectNoFuncLit(n.Body, func(m ast.Node) bool {
			if why != "" {
				return false
			}
			switch x := m.(type) {
			case *ast.SendStmt:
				if !buffered[exprKey(x.Chan)] {
					why = "sends on an unbuffered or unknown channel"
				}
			case *ast.SelectStmt:
				// A select whose comms are all sends (no default) can park
				// forever; one with a receive case is release-able by close
				// and one with default never parks.
				hasDefault, hasRecv := false, false
				for _, c := range x.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm == nil {
						hasDefault = true
					} else if commIsReceive(cc.Comm) {
						hasRecv = true
					}
				}
				if !hasDefault && !hasRecv {
					why = "selects over sends only"
				}
			case *ast.CallExpr:
				fn := calleeObject(n.Pkg, x)
				if reason, forever, ok := stdlibBlocking(fn); ok && forever {
					why = reason
				}
			}
			return true
		})
		if why != "" {
			return n.ShortName() + " " + why, true
		}
	}
	return "", false
}

// closureCancellable reports whether anything in the closure gives a caller
// a handle to release or observe the goroutine: a context in scope, a
// channel receive (close-able), or a WaitGroup Done (the spawner joins it —
// a stuck body then stalls the join visibly instead of leaking silently).
func closureCancellable(closure []*FuncNode, sums *Summaries) bool {
	for _, n := range closure {
		if sum := sums.Of(n); sum != nil && (sum.HasCtxParam || sum.UsesCtx) {
			return true
		}
		found := false
		inspectNoFuncLit(n.Body, func(m ast.Node) bool {
			if found {
				return false
			}
			switch x := m.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					found = true
				}
			case *ast.RangeStmt:
				// range over a channel terminates on close; checking the
				// operand type is unnecessary — ranging anything else is not
				// a blocking hazard in the first place.
				if _, isChan := rangeOverChan(n.Pkg, x); isChan {
					found = true
				}
			case *ast.CallExpr:
				if isWaitGroupDone(n.Pkg, x) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup-like receiver. With
// type information the receiver type must be named WaitGroup; without it
// (fixtures) the receiver name must contain "wg" so ctx.Done() never
// matches.
func isWaitGroupDone(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	if pkg.Info == nil {
		key := exprKey(sel.X)
		return key != "" && stringsContainsFold(key, "wg")
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

func stringsContainsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), sub)
}

// commIsReceive reports whether a select comm statement is a receive.
func commIsReceive(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(x.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(x.Rhs) != 1 {
			return false
		}
		u, ok := ast.Unparen(x.Rhs[0]).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// rangeOverChan reports whether a range statement iterates a channel.
func rangeOverChan(pkg *Package, r *ast.RangeStmt) (ast.Expr, bool) {
	if pkg.Info == nil {
		return nil, false
	}
	tv, ok := pkg.Info.Types[r.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
		return r.X, true
	}
	return nil, false
}

// bufferedChanKeys collects the exprKeys of locals bound to make(chan T, n)
// with a literal nonzero capacity in the body: sends to those channels
// complete without a receiver (up to the buffer), the watchdog idiom.
func bufferedChanKeys(body *ast.BlockStmt) map[string]bool {
	keys := map[string]bool{}
	if body == nil {
		return keys
	}
	inspectNoFuncLit(body, func(m ast.Node) bool {
		asg, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
				continue
			}
			lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit)
			if !ok || lit.Kind != token.INT || lit.Value == "0" {
				continue
			}
			if i < len(asg.Lhs) {
				if k := exprKey(asg.Lhs[i]); k != "" {
					keys[k] = true
				}
			}
		}
		return true
	})
	return keys
}
