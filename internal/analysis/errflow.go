package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ErrFlow enforces the output-buffer error contract of the compression API:
// when Compress/Decompress (or any helper taking an `out`/`dst` pointer
// parameter and returning error) fails, the caller must be able to discard
// or retry — so no path may first mutate the output buffer and then return a
// non-nil error, leaving the caller holding partially-written output. The
// check runs two dataflow problems over the same CFG in lockstep: a
// may-analysis collecting the output-buffer write sites reachable so far,
// and reaching definitions to decide whether the returned error expression
// can be non-nil (a `return nil`, or an error variable whose every reaching
// definition is nil, is safe). Passing out to another function is not
// treated as a write: the callee is analyzed on its own.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "error-returning paths must not leave a partially-written output buffer",
	Run:  runErrFlow,
}

// readOnlyDataMethods are the Data accessors that do not mutate the
// receiver; any other method call on the output parameter counts as a write.
var readOnlyDataMethods = map[string]bool{
	"DType": true, "Dims": true, "NumDims": true, "Len": true,
	"ByteLen": true, "HasData": true, "Bytes": true, "String": true,
	"Equal": true, "Clone": true, "CastTo": true, "AsFloat64s": true,
	"Float32s": true, "Float64s": true,
	"Int8s": true, "Int16s": true, "Int32s": true, "Int64s": true,
	"Uint8s": true, "Uint16s": true, "Uint32s": true, "Uint64s": true,
}

// outParamNames are the conventional names of the caller-visible output
// parameter.
var outParamNames = map[string]bool{"out": true, "dst": true}

func runErrFlow(pass *Pass) {
	if pass.Pkg.Info == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out := errFlowOutParam(pass, fd)
			if out == nil || !fdReturnsError(fd) {
				continue
			}
			analyzeErrFlow(pass, fd, out)
		}
	}
}

// errFlowOutParam finds a pointer-typed parameter named out/dst.
func errFlowOutParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if !outParamNames[name.Name] {
				continue
			}
			v, ok := pass.Pkg.Info.ObjectOf(name).(*types.Var)
			if !ok {
				continue
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return v
			}
		}
	}
	return nil
}

// fdReturnsError reports whether fd's final result is the error type.
func fdReturnsError(fd *ast.FuncDecl) bool {
	results := fd.Type.Results
	if results == nil || len(results.List) == 0 {
		return false
	}
	last := results.List[len(results.List)-1].Type
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "error"
}

// outWriteFact is the may-analysis fact: source positions of output-buffer
// writes that may have executed.
type outWriteFact map[token.Pos]bool

type outWriteProblem struct {
	pass *Pass
	out  *types.Var
}

func (p *outWriteProblem) EntryFact() any { return outWriteFact{} }

func (p *outWriteProblem) Transfer(fact any, n ast.Node) any {
	f := fact.(outWriteFact)
	out := f
	mutated := false
	add := func(pos token.Pos) {
		if out[pos] {
			return
		}
		if !mutated {
			out = make(outWriteFact, len(f)+1)
			for k := range f {
				out[k] = true
			}
			mutated = true
		}
		out[pos] = true
	}
	inspectNoFuncLit(n, func(m ast.Node) bool {
		if pos, ok := p.writeAt(m); ok {
			add(pos)
		}
		return true
	})
	return out
}

// writeAt reports whether node m mutates the output parameter.
func (p *outWriteProblem) writeAt(m ast.Node) (token.Pos, bool) {
	switch st := m.(type) {
	case *ast.CallExpr:
		sel, ok := st.Fun.(*ast.SelectorExpr)
		if !ok || readOnlyDataMethods[sel.Sel.Name] {
			return 0, false
		}
		if p.isOut(sel.X) {
			return st.Pos(), true
		}
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			if id, isIdent := lhs.(*ast.Ident); isIdent {
				// Rebinding the local name is not a buffer write; a write
				// THROUGH it (*out = ..., out.f = ...) is.
				if p.varOf(id) == p.out {
					continue
				}
			}
			if root := rootIdent(lhs); root != nil && p.varOf(root) == p.out {
				return lhs.Pos(), true
			}
		}
	case *ast.IncDecStmt:
		if root := rootIdent(st.X); root != nil && p.varOf(root) == p.out {
			return st.Pos(), true
		}
	}
	return 0, false
}

func (p *outWriteProblem) isOut(e ast.Expr) bool {
	root := rootIdent(e)
	return root != nil && p.varOf(root) == p.out
}

func (p *outWriteProblem) varOf(id *ast.Ident) *types.Var {
	v, _ := p.pass.Pkg.Info.ObjectOf(id).(*types.Var)
	return v
}

func (p *outWriteProblem) Join(a, b any) any {
	fa, fb := a.(outWriteFact), b.(outWriteFact)
	out := make(outWriteFact, len(fa))
	for k := range fa {
		out[k] = true
	}
	for k := range fb {
		out[k] = true
	}
	return out
}

func (p *outWriteProblem) Equal(a, b any) bool {
	fa, fb := a.(outWriteFact), b.(outWriteFact)
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}

func analyzeErrFlow(pass *Pass, fd *ast.FuncDecl, out *types.Var) {
	cfg := BuildCFG(fd.Name.Name, fd.Body)
	writes := &outWriteProblem{pass: pass, out: out}
	rd := &ReachingDefs{Info: pass.Pkg.Info, Params: paramVars(pass, fd)}
	wRes := Solve(cfg, writes)
	rdRes := Solve(cfg, rd)

	// Walk both problems in lockstep: at each return, combine the write set
	// (may-analysis) with the error expression's reaching definitions.
	for _, blk := range cfg.Blocks {
		wFact, okW := wRes.In[blk]
		rdFact, okR := rdRes.In[blk]
		if !okW || !okR || wFact == nil || rdFact == nil {
			continue
		}
		for _, n := range blk.Nodes {
			inspectNoFuncLit(n, func(m ast.Node) bool {
				ret, ok := m.(*ast.ReturnStmt)
				if !ok || len(ret.Results) == 0 {
					return true
				}
				errExpr := ret.Results[len(ret.Results)-1]
				if !errMaybeNonNil(pass, rd, rdFact, errExpr) {
					return true
				}
				f := wFact.(outWriteFact)
				if len(f) == 0 {
					return true
				}
				positions := make([]token.Pos, 0, len(f))
				for pos := range f {
					positions = append(positions, pos)
				}
				sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
				first := pass.Pkg.Fset.Position(positions[0])
				pass.Reportf(ret.Pos(),
					"%s returns a possibly non-nil error after writing %s (line %d): error paths must not leave partially-written output",
					fd.Name.Name, out.Name(), first.Line)
				return true
			})
			wFact = writes.Transfer(wFact, n)
			rdFact = rd.Transfer(rdFact, n)
		}
	}
}

// errMaybeNonNil decides whether the returned error expression can evaluate
// to a non-nil error at this point: nil literals are safe, and an error
// variable is safe when every definition reaching the return is nil (either
// an explicit nil assignment or a zero-value var declaration). Anything
// else — fresh calls, fields, parameters — is assumed fallible.
func errMaybeNonNil(pass *Pass, rd *ReachingDefs, fact any, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return errMaybeNonNil(pass, rd, fact, x.X)
	case *ast.Ident:
		if x.Name == "nil" {
			return false
		}
		defs := rd.DefsOf(fact, x)
		if len(defs) == 0 {
			return true // parameter or untracked: assume fallible
		}
		for d := range defs {
			if d.Rhs == nil {
				// var err error with no initializer is the zero value nil; a
				// parameter's entry definition is caller-controlled and a
				// ++/-- def is not an error at all (conservatively fallible).
				if d.Param || d.Pos != defDeclPos(rd, x) {
					return true
				}
				continue
			}
			if id, ok := d.Rhs.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		}
		return false
	}
	return true
}

// defDeclPos returns the declaration position of id's variable, which a
// zero-value `var` definition shares; token.NoPos when unresolved.
func defDeclPos(rd *ReachingDefs, id *ast.Ident) token.Pos {
	v := rd.varOf(id)
	if v == nil {
		return token.NoPos
	}
	return v.Pos()
}
