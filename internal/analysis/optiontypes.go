package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"pressio/internal/core"
)

// OptionTypes cross-checks a plugin's option surface: the type an option is
// declared with in Options() must be readable by the getter SetOptions()
// uses for the same key (identical, or a lossless implicit widening), and
// every option declared in Options() must actually be consumed somewhere in
// SetOptions() — a declared-but-never-read key is a dead option that
// silently ignores user configuration. Keys are resolved flow-sensitively:
// constant expressions fold via go/types, `p.name + ":suffix"` normalizes to
// a prefix wildcard, and local key variables resolve through reaching
// definitions on the method's CFG. The dead-option check stands down when
// the options object escapes into a helper (e.g. BoundConfig.ApplyOptions)
// whose reads this intraprocedural pass cannot see.
var OptionTypes = &Analyzer{
	Name: "optiontypes",
	Doc:  "option types declared in Options() must match the types read in SetOptions(); dead options are diagnosed",
	Run:  runOptionTypes,
}

// getterTypes maps Options getter methods to the option kind they demand.
// Get/Has/Delete read a key without constraining its type.
var getterTypes = map[string]core.OptionType{
	"GetInt64":   core.OptInt64,
	"GetInt32":   core.OptInt32,
	"GetUint64":  core.OptUint64,
	"GetFloat64": core.OptDouble,
	"GetString":  core.OptString,
	"GetStrings": core.OptStrings,
	"GetData":    core.OptData,
	"GetUserPtr": core.OptUserPtr,
}

// untypedReads read a key without demanding a kind.
var untypedReads = map[string]bool{"Get": true, "Has": true, "Delete": true}

// optTypeNames resolves OptXxx identifiers appearing as SetType/TypedOption
// arguments.
var optTypeNames = map[string]core.OptionType{
	"OptInt8": core.OptInt8, "OptInt16": core.OptInt16,
	"OptInt32": core.OptInt32, "OptInt64": core.OptInt64,
	"OptUint8": core.OptUint8, "OptUint16": core.OptUint16,
	"OptUint32": core.OptUint32, "OptUint64": core.OptUint64,
	"OptFloat": core.OptFloat, "OptDouble": core.OptDouble,
	"OptString": core.OptString, "OptStrings": core.OptStrings,
	"OptData": core.OptData, "OptUserPtr": core.OptUserPtr,
}

// optDecl is one key declared in Options().
type optDecl struct {
	pos      token.Pos
	typ      core.OptionType
	typKnown bool
}

// optRead is one key consumed in SetOptions().
type optRead struct {
	pos   token.Pos
	typ   core.OptionType
	typed bool
}

func runOptionTypes(pass *Pass) {
	if pass.Pkg.Info == nil {
		return // key folding and value typing need go/types
	}
	type pair struct {
		options    *ast.FuncDecl
		setOptions *ast.FuncDecl
	}
	byRecv := map[string]*pair{}
	order := []string{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := recvTypeKey(fd)
			if recv == "" {
				continue
			}
			switch fd.Name.Name {
			case "Options", "SetOptions":
				if byRecv[recv] == nil {
					byRecv[recv] = &pair{}
					order = append(order, recv)
				}
				if fd.Name.Name == "Options" {
					byRecv[recv].options = fd
				} else {
					byRecv[recv].setOptions = fd
				}
			}
		}
	}
	sort.Strings(order)
	for _, recv := range order {
		p := byRecv[recv]
		if p.options == nil || p.setOptions == nil {
			continue
		}
		checkOptionSurface(pass, recv, p.options, p.setOptions)
	}
}

// recvTypeKey renders the receiver base type name of a method declaration.
func recvTypeKey(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func checkOptionSurface(pass *Pass, recv string, optFn, setFn *ast.FuncDecl) {
	declared, declDynamic := collectDeclared(pass, optFn)
	reads, readEscapes, readDynamic := collectReads(pass, setFn)

	// Type agreement between each declared key and each typed read of it.
	keys := make([]string, 0, len(reads))
	for k := range reads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		decl, ok := declared[key]
		if !ok || !decl.typKnown {
			continue
		}
		for _, read := range reads[key] {
			if !read.typed || widensTo(decl.typ, read.typ) {
				continue
			}
			pass.Reportf(read.pos,
				"option %s is declared as %s in (%s).Options but SetOptions reads it as %s: declare and read compatible types",
				displayKey(key), decl.typ, recv, read.typ)
		}
	}

	// Dead options: declared keys never consumed. Unknown reads (escaping
	// options object, unfoldable keys) make the read set incomplete, so the
	// check stands down rather than guess.
	if readEscapes || readDynamic || declDynamic {
		return
	}
	keys = keys[:0]
	for k := range declared {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if _, ok := reads[key]; ok {
			continue
		}
		pass.Reportf(declared[key].pos,
			"option %s is declared in (%s).Options but never read in SetOptions: dead option (honor it or drop it)",
			displayKey(key), recv)
	}
}

// collectDeclared walks Options() with reaching definitions and gathers
// every key passed to SetValue/SetType/Set, with the option type implied by
// the value expression. declDynamic reports keys that could not be folded.
func collectDeclared(pass *Pass, fd *ast.FuncDecl) (map[string]optDecl, bool) {
	declared := map[string]optDecl{}
	dynamic := false
	walkWithDefs(pass, fd, func(rd *ReachingDefs, fact any, call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) < 1 {
			return
		}
		var typ core.OptionType
		typKnown := false
		switch sel.Sel.Name {
		case "SetValue":
			if len(call.Args) == 2 {
				typ, typKnown = optionTypeOfGoType(exprType(pass, call.Args[1]))
			}
		case "SetType":
			if len(call.Args) == 2 {
				typ, typKnown = optTypeFromExpr(call.Args[1])
			}
		case "Set":
			if len(call.Args) == 2 {
				typ, typKnown = optTypeOfOptionExpr(pass, call.Args[1])
			}
		default:
			return
		}
		key, ok := foldKey(pass, rd, fact, call.Args[0])
		if !ok {
			dynamic = true
			return
		}
		if prev, exists := declared[key]; !exists || (!prev.typKnown && typKnown) {
			declared[key] = optDecl{pos: call.Args[0].Pos(), typ: typ, typKnown: typKnown}
		}
	})
	return declared, dynamic
}

// collectReads walks SetOptions() and gathers every key consumed through the
// options parameter's getters. escapes reports the parameter being handed to
// another function (its reads are invisible); dynamic reports unfoldable keys.
func collectReads(pass *Pass, fd *ast.FuncDecl) (map[string][]optRead, bool, bool) {
	reads := map[string][]optRead{}
	escapes := false
	dynamic := false
	param := optionsParam(pass, fd)
	walkWithDefs(pass, fd, func(rd *ReachingDefs, fact any, call *ast.CallExpr) {
		// Does any argument forward the options parameter?
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && param != nil &&
				pass.Pkg.Info.ObjectOf(id) == param {
				escapes = true
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) < 1 {
			return
		}
		typ, typed := getterTypes[sel.Sel.Name]
		if !typed && !untypedReads[sel.Sel.Name] {
			return
		}
		// The receiver must be the options parameter (or any expression when
		// the parameter could not be identified).
		if param != nil {
			id, ok := sel.X.(*ast.Ident)
			if !ok || pass.Pkg.Info.ObjectOf(id) != param {
				return
			}
		}
		key, ok := foldKey(pass, rd, fact, call.Args[0])
		if !ok {
			dynamic = true
			return
		}
		reads[key] = append(reads[key], optRead{pos: call.Pos(), typ: typ, typed: typed})
	})
	return reads, escapes, dynamic
}

// optionsParam finds the *Options (pointer-typed) parameter of SetOptions.
func optionsParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Pkg.Info.ObjectOf(name)
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
				return obj
			}
		}
	}
	return nil
}

// walkWithDefs solves reaching definitions over fd's body and visits every
// call expression with the incoming fact, without descending into nested
// function literals.
func walkWithDefs(pass *Pass, fd *ast.FuncDecl, visit func(rd *ReachingDefs, fact any, call *ast.CallExpr)) {
	rd := &ReachingDefs{Info: pass.Pkg.Info, Params: paramVars(pass, fd)}
	cfg := BuildCFG(fd.Name.Name, fd.Body)
	res := Solve(cfg, rd)
	WalkFacts(cfg, rd, res, func(fact any, n ast.Node) {
		inspectNoFuncLit(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				visit(rd, fact, call)
			}
			return true
		})
	})
}

// paramVars lists the declared parameter (and receiver) objects of fd.
func paramVars(pass *Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.Pkg.Info.ObjectOf(name).(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// foldKey normalizes an option-key expression to a comparable string:
// constants fold to their value, `<non-const> + ":suffix"` normalizes to the
// wildcard "*:suffix" (the plugin-prefix idiom), and local variables resolve
// through their reaching definitions when unambiguous.
func foldKey(pass *Pass, rd *ReachingDefs, fact any, e ast.Expr) (string, bool) {
	if s, ok := constString(pass, e); ok {
		return s, true
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return foldKey(pass, rd, fact, x.X)
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			if suffix, ok := constString(pass, x.Y); ok {
				return "*" + suffix, true
			}
		}
	case *ast.Ident:
		defs := rd.DefsOf(fact, x)
		if len(defs) == 1 {
			for d := range defs {
				if d.Rhs != nil {
					return foldKey(pass, rd, fact, d.Rhs)
				}
			}
		}
	}
	return "", false
}

// constString evaluates e as a compile-time string constant.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// displayKey renders a normalized key for diagnostics, spelling the prefix
// wildcard out.
func displayKey(key string) string {
	if len(key) > 0 && key[0] == '*' {
		return "<prefix>" + key[1:]
	}
	return key
}

// optionTypeOfGoType maps a Go value type to the OptionType NewOption would
// assign it.
func optionTypeOfGoType(t types.Type) (core.OptionType, bool) {
	if t == nil {
		return core.OptUnset, false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int8:
			return core.OptInt8, true
		case types.Int16:
			return core.OptInt16, true
		case types.Int32:
			return core.OptInt32, true
		case types.Int64, types.Int, types.UntypedInt:
			return core.OptInt64, true
		case types.Uint8:
			return core.OptUint8, true
		case types.Uint16:
			return core.OptUint16, true
		case types.Uint32:
			return core.OptUint32, true
		case types.Uint64, types.Uint, types.Uintptr:
			return core.OptUint64, true
		case types.Float32:
			return core.OptFloat, true
		case types.Float64, types.UntypedFloat:
			return core.OptDouble, true
		case types.String, types.UntypedString:
			return core.OptString, true
		}
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.String {
			return core.OptStrings, true
		}
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok && named.Obj().Name() == "Data" {
			return core.OptData, true
		}
	}
	return core.OptUnset, false
}

// optTypeFromExpr resolves an OptXxx identifier or selector.
func optTypeFromExpr(e ast.Expr) (core.OptionType, bool) {
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	t, ok := optTypeNames[name]
	return t, ok
}

// optTypeOfOptionExpr resolves the kind of an Option-valued expression:
// NewOption(v) takes v's Go type, TypedOption(OptXxx) names it directly.
func optTypeOfOptionExpr(pass *Pass, e ast.Expr) (core.OptionType, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return core.OptUnset, false
	}
	switch calleeName(call) {
	case "NewOption":
		return optionTypeOfGoType(exprType(pass, call.Args[0]))
	case "TypedOption":
		return optTypeFromExpr(call.Args[0])
	}
	return core.OptUnset, false
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// widensTo reports whether an option declared as `from` can be read with a
// getter demanding `to` without any possible loss: identical kinds, integer
// widening that preserves every value, exactly-representable float widening,
// or string -> strings.
func widensTo(from, to core.OptionType) bool {
	if from == to {
		return true
	}
	type intSpec struct {
		bits   int
		signed bool
	}
	ints := map[core.OptionType]intSpec{
		core.OptInt8: {8, true}, core.OptInt16: {16, true},
		core.OptInt32: {32, true}, core.OptInt64: {64, true},
		core.OptUint8: {8, false}, core.OptUint16: {16, false},
		core.OptUint32: {32, false}, core.OptUint64: {64, false},
	}
	src, srcInt := ints[from]
	dst, dstInt := ints[to]
	switch {
	case srcInt && dstInt:
		if src.signed == dst.signed {
			return dst.bits >= src.bits
		}
		// unsigned -> strictly wider signed is lossless; signed -> unsigned
		// never is.
		return !src.signed && dst.signed && dst.bits > src.bits
	case srcInt && to == core.OptDouble:
		return src.bits <= 32 // every value exactly representable in float64
	case srcInt && to == core.OptFloat:
		return src.bits <= 16
	case from == core.OptFloat && to == core.OptDouble:
		return true
	case from == core.OptString && to == core.OptStrings:
		return true
	}
	return false
}
