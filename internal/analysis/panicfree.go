package analysis

import (
	"go/ast"
	"strings"
)

// PanicFree flags bare panic(...) calls written directly in the
// CompressImpl/DecompressImpl bodies of compressor plugins reachable through
// the registry. The plugin contract is to return an error: a corrupt stream
// or hostile option must surface as a value the caller can route through the
// guard/fallback resilience layer, not unwind the embedding process. The
// guard meta-compressor does convert stray panics to ErrPanicked at the
// boundary, but that is a containment net for third-party code, not license
// for first-party plugins to throw. Deliberate panics (such as a fault
// injector's) are waived with //lint:ignore panicfree <reason>.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "registered compressor plugins must return errors from CompressImpl/DecompressImpl, not panic",
	Run:  runPanicFree,
}

func runPanicFree(pass *Pass) {
	if !strings.Contains("/"+pass.Pkg.Path+"/", "/internal/") {
		return // same scope as the registration contract
	}

	// Factory types this package registers as compressors. A factory the
	// facts pass cannot see through (a constructor call rather than a
	// `return &T{...}` literal) could build any local implementation, so
	// its presence keeps every structurally matching type in scope.
	registered := make(map[string]bool)
	anyOpaque := false
	for _, site := range pass.Facts.Sites {
		if site.Kind != kindCompressor || site.PkgPath != pass.Pkg.Path {
			continue
		}
		if site.FactoryType != "" {
			registered[site.FactoryType] = true
		} else {
			anyOpaque = true
		}
	}
	if len(registered) == 0 && !anyOpaque {
		return // package registers no compressors; nothing is reachable
	}

	methods := make(map[string]map[string]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			recv := receiverTypeName(d)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]bool)
			}
			methods[recv][d.Name.Name] = true
		}
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			if d.Name.Name != "CompressImpl" && d.Name.Name != "DecompressImpl" {
				continue
			}
			recv := receiverTypeName(d)
			if recv == "" || !hasAll(methods[recv], implSignatures[kindCompressor]) {
				continue
			}
			if !registered[recv] && !anyOpaque {
				continue
			}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					pass.Reportf(call.Pos(),
						"panic in %s.%s: plugins must return errors — a corrupt stream or bad option must not kill the embedding process",
						recv, d.Name.Name)
				}
				return true
			})
		}
	}
}
