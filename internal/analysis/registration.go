package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Registration enforces the plugin lifecycle contract for internal/
// packages: a package that defines a CompressorPlugin, Metric or IOPlugin
// implementation must register it via the matching core.Register* entry
// point, from init (so plugins exist before any lookup), exactly once per
// name, and — when both sides are statically visible — under a name equal to
// the implementation's Prefix(). Unregistered plugins are dead code that
// silently vanishes from SupportedCompressors(); late or duplicate
// registration panics at runtime where a linter can catch it at review time.
var Registration = &Analyzer{
	Name: "registration",
	Doc:  "plugin implementations must be registered from init, once, under their prefix",
	Run:  runRegistration,
}

// implSignatures lists the method names whose joint presence on a type marks
// it as a plugin implementation of the given kind. Detection is structural
// (method sets, not interface satisfaction) so it works without cross-package
// type information and on fixture packages.
var implSignatures = map[string][]string{
	kindCompressor: {"Prefix", "CompressImpl", "DecompressImpl"},
	kindMetric:     {"Prefix", "BeginCompress", "EndCompress", "Results"},
	kindIO:         {"Prefix", "Read", "Write", "Configuration"},
}

// registerEntry maps kinds back to entry-point names for messages.
var registerEntry = map[string]string{
	kindCompressor: "RegisterCompressor",
	kindMetric:     "RegisterMetric",
	kindIO:         "RegisterIO",
}

func runRegistration(pass *Pass) {
	if !strings.Contains("/"+pass.Pkg.Path+"/", "/internal/") {
		return // the contract covers the internal/ plugin tree
	}
	if declaresPluginContract(pass.Pkg) {
		return // the package defining the interfaces is not a plugin package
	}

	methods := make(map[string]map[string]bool) // type -> method set
	prefixLit := make(map[string]string)        // type -> literal Prefix() value
	typePos := make(map[string]token.Pos)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						typePos[ts.Name.Name] = ts.Pos()
					}
				}
			case *ast.FuncDecl:
				recv := receiverTypeName(d)
				if recv == "" {
					continue
				}
				if methods[recv] == nil {
					methods[recv] = make(map[string]bool)
				}
				methods[recv][d.Name.Name] = true
				if _, ok := typePos[recv]; !ok {
					typePos[recv] = d.Pos()
				}
				if d.Name.Name == "Prefix" {
					if lit, ok := singleReturnString(d); ok {
						prefixLit[recv] = lit
					}
				}
			}
		}
	}

	var sites []RegSite
	for _, site := range pass.Facts.Sites {
		if site.PkgPath == pass.Pkg.Path {
			sites = append(sites, site)
		}
	}
	kindsRegistered := make(map[string]bool)
	for _, site := range sites {
		kindsRegistered[site.Kind] = true
	}

	// (a) implementations of a kind the package never registers.
	for typ, set := range methods {
		for kind, required := range implSignatures {
			if kindsRegistered[kind] || !hasAll(set, required) {
				continue
			}
			pass.Reportf(typePos[typ],
				"%s implements a %s plugin but the package never calls core.%s; it is unreachable through the registry",
				typ, kind, registerEntry[kind])
		}
	}

	seen := make(map[string]token.Pos) // kind+name -> first position
	for _, site := range sites {
		// (b) registration outside init.
		if site.Func != "init" {
			where := site.Func
			if where == "" {
				where = "a package-level initializer"
			}
			pass.Reportf(site.Pos,
				"%s must be called from init, not %s: plugins must exist before the first registry lookup",
				registerEntry[site.Kind], where)
		}
		if site.Name == "" {
			continue
		}
		// (c) duplicate name within the package.
		key := site.Kind + "\x00" + site.Name
		if _, dup := seen[key]; dup {
			pass.Reportf(site.Pos,
				"duplicate %s registration of %q in this package; core.%s panics on duplicates at startup",
				site.Kind, site.Name, registerEntry[site.Kind])
		} else {
			seen[key] = site.Pos
		}
		// (d) duplicate name across packages (reported once, in the path-wise
		// later package, so a module-wide run flags it exactly one time).
		for _, other := range pass.Facts.Sites {
			if other.Kind == site.Kind && other.Name == site.Name &&
				other.PkgPath < site.PkgPath {
				pass.Reportf(site.Pos,
					"%s plugin name %q is already registered by %s; duplicate names panic at startup",
					site.Kind, site.Name, other.PkgPath)
				break
			}
		}
		// (e) registered name vs statically known Prefix().
		if lit, ok := prefixLit[site.FactoryType]; ok && lit != site.Name {
			pass.Reportf(site.Pos,
				"plugin registered as %q but %s.Prefix() returns %q; options addressed by prefix will not reach it",
				site.Name, site.FactoryType, lit)
		}
	}
}

// declaresPluginContract reports whether the package declares the plugin
// interfaces themselves (internal/core), which exempts it from registration
// requirements: core's MetricsGroup is composed explicitly, never looked up.
func declaresPluginContract(pkg *Package) bool {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isIface := ts.Type.(*ast.InterfaceType); !isIface {
					continue
				}
				switch ts.Name.Name {
				case "CompressorPlugin", "Metric", "IOPlugin":
					return true
				}
			}
		}
	}
	return false
}

// receiverTypeName returns the base type name of a method receiver.
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) != 1 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// singleReturnString matches method bodies of the form
// `return "literal"` so registered names can be checked against Prefix().
func singleReturnString(d *ast.FuncDecl) (string, bool) {
	if d.Body == nil || len(d.Body.List) != 1 {
		return "", false
	}
	ret, ok := d.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	return stringLit(ret.Results[0])
}

func hasAll(set map[string]bool, names []string) bool {
	for _, n := range names {
		if !set[n] {
			return false
		}
	}
	return true
}
