package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the generic half of the flow-sensitive layer: a forward
// worklist solver over the CFGs built in cfg.go, plus the two reusable fact
// domains the analyzers share — reaching definitions and the small helpers
// for walking statements without descending into nested function literals.
// Analyzers define a FlowProblem (entry fact, transfer, join) and read the
// solved per-block facts back; path-sensitivity comes from the join: a fact
// that differs between two predecessors merges per the problem's lattice
// instead of being decided by source order.

// FlowProblem is one forward dataflow problem. Facts are opaque to the
// solver; nil is the bottom element ("block not reached yet") and Join is
// never called with nil arguments.
type FlowProblem interface {
	// EntryFact is the fact at function entry.
	EntryFact() any
	// Transfer applies one statement/expression node. It must treat fact as
	// immutable and return a fresh value when the node changes it.
	Transfer(fact any, n ast.Node) any
	// Join merges facts flowing in from two predecessors (the lattice join:
	// union for may-analyses, intersection for must-analyses).
	Join(a, b any) any
	// Equal reports whether two facts are the same, bounding the fixpoint
	// iteration.
	Equal(a, b any) bool
}

// FlowResult holds the solved facts at the entry and exit of every block.
// Unreachable blocks keep nil facts.
type FlowResult struct {
	In  map[*Block]any
	Out map[*Block]any
}

// Solve runs the worklist algorithm to a fixpoint. Termination is the
// problem's responsibility: Join must be monotone over a finite lattice
// (all the in-tree domains are finite sets of syntactic positions or
// objects).
func Solve(cfg *CFG, p FlowProblem) *FlowResult {
	res := &FlowResult{In: make(map[*Block]any), Out: make(map[*Block]any)}
	res.In[cfg.Entry] = p.EntryFact()

	work := make([]*Block, 0, len(cfg.Blocks))
	queued := make(map[*Block]bool)
	push := func(b *Block) {
		if !queued[b] {
			queued[b] = true
			work = append(work, b)
		}
	}
	push(cfg.Entry)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		in := res.In[blk]
		if blk != cfg.Entry {
			in = nil
			for _, pred := range blk.Preds {
				out := res.Out[pred]
				if out == nil {
					continue
				}
				if in == nil {
					in = out
				} else {
					in = p.Join(in, out)
				}
			}
			if in == nil {
				continue // not reached yet
			}
			res.In[blk] = in
		}
		out := in
		for _, n := range blk.Nodes {
			out = p.Transfer(out, n)
		}
		if old, ok := res.Out[blk]; !ok || !p.Equal(old, out) {
			res.Out[blk] = out
			for _, s := range blk.Succs {
				push(s)
			}
		}
	}
	return res
}

// WalkFacts replays the transfer function over every reachable block,
// calling visit with the fact holding immediately BEFORE each node. This is
// how analyzers inspect program points inside blocks after solving.
func WalkFacts(cfg *CFG, p FlowProblem, res *FlowResult, visit func(fact any, n ast.Node)) {
	for _, blk := range cfg.Blocks {
		fact, ok := res.In[blk]
		if !ok || fact == nil {
			continue
		}
		for _, n := range blk.Nodes {
			visit(fact, n)
			fact = p.Transfer(fact, n)
		}
	}
}

// ExitFact returns the joined fact at the synthetic exit block (nil when no
// path reaches the end of the function, e.g. an infinite loop).
func ExitFact(res *FlowResult, cfg *CFG) any {
	return res.In[cfg.Exit]
}

// ---------------------------------------------------------------------------
// Reaching definitions

// Definition is one assignment (or declaration) of a variable that may
// reach a program point.
type Definition struct {
	// Pos locates the defining assignment.
	Pos token.Pos
	// Rhs is the defining expression; nil for definitions with no single
	// expression (var declarations without initializers, ++/--, parameters).
	Rhs ast.Expr
	// Param marks the entry-seeded definition of a parameter, whose value is
	// caller-controlled (unlike a zero-valued var declaration, which also
	// has a nil Rhs).
	Param bool
}

// ReachingDefs is the classic reaching-definitions domain over go/types
// variable objects: at each point, the set of definitions of each local
// variable that may have produced its current value. Assignments to a whole
// variable kill prior definitions (strong update — the object is a single
// variable, not an alias set).
type ReachingDefs struct {
	Info *types.Info
	// Params seed entry definitions (parameters are defined at entry).
	Params []*types.Var
}

// rdFact maps a variable to the set of its possibly-current definitions.
type rdFact map[*types.Var]map[Definition]bool

func (r *ReachingDefs) EntryFact() any {
	f := rdFact{}
	for _, p := range r.Params {
		f[p] = map[Definition]bool{{Pos: p.Pos(), Param: true}: true}
	}
	return f
}

func (r *ReachingDefs) Transfer(fact any, n ast.Node) any {
	f := fact.(rdFact)
	var out rdFact
	gen := func(v *types.Var, d Definition) {
		if out == nil {
			out = make(rdFact, len(f)+1)
			for k, s := range f {
				out[k] = s
			}
		}
		out[v] = map[Definition]bool{d: true}
	}
	inspectNoFuncLit(n, func(m ast.Node) bool {
		switch st := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue // x.f = ..., x[i] = ...: not a whole-variable def
				}
				v := r.varOf(id)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				gen(v, Definition{Pos: lhs.Pos(), Rhs: rhs})
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok {
				if v := r.varOf(id); v != nil {
					gen(v, Definition{Pos: st.Pos()})
				}
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v := r.varOf(name)
					if v == nil {
						continue
					}
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					gen(v, Definition{Pos: name.Pos(), Rhs: rhs})
				}
			}
		}
		return true
	})
	if out == nil {
		return f
	}
	return out
}

func (r *ReachingDefs) varOf(id *ast.Ident) *types.Var {
	if r.Info == nil {
		return nil
	}
	obj := r.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return v
}

func (r *ReachingDefs) Join(a, b any) any {
	fa, fb := a.(rdFact), b.(rdFact)
	out := make(rdFact, len(fa))
	for v, defs := range fa {
		out[v] = defs
	}
	for v, defs := range fb {
		if cur, ok := out[v]; ok {
			merged := make(map[Definition]bool, len(cur)+len(defs))
			for d := range cur {
				merged[d] = true
			}
			for d := range defs {
				merged[d] = true
			}
			out[v] = merged
		} else {
			out[v] = defs
		}
	}
	return out
}

func (r *ReachingDefs) Equal(a, b any) bool {
	fa, fb := a.(rdFact), b.(rdFact)
	if len(fa) != len(fb) {
		return false
	}
	for v, da := range fa {
		db, ok := fb[v]
		if !ok || len(da) != len(db) {
			return false
		}
		for d := range da {
			if !db[d] {
				return false
			}
		}
	}
	return true
}

// DefsOf returns the reaching definitions of the variable named by id in
// the given fact (nil when unknown).
func (r *ReachingDefs) DefsOf(fact any, id *ast.Ident) map[Definition]bool {
	if fact == nil {
		return nil
	}
	v := r.varOf(id)
	if v == nil {
		return nil
	}
	return fact.(rdFact)[v]
}

// ---------------------------------------------------------------------------
// Function units and shared walking helpers

// FuncUnit is one analyzable function body: a declared function/method or a
// function literal. Literals are separate units because their bodies do not
// execute where they appear.
type FuncUnit struct {
	// Name labels diagnostics: the declared name, or "function literal".
	Name string
	// Decl is the enclosing FuncDecl (nil for literals not inside one).
	Decl *ast.FuncDecl
	// Lit is non-nil for function-literal units.
	Lit *ast.FuncLit
	// Body is the unit's block.
	Body *ast.BlockStmt
	// OnceGuard is the rendered receiver of x.Do(unit) when the literal is
	// the argument of a Do call (sync.Once idiom): the unit runs with that
	// guard conceptually held.
	OnceGuard string
}

// funcUnits enumerates every function body in a file: declarations plus all
// nested function literals (each exactly once, tagged with its enclosing
// declaration when there is one).
func funcUnits(f *ast.File) []FuncUnit {
	var units []FuncUnit
	for _, decl := range f.Decls {
		fd, isFunc := decl.(*ast.FuncDecl)
		if isFunc && fd.Body != nil {
			units = append(units, FuncUnit{Name: fd.Name.Name, Decl: fd, Body: fd.Body})
		}
		encl := fd
		if !isFunc {
			encl = nil
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok || lit.Body == nil {
				return true
			}
			name := "function literal"
			if encl != nil {
				name = "function literal in " + encl.Name.Name
			}
			units = append(units, FuncUnit{Name: name, Decl: encl, Lit: lit, Body: lit.Body})
			return true
		})
	}
	// Tag Once.Do-style guarded literals.
	for _, decl := range f.Decls {
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Do" {
				return true
			}
			lit, ok := call.Args[0].(*ast.FuncLit)
			if !ok {
				return true
			}
			for i := range units {
				if units[i].Lit == lit {
					units[i].OnceGuard = exprKey(sel.X)
				}
			}
			return true
		})
	}
	return units
}

// inspectNoFuncLit walks n like ast.Inspect but does not descend into
// function literals: their bodies execute elsewhere, so their statements
// must not leak into the enclosing unit's transfer functions. The FuncLit
// node itself is still visited.
func inspectNoFuncLit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if !f(m) {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return true
	})
}

// exprKey renders an lvalue-ish expression as a stable intra-function key:
// mu -> "mu", p.mu -> "p.mu", global.mu -> "global.mu". Unrenderable
// expressions yield "".
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprKey(x.X)
		}
	case *ast.IndexExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "[...]"
	}
	return ""
}

// cfgName labels a unit's CFG for dumps and diagnostics.
func cfgName(fset *token.FileSet, u FuncUnit) string {
	if u.Lit == nil {
		return u.Name
	}
	pos := fset.Position(u.Lit.Pos())
	return fmt.Sprintf("%s at line %d", u.Name, pos.Line)
}
