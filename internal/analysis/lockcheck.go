package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck verifies the lock-pairing half of the thread-safety contract
// path-sensitively: every mu.Lock() / mu.RLock() must be matched by the
// corresponding Unlock on ALL paths out of the function. The old syntactic
// threadsafe scan only asked "is there a lock earlier in the source"; a
// missing Unlock hidden behind one branch (an early return inside the
// critical section) sailed through it. LockCheck builds the function's CFG,
// runs a may-analysis whose facts are the set of still-unreleased
// acquisition sites, and reports any acquisition that reaches the exit
// block. A `defer mu.Unlock()` (direct or inside a deferred closure)
// releases on every path by construction and is the preferred fix.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "every Lock/RLock must be paired with an Unlock/RUnlock on all paths out of the function",
	Run:  runLockCheck,
}

// lockOp classifies one mutex call site.
type lockOp struct {
	key     string // rendered receiver, e.g. "mu", "p.mu", "global.mu"
	read    bool   // RLock/RUnlock
	acquire bool   // Lock/RLock vs Unlock/RUnlock
}

// classifyLockCall recognizes <recv>.Lock/Unlock/RLock/RUnlock() calls on
// mutex-like receivers. The receiver must render to a stable key and (when
// type information is available) have a mutex-like type, so unrelated
// Lock methods (e.g. a file-locking API) are left alone.
func classifyLockCall(pkg *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockOp{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = lockOp{acquire: true}
	case "Unlock":
		op = lockOp{}
	case "RLock":
		op = lockOp{read: true, acquire: true}
	case "RUnlock":
		op = lockOp{read: true}
	default:
		return lockOp{}, false
	}
	op.key = exprKey(sel.X)
	if op.key == "" {
		return lockOp{}, false
	}
	if !mutexLikeRecv(pkg, sel.X) {
		return lockOp{}, false
	}
	return op, true
}

// mutexLikeRecv reports whether the expression's static type looks like a
// lock (sync.Mutex, sync.RWMutex, sync.Locker, or any type whose name ends
// in Mutex or Locker — fixtures model the API locally). Without type
// information it answers true: the method-name filter already did the
// heavy lifting.
func mutexLikeRecv(pkg *Package, e ast.Expr) bool {
	if pkg.Info == nil {
		return true
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return strings.HasSuffix(name, "Mutex") || strings.HasSuffix(name, "Locker") || name == "Once"
}

// ---------------------------------------------------------------------------
// May-unreleased analysis (lockcheck)

// acqSite is one acquisition that has not (yet) been released.
type acqSite struct {
	key  string
	read bool
	pos  token.Pos
}

// lockPairFact is the may-analysis fact: acquisitions possibly still held,
// plus the lock keys for which a deferred release is registered (a later
// Lock of such a key is already paired).
type lockPairFact struct {
	pending  map[acqSite]bool
	deferred map[string]bool // key + "/r" marker for read locks
}

func deferKey(key string, read bool) string {
	if read {
		return key + "/r"
	}
	return key
}

func (f lockPairFact) clone() lockPairFact {
	out := lockPairFact{
		pending:  make(map[acqSite]bool, len(f.pending)),
		deferred: make(map[string]bool, len(f.deferred)),
	}
	for k := range f.pending {
		out.pending[k] = true
	}
	for k := range f.deferred {
		out.deferred[k] = true
	}
	return out
}

type lockPairProblem struct {
	pkg *Package
}

func (p *lockPairProblem) EntryFact() any {
	return lockPairFact{pending: map[acqSite]bool{}, deferred: map[string]bool{}}
}

func (p *lockPairProblem) Transfer(fact any, n ast.Node) any {
	f := fact.(lockPairFact)
	out := f
	mutated := false
	ensure := func() {
		if !mutated {
			out = f.clone()
			mutated = true
		}
	}
	release := func(key string, read bool) {
		ensure()
		for site := range out.pending {
			if site.key == key && site.read == read {
				delete(out.pending, site)
			}
		}
	}
	if def, ok := n.(*ast.DeferStmt); ok {
		// defer mu.Unlock() — or a deferred closure that unlocks — releases
		// on every path out of the function.
		for _, op := range deferredReleases(p.pkg, def) {
			release(op.key, op.read)
			ensure()
			out.deferred[deferKey(op.key, op.read)] = true
		}
		return out
	}
	inspectNoFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := classifyLockCall(p.pkg, call)
		if !ok {
			return true
		}
		if op.acquire {
			if out.deferred[deferKey(op.key, op.read)] {
				return true // already paired by a registered deferred release
			}
			ensure()
			out.pending[acqSite{key: op.key, read: op.read, pos: call.Pos()}] = true
		} else {
			release(op.key, op.read)
		}
		return true
	})
	return out
}

// deferredReleases lists the unlock operations a defer statement registers:
// the direct `defer mu.Unlock()` form and unlocks inside `defer func(){...}()`.
func deferredReleases(pkg *Package, def *ast.DeferStmt) []lockOp {
	var ops []lockOp
	if op, ok := classifyLockCall(pkg, def.Call); ok && !op.acquire {
		ops = append(ops, op)
	}
	if lit, ok := def.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if op, ok := classifyLockCall(pkg, call); ok && !op.acquire {
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	return ops
}

func (p *lockPairProblem) Join(a, b any) any {
	fa, fb := a.(lockPairFact), b.(lockPairFact)
	out := fa.clone()
	for k := range fb.pending {
		out.pending[k] = true
	}
	for k := range fb.deferred {
		out.deferred[k] = true
	}
	return out
}

func (p *lockPairProblem) Equal(a, b any) bool {
	fa, fb := a.(lockPairFact), b.(lockPairFact)
	if len(fa.pending) != len(fb.pending) || len(fa.deferred) != len(fb.deferred) {
		return false
	}
	for k := range fa.pending {
		if !fb.pending[k] {
			return false
		}
	}
	for k := range fa.deferred {
		if !fb.deferred[k] {
			return false
		}
	}
	return true
}

func runLockCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, unit := range funcUnits(f) {
			cfg := BuildCFG(cfgName(pass.Pkg.Fset, unit), unit.Body)
			problem := &lockPairProblem{pkg: pass.Pkg}
			res := Solve(cfg, problem)
			exit := ExitFact(res, cfg)
			if exit == nil {
				continue // no path reaches the end (e.g. infinite loop)
			}
			leaks := exit.(lockPairFact)
			var sites []acqSite
			for site := range leaks.pending {
				sites = append(sites, site)
			}
			sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
			for _, site := range sites {
				lockName, unlockName := "Lock", "Unlock"
				if site.read {
					lockName, unlockName = "RLock", "RUnlock"
				}
				pass.Reportf(site.pos,
					"%s.%s() is not released on every path out of %s: add the missing %s or prefer defer %s.%s()",
					site.key, lockName, cfg.Name, unlockName, site.key, unlockName)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Must-held analysis (shared with the threadsafe analyzer)

// heldFact is the must-analysis fact: the set of lock keys held on EVERY
// path reaching a point. Join is set intersection.
type heldFact map[string]bool

type heldLocksProblem struct {
	pkg   *Package
	entry heldFact
}

// newHeldLocksProblem prepares the must-held problem for one unit. A
// function literal passed to x.Do(...) starts with the Once guard held —
// the runtime serializes it.
func newHeldLocksProblem(pkg *Package, unit FuncUnit) *heldLocksProblem {
	entry := heldFact{}
	if unit.OnceGuard != "" {
		entry[unit.OnceGuard] = true
	}
	return &heldLocksProblem{pkg: pkg, entry: entry}
}

func (p *heldLocksProblem) EntryFact() any { return p.entry }

func (p *heldLocksProblem) Transfer(fact any, n ast.Node) any {
	f := fact.(heldFact)
	if _, ok := n.(*ast.DeferStmt); ok {
		return f // a deferred Unlock releases at exit; the lock stays held here
	}
	out := f
	mutated := false
	ensure := func() {
		if !mutated {
			out = make(heldFact, len(f))
			for k := range f {
				out[k] = true
			}
			mutated = true
		}
	}
	inspectNoFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := classifyLockCall(p.pkg, call)
		if !ok {
			return true
		}
		ensure()
		if op.acquire {
			out[op.key] = true
		} else {
			delete(out, op.key)
		}
		return true
	})
	return out
}

func (p *heldLocksProblem) Join(a, b any) any {
	fa, fb := a.(heldFact), b.(heldFact)
	out := make(heldFact)
	for k := range fa {
		if fb[k] {
			out[k] = true
		}
	}
	return out
}

func (p *heldLocksProblem) Equal(a, b any) bool {
	fa, fb := a.(heldFact), b.(heldFact)
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}
