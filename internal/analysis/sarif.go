package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output (-sarif), the static-analysis interchange format GitHub
// code scanning and most IDE integrations ingest. Only the fields consumers
// require are emitted; the shapes below mirror the specification names.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders diagnostics as one SARIF 2.1.0 run. Every analyzer in
// the suite appears as a rule (so consumers can enumerate the ruleset even
// on a clean run); each diagnostic becomes a warning-level result.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pressiolint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
