package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// SARIF 2.1.0 output (-sarif), the static-analysis interchange format GitHub
// code scanning and most IDE integrations ingest. Only the fields consumers
// require are emitted; the shapes below mirror the specification names.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name,omitempty"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// Fingerprint identifies a diagnostic for deduplication and baseline
// comparison: same analyzer, same position, same message.
func (d Diagnostic) Fingerprint() string {
	return fmt.Sprintf("%s|%s:%d:%d|%s", d.Analyzer, d.File, d.Line, d.Col, d.Message)
}

// DedupeDiagnostics drops exact duplicates (two analyzers walking overlapping
// CFG nodes, or one site reported per data-flow fact) while preserving order.
func DedupeDiagnostics(diags []Diagnostic) []Diagnostic {
	seen := make(map[string]bool, len(diags))
	out := diags[:0:0]
	for _, d := range diags {
		fp := d.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, d)
	}
	return out
}

// WriteSARIF renders diagnostics as one SARIF 2.1.0 run. Every analyzer in
// the suite appears as a rule stamped with its doc string (so consumers can
// enumerate the ruleset even on a clean run); each diagnostic becomes a
// warning-level result, with exact duplicates collapsed.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			Name:             a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	diags = DedupeDiagnostics(diags)
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pressiolint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ReadSARIFBaseline parses a SARIF log (as written by WriteSARIF) and returns
// the fingerprint set of its results, for new-vs-baseline comparison.
func ReadSARIFBaseline(r io.Reader) (map[string]bool, error) {
	var log sarifLog
	if err := json.NewDecoder(r).Decode(&log); err != nil {
		return nil, fmt.Errorf("parse SARIF baseline: %w", err)
	}
	fps := map[string]bool{}
	for _, run := range log.Runs {
		for _, res := range run.Results {
			d := Diagnostic{Analyzer: res.RuleID, Message: res.Message.Text}
			if len(res.Locations) > 0 {
				pl := res.Locations[0].PhysicalLocation
				d.File = pl.ArtifactLocation.URI
				d.Line = pl.Region.StartLine
				d.Col = pl.Region.StartColumn
			}
			fps[d.Fingerprint()] = true
		}
	}
	return fps, nil
}

// BaselineDelta is the result of comparing a run against a committed SARIF
// baseline: only New findings gate a build; Fixed is how many baseline
// entries no longer fire (a nudge to re-record the baseline).
type BaselineDelta struct {
	Baseline int
	Current  int
	New      []Diagnostic
	Fixed    int
}

// DiffBaseline splits the (deduplicated) current diagnostics into those
// already present in the baseline and those that are new, and counts baseline
// entries that no longer reproduce.
func DiffBaseline(diags []Diagnostic, baseline map[string]bool) BaselineDelta {
	diags = DedupeDiagnostics(diags)
	delta := BaselineDelta{Baseline: len(baseline), Current: len(diags)}
	matched := map[string]bool{}
	for _, d := range diags {
		fp := d.Fingerprint()
		if baseline[fp] {
			matched[fp] = true
			continue
		}
		delta.New = append(delta.New, d)
	}
	delta.Fixed = len(baseline) - len(matched)
	return delta
}

// WriteDeltaTable renders the baseline comparison as a Markdown table (the
// shape CI drops into its job summary) followed by the new findings.
func (delta BaselineDelta) WriteDeltaTable(w io.Writer) {
	fmt.Fprintln(w, "| findings | count |")
	fmt.Fprintln(w, "|---|---|")
	fmt.Fprintf(w, "| baseline | %d |\n", delta.Baseline)
	fmt.Fprintf(w, "| current | %d |\n", delta.Current)
	fmt.Fprintf(w, "| new | %d |\n", len(delta.New))
	fmt.Fprintf(w, "| fixed | %d |\n", delta.Fixed)
	if len(delta.New) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "New findings:")
		for _, d := range delta.New {
			fmt.Fprintf(w, "- `%s`\n", d.String())
		}
	}
	if delta.Fixed > 0 {
		// Stale fingerprints warn rather than fail: recorded debt that no
		// longer reproduces should be pruned, but must not block a build.
		fmt.Fprintln(w)
		fmt.Fprintf(w, "warning: %d baseline fingerprint(s) no longer reproduce; run `make lint-baseline` to re-record the baseline\n", delta.Fixed)
	}
}
