package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-function summaries bottom-up over the call graph's
// SCC condensation. A summary answers, for one function body, the questions
// the interprocedural analyzers ask at call sites: can this call block (and
// why), does it allocate (and where), does it spawn goroutines, does it
// take or release locks, does it see a context. Within an SCC the booleans
// are monotone, so the computation iterates the bottom-up order to a
// fixpoint; calls that leave the module (standard library) are classified by
// the curated tables below instead of a summary.

// FuncSummary is the interprocedural abstract of one function body.
type FuncSummary struct {
	// SpawnsGoroutine: the body (not its callees) contains a go statement.
	SpawnsGoroutine bool

	// Blocks: a call may not return promptly — channel operations, I/O,
	// sync waits, or a Compress/Decompress dispatch (whose cost is the
	// codec's, unbounded from the caller's perspective). Propagates through
	// every call edge except go statements (the spawner does not wait).
	Blocks   bool
	BlockWhy string

	// BlocksForever: the stronger property goroutine-leak analysis needs —
	// the body can block indefinitely on external events (channel ops,
	// selects without default, I/O, sync.WaitGroup.Wait). Propagates only
	// through static call edges: dynamic dispatch would smear one slow
	// implementation over every caller.
	BlocksForever   bool
	BlockForeverWhy string

	// Allocates: the body has a non-exempt allocation site, or reaches one
	// through module-local calls. AllocVia is the call chain ("WriteBits:
	// append grows w.buf"), empty for own sites.
	Allocates bool
	AllocWhat string
	AllocPos  token.Pos
	AllocVia  string

	// AcquiresLock / ReleasesLock: the body performs mutex operations.
	AcquiresLock bool
	ReleasesLock bool

	// HasCtxParam / UsesCtx: the declared signature takes a context.Context,
	// and the body actually reads some context value (its own parameter or a
	// captured one).
	HasCtxParam bool
	UsesCtx     bool

	// OwnAllocs lists the body's non-exempt allocation sites for hotalloc.
	OwnAllocs []AllocSite

	// TaintOut is the taint mask of each result value, over the function's
	// own parameter bits plus the source bit; TaintIn records the sinks each
	// parameter can reach. Both are backfilled by ComputeTaint (taint.go).
	TaintOut []uint64
	TaintIn  []TaintSinkRef
}

// AllocSite is one allocation the summary walker attributes to a body.
type AllocSite struct {
	Pos    token.Pos
	What   string
	InLoop bool // syntactically inside a for/range in this body
}

// Summaries is the computed summary table plus the graph it covers.
type Summaries struct {
	Graph *CallGraph
	info  map[*FuncNode]*FuncSummary
}

// Of returns the summary of a node (nil for nil nodes).
func (s *Summaries) Of(n *FuncNode) *FuncSummary {
	if n == nil {
		return nil
	}
	return s.info[n]
}

// ---------------------------------------------------------------------------
// Curated classification of calls that leave the module.

// blockingStdPkgs are the packages whose exported calls are treated as I/O
// that can stall indefinitely (sockets, pipes, files, subprocesses).
var blockingStdPkgs = map[string]bool{
	"net": true, "net/http": true, "os": true, "io": true,
	"bufio": true, "os/exec": true, "syscall": true, "io/fs": true,
}

// nonBlockingStdFuncs exempts the calls in those packages that never touch
// the kernel: environment, pid and error-classification helpers.
var nonBlockingStdFuncs = map[string]bool{
	"os.Getenv": true, "os.LookupEnv": true, "os.Setenv": true,
	"os.Environ": true, "os.Getpid": true, "os.Geteuid": true,
	"os.IsNotExist": true, "os.IsExist": true, "os.IsPermission": true,
	"os.IsTimeout": true, "os.Expand": true, "os.ExpandEnv": true,
	"io.LimitReader": true, "io.MultiReader": true, "io.MultiWriter": true,
	"io.NopCloser": true, "bufio.NewReader": true, "bufio.NewWriter": true,
	"bufio.NewScanner": true, "bufio.NewReadWriter": true,
	"net/http.NewServeMux": true, "net/http.NotFound": true,
	"net/http.Error": true, "net/http.MaxBytesReader": true,
	"net/http.NewRequest": true, "net/http.StatusText": true,
}

// dispatchMethodNames are the generic-compression entry points: a call to
// any method with one of these names is a codec dispatch whose duration is
// the plugin's business — holding a lock across one stalls every peer for as
// long as the codec (or the external process behind it) takes.
var dispatchMethodNames = map[string]bool{
	"Compress": true, "Decompress": true,
	"CompressImpl": true, "DecompressImpl": true,
}

// coldPathFuncs construct errors; allocation under them is cold-path by
// convention and never charged to the enclosing function.
var coldPathFuncs = map[string]bool{
	"errors.New": true, "fmt.Errorf": true,
}

// qualifiedName renders "pkg/path.Name" (receiver-less) for table lookups.
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// calleeObject resolves the called *types.Func of a call expression when the
// callee is a named function or method (nil for function values/literals).
func calleeObject(pkg *Package, call *ast.CallExpr) *types.Func {
	if pkg.Info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.objectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.objectOf(fun.Sel).(*types.Func)
		return fn
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pkg.objectOf(id).(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := pkg.objectOf(id).(*types.Func)
			return fn
		}
	}
	return nil
}

// stdlibBlocking classifies a call that leaves the module: ("reason", bounded)
// where bounded=false means it can stall indefinitely.
func stdlibBlocking(fn *types.Func) (reason string, forever bool, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false, false
	}
	q := qualifiedName(fn)
	switch q {
	case "time.Sleep":
		return "time.Sleep", false, true
	}
	if fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
		return "sync wait", true, true
	}
	if blockingStdPkgs[fn.Pkg().Path()] && !nonBlockingStdFuncs[q] {
		return q + " (I/O)", true, true
	}
	return "", false, false
}

// isDispatchCall reports whether the call is a compressor dispatch: a method
// call named Compress/Decompress/CompressImpl/DecompressImpl. Matching is by
// name so fixture packages can model dispatch without importing
// internal/core; plain functions with those names (not methods) are exempt.
func isDispatchCall(pkg *Package, call *ast.CallExpr) bool {
	// Package-qualified forms (core.Compress(c, in)) count too: the helper
	// forwards straight to the interface method.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && dispatchMethodNames[sel.Sel.Name]
}

// isColdPathCall reports error-construction calls whose subtree the
// allocation walker skips.
func isColdPathCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeObject(pkg, call)
	if fn == nil {
		return false
	}
	return coldPathFuncs[qualifiedName(fn)]
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isContextCtorCall matches context.Background() / context.TODO().
func isContextCtorCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeObject(pkg, call)
	if fn == nil {
		return false
	}
	q := qualifiedName(fn)
	return q == "context.Background" || q == "context.TODO"
}

// ---------------------------------------------------------------------------
// Summary computation.

// ComputeSummaries builds the summary table bottom-up; within SCCs it
// iterates to a fixpoint (the propagated facts are monotone booleans, so the
// iteration count is bounded by the number of facts).
func ComputeSummaries(g *CallGraph) *Summaries {
	s := &Summaries{Graph: g, info: make(map[*FuncNode]*FuncSummary, len(g.Nodes))}
	order := g.BottomUp()
	for _, n := range order {
		s.info[n] = s.local(n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if s.propagate(n) {
				changed = true
			}
		}
	}
	return s
}

// local computes the call-free half of a node's summary: own blocking
// constructs, own allocation sites, lock operations, context usage.
func (s *Summaries) local(n *FuncNode) *FuncSummary {
	sum := &FuncSummary{}
	pkg := n.Pkg
	if n.Decl != nil && n.Decl.Type.Params != nil && pkg.Info != nil {
		for _, field := range n.Decl.Type.Params.List {
			if tv, ok := pkg.Info.Types[field.Type]; ok && tv.Type != nil && isContextType(tv.Type) {
				sum.HasCtxParam = true
			}
		}
	}
	if n.Lit != nil && n.Lit.Type.Params != nil && pkg.Info != nil {
		for _, field := range n.Lit.Type.Params.List {
			if tv, ok := pkg.Info.Types[field.Type]; ok && tv.Type != nil && isContextType(tv.Type) {
				sum.HasCtxParam = true
			}
		}
	}

	block := func(why string, forever bool) {
		if !sum.Blocks {
			sum.Blocks, sum.BlockWhy = true, why
		}
		if forever && !sum.BlocksForever {
			sum.BlocksForever, sum.BlockForeverWhy = true, why
		}
	}

	// nonBlockingComms collects the comm statements of selects WITH a
	// default clause: those channel operations never block.
	nonBlockingComms := map[ast.Stmt]bool{}
	inspectNoFuncLit(n.Body, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlockingComms[cc.Comm] = true
				}
			}
		}
		return true
	})

	walkAlloc(n, func(site AllocSite) {
		sum.OwnAllocs = append(sum.OwnAllocs, site)
		if !sum.Allocates {
			sum.Allocates, sum.AllocWhat, sum.AllocPos = true, site.What, site.Pos
		}
	})

	inspectNoFuncLit(n.Body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.GoStmt:
			sum.SpawnsGoroutine = true
		case *ast.SendStmt:
			if !nonBlockingComms[x] {
				block("channel send", true)
			}
		case *ast.ExprStmt:
			// receives used as statements are covered by the UnaryExpr case
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				block("channel receive", true)
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				block("select without default", true)
			}
		case *ast.RangeStmt:
			if pkg.Info != nil {
				if tv, ok := pkg.Info.Types[x.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						block("range over channel", true)
					}
				}
			}
		case *ast.CallExpr:
			if op, ok := classifyLockCall(pkg, x); ok {
				if op.acquire {
					sum.AcquiresLock = true
				} else {
					sum.ReleasesLock = true
				}
				return true
			}
			fn := calleeObject(pkg, x)
			if why, forever, ok := stdlibBlocking(fn); ok {
				block(why, forever)
			} else if isDispatchCall(pkg, x) {
				block("compressor dispatch", false)
			}
		case *ast.Ident:
			if pkg.Info != nil {
				if obj := pkg.objectOf(x); obj != nil {
					if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
						sum.UsesCtx = true
					}
				}
			}
		}
		return true
	})
	return sum
}

// sendInsideGo reports nothing here — buffered-send exemptions are resolved
// by the goroutineleak analyzer, which sees both the spawning and spawned
// scopes; the summary stays conservative.

// propagate folds callee summaries into n's summary; reports change.
func (s *Summaries) propagate(n *FuncNode) bool {
	sum := s.info[n]
	changed := false
	for _, e := range n.Calls {
		if e.Go {
			continue // the spawner neither waits nor blocks on the spawned body
		}
		callee := s.info[e.Callee]
		if callee == nil {
			continue
		}
		if callee.Blocks && !sum.Blocks {
			sum.Blocks = true
			sum.BlockWhy = "call to " + e.Callee.ShortName() + " (" + callee.BlockWhy + ")"
			changed = true
		}
		if callee.BlocksForever && !e.Dynamic && !sum.BlocksForever {
			sum.BlocksForever = true
			sum.BlockForeverWhy = "call to " + e.Callee.ShortName() + " (" + callee.BlockForeverWhy + ")"
			changed = true
		}
		if callee.Allocates && !sum.Allocates {
			sum.Allocates = true
			sum.AllocWhat = callee.AllocWhat
			sum.AllocPos = callee.AllocPos
			via := e.Callee.ShortName()
			if callee.AllocVia != "" {
				via += " -> " + callee.AllocVia
			}
			sum.AllocVia = via
			changed = true
		}
	}
	return changed
}

// ShortName strips the package qualifier for chain rendering.
func (n *FuncNode) ShortName() string {
	name := n.Name
	if i := strings.Index(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// ---------------------------------------------------------------------------
// Allocation-site walker.

// walkAlloc visits every non-exempt allocation site of a body. Exemptions,
// chosen to mirror what the perf ledger's allocs/op gate tolerates:
//   - error construction (errors.New / fmt.Errorf) and everything inside it:
//     cold path by convention;
//   - append assigned back to a field of the receiver (w.buf = append(w.buf,
//     ...)): amortized growth of an owned buffer;
//   - append assigned back to a local whose make(...) with a capacity/length
//     argument is visible in the same body: preallocated;
//   - append assigned back to a slice parameter (the strconv.AppendInt
//     builder idiom: growth amortizes into the caller's buffer policy);
//   - append whose first operand is a slice expression (the splice idioms
//     x = append(x[:i], x[i+1:]...) and reuse-append(x[:0], ...) write into
//     existing capacity).
func walkAlloc(n *FuncNode, visit func(AllocSite)) {
	pkg := n.Pkg
	// preallocated locals: name -> true when defined by make with capacity.
	prealloc := map[string]bool{}
	inspectNoFuncLit(n.Body, func(m ast.Node) bool {
		asg, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if i < len(asg.Lhs) {
				if lid, ok := asg.Lhs[i].(*ast.Ident); ok {
					prealloc[lid.Name] = true
				}
			}
		}
		return true
	})

	recvNames := map[string]bool{}
	if n.Decl != nil && n.Decl.Recv != nil {
		for _, f := range n.Decl.Recv.List {
			for _, name := range f.Names {
				recvNames[name.Name] = true
			}
		}
	}
	paramNames := map[string]bool{}
	var ft *ast.FuncType
	switch {
	case n.Decl != nil:
		ft = n.Decl.Type
	case n.Lit != nil:
		ft = n.Lit.Type
	}
	if ft != nil && ft.Params != nil {
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				paramNames[name.Name] = true
			}
		}
	}

	// selfAppends maps the append CallExpr -> true when it is the exempt
	// x = append(x, ...) shape with x preallocated or a receiver field.
	exemptAppend := map[*ast.CallExpr]bool{}
	inspectNoFuncLit(n.Body, func(m ast.Node) bool {
		asg, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if i >= len(asg.Lhs) {
				continue
			}
			if exprKey(asg.Lhs[i]) == "" || exprKey(asg.Lhs[i]) != exprKey(call.Args[0]) {
				continue
			}
			switch lhs := asg.Lhs[i].(type) {
			case *ast.SelectorExpr:
				if base, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && recvNames[base.Name] {
					exemptAppend[call] = true // amortized owned-buffer growth
				}
			case *ast.Ident:
				if prealloc[lhs.Name] || paramNames[lhs.Name] {
					exemptAppend[call] = true // preallocated, or builder idiom
				}
			}
		}
		return true
	})

	var walk func(m ast.Node, loopDepth int)
	walk = func(root ast.Node, loopDepth int) {
		ast.Inspect(root, func(m ast.Node) bool {
			if m == nil || m == root {
				return true
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				visit(AllocSite{Pos: x.Pos(), What: "closure", InLoop: loopDepth > 0})
				return false // its body is another node
			case *ast.ForStmt:
				if x.Init != nil {
					walk(x.Init, loopDepth)
				}
				if x.Cond != nil {
					walk(x.Cond, loopDepth)
				}
				if x.Post != nil {
					walk(x.Post, loopDepth)
				}
				walk(x.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(x.X, loopDepth)
				walk(x.Body, loopDepth+1)
				return false
			case *ast.CallExpr:
				if isColdPathCall(pkg, x) {
					return false // error construction: cold path
				}
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
					switch id.Name {
					case "make":
						if isBuiltin(pkg, id) {
							visit(AllocSite{Pos: x.Pos(), What: "make", InLoop: loopDepth > 0})
						}
					case "new":
						if isBuiltin(pkg, id) {
							visit(AllocSite{Pos: x.Pos(), What: "new", InLoop: loopDepth > 0})
						}
					case "append":
						exempt := exemptAppend[x]
						if len(x.Args) > 0 {
							switch arg := ast.Unparen(x.Args[0]).(type) {
							case *ast.SliceExpr:
								// Splice/reuse idioms write into existing
								// capacity.
								exempt = true
							case *ast.Ident:
								// Builder idiom (return append(buf, ...)):
								// growth amortizes into the caller's buffer.
								exempt = exempt || paramNames[arg.Name]
							}
						}
						if isBuiltin(pkg, id) && !exempt {
							visit(AllocSite{Pos: x.Pos(), What: "append growth", InLoop: loopDepth > 0})
						}
					}
				}
				if conv, ok := allocConversion(pkg, x); ok {
					visit(AllocSite{Pos: x.Pos(), What: conv, InLoop: loopDepth > 0})
				}
			case *ast.CompositeLit:
				if pkg.Info != nil {
					if tv, ok := pkg.Info.Types[x]; ok && tv.Type != nil {
						switch tv.Type.Underlying().(type) {
						case *types.Slice:
							visit(AllocSite{Pos: x.Pos(), What: "slice literal", InLoop: loopDepth > 0})
						case *types.Map:
							visit(AllocSite{Pos: x.Pos(), What: "map literal", InLoop: loopDepth > 0})
						}
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						visit(AllocSite{Pos: x.Pos(), What: "heap composite literal", InLoop: loopDepth > 0})
					}
				}
			}
			return true
		})
	}
	walk(n.Body, 0)
}

// isBuiltin confirms an identifier resolves to the universe-scope builtin
// (not a local redefinition); without type info it answers true.
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	if pkg.Info == nil {
		return true
	}
	obj := pkg.objectOf(id)
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// allocConversion detects []byte(string) / string([]byte) conversion copies.
func allocConversion(pkg *Package, call *ast.CallExpr) (string, bool) {
	if pkg.Info == nil || len(call.Args) != 1 {
		return "", false
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || tv.Type == nil {
		return "", false
	}
	argTV, ok := pkg.Info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return "", false
	}
	dst, src := tv.Type.Underlying(), argTV.Type.Underlying()
	if isByteSlice(dst) && isString(src) {
		return "[]byte(string) copy", true
	}
	if isString(dst) && isByteSlice(src) {
		return "string([]byte) copy", true
	}
	return "", false
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
