package analysis

// UntrustedAlloc flags the decompression-bomb shape the PR-4 fuzzing found
// in fpzip: a value derived from the untrusted input stream reaches an
// allocation size (make length/capacity, bytes.Buffer.Grow) with no
// dominating bound check. A declared shape of 2^40 elements must be rejected
// against a cap derived from a constant, an option, or the actual input
// length — before the allocator commits the memory.
var UntrustedAlloc = &Analyzer{
	Name: "untrustedalloc",
	Doc:  "allocation sized by untrusted input without a dominating bound check (decompression bomb)",
	Run: func(pass *Pass) {
		pass.Facts.Taint.reportKind(pass, TaintAlloc)
	},
}
