package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file is the interprocedural taint engine behind the untrustedalloc,
// untrustedloop and untrustedindex analyzers: the static counterpart of the
// PR-4 fuzzing campaign. Taint sources are decode-side inputs — the
// Decompress/DecompressImpl/DecompressSlice byte stream, values pulled
// through the bitstream/rangecoder readers, HTTP request bodies, file reads.
// Taint flows through assignments, arithmetic, struct and slice flow, and
// call edges (per-function TaintOut masks composed at call sites, fixpoint
// over the call graph's SCCs like the Allocates summary), and is killed by
// recognized sanitizers — comparisons against caps, min-style clamps,
// len-derived bounds — each modeled as a syntactic region so findings can
// name the missing check. Sinks are the three shapes fuzzing found:
// allocation sizes (the bomb), loop bounds and loop-carried steps (the
// spin), and slice indexes (the panic).

// Taint masks are bitsets: bit i marks "derived from parameter i" (the
// receiver is parameter 0 of a method, so header fields flow through
// accessor helpers), and the top bit marks "derived from an unconditional
// source" — a stream read, an HTTP body, a file read.
const (
	taintSourceBit uint64 = 1 << 63
	maxTaintParams        = 63
)

// taintParamBit returns the mask bit of parameter i; parameters beyond the
// representable range share the last bit (conservative).
func taintParamBit(i int) uint64 {
	if i >= maxTaintParams {
		i = maxTaintParams - 1
	}
	return 1 << uint(i)
}

// TaintKind classifies a sink.
type TaintKind int

const (
	// TaintAlloc: a tainted value sizes an allocation (make, Buffer.Grow).
	TaintAlloc TaintKind = iota
	// TaintLoop: a tainted value bounds a loop or feeds a loop-carried step.
	TaintLoop
	// TaintIndex: a tainted value indexes a slice or array.
	TaintIndex
)

func (k TaintKind) String() string {
	switch k {
	case TaintAlloc:
		return "alloc"
	case TaintLoop:
		return "loop"
	case TaintIndex:
		return "index"
	}
	return "unknown"
}

// TaintSink is one recorded sink inside a function body: a program point
// where a possibly-tainted value does something dangerous. Whether it is
// reported depends on the root propagation: the mask must carry the source
// bit or a parameter bit that is runtime-tainted in some calling context.
type TaintSink struct {
	Kind TaintKind
	Pos  token.Pos
	// What names the dangerous use ("make size", "loop bound", ...).
	What string
	// Expr renders the tainted expression for the message.
	Expr string
	// Mask is the taint mask of the value at the sink.
	Mask uint64
	// Fix names the missing sanitizer ("cap it against a constant or
	// config-derived limit before allocating").
	Fix string
}

// TaintSinkRef is the summary-level record of a sink reachable from a
// parameter: callers passing untrusted data into Param hit Kind/What at Pos.
// It is the TaintIn half of the summary facts.
type TaintSinkRef struct {
	Param int
	Kind  TaintKind
	What  string
	Pos   token.Pos
}

// taintCall records one resolved call site with the taint masks of its
// arguments (receiver first for methods), for the top-down root propagation.
type taintCall struct {
	callee   *FuncNode
	pos      token.Pos
	argMasks []uint64
}

// taintNode is the per-function result of the bottom-up analysis.
type taintNode struct {
	// out[i] is the taint mask of result i, expressed over the node's own
	// parameter bits plus the source bit.
	out []uint64
	// sinks are the dangerous uses observed in the body.
	sinks []TaintSink
	// calls are the resolved module-local call sites with argument masks.
	calls []taintCall
	// params are the parameter objects in bit order (receiver first; nil
	// entries for unnamed parameters).
	params []*types.Var
	// rooted is the set of parameter bits that carry untrusted data in some
	// reachable calling context (set by the top-down propagation).
	rooted uint64
	// rootWhy explains the first rooting ("decode entry", "tainted argument
	// from fpzip.DecompressSlice").
	rootWhy string
}

// TaintInfo is the module-wide taint computation, stored in Facts.Taint.
type TaintInfo struct {
	Graph *CallGraph
	nodes map[*FuncNode]*taintNode
}

// untrustedDirective roots every parameter of the annotated function, for
// entry points the name-based root heuristic cannot see.
const untrustedDirective = "pressio:untrusted"

// decodeEntryNames are the decode-side entry points whose []byte parameters
// are rooted unconditionally: any registered codec can be handed any stream.
var decodeEntryNames = map[string]bool{
	"Decompress": true, "DecompressImpl": true, "DecompressSlice": true,
}

// untrustedReaderPkgs marks packages whose reader methods yield stream-
// derived values even when the receiver's provenance is not visible (a
// reader stored in a decoder struct field, fed by another method).
var untrustedReaderPkgs = map[string]bool{"bitstream": true, "rangecoder": true}

// boundedMethodNames return sizes of in-memory state the runtime already
// bounds: treating them as untainted is what makes len-derived bounds a
// sanitizer (`dec.Len()`, `buf.Cap()`). Dims is included because the only
// Dims accessors in the module are on core.Data, whose checked
// constructors (NewMove, NewBytes) pin the dims product to the backing
// buffer's length before a Data can exist.
var boundedMethodNames = map[string]bool{"Len": true, "Size": true, "Cap": true, "Dims": true}

// sourceFuncs are calls whose results are untrusted bytes in the I/O-plane
// packages (internal/pio, internal/h5lite), where file contents are the
// attacker-controllable stream. Elsewhere (CLI clients, tools) a file read
// is operator input, and treating it as hostile would root the entire
// compress side through the clients.
var sourceFuncs = map[string]bool{
	"os.ReadFile": true, "io.ReadAll": true, "io/ioutil.ReadFile": true,
}

// sourcePkgSuffixes limit sourceFuncs to the I/O-plane packages.
var sourcePkgSuffixes = []string{"/pio", "/h5lite"}

func pkgReadsUntrustedFiles(path string) bool {
	for _, suf := range sourcePkgSuffixes {
		if strings.HasSuffix(path, suf) || strings.Contains(path, suf+"/") {
			return true
		}
	}
	return false
}

// ComputeTaint runs the bottom-up mask computation to a fixpoint over the
// SCC order, then the top-down root propagation, and backfills the TaintOut/
// TaintIn facts on the function summaries.
func ComputeTaint(g *CallGraph, sums *Summaries) *TaintInfo {
	ti := &TaintInfo{Graph: g, nodes: make(map[*FuncNode]*taintNode, len(g.Nodes))}
	order := g.BottomUp()
	for _, n := range order {
		ti.nodes[n] = &taintNode{}
	}
	// Bottom-up fixpoint: a node's masks depend on callee TaintOut, which is
	// complete after one pass on a DAG; SCC cycles converge because masks
	// only grow.
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			fresh := ti.analyze(n)
			if !equalMaskSlices(fresh.out, ti.nodes[n].out) {
				changed = true
			}
			fresh.rooted, fresh.rootWhy = ti.nodes[n].rooted, ti.nodes[n].rootWhy
			ti.nodes[n] = fresh
		}
	}
	ti.propagateRoots()
	if sums != nil {
		for _, n := range order {
			tn := ti.nodes[n]
			sum := sums.Of(n)
			if sum == nil {
				continue
			}
			sum.TaintOut = tn.out
			for _, sink := range tn.sinks {
				for i := range tn.params {
					if sink.Mask&taintParamBit(i) != 0 {
						sum.TaintIn = append(sum.TaintIn, TaintSinkRef{Param: i, Kind: sink.Kind, What: sink.What, Pos: sink.Pos})
					}
				}
			}
		}
	}
	return ti
}

func equalMaskSlices(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runtimeTainted reports whether a mask carries untrusted data in node's
// calling contexts: the source bit always does, a parameter bit only when
// the top-down propagation rooted it.
func (ti *TaintInfo) runtimeTainted(mask uint64, n *taintNode) bool {
	return mask&taintSourceBit != 0 || mask&n.rooted != 0
}

// propagateRoots seeds the entry points and pushes runtime taint forward
// through the recorded call-argument masks until fixpoint.
func (ti *TaintInfo) propagateRoots() {
	var work []*FuncNode
	pushRoot := func(n *FuncNode, bits uint64, why string) {
		tn := ti.nodes[n]
		if tn == nil || bits&^tn.rooted == 0 {
			return
		}
		tn.rooted |= bits
		if tn.rootWhy == "" {
			tn.rootWhy = why
		}
		work = append(work, n)
	}
	for _, n := range ti.Graph.Nodes {
		tn := ti.nodes[n]
		if tn == nil {
			continue
		}
		name := ""
		if n.Decl != nil {
			name = n.Decl.Name.Name
		}
		if decodeEntryNames[name] {
			var bits uint64
			for i, p := range tn.params {
				if p != nil && isByteSliceType(p.Type()) {
					bits |= taintParamBit(i)
				}
			}
			pushRoot(n, bits, "decode entry "+n.ShortName())
		}
		if n.Decl != nil && hasDirective(n.Decl, untrustedDirective) {
			var bits uint64
			for i := range tn.params {
				bits |= taintParamBit(i)
			}
			pushRoot(n, bits, "//pressio:untrusted on "+n.ShortName())
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		tn := ti.nodes[n]
		for _, c := range tn.calls {
			callee := ti.nodes[c.callee]
			if callee == nil {
				continue
			}
			var bits uint64
			for i, m := range c.argMasks {
				if ti.runtimeTainted(m, tn) {
					bits |= taintParamBit(i)
				}
			}
			pushRoot(c.callee, bits, "tainted argument from "+n.ShortName())
		}
	}
}

func isByteSliceType(t types.Type) bool {
	return isByteSlice(t.Underlying())
}

// reportKind is the shared reporting path of the three analyzers: every sink
// of the kind in the pass's package whose mask is runtime-tainted becomes a
// diagnostic naming the value, its origin, and the missing check.
func (ti *TaintInfo) reportKind(pass *Pass, kind TaintKind) {
	if ti == nil {
		return
	}
	for _, n := range ti.Graph.Nodes {
		if n.Pkg != pass.Pkg {
			continue
		}
		tn := ti.nodes[n]
		if tn == nil {
			continue
		}
		for _, sink := range tn.sinks {
			if sink.Kind != kind || !ti.runtimeTainted(sink.Mask, tn) {
				continue
			}
			pass.Reportf(sink.Pos, "%s %q is %s; %s", sink.What, sink.Expr, ti.origin(sink.Mask, tn), sink.Fix)
		}
	}
}

// origin renders where the taint came from for the diagnostic.
func (ti *TaintInfo) origin(mask uint64, tn *taintNode) string {
	if mask&taintSourceBit != 0 {
		return "derived from untrusted input (stream/file/body read)"
	}
	for i, p := range tn.params {
		if mask&taintParamBit(i) != 0 && mask&tn.rooted&taintParamBit(i) != 0 {
			name := "parameter"
			if p != nil {
				name = "parameter " + p.Name()
			}
			return fmt.Sprintf("derived from %s (%s)", name, tn.rootWhy)
		}
	}
	return "derived from untrusted input"
}

// ---------------------------------------------------------------------------
// Per-function analysis.

// taintValFact maps variable objects to taint masks; absent means untainted.
type taintValFact map[types.Object]uint64

// taintProblem is the FlowProblem plus the syntactic context (sanitizer
// regions, loop structure, range rewrites) the evaluator consults.
type taintProblem struct {
	ti   *TaintInfo
	node *FuncNode
	pkg  *Package

	entry taintValFact
	// regions are the recognized sanitizer scopes.
	regions []taintRegion
	// assigns records every (key, pos) assignment for region invalidation.
	assigns []assignRec
	// rangeX maps the synthesized range-binding AssignStmt to true (its Rhs
	// is the original range operand, recognized by pointer identity).
	rangeX map[ast.Expr]bool
	// edgesBySite groups the node's resolved call edges by call expression.
	edgesBySite map[*ast.CallExpr][]*CallEdge
	// forConds maps a ForStmt cond expression to its statement.
	forConds map[ast.Expr]*ast.ForStmt
	// loops lists enclosing-loop records for step/bound checks.
	loops []loopRec
	// results are the declared result variables (nil when unnamed).
	results    []*types.Var
	resultErrs []bool
}

// regionKind distinguishes what a sanitizer region guarantees.
type regionKind int

const (
	// regUpper: the key is bounded above by cap (or pinned to it).
	regUpper regionKind = iota
	// regPositive: the key is known strictly positive.
	regPositive
)

// taintRegion is one syntactic scope in which a guard holds for a key.
type taintRegion struct {
	key        string
	kind       regionKind
	cap        ast.Expr // bounding expression; nil for positive guards
	start, end token.Pos
}

// assignRec is one assignment to a rendered key, for region invalidation: a
// guard established before a reassignment says nothing about the new value.
type assignRec struct {
	key string
	pos token.Pos
}

// loopRec describes one for-loop for the step and bound-index rules.
type loopRec struct {
	stmt *ast.ForStmt
	// condVars are the loop-condition variables (progress depends on them).
	condVars map[types.Object]bool
	// boundOf maps an induction variable initialized in Init and compared
	// with < / <= in Cond to the bounding expression.
	boundOf map[types.Object]ast.Expr
}

// analyze computes one node's taintNode from scratch (masks over its own
// parameters, sinks, call records).
func (ti *TaintInfo) analyze(n *FuncNode) *taintNode {
	tn := &taintNode{}
	p := &taintProblem{
		ti:          ti,
		node:        n,
		pkg:         n.Pkg,
		entry:       taintValFact{},
		rangeX:      map[ast.Expr]bool{},
		edgesBySite: map[*ast.CallExpr][]*CallEdge{},
		forConds:    map[ast.Expr]*ast.ForStmt{},
	}
	for _, e := range n.Calls {
		p.edgesBySite[e.Site] = append(p.edgesBySite[e.Site], e)
	}
	tn.params = p.collectParams()
	for i, v := range tn.params {
		if v != nil {
			p.entry[v] = taintParamBit(i)
		}
	}
	p.collectResults()
	p.collectLoops()
	p.collectAssigns()
	p.regions = collectRegions(n.Body)
	tn.out = make([]uint64, len(p.results))

	cfg := BuildCFG(n.Name, n.Body)
	res := Solve(cfg, p)
	seenSink := map[string]bool{}
	seenCall := map[*ast.CallExpr]bool{}
	WalkFacts(cfg, p, res, func(fact any, node ast.Node) {
		f := fact.(taintValFact)
		p.scanSinks(f, node, tn, seenSink)
		p.scanCalls(f, node, tn, seenCall)
		if ret, ok := node.(*ast.ReturnStmt); ok {
			p.recordReturn(f, ret, tn)
		}
	})
	return tn
}

// collectParams lists the parameter objects in bit order: receiver first for
// methods, then the declared value parameters.
func (p *taintProblem) collectParams() []*types.Var {
	var params []*types.Var
	addField := func(field *ast.Field) {
		if len(field.Names) == 0 {
			params = append(params, nil)
			return
		}
		for _, name := range field.Names {
			v, _ := p.pkg.objectOf(name).(*types.Var)
			params = append(params, v)
		}
	}
	var ft *ast.FuncType
	switch {
	case p.node.Decl != nil:
		if p.node.Decl.Recv != nil {
			for _, field := range p.node.Decl.Recv.List {
				addField(field)
			}
		}
		ft = p.node.Decl.Type
	case p.node.Lit != nil:
		ft = p.node.Lit.Type
	}
	if ft != nil && ft.Params != nil {
		for _, field := range ft.Params.List {
			addField(field)
		}
	}
	return params
}

// collectResults records the result slots: named objects for bare returns,
// and which slots are error-typed (errors carry no data taint).
func (p *taintProblem) collectResults() {
	var ft *ast.FuncType
	switch {
	case p.node.Decl != nil:
		ft = p.node.Decl.Type
	case p.node.Lit != nil:
		ft = p.node.Lit.Type
	}
	if ft == nil || ft.Results == nil {
		return
	}
	for _, field := range ft.Results.List {
		isErr := false
		if p.pkg.Info != nil {
			if tv, ok := p.pkg.Info.Types[field.Type]; ok && tv.Type != nil {
				isErr = isErrorType(tv.Type)
			}
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			var v *types.Var
			if i < len(field.Names) {
				v, _ = p.pkg.objectOf(field.Names[i]).(*types.Var)
			}
			p.results = append(p.results, v)
			p.resultErrs = append(p.resultErrs, isErr)
		}
	}
}

// collectLoops indexes the body's for loops: cond variables (for the step
// rule), induction bounds (for the bounded-index rule), and registers cond
// expressions so the sink scan recognizes them.
func (p *taintProblem) collectLoops() {
	inspectNoFuncLit(p.node.Body, func(m ast.Node) bool {
		fs, ok := m.(*ast.ForStmt)
		if !ok || fs.Cond == nil {
			return true
		}
		p.forConds[fs.Cond] = fs
		rec := loopRec{stmt: fs, condVars: map[types.Object]bool{}, boundOf: map[types.Object]ast.Expr{}}
		ast.Inspect(fs.Cond, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok {
				if obj := p.pkg.objectOf(id); obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						rec.condVars[obj] = true
					}
				}
			}
			return true
		})
		// Induction bound: for i := lo; i < E; ... -> boundOf[i] = E.
		if cmp, ok := fs.Cond.(*ast.BinaryExpr); ok && (cmp.Op == token.LSS || cmp.Op == token.LEQ) {
			if id, ok := ast.Unparen(cmp.X).(*ast.Ident); ok {
				if obj := p.pkg.objectOf(id); obj != nil && initializes(p.pkg, fs.Init, obj) {
					rec.boundOf[obj] = cmp.Y
				}
			}
		}
		p.loops = append(p.loops, rec)
		return true
	})
	// Range statements: recognize the synthesized binding by its Rhs, which
	// is the original range operand by pointer identity.
	inspectNoFuncLit(p.node.Body, func(m ast.Node) bool {
		if rs, ok := m.(*ast.RangeStmt); ok {
			p.rangeX[rs.X] = true
		}
		return true
	})
}

// initializes reports whether init assigns the object (i := lo / i = lo).
func initializes(pkg *Package, init ast.Stmt, obj types.Object) bool {
	asg, ok := init.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range asg.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && pkg.objectOf(id) == obj {
			return true
		}
	}
	return false
}

// collectAssigns records every assignment position by rendered key, so a
// sanitizer region is invalidated for uses after the key is reassigned.
func (p *taintProblem) collectAssigns() {
	add := func(e ast.Expr, pos token.Pos) {
		if k := exprKey(e); k != "" {
			p.assigns = append(p.assigns, assignRec{key: k, pos: pos})
		}
	}
	inspectNoFuncLit(p.node.Body, func(m ast.Node) bool {
		switch st := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				add(lhs, st.TokPos)
			}
		case *ast.IncDecStmt:
			add(st.X, st.Pos())
		case *ast.RangeStmt:
			if st.Key != nil {
				add(st.Key, st.For)
			}
			if st.Value != nil {
				add(st.Value, st.For)
			}
		}
		return true
	})
	return
}

// ---------------------------------------------------------------------------
// FlowProblem implementation.

func (p *taintProblem) EntryFact() any {
	f := make(taintValFact, len(p.entry))
	for k, v := range p.entry {
		f[k] = v
	}
	return f
}

func (p *taintProblem) Join(a, b any) any {
	fa, fb := a.(taintValFact), b.(taintValFact)
	out := make(taintValFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	for k, v := range fb {
		out[k] |= v
	}
	return out
}

func (p *taintProblem) Equal(a, b any) bool {
	fa, fb := a.(taintValFact), b.(taintValFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func (p *taintProblem) Transfer(fact any, n ast.Node) any {
	f := fact.(taintValFact)
	out := f
	set := func(obj types.Object, mask uint64, strong bool) {
		if obj == nil {
			return
		}
		old, had := out[obj]
		if strong {
			if had && old == mask || !had && mask == 0 {
				return
			}
		} else {
			if old|mask == old {
				return
			}
			mask |= old
		}
		if equalFacts(out, f) { // copy-on-write
			out = make(taintValFact, len(f)+1)
			for k, v := range f {
				out[k] = v
			}
		}
		if mask == 0 {
			delete(out, obj)
		} else {
			out[obj] = mask
		}
	}
	assignTo := func(lhs ast.Expr, mask uint64) {
		if p.pkg.Info != nil {
			if tv, ok := p.pkg.Info.Types[lhs]; ok && tv.Type != nil && isErrorType(tv.Type) {
				mask = 0
			}
		}
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			set(p.pkg.objectOf(x), mask, true)
		default:
			// Selector, index, star: field-insensitive weak update on the
			// root object — tainting one header field taints the header.
			if root := taintRootIdent(lhs); root != nil {
				set(p.pkg.objectOf(root), mask, false)
			}
		}
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 && p.rangeX[st.Rhs[0]] {
			// Synthesized range binding: the key is an index/map key the
			// runtime bounds; the value carries the operand's element taint.
			if len(st.Lhs) > 0 {
				assignTo(st.Lhs[0], 0)
			}
			if len(st.Lhs) > 1 {
				assignTo(st.Lhs[1], p.maskOf(f, st.Rhs[0], 0))
			}
			return out
		}
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE && len(st.Lhs) == 1 && len(st.Rhs) == 1 {
			// Compound assignment: the result mixes both sides.
			mask := p.maskOf(f, st.Lhs[0], 0) | p.maskOf(f, st.Rhs[0], 0)
			assignTo(st.Lhs[0], mask)
			return out
		}
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			masks := p.tupleMasks(f, st.Rhs[0], len(st.Lhs))
			for i, lhs := range st.Lhs {
				assignTo(lhs, masks[i])
			}
			return out
		}
		for i, lhs := range st.Lhs {
			if i < len(st.Rhs) {
				assignTo(lhs, p.maskOf(f, st.Rhs[i], 0))
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == 1 && len(vs.Names) > 1 {
					masks := p.tupleMasks(f, vs.Values[0], len(vs.Names))
					for i, name := range vs.Names {
						assignTo(name, masks[i])
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						assignTo(name, p.maskOf(f, vs.Values[i], 0))
					}
				}
			}
		}
	default:
		// Fill-style reads (r.Read(buf), io.ReadFull(r, buf)) taint the
		// destination slice as a side effect — when the reader itself is
		// untrusted (tainted, or any reader in an I/O-plane package).
		inspectNoFuncLit(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name != "Read" && name != "ReadFull" && name != "ReadAtLeast" {
				return true
			}
			var readerMask uint64
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				readerMask = p.maskOf(f, sel.X, 0)
			} else if len(call.Args) > 0 {
				readerMask = p.maskOf(f, call.Args[0], 0)
			}
			if readerMask == 0 && !pkgReadsUntrustedFiles(p.pkg.Path) {
				return true
			}
			for _, arg := range call.Args {
				if p.pkg.Info == nil {
					continue
				}
				tv, ok := p.pkg.Info.Types[arg]
				if !ok || tv.Type == nil || !isByteSliceType(tv.Type) {
					continue
				}
				if root := taintRootIdent(arg); root != nil {
					set(p.pkg.objectOf(root), taintSourceBit, false)
				}
			}
			return true
		})
	}
	return out
}

func equalFacts(a, b taintValFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// taintRootIdent digs the base identifier out of an lvalue-ish expression,
// including through slice expressions (unlike threadsafe.go's rootIdent).
func taintRootIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return taintRootIdent(x.X)
	case *ast.IndexExpr:
		return taintRootIdent(x.X)
	case *ast.SliceExpr:
		return taintRootIdent(x.X)
	case *ast.StarExpr:
		return taintRootIdent(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return taintRootIdent(x.X)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Mask evaluation.

const maxRegionDepth = 4

// maskOf computes the taint mask of an expression under fact f, applying
// sanitizer regions: a value whose raw mask is tainted evaluates untainted
// at points where a recognized upper-bound guard for it holds.
func (p *taintProblem) maskOf(f taintValFact, e ast.Expr, depth int) uint64 {
	raw := p.rawMask(f, e, depth)
	if raw == 0 {
		return 0
	}
	if key := exprKey(e); key != "" && p.regionKills(f, key, e.Pos(), regUpper, depth) {
		return 0
	}
	return raw
}

func (p *taintProblem) rawMask(f taintValFact, e ast.Expr, depth int) uint64 {
	switch x := e.(type) {
	case *ast.Ident:
		return f[p.pkg.objectOf(x)]
	case *ast.BasicLit:
		return 0
	case *ast.ParenExpr:
		return p.maskOf(f, x.X, depth)
	case *ast.SelectorExpr:
		// http.Request.Body is a source regardless of provenance.
		if x.Sel.Name == "Body" && p.isHTTPRequest(x.X) {
			return taintSourceBit
		}
		if obj := p.pkg.objectOf(x.Sel); obj != nil {
			// Package-qualified name (pkg.Const, pkg.Var): constants are
			// clean; package vars are config, treated as trusted.
			if _, isConst := obj.(*types.Const); isConst {
				return 0
			}
		}
		return p.maskOf(f, x.X, depth)
	case *ast.IndexExpr:
		return p.maskOf(f, x.X, depth)
	case *ast.IndexListExpr:
		return p.maskOf(f, x.X, depth)
	case *ast.SliceExpr:
		return p.maskOf(f, x.X, depth)
	case *ast.StarExpr:
		return p.maskOf(f, x.X, depth)
	case *ast.TypeAssertExpr:
		return p.maskOf(f, x.X, depth)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return p.maskOf(f, x.X, depth)
		}
		if x.Op == token.NOT {
			return 0
		}
		return p.maskOf(f, x.X, depth)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return 0 // booleans carry no magnitude
		case token.REM, token.AND:
			// x % untaintedBound and x & untaintedMask are bounded.
			lm, rm := p.maskOf(f, x.X, depth), p.maskOf(f, x.Y, depth)
			if rm == 0 {
				return 0
			}
			return lm | rm
		}
		return p.maskOf(f, x.X, depth) | p.maskOf(f, x.Y, depth)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= p.maskOf(f, kv.Value, depth)
				continue
			}
			m |= p.maskOf(f, el, depth)
		}
		return m
	case *ast.CallExpr:
		masks := p.tupleMasks(f, x, 1)
		return masks[0]
	case *ast.FuncLit:
		return 0
	}
	return 0
}

// isHTTPRequest reports whether e's type is (*)net/http.Request.
func (p *taintProblem) isHTTPRequest(e ast.Expr) bool {
	if p.pkg.Info == nil {
		return false
	}
	tv, ok := p.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// tupleMasks evaluates a (possibly multi-valued) expression to n result
// masks. Calls consult builtins, curated tables, and module-local summaries.
func (p *taintProblem) tupleMasks(f taintValFact, e ast.Expr, n int) []uint64 {
	fill := func(m uint64) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = m
		}
		return out
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		// Comma-ok forms (type assertion, map index): value mask, clean ok.
		out := fill(0)
		out[0] = p.maskOf(f, e, 0)
		for i := 1; i < n; i++ {
			out[i] = 0
		}
		return out
	}
	argUnion := func() uint64 {
		var m uint64
		for _, a := range call.Args {
			m |= p.maskOf(f, a, 0)
		}
		return m
	}
	// Builtins.
	if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && isBuiltin(p.pkg, id) {
		switch id.Name {
		case "len", "cap", "copy":
			// Lengths of in-memory values are bounded by what was actually
			// allocated or received — the len-derived sanitizer.
			return fill(0)
		case "make", "new":
			// The result is zeroed storage; the SIZE being tainted is a
			// sink, not a propagation.
			return fill(0)
		case "min":
			// min(tainted, cap) is bounded when any operand is clean.
			for _, a := range call.Args {
				if p.maskOf(f, a, 0) == 0 {
					return fill(0)
				}
			}
			return fill(argUnion())
		case "append", "max":
			return fill(argUnion())
		}
	}
	// Conversions propagate the operand.
	if p.pkg.Info != nil {
		if tv, ok := p.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return fill(argUnion())
		}
	}
	// Curated sources and stdlib shapes.
	if fn := calleeObject(p.pkg, call); fn != nil && fn.Pkg() != nil {
		q := qualifiedName(fn)
		if sourceFuncs[q] && pkgReadsUntrustedFiles(p.pkg.Path) {
			out := fill(0)
			out[0] = taintSourceBit
			return out
		}
		switch q {
		case "encoding/binary.Uvarint", "encoding/binary.Varint":
			// The decoded value is stream bytes; the byte count is bounded
			// by the actual input length.
			out := fill(0)
			out[0] = argUnion()
			return out
		}
		// math/bits width and population counts return at most the bit
		// width (<= 64) for any input: too small to size an allocation,
		// drive a spin, or reach past a fixed table. Reverse/RotateLeft
		// are excluded — they preserve magnitude-carrying bits.
		if fn.Pkg().Path() == "math/bits" {
			name := fn.Name()
			for _, prefix := range []string{"Len", "OnesCount", "TrailingZeros", "LeadingZeros"} {
				if strings.HasPrefix(name, prefix) {
					return fill(0)
				}
			}
		}
	}
	// Method-call shapes.
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if boundedMethodNames[sel.Sel.Name] && len(call.Args) == 0 {
			return fill(0)
		}
		if p.isUntrustedReaderRecv(sel.X) {
			return fill(taintSourceBit)
		}
	}
	// Module-local calls: compose the callee's TaintOut with the argument
	// masks (receiver first for methods). Dynamic dispatch unions over every
	// possible callee.
	if edges := p.edgesBySite[call]; len(edges) > 0 {
		argMasks := p.callArgMasks(f, call, edges[0])
		var out []uint64
		for _, edge := range edges {
			composed := p.composeCall(f, call, edge, argMasks)
			if out == nil {
				out = composed
			} else {
				for i := range out {
					if i < len(composed) {
						out[i] |= composed[i]
					}
				}
			}
		}
		for len(out) < n {
			out = append(out, 0)
		}
		return out[:n]
	}
	// Unknown call: the result mixes the receiver and every argument.
	var m uint64
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		m |= p.maskOf(f, sel.X, 0)
	}
	m |= argUnion()
	return fill(m)
}

// isUntrustedReaderRecv reports whether the receiver is a bitstream or
// rangecoder reader: those yield stream-derived values even when the stream
// that fed them is out of view.
func (p *taintProblem) isUntrustedReaderRecv(recv ast.Expr) bool {
	if p.pkg.Info == nil {
		return false
	}
	tv, ok := p.pkg.Info.Types[recv]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return untrustedReaderPkgs[path]
}

// callArgMasks computes the positional argument masks for a call, receiver
// first when the (first) callee is a method.
func (p *taintProblem) callArgMasks(f taintValFact, call *ast.CallExpr, edge *CallEdge) []uint64 {
	var masks []uint64
	hasRecv := edge.Callee.Decl != nil && edge.Callee.Decl.Recv != nil
	if hasRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			masks = append(masks, p.maskOf(f, sel.X, 0))
		} else {
			masks = append(masks, 0)
		}
	}
	for _, a := range call.Args {
		masks = append(masks, p.maskOf(f, a, 0))
	}
	// Fold variadic extras into the callee's last parameter slot.
	calleeTN := p.ti.nodes[edge.Callee]
	if calleeTN != nil && len(calleeTN.params) > 0 && len(masks) > len(calleeTN.params) {
		last := len(calleeTN.params) - 1
		for _, m := range masks[last:] {
			masks[last] |= m
		}
		masks = masks[:len(calleeTN.params)]
	}
	return masks
}

// composeCall rewrites the callee's TaintOut (over callee parameter bits)
// into the caller's frame using the argument masks.
func (p *taintProblem) composeCall(f taintValFact, call *ast.CallExpr, edge *CallEdge, argMasks []uint64) []uint64 {
	calleeTN := p.ti.nodes[edge.Callee]
	if calleeTN == nil {
		return nil
	}
	out := make([]uint64, len(calleeTN.out))
	for r, cm := range calleeTN.out {
		var m uint64
		if cm&taintSourceBit != 0 {
			m |= taintSourceBit
		}
		for i := range calleeTN.params {
			if cm&taintParamBit(i) != 0 && i < len(argMasks) {
				m |= argMasks[i]
			}
		}
		out[r] = m
	}
	return out
}

// ---------------------------------------------------------------------------
// Sanitizer regions.

// collectRegions scans the body for recognized bound-check idioms and
// returns the scopes in which each holds. The recognizer is deliberately
// syntactic (the CFG has no branch-labeled edges) and deliberately lenient:
// ANY upper-violation comparison on a key anywhere inside a terminating
// guard's condition grants the region — a decoder that checks at all is
// credited, and the adversarial cases the goldens pin are the ones with no
// check whatsoever.
func collectRegions(body *ast.BlockStmt) []taintRegion {
	var regions []taintRegion
	var scan func(list []ast.Stmt, blockEnd, returnEnd token.Pos)
	scan = func(list []ast.Stmt, blockEnd, returnEnd token.Pos) {
		for _, s := range list {
			switch st := s.(type) {
			case *ast.IfStmt:
				regions = append(regions, regionsOfIf(st, blockEnd, returnEnd)...)
				scan(st.Body.List, blockEnd, returnEnd)
				switch els := st.Else.(type) {
				case *ast.BlockStmt:
					scan(els.List, blockEnd, returnEnd)
				case *ast.IfStmt:
					scan([]ast.Stmt{els}, blockEnd, returnEnd)
				}
			case *ast.ForStmt:
				// A for-cond of the form x < E bounds x throughout the body.
				if st.Cond != nil {
					for _, c := range comparisons(st.Cond) {
						if key, capX, ok := upperHold(c); ok {
							regions = append(regions, taintRegion{key: key, kind: regUpper, cap: capX, start: st.Body.Pos(), end: st.Body.End()})
						}
					}
				}
				// Guards inside a loop body that return/panic extend past the
				// loop: the accumulate-and-check idiom (grow total, bail when
				// it crosses the cap, allocate after the loop).
				scan(st.Body.List, st.Body.End(), returnEnd)
			case *ast.RangeStmt:
				scan(st.Body.List, st.Body.End(), returnEnd)
			case *ast.BlockStmt:
				scan(st.List, blockEnd, returnEnd)
			case *ast.SwitchStmt:
				for _, cc := range st.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						scan(c.Body, blockEnd, returnEnd)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, cc := range st.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						scan(c.Body, blockEnd, returnEnd)
					}
				}
			case *ast.SelectStmt:
				for _, cc := range st.Body.List {
					if c, ok := cc.(*ast.CommClause); ok {
						scan(c.Body, blockEnd, returnEnd)
					}
				}
			case *ast.LabeledStmt:
				scan([]ast.Stmt{st.Stmt}, blockEnd, returnEnd)
			}
		}
	}
	end := body.End()
	scan(body.List, end, end)
	return regions
}

// regionsOfIf derives the sanitizer regions one if statement establishes.
func regionsOfIf(st *ast.IfStmt, blockEnd, returnEnd token.Pos) []taintRegion {
	var regions []taintRegion
	cmps := comparisons(st.Cond)
	term := terminator(st.Body)
	clamp := clampBody(st.Body)
	for _, c := range cmps {
		// if x > cap { return err } / { panic } / { break } — after the if,
		// x <= cap on the fallthrough path. Also x != pin (equality pin) and
		// x <= 0 (positive violation).
		if key, capX, ok := upperViolation(c); ok {
			switch term {
			case termReturn:
				regions = append(regions, taintRegion{key: key, kind: regUpper, cap: capX, start: st.End(), end: returnEnd})
			case termBranch:
				regions = append(regions, taintRegion{key: key, kind: regUpper, cap: capX, start: st.End(), end: blockEnd})
			}
			if clamp != "" && clamp == key {
				// if x > cap { x = cap }: bounded afterwards even without a
				// terminator.
				regions = append(regions, taintRegion{key: key, kind: regUpper, cap: capX, start: st.End(), end: returnEnd})
			}
			// In the else branch (taken when the violation is false) the
			// bound holds too.
			if els, ok := st.Else.(*ast.BlockStmt); ok {
				regions = append(regions, taintRegion{key: key, kind: regUpper, cap: capX, start: els.Pos(), end: els.End()})
			}
		}
		if key, capX, ok := upperHold(c); ok {
			// if x < cap { ...bounded... }
			regions = append(regions, taintRegion{key: key, kind: regUpper, cap: capX, start: st.Body.Pos(), end: st.Body.End()})
		}
		if key, ok := positiveViolation(c); ok {
			switch term {
			case termReturn:
				regions = append(regions, taintRegion{key: key, kind: regPositive, start: st.End(), end: returnEnd})
			case termBranch:
				regions = append(regions, taintRegion{key: key, kind: regPositive, start: st.End(), end: blockEnd})
			}
		}
		if key, ok := positiveHold(c); ok {
			regions = append(regions, taintRegion{key: key, kind: regPositive, start: st.Body.Pos(), end: st.Body.End()})
		}
	}
	return regions
}

type termKind int

const (
	termNone termKind = iota
	termReturn
	termBranch
)

// terminator classifies how an if body ends: return/panic (the guard holds
// for the rest of the function), break/continue (it holds for the rest of
// the loop body), or neither.
func terminator(body *ast.BlockStmt) termKind {
	if len(body.List) == 0 {
		return termNone
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return termReturn
	case *ast.BranchStmt:
		if last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO {
			return termBranch
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return termReturn
			}
		}
	}
	return termNone
}

// clampBody returns the assigned key when every statement in the body
// assigns the same key (the clamp idiom `if v > cap { v = cap }`), else "".
func clampBody(body *ast.BlockStmt) string {
	if len(body.List) == 0 {
		return ""
	}
	key := ""
	for _, s := range body.List {
		asg, ok := s.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 {
			return ""
		}
		k := exprKey(asg.Lhs[0])
		if k == "" || (key != "" && k != key) {
			return ""
		}
		key = k
	}
	return key
}

// comparisons flattens a condition into its comparison leaves, looking
// through && and || (documented leniency: an || arm still grants the
// region).
func comparisons(e ast.Expr) []*ast.BinaryExpr {
	var out []*ast.BinaryExpr
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		switch b := ast.Unparen(x).(type) {
		case *ast.BinaryExpr:
			switch b.Op {
			case token.LAND, token.LOR:
				walk(b.X)
				walk(b.Y)
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				out = append(out, b)
			}
		case *ast.UnaryExpr:
			if b.Op == token.NOT {
				walk(b.X)
			}
		}
	}
	walk(e)
	return out
}

// keySide renders a comparison operand as a region key, looking through
// conversions like uint64(total) so the guarded variable is recognized.
func keySide(e ast.Expr) (string, ast.Expr) {
	x := ast.Unparen(e)
	if call, ok := x.(*ast.CallExpr); ok && len(call.Args) == 1 {
		// Treat any single-argument call as a possible conversion; a
		// non-conversion (f(x) > cap) simply fails to render a key via its
		// argument most of the time, and when it does render (len(x)) the
		// guard is still about x's extent.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "len" {
			return keySide(call.Args[0])
		}
		return "", nil
	}
	return exprKey(x), x
}

// upperViolation matches "key exceeds cap" comparisons: x > E, x >= E,
// E < x, E <= x; and the equality pin x != E.
func upperViolation(c *ast.BinaryExpr) (key string, capX ast.Expr, ok bool) {
	switch c.Op {
	case token.GTR, token.GEQ:
		if k, _ := keySide(c.X); k != "" {
			return k, c.Y, true
		}
	case token.LSS, token.LEQ:
		if k, _ := keySide(c.Y); k != "" {
			return k, c.X, true
		}
	case token.NEQ:
		if k, _ := keySide(c.X); k != "" {
			return k, c.Y, true
		}
		if k, _ := keySide(c.Y); k != "" {
			return k, c.X, true
		}
	}
	return "", nil, false
}

// upperHold matches "key is within cap" comparisons: x < E, x <= E, E > x,
// E >= x, and the equality pin x == E.
func upperHold(c *ast.BinaryExpr) (key string, capX ast.Expr, ok bool) {
	switch c.Op {
	case token.LSS, token.LEQ:
		if k, _ := keySide(c.X); k != "" {
			return k, c.Y, true
		}
	case token.GTR, token.GEQ:
		if k, _ := keySide(c.Y); k != "" {
			return k, c.X, true
		}
	case token.EQL:
		if k, _ := keySide(c.X); k != "" {
			return k, c.Y, true
		}
		if k, _ := keySide(c.Y); k != "" {
			return k, c.X, true
		}
	}
	return "", nil, false
}

// positiveViolation matches "key is not positive": x <= 0, x < 1, x == 0.
func positiveViolation(c *ast.BinaryExpr) (string, bool) {
	isZero := func(e ast.Expr) bool {
		lit, ok := ast.Unparen(e).(*ast.BasicLit)
		return ok && (lit.Value == "0" || lit.Value == "1")
	}
	switch c.Op {
	case token.LEQ, token.LSS, token.EQL:
		if k, _ := keySide(c.X); k != "" && isZero(c.Y) {
			return k, true
		}
	case token.GEQ, token.GTR:
		if k, _ := keySide(c.Y); k != "" && isZero(c.X) {
			return k, true
		}
	}
	return "", false
}

// positiveHold matches "key is positive": x > 0, x >= 1.
func positiveHold(c *ast.BinaryExpr) (string, bool) {
	isZero := func(e ast.Expr) bool {
		lit, ok := ast.Unparen(e).(*ast.BasicLit)
		return ok && (lit.Value == "0" || lit.Value == "1")
	}
	switch c.Op {
	case token.GTR, token.GEQ:
		if k, _ := keySide(c.X); k != "" && isZero(c.Y) {
			return k, true
		}
	case token.LSS, token.LEQ:
		if k, _ := keySide(c.Y); k != "" && isZero(c.X) {
			return k, true
		}
	}
	return "", false
}

// regionKills reports whether a sanitizer region of the wanted kind covers
// a use of key at pos. An upper region only applies when its cap expression
// itself evaluates untainted there (a tainted cap bounds nothing), and any
// region is invalidated by an intervening assignment to the key (or a
// related key) between the guard and the use.
func (p *taintProblem) regionKills(f taintValFact, key string, pos token.Pos, kind regionKind, depth int) bool {
	if depth >= maxRegionDepth {
		return false
	}
	for i := range p.regions {
		r := &p.regions[i]
		if r.kind != kind || r.key != key || pos < r.start || pos > r.end {
			continue
		}
		if p.assignedBetween(key, r.start, pos) {
			continue
		}
		if r.cap != nil && p.maskOf(f, r.cap, depth+1) != 0 {
			continue
		}
		return true
	}
	return false
}

// assignedBetween reports an assignment to key (or a prefix-related key)
// strictly inside (start, before).
func (p *taintProblem) assignedBetween(key string, start, before token.Pos) bool {
	for _, a := range p.assigns {
		if a.pos <= start || a.pos >= before {
			continue
		}
		if a.key == key || relatedKeys(a.key, key) {
			return true
		}
	}
	return false
}

// shrinkingUnsigned reports whether the for-loop strictly shrinks bound (an
// unsigned variable) every iteration — v >>= c, v = v >> c, v /= c with a
// constant c, in the post statement or a top-level body statement — so a
// `v != 0` or `v > 0` condition terminates within bit-width iterations no
// matter how hostile the initial value is. Conditional shrinks nested in
// inner blocks are not trusted.
func (p *taintProblem) shrinkingUnsigned(fs *ast.ForStmt, bound ast.Expr) bool {
	id, ok := ast.Unparen(bound).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.pkg.objectOf(id)
	if obj == nil {
		return false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsUnsigned == 0 {
		return false
	}
	constShrink := func(op token.Token, e ast.Expr) bool {
		lit, ok := ast.Unparen(e).(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			return false
		}
		v, err := strconv.ParseUint(lit.Value, 0, 64)
		if err != nil {
			return false
		}
		if op == token.QUO {
			return v >= 2
		}
		return v >= 1 // shift
	}
	shrinks := func(st ast.Stmt) bool {
		asg, ok := st.(*ast.AssignStmt)
		if !ok {
			return false
		}
		switch asg.Tok {
		case token.SHR_ASSIGN, token.QUO_ASSIGN:
			if len(asg.Lhs) != 1 {
				return false
			}
			l, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
			if !ok || p.pkg.objectOf(l) != obj {
				return false
			}
			op := token.SHR
			if asg.Tok == token.QUO_ASSIGN {
				op = token.QUO
			}
			return constShrink(op, asg.Rhs[0])
		case token.ASSIGN:
			for i, lhs := range asg.Lhs {
				l, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || p.pkg.objectOf(l) != obj || i >= len(asg.Rhs) {
					continue
				}
				bin, ok := ast.Unparen(asg.Rhs[i]).(*ast.BinaryExpr)
				if !ok || (bin.Op != token.SHR && bin.Op != token.QUO) {
					continue
				}
				if r, ok := ast.Unparen(bin.X).(*ast.Ident); ok && p.pkg.objectOf(r) == obj {
					return constShrink(bin.Op, bin.Y)
				}
			}
		}
		return false
	}
	if fs.Post != nil && shrinks(fs.Post) {
		return true
	}
	for _, st := range fs.Body.List {
		if shrinks(st) {
			return true
		}
	}
	return false
}

// relatedKeys reports whether one rendered key is a component path of the
// other (assigning h invalidates guards on h.Rank and vice versa).
func relatedKeys(a, b string) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if !strings.HasPrefix(b, a) {
		return false
	}
	rest := b[len(a):]
	return rest == "" || rest[0] == '.' || rest[0] == '['
}

// ---------------------------------------------------------------------------
// Sink and call-site scanning (after solving).

// scanSinks inspects one CFG node under its entry fact for the three sink
// shapes, deduplicating by position+label across solver replays.
func (p *taintProblem) scanSinks(f taintValFact, n ast.Node, tn *taintNode, seen map[string]bool) {
	add := func(kind TaintKind, pos token.Pos, what string, e ast.Expr, mask uint64, fix string) {
		if mask == 0 {
			return
		}
		id := fmt.Sprintf("%d|%s", pos, what)
		if seen[id] {
			return
		}
		seen[id] = true
		tn.sinks = append(tn.sinks, TaintSink{Kind: kind, Pos: pos, What: what, Expr: renderExpr(p.pkg.Fset, e), Mask: mask, Fix: fix})
	}

	// Loop bounds: a registered for-cond whose bounding side is tainted.
	if cond, isExpr := n.(ast.Expr); isExpr {
		if fs, isFor := p.forConds[cond]; isFor {
			for _, c := range comparisons(cond) {
				var bounds []ast.Expr
				switch c.Op {
				case token.LSS, token.LEQ:
					bounds = []ast.Expr{c.Y}
				case token.GTR, token.GEQ:
					bounds = []ast.Expr{c.X}
				case token.NEQ:
					bounds = []ast.Expr{c.X, c.Y}
				}
				for _, b := range bounds {
					if p.shrinkingUnsigned(fs, b) {
						continue
					}
					if m := p.maskOf(f, b, 0); m != 0 {
						add(TaintLoop, b.Pos(), "loop bound", b, m,
							"cap it against a constant or config-derived limit before looping")
					}
				}
			}
		}
	}

	// Loop-carried steps: x += E inside a loop whose condition depends on x,
	// where E is tainted and not known positive — a zero step never
	// progresses.
	if asg, ok := n.(*ast.AssignStmt); ok && (asg.Tok == token.ADD_ASSIGN || asg.Tok == token.SUB_ASSIGN) && len(asg.Lhs) == 1 && len(asg.Rhs) == 1 {
		if id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident); ok {
			obj := p.pkg.objectOf(id)
			for _, loop := range p.loops {
				if !loop.condVars[obj] || !within(asg.Pos(), loop.stmt.Body) {
					continue
				}
				step := asg.Rhs[0]
				if m := p.maskOf(f, step, 0); m != 0 {
					if k := exprKey(step); k != "" && p.regionKills(f, k, step.Pos(), regPositive, 0) {
						continue
					}
					add(TaintLoop, asg.Pos(), "loop step", step, m,
						"guard the step to be strictly positive before advancing")
				}
				break
			}
		}
	}

	inspectNoFuncLit(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			// Allocation sizes: make(T, n[, c]) and Buffer.Grow(n).
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" && isBuiltin(p.pkg, id) {
				for i, what := range []string{"", "make size", "make capacity"} {
					if i == 0 || i >= len(x.Args) {
						continue
					}
					if msk := p.maskOf(f, x.Args[i], 0); msk != 0 {
						add(TaintAlloc, x.Args[i].Pos(), what, x.Args[i], msk,
							"cap it against a constant or config-derived limit before allocating")
					}
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Grow" && len(x.Args) == 1 {
				if msk := p.maskOf(f, x.Args[0], 0); msk != 0 {
					add(TaintAlloc, x.Args[0].Pos(), "Grow size", x.Args[0], msk,
						"cap it against a constant or config-derived limit before growing")
				}
			}
		case *ast.IndexExpr:
			if !p.isSliceIndex(x) {
				return true
			}
			if msk := p.maskOf(f, x.Index, 0); msk != 0 {
				add(TaintIndex, x.Index.Pos(), "index", x.Index, msk,
					"check it against len() before indexing")
				return true
			}
			// A clean induction variable whose loop bound is tainted still
			// walks arbitrarily far: vals[i] with `for i := 0; i < total`.
			if id, ok := ast.Unparen(x.Index).(*ast.Ident); ok {
				obj := p.pkg.objectOf(id)
				for _, loop := range p.loops {
					bound, okB := loop.boundOf[obj]
					if !okB || !within(x.Pos(), loop.stmt.Body) {
						continue
					}
					if msk := p.maskOf(f, bound, 0); msk != 0 {
						add(TaintIndex, x.Index.Pos(), "index bounded only by untrusted loop bound", bound, msk,
							"bound the loop by len() or cap the bound before indexing")
					}
					break
				}
			}
		}
		return true
	})
}

// isSliceIndex reports whether the index expression reads a slice or array
// (map lookups never panic on wild keys).
func (p *taintProblem) isSliceIndex(x *ast.IndexExpr) bool {
	if p.pkg.Info == nil {
		return false
	}
	tv, ok := p.pkg.Info.Types[x.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// within reports pos inside node's extent.
func within(pos token.Pos, n ast.Node) bool {
	return n != nil && pos >= n.Pos() && pos <= n.End()
}

// scanCalls records module-local call sites with argument masks for the
// top-down root propagation.
func (p *taintProblem) scanCalls(f taintValFact, n ast.Node, tn *taintNode, seen map[*ast.CallExpr]bool) {
	inspectNoFuncLit(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || seen[call] {
			return true
		}
		edges := p.edgesBySite[call]
		if len(edges) == 0 {
			return true
		}
		seen[call] = true
		for _, edge := range edges {
			tn.calls = append(tn.calls, taintCall{
				callee:   edge.Callee,
				pos:      call.Pos(),
				argMasks: p.callArgMasks(f, call, edge),
			})
		}
		return true
	})
}

// recordReturn folds one return statement's masks into the node's TaintOut.
func (p *taintProblem) recordReturn(f taintValFact, ret *ast.ReturnStmt, tn *taintNode) {
	if len(tn.out) == 0 {
		return
	}
	if len(ret.Results) == 0 {
		// Bare return: named results carry their current masks.
		for i, v := range p.results {
			if v != nil && !p.resultErrs[i] {
				tn.out[i] |= f[v]
			}
		}
		return
	}
	if len(ret.Results) == 1 && len(tn.out) > 1 {
		masks := p.tupleMasks(f, ret.Results[0], len(tn.out))
		for i := range tn.out {
			if !p.resultErrs[i] {
				tn.out[i] |= masks[i]
			}
		}
		return
	}
	for i, r := range ret.Results {
		if i < len(tn.out) && !p.resultErrs[i] {
			tn.out[i] |= p.maskOf(f, r, 0)
		}
	}
}

// renderExpr prints an expression compactly for messages.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	s := renderNode(fset, e)
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
