package analysis

import (
	"runtime"
	"go/importer"
	"go/token"
	"testing"
)

// loadWholeModule expands ./... from the module root and loads every package
// through the given loader — the load half of a whole-module lint run.
func loadWholeModule(b *testing.B, loader *Loader) {
	b.Helper()
	dirs, err := loader.Expand(loader.ModuleRoot, []string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	for _, dir := range dirs {
		if _, err := loader.LoadDir(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadModuleSharedStd measures a whole-module load with the
// process-global GOROOT importer (the production configuration). After the
// first iteration warms the cache, each iteration pays only for parsing and
// type-checking the module itself.
func BenchmarkLoadModuleSharedStd(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(root)
		if err != nil {
			b.Fatal(err)
		}
		loadWholeModule(b, loader)
	}
}

// BenchmarkLoadModuleColdStd measures the pre-sharing behavior: every loader
// gets a private source importer, so each iteration re-type-checks the
// standard library from GOROOT. The gap against SharedStd is the win from
// the process-global cache.
func BenchmarkLoadModuleColdStd(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		loader, err := newLoaderWithStd(root,
			importer.ForCompiler(token.NewFileSet(), "source", nil))
		if err != nil {
			b.Fatal(err)
		}
		loadWholeModule(b, loader)
	}
}

// loadedModule loads every package of the module once, for benchmarks that
// measure the analyze half (Run) rather than the load half.
func loadedModule(tb testing.TB) []*Package {
	tb.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		tb.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		tb.Fatal(err)
	}
	dirs, err := loader.Expand(root, []string{"./..."})
	if err != nil {
		tb.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			tb.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// BenchmarkRunSequential pins the pre-parallel analyze cost: one worker
// walks every package through all seventeen analyzers.
func BenchmarkRunSequential(b *testing.B) {
	pkgs := loadedModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWith(pkgs, Analyzers(), "", 1)
	}
}

// BenchmarkRunParallel is the production configuration: the per-package
// fan-out bounded by GOMAXPROCS. The gap against RunSequential is the
// speedup the worker pool buys.
func BenchmarkRunParallel(b *testing.B) {
	pkgs := loadedModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWith(pkgs, Analyzers(), "", runtime.GOMAXPROCS(0))
	}
}
