// Package ctxflow_bad breaks the request-context chain in the three ways the
// analyzer reports: minting a root context mid-path, accepting a context and
// never using it, and storing a context in a struct. Only code reachable from
// request roots (a *web.Request handler or a //pressio:requestpath function)
// is on the path; offPath below does the same things unflagged.
package ctxflow_bad

import (
	"context"

	"pressio/internal/analysis/testdata/src/ctxflow_bad/web"
)

// handle is a request root by signature (*web.Request parameter).
func handle(r *web.Request) {
	process(context.Background())
}

//pressio:requestpath
// serve is a request root by directive (non-HTTP entry points opt in).
func serve(ctx context.Context) {
	process(ctx)
}

// mint severs the caller's deadline: reachable from handle via process.
func mint() {
	ctx := context.Background()
	_ = ctx
}

// process takes a context and never uses it: cancellation dead-ends here.
func process(ctx context.Context) {
	mint()
}

// holder keeps a context alive past its request.
type holder struct {
	ctx context.Context
}

// stash stores the request context in a struct field and a struct literal.
func stash(ctx context.Context, h *holder) *holder {
	h.ctx = ctx
	return &holder{ctx: ctx}
}

//pressio:requestpath
// stashRoot pulls stash onto the request path.
func stashRoot(ctx context.Context) {
	_ = stash(ctx, &holder{})
}

// offPath is not reachable from any root: the same breaks stay unflagged.
func offPath() {
	ctx := context.Background()
	_ = ctx
	_ = &holder{ctx: ctx}
}
