// Package web is a stand-in for net/http: ctxflow recognizes request roots
// syntactically (any *<pkg>.Request parameter), so the fixture avoids
// type-checking the real net/http tree.
package web

// Request mimics http.Request for handler signatures.
type Request struct {
	Path string
}
