// Package errflow_suppressed waives a partial-output error return with
// //lint:ignore; the analyzer must report nothing. (The format streams
// directly into out by design and documents that failed calls leave it
// undefined.)
package errflow_suppressed

import "errors"

type Data struct {
	buf []byte
}

func (d *Data) Bytes() []byte     { return d.buf }
func (d *Data) SetBytes(b []byte) { d.buf = b }

var errTruncated = errors.New("truncated stream")

type plugin struct{}

func (p *plugin) DecompressImpl(in, out *Data) error {
	out.SetBytes(in.Bytes())
	if len(in.Bytes()) == 0 {
		//lint:ignore errflow streaming codec: out is documented as undefined after an error
		return errTruncated
	}
	return nil
}
