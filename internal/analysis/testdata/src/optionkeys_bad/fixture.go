// Package optionkeys_bad models the Options API locally (the analyzer
// matches by method name and a receiver type named Options) and violates
// both optionkeys rules: a raw "pressio:*" literal outside a const
// declaration, and a plugin-prefixed key duplicated across call sites.
package optionkeys_bad

// Options mirrors core.Options closely enough for the analyzer's receiver
// type check.
type Options struct{ m map[string]any }

func NewOptions() *Options { return &Options{m: map[string]any{}} }

func (o *Options) SetValue(key string, v any) *Options { o.m[key] = v; return o }

func (o *Options) GetFloat64(key string) (float64, bool) {
	v, ok := o.m[key].(float64)
	return v, ok
}

type plugin struct{ rate float64 }

// RegisterCompressor stands in for core.RegisterCompressor; the facts pass
// matches registration calls by callee name.
func RegisterCompressor(name string, factory func() *plugin) {}

func init() {
	RegisterCompressor("demo", func() *plugin { return &plugin{} })
	RegisterCompressor("breaker", func() *plugin { return &plugin{} })
}

func defaults() *Options {
	o := NewOptions()
	o.SetValue("demo:rate", 16.0)
	o.SetValue("pressio:abs", 1e-3)
	return o
}

func apply(p *plugin, o *Options) {
	if v, ok := o.GetFloat64("demo:rate"); ok {
		p.rate = v
	}
}

// The circuit-breaker meta-compressor keys are plugin-prefixed like any
// other: spelling "breaker:window" at both the set and the get site is the
// same hoist-to-constant defect, and a lone "breaker:failure_threshold"
// literal is fine (single use needs no constant).
func breakerDefaults() *Options {
	o := NewOptions()
	o.SetValue("breaker:window", 16.0)
	o.SetValue("breaker:failure_threshold", 8.0)
	return o
}

func applyBreaker(p *plugin, o *Options) {
	if v, ok := o.GetFloat64("breaker:window"); ok {
		p.rate = v
	}
}
