// Package regress_delta_bad is the reverted shape of the PR-4 delta
// encoding fuzz fix: the decoder sizes its output from the payload but
// walks it under the header's declared dims product, so a header that
// declares more elements than the payload carries indexes past the end and
// panics. untrustedindex must flag the out-of-range walk.
package regress_delta_bad

func le32(b []byte, off int) uint64 {
	return uint64(b[off]) | uint64(b[off+1])<<8 |
		uint64(b[off+2])<<16 | uint64(b[off+3])<<24
}

// DecompressImpl reconstructs absolute values from deltas: the element loop
// trusts the declared dims product instead of the allocated length.
func DecompressImpl(stream []byte) ([]uint64, error) {
	total := le32(stream, 0) * le32(stream, 4)
	payload := stream[8:]
	out := make([]uint64, len(payload))
	prev := uint64(0)
	for i := uint64(0); i < total; i++ {
		prev += uint64(payload[i])
		out[i] = prev
	}
	return out, nil
}
