// Package ctxflow_suppressed waives each request-path context break with
// //lint:ignore; the analyzer must report nothing. The breaks are real — the
// waivers document why each one is deliberate.
package ctxflow_suppressed

import "context"

//pressio:requestpath
func serve(ctx context.Context) {
	detach()
	audit(ctx)
}

// detach deliberately severs the request context: the cleanup it schedules
// must outlive the request.
func detach() {
	//lint:ignore ctxflow cleanup work is intentionally detached from the request lifetime
	ctx := context.Background()
	_ = ctx
}

// audit accepts a context only to satisfy an interface.
//
//lint:ignore ctxflow the audit sink is synchronous and local; the parameter exists for interface compatibility
func audit(ctx context.Context) {
}
