// Package untrustedalloc_suppressed repeats the untrustedalloc_bad shapes
// with the accepted sanitizers in place — a constant cap, a length-derived
// bound, and an audited //lint:ignore waiver — so none of them may report.
package untrustedalloc_suppressed

import "errors"

var errCorrupt = errors.New("corrupt stream")

const maxCount = 1 << 20

func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress rejects the count against a constant cap before allocating.
func Decompress(stream []byte) ([]float64, error) {
	n := parseCount(stream)
	if n > maxCount {
		return nil, errCorrupt
	}
	out := make([]float64, n)
	return out, nil
}

// DecompressImpl bounds the count by the input length: the output cannot
// exceed what the stream physically carries.
func DecompressImpl(stream []byte) ([]byte, error) {
	n := parseCount(stream)
	if n > uint64(len(stream)) {
		return nil, errCorrupt
	}
	return make([]byte, n), nil
}

// DecompressSlice documents why the unchecked allocation is safe here: the
// transport layer already capped the stream, so the waiver is auditable.
func DecompressSlice(stream []byte) []byte {
	n := parseCount(stream)
	//lint:ignore untrustedalloc the HTTP layer's MaxBytesReader caps the stream before decode
	return make([]byte, n)
}
