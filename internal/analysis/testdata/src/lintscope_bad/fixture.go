// Package lintscope_bad pins the suppression scope rules: a //lint:ignore
// inside a function literal passed to go/defer only covers findings in that
// literal's scope, so the enclosing statement's finding on the shared line
// must survive; a directive above a closure still suppresses inside it.
package lintscope_bad

type file struct{}

func (f *file) Close() error { return nil }

func run() {
	f := &file{}
	h := &file{}
	go func() {
		f.Close()
		//lint:ignore errcheck the goroutine drops its own close error on purpose
	}(); h.Close()
	//lint:ignore errcheck the deferred close error is dropped deliberately
	defer func() { f.Close() }()
}
