// Package goroutineleak_suppressed waives a deliberate process-lifetime
// goroutine with //lint:ignore; the analyzer must report nothing. (The leak
// is real by the analyzer's rules: the send can park forever. The waiver
// documents that the process owns the goroutine for its whole lifetime.)
package goroutineleak_suppressed

func leakSend() chan int {
	ch := make(chan int)
	//lint:ignore goroutineleak process-lifetime producer; the consumer never exits before the process does
	go func() {
		ch <- compute()
	}()
	return ch
}

func compute() int { return 42 }
