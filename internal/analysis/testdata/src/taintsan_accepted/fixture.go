// Package taintsan_accepted exercises every sanitizer idiom the taint
// engine accepts — constant cap, min() clamp, option-derived limit,
// len-derived bound, and early-return guard — one per decode entry. The
// golden file is empty: none of these may report.
package taintsan_accepted

import "errors"

var errCorrupt = errors.New("corrupt stream")

const maxElems = 1 << 20

// settings models plugin options resolved before decode; package-level
// configuration counts as trusted.
var settings = struct{ MaxElems uint64 }{1 << 16}

func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress: constant cap via early-return guard.
func Decompress(stream []byte) ([]byte, error) {
	n := parseCount(stream)
	if n > maxElems {
		return nil, errCorrupt
	}
	return make([]byte, n), nil
}

// DecompressImpl: min() clamp pins the count to a constant.
func DecompressImpl(stream []byte) []byte {
	n := min(parseCount(stream), maxElems)
	return make([]byte, n)
}

// DecompressSlice: option-derived limit and len-derived bound, plus a
// positive guard on the loop step.
func DecompressSlice(stream []byte) ([]byte, error) {
	n := parseCount(stream)
	if n > settings.MaxElems {
		return nil, errCorrupt
	}
	out := make([]byte, n)
	skip := parseCount(stream[4:])
	if skip > uint64(len(stream)) {
		return nil, errCorrupt
	}
	tail := make([]byte, skip)
	pos := 0
	for pos < len(out) {
		adv := int(stream[4+pos%4])
		if adv < 1 {
			return nil, errCorrupt
		}
		pos += adv
	}
	return append(out, tail...), nil
}
