// Package lockcheck_suppressed waives a deliberate lock leak with
// //lint:ignore; the analyzer must report nothing. (The leak is real: the
// lock is handed off to a goroutine that releases it later.)
package lockcheck_suppressed

import "sync"

var (
	mu    sync.Mutex
	state int
)

func handoff(release chan struct{}) {
	//lint:ignore lockcheck ownership transfers to the goroutine below, which releases after the signal
	mu.Lock()
	state++
	go func() {
		<-release
		mu.Unlock()
	}()
}
