// Package untrustedloop_bad spins on stream-controlled trip counts: a
// declared count bounds a loop directly, a frame field marked
// //pressio:untrusted bounds one interprocedurally, and a stream byte feeds
// a loop step that can be zero — the decoder never progresses.
package untrustedloop_bad

func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress iterates as many times as the header claims, unbounded.
func Decompress(stream []byte) (uint64, error) {
	count := parseCount(stream)
	var sum uint64
	for i := uint64(0); i < count; i++ {
		sum += i
	}
	return sum, nil
}

//pressio:untrusted frame fields arrive straight from the wire
func replay(count uint64) uint64 {
	var n uint64
	for i := uint64(0); i < count; i++ {
		n += i
	}
	return n
}

// DecompressImpl advances the cursor by a stream byte: a zero advance makes
// the scan loop spin forever.
func DecompressImpl(stream []byte) (int, error) {
	pos := 0
	frames := 0
	for pos < len(stream)-1 {
		adv := int(stream[pos])
		pos += adv
		frames++
	}
	return frames, nil
}
