// Package errflow_bad writes the output buffer before the last fallible
// step: the short-input error path returns with a header already installed
// in out, handing the caller partially-written output. The clean orderings
// (validate first, write last; provably-nil error returns) must stay
// unflagged.
package errflow_bad

import "errors"

type Data struct {
	buf  []byte
	dims []uint64
}

func (d *Data) Bytes() []byte     { return d.buf }
func (d *Data) ByteLen() uint64   { return uint64(len(d.buf)) }
func (d *Data) SetBytes(b []byte) { d.buf = b }
func (d *Data) Become(src *Data)  { d.buf, d.dims = src.buf, src.dims }

var errShort = errors.New("short input")

type plugin struct{}

// DecompressImpl installs the header into out before validating the body:
// the error return leaves partial output behind.
func (p *plugin) DecompressImpl(in, out *Data) error {
	out.SetBytes(in.Bytes()[:4])
	if len(in.Bytes()) < 8 {
		return errShort
	}
	out.SetBytes(in.Bytes()[4:])
	return nil
}

// decodeInto returns an error variable that is provably nil on the only
// path reaching the return: clean despite the write.
func decodeInto(raw []byte, out *Data) error {
	var err error
	out.SetBytes(raw)
	return err
}

// CompressImpl validates everything before touching out: clean.
func (p *plugin) CompressImpl(in, out *Data) error {
	if in.ByteLen() == 0 {
		return errShort
	}
	out.SetBytes(in.Bytes())
	return nil
}
