// Package registration_suppressed repeats two registration violations with
// //lint:ignore waivers; the analyzer must report nothing.
package registration_suppressed

type CompressorIface interface{ Prefix() string }

func RegisterCompressor(name string, factory func() CompressorIface) {}

type gamma struct{ name string }

func (g *gamma) Prefix() string { return g.name }

// orphan implements a metric but is deliberately unregistered here (the
// package registers no metrics at all, so the orphan rule would fire).
//
//lint:ignore registration fixture keeps an unregistered implementation on purpose
type orphan struct{}

func (o *orphan) Prefix() string        { return "orphan" }
func (o *orphan) BeginCompress()        {}
func (o *orphan) EndCompress()          {}
func (o *orphan) Results() map[int]bool { return nil }

func lateRegister() {
	//lint:ignore registration fixture demonstrates waiving the init rule
	RegisterCompressor("late", func() CompressorIface { return &gamma{name: "late"} })
}
