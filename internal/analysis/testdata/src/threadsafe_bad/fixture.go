// Package threadsafe_bad declares thread_safe=multiple through a local
// StandardConfiguration model, then writes package-level state from plugin
// code without a lock — the exact race the analyzer exists to catch. The
// mutex-guarded writer and the init-time write must stay unflagged.
package threadsafe_bad

import "sync"

const ThreadSafetyMultiple = "multiple"

type Options struct{}

func StandardConfiguration(level, stability, version string, shared bool) *Options {
	return &Options{}
}

var (
	calls   int
	mu      sync.Mutex
	guarded int
	table   = map[string]int{}
)

type plugin struct{}

func (p *plugin) Configuration() *Options {
	return StandardConfiguration(ThreadSafetyMultiple, "stable", "1.0.0", false)
}

func (p *plugin) CompressImpl(in []byte) []byte {
	calls++
	table["compress"] = calls
	return in
}

func (p *plugin) record() {
	mu.Lock()
	defer mu.Unlock()
	guarded++
}

// reset writes guarded inside the critical section (clean) but calls after
// releasing the lock — the old syntactic scan blessed any write below a
// Lock() in source order; the flow-sensitive check flags it.
func (p *plugin) reset() {
	mu.Lock()
	guarded = 0
	mu.Unlock()
	calls = 0
}

// maybeLocked only takes the lock on the slow path, so the write is not
// guarded on EVERY path reaching it: flagged.
func (p *plugin) maybeLocked(fast bool) {
	if !fast {
		mu.Lock()
	}
	guarded++
	if !fast {
		mu.Unlock()
	}
}

func init() {
	calls = 0
}

func localOnly() {
	n := 0
	n++
	_ = n
}
