// Package sz sits on a codec-named path segment, so the forbidden analyzer
// holds it to the determinism and embeddability bar; every construct below
// violates it.
package sz

import (
	"fmt"
	"math/rand"
	"time"
)

func compress(data []byte) []byte {
	start := time.Now()
	fmt.Println("compressing", len(data))
	if len(data) == 0 {
		panic("empty input")
	}
	noise := byte(rand.Intn(256))
	_ = start
	return append(data, noise)
}
