// Package goroutineleak_bad spawns goroutines that can park forever with no
// release mechanism. The leaks are interprocedural: the hazard may sit in a
// helper the goroutine calls, not in the spawned literal itself. The
// cancellable and buffered spawns below must stay unflagged.
package goroutineleak_bad

import (
	"context"
	"sync"
)

// leakSend parks forever when the receiver has already returned: the channel
// is unbuffered and nothing can release the sender.
func leakSend() chan int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	return ch
}

// leakViaHelper has the same bug one call deep: the spawned entry looks
// innocent, the helper it calls sends on an unbuffered channel.
func leakViaHelper() chan int {
	ch := make(chan int)
	go func() {
		deliver(ch)
	}()
	return ch
}

func deliver(ch chan int) {
	ch <- compute()
}

// leakSelectOverSends can only park: every select case is a send and there is
// no default, no receive a close could release.
func leakSelectOverSends(a, b chan int) {
	go func() {
		select {
		case a <- 1:
		case b <- 2:
		}
	}()
}

// bufferedWatchdog is the buffered-send idiom: the result channel has
// capacity, so the send completes even when the waiter timed out. Clean.
func bufferedWatchdog() chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	return ch
}

// ctxWorker threads a context through the spawned body; cancel releases it.
// Clean.
func ctxWorker(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- compute():
		case <-ctx.Done():
		}
	}()
}

// rangeWorker parks on a channel its owner closes: range terminates on close.
// Clean.
func rangeWorker(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// joinedWorker is the worker-pool idiom: the spawner Waits on the group, so a
// stuck body stalls the join visibly instead of leaking silently. Clean.
func joinedWorker(ch chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- compute()
	}()
	wg.Wait()
}

func compute() int { return 42 }
