// Package panicfree_suppressed repeats the panicfree violation with
// //lint:ignore waivers — the deliberate-fault-injector case; the analyzer
// must report nothing.
package panicfree_suppressed

type CompressorIface interface{ Prefix() string }

func RegisterCompressor(name string, factory func() CompressorIface) {}

// chaos injects panics on purpose; each one carries a waiver.
type chaos struct{}

func (c *chaos) Prefix() string { return "chaos" }

func (c *chaos) CompressImpl(in []byte) []byte {
	if len(in) == 0 {
		//lint:ignore panicfree fixture fault injector panics by design
		panic("injected")
	}
	return in
}

func (c *chaos) DecompressImpl(in []byte) []byte {
	//lint:ignore panicfree fixture demonstrates comment-above suppression
	panic("injected")
}

func init() {
	RegisterCompressor("chaos", func() CompressorIface { return &chaos{} })
}
