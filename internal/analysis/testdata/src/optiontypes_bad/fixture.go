// Package optiontypes_bad models the Options API locally and breaks the
// declared/read contract twice: a string-declared option is read with an
// integer getter, and an int64-declared option is read with a narrowing
// int32 getter. It also declares an option SetOptions never consumes (dead).
// The widening read (int32 declared, int64 getter), the wildcard-prefix
// keys and the reaching-definition key variable must all resolve cleanly.
package optiontypes_bad

type OptionType int

const (
	OptInt32 OptionType = iota
	OptDouble
	OptString
)

type Option struct{ t OptionType }

type Options struct{ m map[string]Option }

func NewOptions() *Options { return &Options{m: map[string]Option{}} }

func (o *Options) SetValue(key string, v any) *Options       { return o }
func (o *Options) SetType(key string, t OptionType) *Options { return o }
func (o *Options) GetInt64(key string) (int64, error)        { return 0, nil }
func (o *Options) GetInt32(key string) (int32, error)        { return 0, nil }
func (o *Options) GetFloat64(key string) (float64, error)    { return 0, nil }

type plugin struct {
	name  string
	level int32
	big   int64
	ratio float64
	mode  string
}

func (p *plugin) Options() *Options {
	o := NewOptions()
	o.SetValue("fix:level", p.level)
	o.SetValue("fix:big", p.big)
	o.SetValue(p.name+":ratio", p.ratio)
	key := p.name + ":mode"
	o.SetValue(key, p.mode)
	o.SetType("fix:unused", OptDouble)
	return o
}

func (p *plugin) SetOptions(o *Options) error {
	if v, err := o.GetInt64("fix:level"); err == nil { // int32 -> int64 widens: clean
		p.level = int32(v)
	}
	if v, err := o.GetInt32("fix:big"); err == nil { // int64 -> int32 narrows: flagged
		p.big = int64(v)
	}
	if v, err := o.GetFloat64(p.name + ":ratio"); err == nil { // double -> double: clean
		p.ratio = v
	}
	if v, err := o.GetInt64(p.name + ":mode"); err == nil { // string read as int64: flagged
		p.big = v
	}
	return nil
}
