// Package untrustedloop_suppressed repeats the untrustedloop_bad shapes
// with the accepted sanitizers: an early-return cap on the trip count, a
// strictly-positive guard on the loop step, and a shrinking-unsigned bound
// that terminates within the bit width no matter the initial value.
package untrustedloop_suppressed

import "errors"

var errCorrupt = errors.New("corrupt stream")

const maxOps = 1 << 16

func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress rejects oversized counts before looping.
func Decompress(stream []byte) (uint64, error) {
	count := parseCount(stream)
	if count > maxOps {
		return 0, errCorrupt
	}
	var sum uint64
	for i := uint64(0); i < count; i++ {
		sum += i
	}
	return sum, nil
}

// DecompressImpl guards the advance to be strictly positive, so the cursor
// always moves.
func DecompressImpl(stream []byte) (int, error) {
	pos := 0
	frames := 0
	for pos < len(stream)-1 {
		adv := int(stream[pos])
		if adv < 1 {
			return 0, errCorrupt
		}
		pos += adv
		frames++
	}
	return frames, nil
}

// DecompressSlice halves the untrusted value every iteration: the loop
// terminates in at most 64 steps however hostile the header, so no cap is
// needed (the shrinking-unsigned rule).
func DecompressSlice(stream []byte) int {
	v := parseCount(stream)
	bits := 0
	for v > 0 {
		bits++
		v >>= 1
	}
	return bits
}
