// Package panicfree_bad exercises the panicfree analyzer: a registered
// compressor panicking from CompressImpl and DecompressImpl (including
// inside a nested closure) must be flagged, while panics in unregistered
// implementations, helper methods, and non-plugin types must not. The
// Register* stand-in is declared locally; the facts pass matches by callee
// name.
package panicfree_bad

type CompressorIface interface{ Prefix() string }

func RegisterCompressor(name string, factory func() CompressorIface) {}

// throwing is registered and panics on both hot paths.
type throwing struct{}

func (t *throwing) Prefix() string { return "throwing" }

func (t *throwing) CompressImpl(in []byte) []byte {
	if len(in) == 0 {
		panic("empty input")
	}
	return in
}

func (t *throwing) DecompressImpl(in []byte) []byte {
	check := func() {
		panic("corrupt stream")
	}
	check()
	return in
}

// helper panics are outside the checked methods: the analyzer only claims
// the direct bodies, so this stays silent (the errflow suite owns deeper
// call-graph reasoning).
func (t *throwing) validate() {
	panic("helper panic is not flagged")
}

// orphan matches the compressor method set but is never registered, so its
// panic is unreachable through the registry and not reported here (the
// registration analyzer flags the orphan itself).
type orphan struct{}

func (o *orphan) Prefix() string { return "orphan" }

func (o *orphan) CompressImpl(in []byte) []byte {
	panic("unregistered")
}

func (o *orphan) DecompressImpl(in []byte) []byte { return in }

// notAPlugin shares a method name but not the plugin method set.
type notAPlugin struct{}

func (n *notAPlugin) CompressImpl(in []byte) []byte {
	panic("no Prefix, not a plugin")
}

func init() {
	RegisterCompressor("throwing", func() CompressorIface { return &throwing{} })
}
