// Package other registers a compressor under a name the parent fixture
// package already claimed, exercising the cross-package duplicate rule
// (reported here, in the path-wise later package).
package other

type CompressorIface interface{ Prefix() string }

func RegisterCompressor(name string, factory func() CompressorIface) {}

type dup struct{}

func (d *dup) Prefix() string                  { return "dup" }
func (d *dup) CompressImpl(in []byte) []byte   { return in }
func (d *dup) DecompressImpl(in []byte) []byte { return in }

func init() {
	RegisterCompressor("dup", func() CompressorIface { return &dup{} })
}
