// Package registration_bad violates the registration contract in every way
// the analyzer distinguishes: an unregistered metric implementation, a
// duplicate in-package name, a registered name that contradicts Prefix(),
// registration outside init, and registration from a package-level
// initializer. Register* stand-ins are declared locally; the facts pass
// matches by callee name.
package registration_bad

type CompressorIface interface{ Prefix() string }

type MetricIface interface{ Prefix() string }

func RegisterCompressor(name string, factory func() CompressorIface) bool { return true }

func RegisterMetric(name string, factory func() MetricIface) bool { return true }

// alpha is a well-formed compressor implementation.
type alpha struct{}

func (a *alpha) Prefix() string                { return "alpha" }
func (a *alpha) CompressImpl(in []byte) []byte { return in }
func (a *alpha) DecompressImpl(in []byte) []byte {
	return in
}

// beta's Prefix disagrees with the name it is registered under.
type beta struct{}

func (b *beta) Prefix() string                  { return "beta" }
func (b *beta) CompressImpl(in []byte) []byte   { return in }
func (b *beta) DecompressImpl(in []byte) []byte { return in }

// gamma's prefix is computed, so no Prefix/name cross-check applies to it.
type gamma struct{ name string }

func (g *gamma) Prefix() string { return g.name }

// orphanMetric implements the metric method set but is never registered.
type orphanMetric struct{}

func (m *orphanMetric) Prefix() string        { return "orphan" }
func (m *orphanMetric) BeginCompress()        {}
func (m *orphanMetric) EndCompress()          {}
func (m *orphanMetric) Results() map[int]bool { return nil }

func init() {
	RegisterCompressor("dup", func() CompressorIface { return &alpha{} })
	RegisterCompressor("dup", func() CompressorIface { return &alpha{} })
	RegisterCompressor("alpha", func() CompressorIface { return &beta{} })
}

// lateRegister registers outside init: the plugin is invisible until someone
// happens to call this.
func lateRegister() {
	RegisterCompressor("late", func() CompressorIface { return &gamma{name: "late"} })
}

// Registration as a side effect of package-level variable initialization runs
// at an order the registry cannot rely on.
var _ = RegisterCompressor("varinit", func() CompressorIface { return &gamma{name: "varinit"} })
