// Package callgraphx exercises call-graph construction and summary
// propagation: static calls, interface dispatch, go edges, method values as
// goroutine entries, mutual recursion, and blocking/allocating/context facts
// that must propagate bottom-up.
package callgraphx

import "context"

// Codec pins the interface-dispatch resolution: run's dynamic edges must
// reach every implementation's Compress.
type Codec interface {
	Compress(b []byte) []byte
}

type padded struct{}

func (padded) Compress(b []byte) []byte { return pad(b) }

type noop struct{}

func (noop) Compress(b []byte) []byte { return b }

// pad allocates; its summary seeds the Allocates propagation.
func pad(b []byte) []byte {
	out := make([]byte, len(b)+1)
	copy(out, b)
	return out
}

// run dispatches through the interface: dynamic edges, not static ones.
func run(c Codec, b []byte) []byte {
	return c.Compress(b)
}

// wait blocks; caller must inherit Blocks through the static edge.
func wait(ch chan int) int {
	return <-ch
}

func caller(ch chan int) int {
	return wait(ch)
}

// spawn's edge to worker must carry the Go flag (and not propagate worker's
// facts into spawn's summary).
func spawn(ch chan int) {
	go worker(ch)
}

func worker(ch chan int) {
	ch <- 1
}

// methodSpawn spawns a bound method value: GoEntry must resolve it.
func methodSpawn(b []byte) {
	f := padded{}.Compress
	go f(b)
}

// even/odd are mutually recursive: one SCC, summaries must still converge.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// usesCtx seeds the context facts.
func usesCtx(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

// dropsCtx has the parameter but never reads it.
func dropsCtx(ctx context.Context) int {
	return 0
}
