// Package untrustedindex_suppressed repeats the untrustedindex_bad shapes
// with the accepted sanitizers: a len() guard before the lookup, a
// modulo-by-len reduction, a bitmask against a power-of-two table, and a
// loop rebounded by the allocated length.
package untrustedindex_suppressed

import "errors"

var errCorrupt = errors.New("corrupt stream")

func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress checks the selector against the table length first.
func Decompress(stream []byte) (byte, error) {
	table := make([]byte, 16)
	sel := int(stream[4])
	if sel >= len(table) {
		return 0, errCorrupt
	}
	return table[sel], nil
}

// DecompressImpl reduces the selector into range arithmetically: modulo by
// the length and a bitmask both pin the index inside the table.
func DecompressImpl(stream []byte) (byte, error) {
	table := make([]byte, 16)
	a := table[int(stream[4])%len(table)]
	b := table[stream[5]&15]
	return a ^ b, nil
}

// DecompressSlice bounds the write loop by the allocated length, not the
// declared total, so the clean induction variable stays in range.
func DecompressSlice(stream []byte, out []float64) error {
	total := parseCount(stream)
	if total > uint64(len(out)) {
		return errCorrupt
	}
	for i := uint64(0); i < total; i++ {
		out[i] = 0
	}
	return nil
}
