// Package regress_zfp_bad is the reverted shape of the PR-4 zfp fuzz fix:
// the block decoder pads the bit cursor up to the header's declared maxbits
// with no cap, so a hostile header makes the padding loop consume 2^64
// iterations. untrustedloop must flag the padding bound.
package regress_zfp_bad

func le32(b []byte, off int) uint64 {
	return uint64(b[off]) | uint64(b[off+1])<<8 |
		uint64(b[off+2])<<16 | uint64(b[off+3])<<24
}

type reader struct {
	buf []byte
	pos uint64
}

func (r *reader) readBit() uint64 {
	byteIdx := r.pos / 8
	if byteIdx >= uint64(len(r.buf)) {
		r.pos++
		return 0
	}
	bit := (r.buf[byteIdx] >> (r.pos % 8)) & 1
	r.pos++
	return uint64(bit)
}

// DecompressImpl decodes one block then skips to the declared per-block bit
// budget: the pre-fix zfp decoder with the maxbits cap reverted.
func DecompressImpl(stream []byte) (uint64, error) {
	maxbits := le32(stream, 0)
	r := &reader{buf: stream[4:]}
	var acc uint64
	for i := 0; i < 64; i++ {
		acc = acc<<1 | r.readBit()
	}
	for bits := uint64(64); bits < maxbits; bits++ {
		r.readBit()
	}
	return acc, nil
}
