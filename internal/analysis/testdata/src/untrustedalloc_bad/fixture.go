// Package untrustedalloc_bad allocates sizes that flow straight from the
// decoded stream: the declared element count of a four-byte header commits
// arbitrary memory before any payload is validated. Both the direct make
// and the interprocedural Buffer.Grow path must be flagged.
package untrustedalloc_bad

import "bytes"

// parseCount models a header parse: the count is a pure function of the
// stream bytes, so it carries the input taint.
func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress trusts the declared count: a hostile header allocates
// gigabytes from a handful of input bytes.
func Decompress(stream []byte) ([]float64, error) {
	n := parseCount(stream)
	out := make([]float64, n)
	return out, nil
}

// grow reaches the Grow sink one call deep: the tainted size arrives
// through a parameter of a helper that never sees the stream itself.
func grow(buf *bytes.Buffer, n int) {
	buf.Grow(n)
}

// DecompressImpl routes the untrusted count through the helper.
func DecompressImpl(stream []byte) error {
	var buf bytes.Buffer
	grow(&buf, int(parseCount(stream)))
	return nil
}
