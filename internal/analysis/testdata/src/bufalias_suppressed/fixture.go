// Package bufalias_suppressed waives a deliberate input retention with
// //lint:ignore; the analyzer must report nothing. (The cache documents that
// callers hand over ownership of the buffer.)
package bufalias_suppressed

type Data struct {
	buf []byte
}

func (d *Data) Bytes() []byte { return d.buf }

type plugin struct {
	cache []byte
}

func (p *plugin) CompressImpl(in, out *Data) error {
	//lint:ignore bufalias this codec documents take-ownership semantics for its input
	p.cache = in.Bytes()
	return nil
}
