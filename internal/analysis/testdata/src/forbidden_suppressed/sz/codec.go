// Package sz carries the same forbidden-construct violations as the
// forbidden_bad fixture, each waived with //lint:ignore; the analyzer must
// report nothing.
package sz

import (
	"fmt"

	//lint:ignore forbidden fixture demonstrates suppressing the import rule
	"math/rand"
	"time"
)

func compress(data []byte) []byte {
	start := time.Now() //lint:ignore forbidden fixture wall-clock read is test-only
	//lint:ignore forbidden fixture demonstrates comment-above suppression
	fmt.Println("compressing", len(data))
	if len(data) == 0 {
		//lint:ignore forbidden fixture unreachable guard kept for symmetry
		panic("empty input")
	}
	noise := byte(rand.Intn(256))
	_ = start
	return append(data, noise)
}
