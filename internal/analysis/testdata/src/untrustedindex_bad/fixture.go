// Package untrustedindex_bad indexes with stream-controlled values: a
// selector byte reaches a table lookup unchecked, and a clean induction
// variable walks past the output because its loop bound is the header's
// declared total, not the allocated length.
package untrustedindex_bad

func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress uses a stream byte as a table index without a bound check.
func Decompress(stream []byte) (byte, error) {
	table := [16]byte{}
	sel := stream[4]
	return table[sel], nil
}

// DecompressImpl writes out[i] under a loop bounded by the declared total:
// i itself is clean, but the bound lets it run past len(out).
func DecompressImpl(stream []byte, out []float64) error {
	total := parseCount(stream)
	for i := uint64(0); i < total; i++ {
		out[i] = 0
	}
	return nil
}
