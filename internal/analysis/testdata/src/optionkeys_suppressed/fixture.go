// Package optionkeys_suppressed carries the same violations as
// optionkeys_bad, each waived with //lint:ignore — plus one malformed
// directive, which must itself be reported under the "lint" pseudo-analyzer.
package optionkeys_suppressed

type Options struct{ m map[string]any }

func NewOptions() *Options { return &Options{m: map[string]any{}} }

func (o *Options) SetValue(key string, v any) *Options { o.m[key] = v; return o }

func (o *Options) GetFloat64(key string) (float64, bool) {
	v, ok := o.m[key].(float64)
	return v, ok
}

type plugin struct{ rate float64 }

func RegisterCompressor(name string, factory func() *plugin) {}

func init() {
	RegisterCompressor("demo", func() *plugin { return &plugin{} })
}

func defaults() *Options {
	o := NewOptions()
	//lint:ignore optionkeys fixture demonstrates comment-above suppression
	o.SetValue("demo:rate", 16.0)
	o.SetValue("pressio:abs", 1e-3) //lint:ignore optionkeys fixture demonstrates same-line suppression
	return o
}

func apply(p *plugin, o *Options) {
	if v, ok := o.GetFloat64("demo:rate"); ok { //lint:ignore optionkeys fixture second duplicate site
		p.rate = v
	}
}

//lint:ignore optionkeys
func missingReason() {}
