// Package optiontypes_suppressed waives a type mismatch and a dead option
// with //lint:ignore; the analyzer must report nothing.
package optiontypes_suppressed

type Options struct{ m map[string]int }

func NewOptions() *Options { return &Options{m: map[string]int{}} }

func (o *Options) SetValue(key string, v any) *Options { return o }
func (o *Options) GetInt64(key string) (int64, error)  { return 0, nil }

type plugin struct {
	mode  string
	extra float64
}

func (p *plugin) Options() *Options {
	o := NewOptions()
	o.SetValue("fix:mode", p.mode)
	//lint:ignore optiontypes reserved for the next format revision, intentionally not yet consumed
	o.SetValue("fix:extra", p.extra)
	return o
}

func (p *plugin) SetOptions(o *Options) error {
	//lint:ignore optiontypes legacy readers sent this key as a stringified integer
	if v, err := o.GetInt64("fix:mode"); err == nil {
		p.extra = float64(v)
	}
	return nil
}
