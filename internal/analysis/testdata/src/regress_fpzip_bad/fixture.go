// Package regress_fpzip_bad is the reverted shape of the PR-4 fpzip fuzz
// fix: DecompressImpl multiplies the header's declared extents into an
// element count and allocates it with no payload-ratio cap, so a 24-byte
// header can declare a 2^40-element tensor and commit the memory before a
// single payload byte is decoded. untrustedalloc must flag the make.
package regress_fpzip_bad

type header struct {
	nx, ny, nz, nf uint64
}

func le32(b []byte, off int) uint64 {
	return uint64(b[off]) | uint64(b[off+1])<<8 |
		uint64(b[off+2])<<16 | uint64(b[off+3])<<24
}

func parseHeader(stream []byte) header {
	return header{
		nx: le32(stream, 0),
		ny: le32(stream, 4),
		nz: le32(stream, 8),
		nf: le32(stream, 12),
	}
}

// DecompressImpl trusts the declared shape: the pre-fix fpzip decoder.
func DecompressImpl(stream []byte) ([]float32, error) {
	h := parseHeader(stream)
	total := h.nx * h.ny * h.nz * h.nf
	out := make([]float32, total)
	for i := range out {
		out[i] = 0
	}
	return out, nil
}
