// Package errcheck_suppressed waives each discarded error with
// //lint:ignore; the analyzer must report nothing.
package errcheck_suppressed

import "errors"

type compressor struct{}

func (c *compressor) Compress() error        { return nil }
func (c *compressor) SetOptions(v int) error { return errors.New("unsupported") }

type file struct{}

func (f *file) Close() error { return nil }

func run() {
	c := &compressor{}
	f := &file{}
	//lint:ignore errcheck fixture demonstrates comment-above suppression
	c.Compress()
	c.SetOptions(1) //lint:ignore errcheck fixture demonstrates same-line suppression
	//lint:ignore all fixture demonstrates the "all" wildcard
	f.Close()
}
