// Package threadsafe_suppressed waives the unguarded package-level writes
// with //lint:ignore; the analyzer must report nothing.
package threadsafe_suppressed

const ThreadSafetyMultiple = "multiple"

type Options struct{}

func StandardConfiguration(level, stability, version string, shared bool) *Options {
	return &Options{}
}

var calls int

type plugin struct{}

func (p *plugin) Configuration() *Options {
	return StandardConfiguration(ThreadSafetyMultiple, "stable", "1.0.0", false)
}

func (p *plugin) CompressImpl(in []byte) []byte {
	//lint:ignore threadsafe fixture counter is only read in tests, torn reads acceptable
	calls++
	return in
}
