// Package blockinglock_suppressed waives a deliberate blocking critical
// section with //lint:ignore; the analyzer must report nothing. (The block is
// real: the mutex is what serializes writers, so the send cannot leave it.)
package blockinglock_suppressed

import "sync"

var (
	mu  sync.Mutex
	seq int
)

// publishInOrder must send under the lock: the mutex is what guarantees
// subscribers observe sequence numbers in order.
func publishInOrder(ch chan int) {
	mu.Lock()
	seq++
	//lint:ignore blockinglock the mutex is what orders the sends; the channel is buffered by construction
	ch <- seq
	mu.Unlock()
}
