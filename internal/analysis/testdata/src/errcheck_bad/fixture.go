// Package errcheck_bad discards errors from the watched hot-path methods.
// The explicit `_ =` acknowledgment and the `defer Close` cleanup idiom must
// stay unflagged.
package errcheck_bad

import "errors"

type compressor struct{}

func (c *compressor) Compress() error        { return nil }
func (c *compressor) SetOptions(v int) error { return errors.New("unsupported") }

type file struct{}

func (f *file) Close() error { return nil }

func run() {
	c := &compressor{}
	f := &file{}
	c.Compress()
	c.SetOptions(1)
	f.Close()
	_ = c.Compress()
	defer f.Close()
}
