// Package hotalloc_suppressed waives deliberate hot-path allocations with
// //lint:ignore; the analyzer must report nothing. (The allocations are real:
// the waivers document why the ledger tolerates them.)
package hotalloc_suppressed

//pressio:hotpath fixture kernel
func collectOutliers(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 1000 {
			//lint:ignore hotalloc outlier accumulation is data-dependent; preallocating len(xs) would defeat the point
			out = append(out, x)
		}
	}
	return out
}

//pressio:hotpath fixture kernel
func retainAll(xs []int) []*int {
	keep := make([]*int, 0, len(xs))
	for i := range xs {
		//lint:ignore hotalloc the pointees are the retained result; they must be heap-allocated
		p := new(int)
		*p = xs[i]
		keep = append(keep, p)
	}
	return keep
}
