// Package hotalloc_bad allocates in loops on //pressio:hotpath-marked paths:
// an unmanaged append, a heap literal, a closure, and — interprocedurally — a
// loop call to a helper whose summary says it allocates. The amortized
// patterns (preallocated append, receiver-owned buffer growth, splice) and
// the unmarked twin must stay unflagged.
package hotalloc_bad

//pressio:hotpath fixture kernel
// hotAppend grows an unmanaged slice once per element.
func hotAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//pressio:hotpath fixture kernel
// hotLiteral heap-allocates a node and a closure per iteration.
func hotLiteral(xs []int) {
	for _, x := range xs {
		n := &box{v: x}
		f := func() int { return n.v }
		sink = f
	}
}

//pressio:hotpath fixture kernel
// hotCaller allocates one call deep: pad's summary carries the make site.
func hotCaller(xs [][]byte) {
	for _, x := range xs {
		_ = pad(x)
	}
}

// warm is unmarked but statically reachable from hotCaller's hot closure via
// hotTransitive, so its loop allocation is hot too.
func warm(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//pressio:hotpath fixture kernel
func hotTransitive() {
	_ = warm(8)
}

// pad copies into a fresh buffer: an allocation on every call.
func pad(b []byte) []byte {
	out := make([]byte, len(b)+4)
	copy(out, b)
	return out
}

type box struct{ v int }

var sink func() int

// preallocated appends into a capacity made outside the loop: amortized,
// clean.
//
//pressio:hotpath fixture kernel
func preallocated(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// buffer grows a receiver-owned byte slice: amortized, clean.
type buffer struct{ buf []byte }

//pressio:hotpath fixture kernel
func (w *buffer) write(chunks [][]byte) {
	for _, c := range chunks {
		w.buf = append(w.buf, c...)
	}
}

// coldAppend is not reachable from any hot root: clean.
func coldAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
