// Package blockinglock_bad holds mutexes across operations that can block:
// channel sends and receives, a blocking select, a compressor dispatch, and —
// interprocedurally — a call to a helper whose summary says it blocks. The
// shrunk critical sections and the select with a default must stay unflagged.
package blockinglock_bad

import "sync"

var (
	mu    sync.Mutex
	state int
)

// sendWhileLocked convoys every mu contender behind the channel's receiver.
func sendWhileLocked(ch chan int) {
	mu.Lock()
	state++
	ch <- state
	mu.Unlock()
}

// recvWhileLocked parks with the lock held until a peer sends.
func recvWhileLocked(ch chan int) {
	mu.Lock()
	state = <-ch
	mu.Unlock()
}

// selectWhileLocked blocks under the lock: no default, receive-only cases
// still park until a peer is ready.
func selectWhileLocked(a, b chan int) {
	mu.Lock()
	select {
	case state = <-a:
	case state = <-b:
	}
	mu.Unlock()
}

// codec mimics a compressor plugin: dispatch latency is unbounded.
type codec struct{}

func (codec) Compress(data []byte) []byte { return data }

// dispatchWhileLocked holds the lock across a Compress dispatch.
func dispatchWhileLocked(c codec, data []byte) {
	mu.Lock()
	_ = c.Compress(data)
	mu.Unlock()
}

// callBlockerWhileLocked has the bug one call deep: waitPeer's summary says
// it blocks on a channel receive.
func callBlockerWhileLocked(ch chan int) {
	mu.Lock()
	waitPeer(ch)
	mu.Unlock()
}

func waitPeer(ch chan int) {
	state = <-ch
}

// shrunk releases before blocking: clean.
func shrunk(ch chan int) {
	mu.Lock()
	state++
	v := state
	mu.Unlock()
	ch <- v
}

// polled uses a select with a default under the lock — non-blocking: clean.
func polled(ch chan int) {
	mu.Lock()
	select {
	case state = <-ch:
	default:
	}
	mu.Unlock()
}
