// Package lockcheck_bad holds lock-pairing bugs that are invisible to a
// syntactic scan: every Lock has an Unlock *somewhere* in the function, but
// a branch escapes the critical section without releasing. Only the
// CFG-based may-analysis sees the leaking path. The balanced, deferred and
// loop-local critical sections must stay unflagged.
package lockcheck_bad

import "sync"

var (
	mu   sync.Mutex
	rw   sync.RWMutex
	hits int
)

// leakOnEarlyReturn has an Unlock below the return, so "is there an Unlock
// after the Lock in source order" passes — but the fail branch exits with mu
// held.
func leakOnEarlyReturn(fail bool) int {
	mu.Lock()
	hits++
	if fail {
		return -1
	}
	mu.Unlock()
	return hits
}

// leakReadLock releases on the miss path only; the hit path returns with the
// read lock held.
func leakReadLock(m map[string]int, key string) int {
	rw.RLock()
	v, ok := m[key]
	if !ok {
		rw.RUnlock()
		return 0
	}
	return v
}

// balanced releases on its single path: clean.
func balanced() {
	mu.Lock()
	hits++
	mu.Unlock()
}

// deferred releases on every path by construction: clean despite the early
// return.
func deferred(limit int) int {
	mu.Lock()
	defer mu.Unlock()
	hits++
	if hits > limit {
		return limit
	}
	return hits
}

// deferredClosure unlocks inside a deferred function literal: clean.
func deferredClosure() {
	mu.Lock()
	defer func() {
		hits++
		mu.Unlock()
	}()
}

// loopLocked opens and closes the critical section on every iteration: the
// back edge carries no pending acquisition.
func loopLocked(keys []string) {
	for range keys {
		mu.Lock()
		hits++
		mu.Unlock()
	}
}
