// Package taintsan_rejected_bad exercises the guard shapes the taint
// engine must NOT accept: a cap that is itself untrusted, a guard
// invalidated by a later reassignment, and a guard on a different variable
// than the one allocated. All three allocations must be flagged.
package taintsan_rejected_bad

import "errors"

var errCorrupt = errors.New("corrupt stream")

const maxElems = 1 << 20

func parseCount(stream []byte) uint64 {
	return uint64(stream[0]) | uint64(stream[1])<<8 |
		uint64(stream[2])<<16 | uint64(stream[3])<<24
}

// Decompress checks the count against a limit read from the same stream: a
// tainted cap bounds nothing.
func Decompress(stream []byte) ([]byte, error) {
	n := parseCount(stream)
	limit := parseCount(stream[4:])
	if n > limit {
		return nil, errCorrupt
	}
	return make([]byte, n), nil
}

// DecompressImpl guards the count, then overwrites it from the stream
// again: the reassignment invalidates the guard.
func DecompressImpl(stream []byte) ([]byte, error) {
	n := parseCount(stream)
	if n > maxElems {
		return nil, errCorrupt
	}
	n = parseCount(stream[4:])
	return make([]byte, n), nil
}

// DecompressSlice guards one header field and allocates another.
func DecompressSlice(stream []byte) ([]byte, error) {
	rows := parseCount(stream)
	cols := parseCount(stream[4:])
	if rows > maxElems {
		return nil, errCorrupt
	}
	return make([]byte, cols), nil
}
