// Package bufalias_bad models the Data buffer API locally and violates the
// buffer-ownership contract three ways: stashing the caller's input in
// receiver state, stashing it in package state, and returning a slice that
// aliases it. The copying variants (append into a fresh slice) must stay
// unflagged, as must a buffer that is tainted and then rebound to a copy.
package bufalias_bad

// Data models the core buffer: a dtype-tagged byte slice.
type Data struct {
	buf  []byte
	dims []uint64
}

func (d *Data) Bytes() []byte    { return d.buf }
func (d *Data) Become(src *Data) { d.buf, d.dims = src.buf, src.dims }

// NewBytes wraps b without copying.
func NewBytes(b []byte) *Data { return &Data{buf: b, dims: []uint64{uint64(len(b))}} }

var lastInput []byte

type plugin struct {
	scratch []byte
	held    *Data
}

// CompressImpl retains the caller's buffer twice: in a receiver field and in
// a package-level variable.
func (p *plugin) CompressImpl(in, out *Data) error {
	p.scratch = in.Bytes()
	lastInput = in.Bytes()[:4]
	out.Become(NewBytes(append([]byte(nil), in.Bytes()...)))
	return nil
}

// Decompress returns a view of the input: the caller may mutate the input
// afterwards and corrupt what it believes is decompressed output.
func (p *plugin) Decompress(in, out *Data) []byte {
	view := in.Bytes()
	return view[2:]
}

// DecompressImpl copies before storing and rebinds the tainted local to the
// copy before letting it escape: clean.
func (p *plugin) DecompressImpl(in, out *Data) error {
	buf := in.Bytes()
	buf = append([]byte(nil), buf...)
	p.scratch = buf
	out.Become(NewBytes(buf))
	return nil
}
