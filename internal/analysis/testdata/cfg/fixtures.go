// Package cfgfixtures holds function shapes exercising the CFG builder's
// edge cases: goto (backward and forward), labeled break/continue, select
// with and without default, fallthrough, defer inside loops, labeled range
// over channels, and method values spawned as goroutines. The golden
// dumps live in testdata/golden/cfg_dumps.txt; regenerate with
// go test ./internal/analysis -run TestCFGDumps -update.
package cfgfixtures

import "sync"

var mu sync.Mutex

func gotoBackward(n int) int {
	total := 0
retry:
	total += n
	n--
	if n > 0 {
		goto retry
	}
	return total
}

func gotoForward(fail bool) int {
	if fail {
		goto out
	}
	mu.Lock()
	mu.Unlock()
out:
	return 0
}

func labeledBreakContinue(grid [][]int) int {
	sum := 0
outer:
	for i := 0; i < len(grid); i++ {
		for _, v := range grid[i] {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			sum += v
		}
	}
	return sum
}

func selectWithDefault(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}

func selectNoDefault(a, b chan int, done chan struct{}) int {
	for {
		select {
		case v := <-a:
			return v
		case v := <-b:
			return v
		case <-done:
			break
		}
	}
}

func deferInLoop(files []string) error {
	for _, f := range files {
		mu.Lock()
		defer mu.Unlock()
		if f == "" {
			return nil
		}
	}
	return nil
}

func fallthroughChain(v int) string {
	out := ""
	switch v {
	case 0:
		out += "zero "
		fallthrough
	case 1:
		out += "small"
	default:
		out = "big"
	}
	return out
}

// labeledRangeOverChannel mixes a labeled range over a channel with labeled
// continue/break from a nested loop: the range's implicit receive must stay
// the loop head both jumps target.
func labeledRangeOverChannel(jobs, results chan int) {
drain:
	for v := range jobs {
		for {
			if v < 0 {
				continue drain
			}
			if v == 0 {
				break drain
			}
			results <- v
			v--
		}
	}
}

type runner struct{}

func (runner) run()  {}
func (runner) stop() {}

// methodValueGoroutine spawns a bound method value: the go and defer calls
// are straight-line CFG nodes; resolving f to runner.run is the call graph's
// job, not the CFG's.
func methodValueGoroutine(r runner) {
	f := r.run
	go f()
	done := r.stop
	defer done()
}
