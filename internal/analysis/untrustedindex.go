package analysis

// UntrustedIndex flags the wild-indexing panic shape the PR-4 fuzzing found
// in delta_encoding: a slice or array index derived from the untrusted
// input stream (or an induction variable bounded only by one) with no
// dominating length check. Out-of-range declared dims must be compared
// against the actual decoded length before element access.
var UntrustedIndex = &Analyzer{
	Name: "untrustedindex",
	Doc:  "slice index derived from untrusted input without a dominating length check (panic)",
	Run: func(pass *Pass) {
		pass.Facts.Taint.reportKind(pass, TaintIndex)
	},
}
