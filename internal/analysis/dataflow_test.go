package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typeCheckSrc parses and type-checks one synthetic file.
func typeCheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     map[ast.Expr]types.TypeAndValue{},
		Defs:      map[*ast.Ident]types.Object{},
		Uses:      map[*ast.Ident]types.Object{},
		Instances: map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

func funcByName(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

// identCollector is a trivial may-analysis: the fact is the set of names of
// idents assigned so far. It exercises Solve's join and fixpoint behavior.
type identCollector struct{}

func (identCollector) EntryFact() any { return map[string]bool{} }

func (identCollector) Transfer(fact any, n ast.Node) any {
	f := fact.(map[string]bool)
	var names []string
	inspectNoFuncLit(n, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					names = append(names, id.Name)
				}
			}
		}
		return true
	})
	if len(names) == 0 {
		return f
	}
	out := make(map[string]bool, len(f)+len(names))
	for k := range f {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

func (identCollector) Join(a, b any) any {
	fa, fb := a.(map[string]bool), b.(map[string]bool)
	out := make(map[string]bool, len(fa)+len(fb))
	for k := range fa {
		out[k] = true
	}
	for k := range fb {
		out[k] = true
	}
	return out
}

func (identCollector) Equal(a, b any) bool {
	fa, fb := a.(map[string]bool), b.(map[string]bool)
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}

// TestSolveJoinsBranches checks that facts from both arms of a branch merge
// at the join point and that loop back edges reach a fixpoint.
func TestSolveJoinsBranches(t *testing.T) {
	src := `package p
func f(cond bool, n int) int {
	a := 1
	if cond {
		b := 2
		_ = b
	} else {
		c := 3
		_ = c
	}
	for i := 0; i < n; i++ {
		d := i
		_ = d
	}
	return a
}`
	_, f, _ := typeCheckSrc(t, src)
	fd := funcByName(t, f, "f")
	cfg := BuildCFG("f", fd.Body)
	res := Solve(cfg, identCollector{})
	exit := ExitFact(res, cfg)
	if exit == nil {
		t.Fatal("no fact reached exit")
	}
	got := exit.(map[string]bool)
	for _, want := range []string{"a", "b", "c", "d", "i", "_"} {
		if !got[want] {
			t.Errorf("exit fact missing %q (got %v)", want, got)
		}
	}
}

// TestSolveUnreachableAfterReturn checks facts do not flow past a terminator.
func TestSolveUnreachableAfterReturn(t *testing.T) {
	src := `package p
func f() int {
	a := 1
	return a
}`
	_, f, _ := typeCheckSrc(t, src)
	fd := funcByName(t, f, "f")
	cfg := BuildCFG("f", fd.Body)
	res := Solve(cfg, identCollector{})
	for _, blk := range cfg.Blocks {
		if blk.Kind == "unreachable" && res.In[blk] != nil {
			t.Errorf("unreachable block b%d received a fact", blk.Index)
		}
	}
}

// TestReachingDefsMergeAndKill checks the two defining properties: a
// re-assignment kills the old definition on its path, and a branch join
// carries the union of surviving definitions.
func TestReachingDefsMergeAndKill(t *testing.T) {
	src := `package p
func f(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	y := x
	x = 3
	z := x
	_ = y
	return z
}`
	_, f, info := typeCheckSrc(t, src)
	fd := funcByName(t, f, "f")
	rd := &ReachingDefs{Info: info}
	cfg := BuildCFG("f", fd.Body)
	res := Solve(cfg, rd)

	defsAt := map[string]int{} // use line "y := x" and "z := x": defs of x
	WalkFacts(cfg, rd, res, func(fact any, n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if rhs, ok := as.Rhs[0].(*ast.Ident); ok && rhs.Name == "x" {
			defsAt[lhs.Name] = len(rd.DefsOf(fact, rhs))
		}
	})
	if defsAt["y"] != 2 {
		t.Errorf("at y := x, want 2 reaching defs of x (init + branch), got %d", defsAt["y"])
	}
	if defsAt["z"] != 1 {
		t.Errorf("at z := x, want 1 reaching def of x (x = 3 kills both), got %d", defsAt["z"])
	}
}

// TestReachingDefsParams checks parameters carry their entry definition,
// marked as caller-controlled.
func TestReachingDefsParams(t *testing.T) {
	src := `package p
func f(n int) int {
	return n
}`
	_, f, info := typeCheckSrc(t, src)
	fd := funcByName(t, f, "f")
	var params []*types.Var
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, info.ObjectOf(name).(*types.Var))
		}
	}
	rd := &ReachingDefs{Info: info, Params: params}
	cfg := BuildCFG("f", fd.Body)
	res := Solve(cfg, rd)
	found := false
	WalkFacts(cfg, rd, res, func(fact any, n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		id := ret.Results[0].(*ast.Ident)
		defs := rd.DefsOf(fact, id)
		if len(defs) != 1 {
			t.Fatalf("want 1 entry def of n, got %d", len(defs))
		}
		for d := range defs {
			if !d.Param {
				t.Error("entry definition of a parameter must be marked Param")
			}
		}
		found = true
	})
	if !found {
		t.Fatal("return statement not visited")
	}
}

// TestFuncUnits checks declarations and nested literals each become exactly
// one unit, and a literal passed to x.Do(...) carries the Once guard.
func TestFuncUnits(t *testing.T) {
	src := `package p
import "sync"
var once sync.Once
func a() {
	go func() { _ = 1 }()
	once.Do(func() { _ = 2 })
}
var b = func() { _ = 3 }`
	_, f, _ := typeCheckSrc(t, src)
	units := funcUnits(f)
	if len(units) != 4 {
		t.Fatalf("want 4 units (a + 2 literals + package-level literal), got %d", len(units))
	}
	guards := 0
	for _, u := range units {
		if u.OnceGuard != "" {
			guards++
			if u.OnceGuard != "once" {
				t.Errorf("OnceGuard = %q, want %q", u.OnceGuard, "once")
			}
		}
	}
	if guards != 1 {
		t.Errorf("want exactly 1 Once-guarded unit, got %d", guards)
	}
}

// TestInspectNoFuncLit checks nested literal bodies stay invisible to the
// enclosing unit's walks.
func TestInspectNoFuncLit(t *testing.T) {
	src := `package p
func f() {
	a := 1
	g := func() {
		b := 2
		_ = b
	}
	_ = a
	g()
}`
	_, f, _ := typeCheckSrc(t, src)
	fd := funcByName(t, f, "f")
	var seen []string
	inspectNoFuncLit(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				seen = append(seen, id.Name)
			}
		}
		return true
	})
	joined := strings.Join(seen, ",")
	if strings.Contains(joined, "b") {
		t.Errorf("walk descended into the function literal: %v", seen)
	}
	for _, want := range []string{"a", "g"} {
		if !strings.Contains(joined, want) {
			t.Errorf("walk missed %q: %v", want, seen)
		}
	}
}

// TestExprKey pins the rendered keys lock tracking relies on.
func TestExprKey(t *testing.T) {
	src := `package p
type inner struct{ mu int }
type outer struct{ in inner }
func f(o *outer, arr []outer) {
	_ = o.in.mu
	_ = (&o.in).mu
	_ = arr[0].in
}`
	_, f, _ := typeCheckSrc(t, src)
	fd := funcByName(t, f, "f")
	var keys []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		keys = append(keys, exprKey(as.Rhs[0]))
		return true
	})
	want := []string{"o.in.mu", "o.in.mu", "arr[...].in"}
	if len(keys) != len(want) {
		t.Fatalf("got %d keys %v, want %v", len(keys), keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("exprKey[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}
