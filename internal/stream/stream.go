// Package stream implements the paper's §VIII future-work item "better
// support for asynchrony and streaming compression": an io.Writer/io.Reader
// pair that compresses an unbounded byte stream in fixed-size frames using
// any registered compressor, plus an asynchronous pipeline that overlaps
// compression of consecutive frames with clones of the compressor.
//
// Frame format: [uvarint raw length][uvarint compressed length][payload],
// terminated by a zero raw length.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"pressio/internal/core"
)

// ErrCorrupt reports a malformed frame stream.
var ErrCorrupt = errors.New("stream: corrupt frame")

// DefaultFrameSize is the raw bytes per frame when unspecified.
const DefaultFrameSize = 1 << 20

// Writer compresses written bytes into frames on the underlying writer.
type Writer struct {
	dst       io.Writer
	comp      *core.Compressor
	frameSize int
	buf       []byte
	pipeline  *asyncPipeline
	closed    bool
	err       error
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithFrameSize sets the raw bytes per frame.
func WithFrameSize(n int) WriterOption {
	return func(w *Writer) {
		if n > 0 {
			w.frameSize = n
		}
	}
}

// WithAsync enables pipelined compression with the given number of worker
// clones (the compressor must be at least thread-safety "serialized").
func WithAsync(workers int) WriterOption {
	return func(w *Writer) {
		if workers > 1 && w.comp.ThreadSafety() >= core.ThreadSafetySerialized {
			w.pipeline = newAsyncPipeline(w.comp, w.dst, workers)
		}
	}
}

// NewWriter wraps dst with a framing compressor. The compressor handle is
// cloned per frame when async, so the caller's handle stays untouched.
func NewWriter(dst io.Writer, compressor string, opts *core.Options, wopts ...WriterOption) (*Writer, error) {
	c, err := core.NewCompressor(compressor)
	if err != nil {
		return nil, err
	}
	if opts != nil {
		if err := c.SetOptions(opts); err != nil {
			return nil, err
		}
	}
	w := &Writer{dst: dst, comp: c, frameSize: DefaultFrameSize}
	for _, o := range wopts {
		o(w)
	}
	return w, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("stream: write after close")
	}
	if w.err != nil {
		return 0, w.err
	}
	total := 0
	for len(p) > 0 {
		room := w.frameSize - len(w.buf)
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
		total += room
		if len(w.buf) == w.frameSize {
			if err := w.flushFrame(); err != nil {
				w.err = err
				return total, err
			}
		}
	}
	return total, nil
}

func (w *Writer) flushFrame() error {
	if len(w.buf) == 0 {
		return nil
	}
	frame := w.buf
	w.buf = nil
	if w.pipeline != nil {
		return w.pipeline.submit(frame)
	}
	return writeFrame(w.dst, w.comp, frame)
}

func writeFrame(dst io.Writer, comp *core.Compressor, frame []byte) error {
	in := core.NewBytes(frame)
	out, err := core.Compress(comp, in)
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(frame)))
	hdr = binary.AppendUvarint(hdr, out.ByteLen())
	if _, err := dst.Write(hdr); err != nil {
		return err
	}
	_, err = dst.Write(out.Bytes())
	return err
}

// Close flushes the final partial frame and writes the terminator.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.flushFrame(); err != nil {
		w.err = err
		return err
	}
	if w.pipeline != nil {
		if err := w.pipeline.drain(); err != nil {
			w.err = err
			return err
		}
	}
	if _, err := w.dst.Write([]byte{0}); err != nil {
		w.err = err
		return err
	}
	return nil
}

// asyncPipeline compresses frames concurrently but writes them in order.
type asyncPipeline struct {
	dst     io.Writer
	results chan chan result
	wg      sync.WaitGroup
	workers chan *core.Compressor
	writeWG sync.WaitGroup
	err     error
	errMu   sync.Mutex
}

type result struct {
	raw  []byte
	data *core.Data
	err  error
}

func newAsyncPipeline(proto *core.Compressor, dst io.Writer, workers int) *asyncPipeline {
	p := &asyncPipeline{dst: dst, results: make(chan chan result, workers)}
	p.workers = make(chan *core.Compressor, workers)
	for i := 0; i < workers; i++ {
		p.workers <- proto.Clone()
	}
	// Single ordered writer goroutine.
	p.writeWG.Add(1)
	go func() {
		defer p.writeWG.Done()
		for ch := range p.results {
			res := <-ch
			if res.err != nil {
				p.setErr(res.err)
				continue
			}
			if p.getErr() != nil {
				continue
			}
			var hdr []byte
			hdr = binary.AppendUvarint(hdr, uint64(len(res.raw)))
			hdr = binary.AppendUvarint(hdr, res.data.ByteLen())
			if _, err := p.dst.Write(hdr); err != nil {
				p.setErr(err)
				continue
			}
			if _, err := p.dst.Write(res.data.Bytes()); err != nil {
				p.setErr(err)
			}
		}
	}()
	return p
}

func (p *asyncPipeline) setErr(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

func (p *asyncPipeline) getErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

func (p *asyncPipeline) submit(frame []byte) error {
	if err := p.getErr(); err != nil {
		return err
	}
	ch := make(chan result, 1)
	p.results <- ch // establishes output order
	worker := <-p.workers
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		out, err := core.Compress(worker, core.NewBytes(frame))
		p.workers <- worker
		ch <- result{raw: frame, data: out, err: err}
	}()
	return nil
}

func (p *asyncPipeline) drain() error {
	p.wg.Wait()
	close(p.results)
	p.writeWG.Wait()
	return p.getErr()
}

// Reader decompresses a frame stream produced by Writer.
type Reader struct {
	src    *byteReader
	comp   *core.Compressor
	buf    []byte
	offset int
	done   bool
}

// NewReader wraps src; the compressor must match the one used to write.
func NewReader(src io.Reader, compressor string, opts *core.Options) (*Reader, error) {
	c, err := core.NewCompressor(compressor)
	if err != nil {
		return nil, err
	}
	if opts != nil {
		if err := c.SetOptions(opts); err != nil {
			return nil, err
		}
	}
	return &Reader{src: &byteReader{r: src}, comp: c}, nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for r.offset == len(r.buf) {
		if r.done {
			return 0, io.EOF
		}
		if err := r.nextFrame(); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.buf[r.offset:])
	r.offset += n
	return n, nil
}

func (r *Reader) nextFrame() error {
	rawLen, err := binary.ReadUvarint(r.src)
	if err != nil {
		return err
	}
	if rawLen == 0 {
		r.done = true
		return nil
	}
	compLen, err := binary.ReadUvarint(r.src)
	if err != nil {
		return err
	}
	if rawLen > 1<<32 || compLen > 1<<32 {
		return ErrCorrupt
	}
	payload := make([]byte, compLen)
	if _, err := io.ReadFull(r.src, payload); err != nil {
		return err
	}
	out := core.NewEmpty(core.DTypeByte, 0)
	if err := r.comp.Decompress(core.NewBytes(payload), out); err != nil {
		return err
	}
	if out.ByteLen() != rawLen {
		return fmt.Errorf("%w: frame decoded to %d bytes, want %d", ErrCorrupt, out.ByteLen(), rawLen)
	}
	r.buf = out.Bytes()
	r.offset = 0
	return nil
}

type byteReader struct {
	r io.Reader
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *byteReader) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// CompressAsync launches a compression in the background and returns a
// channel delivering the result — the minimal asynchronous API of §VIII.
// The compressor handle is cloned, so the caller may keep using it.
func CompressAsync(c *core.Compressor, in *core.Data) <-chan AsyncResult {
	ch := make(chan AsyncResult, 1)
	worker := c.Clone()
	go func() {
		out, err := core.Compress(worker, in)
		ch <- AsyncResult{Data: out, Err: err}
	}()
	return ch
}

// AsyncResult is the outcome of CompressAsync / DecompressAsync.
type AsyncResult struct {
	Data *core.Data
	Err  error
}

// DecompressAsync is the decompression counterpart of CompressAsync; hint
// carries the output dtype/dims.
func DecompressAsync(c *core.Compressor, in, hint *core.Data) <-chan AsyncResult {
	ch := make(chan AsyncResult, 1)
	worker := c.Clone()
	go func() {
		out := core.NewEmpty(hint.DType(), hint.Dims()...)
		err := worker.Decompress(in, out)
		ch <- AsyncResult{Data: out, Err: err}
	}()
	return ch
}
