// Fault tests for the chunked stream path: short reads and short writes at
// the transport level, and torn artifacts produced through the faultinject
// IO wrapper, must surface as errors — never as silently truncated data.
package stream

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"pressio/internal/core"

	_ "pressio/internal/faultinject"
	_ "pressio/internal/pio"
)

// dribbleReader delivers at most max bytes per Read — a deterministic
// short-read source, the shape a slow socket or a fault injector produces.
type dribbleReader struct {
	src []byte
	max int
}

func (d *dribbleReader) Read(p []byte) (int, error) {
	if len(d.src) == 0 {
		return 0, io.EOF
	}
	n := d.max
	if n > len(p) {
		n = len(p)
	}
	if n > len(d.src) {
		n = len(d.src)
	}
	copy(p, d.src[:n])
	d.src = d.src[n:]
	return n, nil
}

// failAfterWriter accepts limit bytes, then fails with a short write — the
// io.Writer contract for a sink that runs out of space mid-frame.
type failAfterWriter struct {
	buf   bytes.Buffer
	limit int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	room := w.limit - w.buf.Len()
	if room <= 0 {
		return 0, io.ErrShortWrite
	}
	if len(p) <= room {
		return w.buf.Write(p)
	}
	n, _ := w.buf.Write(p[:room])
	return n, io.ErrShortWrite
}

func encodeStream(t *testing.T, payload []byte, frameSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "flate", nil, WithFrameSize(frameSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newFaultIO builds the faultinject IO wrapper over posix with the given
// short-read/short-write rates, mirroring how a chaos harness composes it.
func newFaultIO(t *testing.T, path string, readRate, writeRate float64) core.IOPlugin {
	t.Helper()
	ioP, err := core.NewIO("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.SetValue(core.KeyIOPath, path)
	o.SetValue("faultinject_io:io", "posix")
	o.SetValue("faultinject_io:seed", int64(17))
	o.SetValue("faultinject_io:shortread_rate", readRate)
	o.SetValue("faultinject_io:shortwrite_rate", writeRate)
	if err := ioP.SetOptions(o); err != nil {
		t.Fatal(err)
	}
	return ioP
}

// TestStreamReaderReassemblesAcrossShortReads: the chunked decoder must
// reassemble frames even when the source dribbles one byte at a time.
func TestStreamReaderReassemblesAcrossShortReads(t *testing.T) {
	payload := randomPayload(1<<16, 3)
	artifact := encodeStream(t, payload, 1<<12)
	for _, max := range []int{1, 3, 7} {
		r, err := NewReader(&dribbleReader{src: artifact, max: max}, "flate", nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("max=%d: %v", max, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("max=%d: round trip mismatch under dribbled reads", max)
		}
	}
}

// TestStreamWriterSurfacesShortWrite: a sink that dies mid-frame must fail
// the stream loudly; a Close after the failure must not report success.
func TestStreamWriterSurfacesShortWrite(t *testing.T) {
	payload := randomPayload(1<<16, 4)
	sink := &failAfterWriter{limit: 512}
	w, err := NewWriter(sink, "flate", nil, WithFrameSize(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	_, werr := w.Write(payload)
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Fatal("short-write sink was not reported by Write or Close")
	}
	if werr != nil && !errors.Is(werr, io.ErrShortWrite) {
		t.Fatalf("write error %v does not carry io.ErrShortWrite", werr)
	}
}

// TestStreamTornArtifactFromShortWriteIsRejected composes the stream encoder
// with the faultinject IO wrapper: the injected short write tears the
// artifact on disk, and decoding the torn artifact must fail instead of
// returning a prefix of the data.
func TestStreamTornArtifactFromShortWriteIsRejected(t *testing.T) {
	payload := randomPayload(1<<16, 5)
	artifact := encodeStream(t, payload, 1<<12)
	path := filepath.Join(t.TempDir(), "torn.lps")

	if err := newFaultIO(t, path, 0, 1).Write(core.NewBytes(artifact)); err == nil {
		t.Fatal("injected short write reported success")
	}
	torn, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) == 0 || len(torn) >= len(artifact) {
		t.Fatalf("torn artifact is %d bytes of %d, want a strict prefix", len(torn), len(artifact))
	}
	r, err := NewReader(bytes.NewReader(torn), "flate", nil)
	if err == nil {
		_, err = io.ReadAll(r)
	}
	if err == nil {
		t.Fatal("decoder accepted a torn stream artifact")
	}
}

// TestStreamShortReadFromStorageIsRejected: an intact artifact read back
// through an injected short read is a prefix, and the decoder must reject
// it rather than silently deliver partial data.
func TestStreamShortReadFromStorageIsRejected(t *testing.T) {
	payload := randomPayload(1<<16, 6)
	artifact := encodeStream(t, payload, 1<<12)
	path := filepath.Join(t.TempDir(), "ok.lps")
	if err := os.WriteFile(path, artifact, 0o644); err != nil {
		t.Fatal(err)
	}

	// Intact read decodes fine through the same wrapper at rate 0.
	d, err := newFaultIO(t, path, 0, 0).Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(d.Bytes()), "flate", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("intact artifact did not round-trip: %v", err)
	}

	// Short read delivers a strict prefix; decode must fail.
	d, err = newFaultIO(t, path, 1, 0).Read(nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(d.ByteLen()) >= len(artifact) {
		t.Fatal("short read did not truncate the artifact")
	}
	r, err = NewReader(bytes.NewReader(d.Bytes()), "flate", nil)
	if err == nil {
		_, err = io.ReadAll(r)
	}
	if err == nil {
		t.Fatal("decoder accepted a short-read artifact")
	}
}
