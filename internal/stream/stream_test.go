package stream

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/lossless"
	_ "pressio/internal/sz"
)

func randomPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(8)) // compressible
	}
	return b
}

func TestStreamRoundTrip(t *testing.T) {
	payload := randomPayload(1<<18, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "flate", nil, WithFrameSize(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	// Write in awkward sizes to exercise frame boundaries.
	for off := 0; off < len(payload); {
		n := 1000 + off%7777
		if off+n > len(payload) {
			n = len(payload) - off
		}
		if _, err := w.Write(payload[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= len(payload) {
		t.Fatalf("stream did not compress: %d bytes", buf.Len())
	}
	r, err := NewReader(&buf, "flate", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stream round trip mismatch")
	}
}

func TestStreamEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "flate", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, "flate", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %d bytes, %v", len(got), err)
	}
}

func TestStreamAsyncOrdering(t *testing.T) {
	// Async compression must still write frames in order.
	payload := randomPayload(1<<19, 2)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "flate", nil, WithFrameSize(1<<13), WithAsync(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, "flate", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("async stream reordered or corrupted frames")
	}
}

func TestStreamTruncationDetected(t *testing.T) {
	payload := randomPayload(1<<15, 3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "flate", nil, WithFrameSize(1<<12))
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	r, _ := NewReader(bytes.NewReader(cut), "flate", nil)
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("truncated stream should error")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "flate", nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write after close should fail")
	}
	// Double close is idempotent.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressAsyncAPI(t *testing.T) {
	c, err := core.NewCompressor("sz_threadsafe")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.01)); err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 1024)
	for i := range vals {
		vals[i] = float32(i % 37)
	}
	in := core.FromFloat32s(vals, 32, 32)
	// Launch several overlapping compressions from one handle.
	var chans []<-chan AsyncResult
	for i := 0; i < 8; i++ {
		chans = append(chans, CompressAsync(c, in))
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("async %d: %v", i, res.Err)
		}
		dec := <-DecompressAsync(c, res.Data, core.NewEmpty(core.DTypeFloat32, 32, 32))
		if dec.Err != nil {
			t.Fatalf("async decompress %d: %v", i, dec.Err)
		}
		for j, v := range dec.Data.Float32s() {
			if d := float64(v - vals[j]); d > 0.01 || d < -0.01 {
				t.Fatalf("async %d elem %d bound violated", i, j)
			}
		}
	}
}

func TestUnknownCompressorRejected(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, "bogus", nil); err == nil {
		t.Fatal("unknown compressor should fail")
	}
	if _, err := NewReader(&bytes.Buffer{}, "bogus", nil); err == nil {
		t.Fatal("unknown compressor should fail")
	}
}

func BenchmarkStreamWriteAsync(b *testing.B) {
	payload := randomPayload(1<<20, 1)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "flate", nil, WithFrameSize(1<<16), WithAsync(4))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamWriteSerial(b *testing.B) {
	payload := randomPayload(1<<20, 1)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "flate", nil, WithFrameSize(1<<16))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(payload); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
