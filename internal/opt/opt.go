// Package opt implements the configuration optimizer (the paper's
// LibPressio-Opt / FRaZ lineage): given a compressor and a target — a fixed
// compression ratio or a quality floor — it searches the error-bound space
// and returns the configuration that meets the target. Because it drives
// compressors exclusively through the generic interface, it works with any
// registered plugin, including the "switch" meta-compressor for searching
// across compressor types.
package opt

import (
	"errors"
	"fmt"
	"math"

	"pressio/internal/core"
)

// ErrNoSolution reports that the target is unreachable in the search range.
var ErrNoSolution = errors.New("opt: no configuration meets the target")

// Result describes the configuration the optimizer found.
type Result struct {
	// Bound is the error bound (value of BoundKey) selected.
	Bound float64
	// Ratio is the compression ratio achieved at Bound.
	Ratio float64
	// PSNR is the decompressed quality at Bound (dB; +Inf when exact).
	PSNR float64
	// Evaluations counts compressor invocations spent searching.
	Evaluations int
	// Options holds the full option set to apply for this configuration.
	Options *core.Options
}

// Config tunes the search.
type Config struct {
	// BoundKey is the option that carries the error bound
	// (default "pressio:abs").
	BoundKey string
	// Lo and Hi bracket the bound search range (defaults derived from the
	// input's value range).
	Lo, Hi float64
	// Tolerance is the acceptable relative deviation from the target
	// (default 0.1, i.e. ±10 % like FRaZ's fixed-ratio contract).
	Tolerance float64
	// MaxIters bounds the search (default 32).
	MaxIters int
}

func (c Config) normalized(in *core.Data) Config {
	if c.BoundKey == "" {
		c.BoundKey = core.KeyAbs
	}
	lo, hi := core.ValueRange(in)
	rng := hi - lo
	if rng <= 0 {
		rng = 1
	}
	if c.Lo <= 0 {
		c.Lo = rng * 1e-9
	}
	if c.Hi <= 0 {
		c.Hi = rng * 0.5
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 32
	}
	return c
}

// evaluate compresses (and decompresses) once at the given bound and
// reports ratio and PSNR.
func evaluate(c *core.Compressor, in *core.Data, key string, bound float64) (ratio, psnr float64, err error) {
	if err := c.SetOptions(core.NewOptions().SetValue(key, bound)); err != nil {
		return 0, 0, err
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		return 0, 0, err
	}
	ratio = float64(in.ByteLen()) / float64(comp.ByteLen())
	dec, err := core.Decompress(c, comp, in.DType(), in.Dims()...)
	if err != nil {
		return 0, 0, err
	}
	orig := in.AsFloat64s()
	got := dec.AsFloat64s()
	if len(got) != len(orig) {
		return 0, 0, fmt.Errorf("opt: decompressed %d elements, want %d", len(got), len(orig))
	}
	lo, hi := core.ValueRange(in)
	mse := 0.0
	for i := range orig {
		d := got[i] - orig[i]
		mse += d * d
	}
	mse /= float64(len(orig))
	if mse == 0 {
		psnr = math.Inf(1)
	} else {
		psnr = 20*math.Log10(hi-lo) - 10*math.Log10(mse)
	}
	return ratio, psnr, nil
}

// TuneRatio finds an error bound whose compression ratio is within
// cfg.Tolerance of targetRatio, searching log-bound space by bisection
// (ratio grows monotonically with the bound for error-bounded
// compressors). This is the fixed-ratio use case of FRaZ.
func TuneRatio(c *core.Compressor, in *core.Data, targetRatio float64, cfg Config) (Result, error) {
	if targetRatio <= 1 {
		return Result{}, fmt.Errorf("opt: target ratio %v must exceed 1", targetRatio)
	}
	cfg = cfg.normalized(in)
	work := c.Clone()
	loB, hiB := math.Log(cfg.Lo), math.Log(cfg.Hi)
	evals := 0

	eval := func(logB float64) (Result, error) {
		bound := math.Exp(logB)
		ratio, psnr, err := evaluate(work, in, cfg.BoundKey, bound)
		evals++
		return Result{Bound: bound, Ratio: ratio, PSNR: psnr, Evaluations: evals}, err
	}
	lo, err := eval(loB)
	if err != nil {
		return lo, err
	}
	hi, err := eval(hiB)
	if err != nil {
		return hi, err
	}
	within := func(r Result) bool {
		return math.Abs(r.Ratio-targetRatio) <= cfg.Tolerance*targetRatio
	}
	finish := func(r Result) (Result, error) {
		r.Options = core.NewOptions().SetValue(cfg.BoundKey, r.Bound)
		r.Evaluations = evals
		return r, nil
	}
	if within(lo) {
		return finish(lo)
	}
	if within(hi) {
		return finish(hi)
	}
	if lo.Ratio > targetRatio || hi.Ratio < targetRatio {
		return Result{Evaluations: evals}, fmt.Errorf("%w: ratio range [%.2f, %.2f] misses %.2f",
			ErrNoSolution, lo.Ratio, hi.Ratio, targetRatio)
	}
	best := lo
	for i := 0; i < cfg.MaxIters; i++ {
		mid, err := eval((loB + hiB) / 2)
		if err != nil {
			return mid, err
		}
		if math.Abs(mid.Ratio-targetRatio) < math.Abs(best.Ratio-targetRatio) {
			best = mid
		}
		if within(mid) {
			return finish(mid)
		}
		if mid.Ratio < targetRatio {
			loB = (loB + hiB) / 2
		} else {
			hiB = (loB + hiB) / 2
		}
	}
	if within(best) {
		return finish(best)
	}
	best.Evaluations = evals
	return best, fmt.Errorf("%w: best ratio %.2f for target %.2f after %d evaluations",
		ErrNoSolution, best.Ratio, targetRatio, evals)
}

// TunePSNR finds the largest error bound (hence best ratio) whose PSNR
// stays at or above targetPSNR.
func TunePSNR(c *core.Compressor, in *core.Data, targetPSNR float64, cfg Config) (Result, error) {
	cfg = cfg.normalized(in)
	work := c.Clone()
	loB, hiB := math.Log(cfg.Lo), math.Log(cfg.Hi)
	evals := 0
	eval := func(logB float64) (Result, error) {
		bound := math.Exp(logB)
		ratio, psnr, err := evaluate(work, in, cfg.BoundKey, bound)
		evals++
		return Result{Bound: bound, Ratio: ratio, PSNR: psnr}, err
	}
	lo, err := eval(loB)
	if err != nil {
		return lo, err
	}
	if lo.PSNR < targetPSNR {
		lo.Evaluations = evals
		return lo, fmt.Errorf("%w: PSNR %.1f below target %.1f even at the smallest bound",
			ErrNoSolution, lo.PSNR, targetPSNR)
	}
	best := lo
	for i := 0; i < cfg.MaxIters; i++ {
		mid, err := eval((loB + hiB) / 2)
		if err != nil {
			return mid, err
		}
		if mid.PSNR >= targetPSNR {
			best = mid
			loB = (loB + hiB) / 2
		} else {
			hiB = (loB + hiB) / 2
		}
		if hiB-loB < 0.05 {
			break
		}
	}
	best.Options = core.NewOptions().SetValue(cfg.BoundKey, best.Bound)
	best.Evaluations = evals
	return best, nil
}

// BestCompressor evaluates each named compressor at the given generic
// options and returns the name achieving the highest compression ratio
// (ties broken by PSNR). It exercises exactly the compressor-agnostic
// search loop the paper's optimizer motivates.
func BestCompressor(names []string, in *core.Data, opts *core.Options) (best string, results map[string]Result, err error) {
	results = make(map[string]Result, len(names))
	bestRatio := -1.0
	for _, name := range names {
		c, err := core.NewCompressor(name)
		if err != nil {
			return "", results, err
		}
		if err := c.SetOptions(opts); err != nil {
			continue // option not understood: skip this candidate
		}
		comp, err := core.Compress(c, in)
		if err != nil {
			continue // e.g. dtype unsupported
		}
		dec, err := core.Decompress(c, comp, in.DType(), in.Dims()...)
		if err != nil {
			continue
		}
		ratio := float64(in.ByteLen()) / float64(comp.ByteLen())
		orig := in.AsFloat64s()
		got := dec.AsFloat64s()
		mse := 0.0
		for i := range orig {
			d := got[i] - orig[i]
			mse += d * d
		}
		mse /= float64(len(orig))
		lo, hi := core.ValueRange(in)
		psnr := math.Inf(1)
		if mse > 0 {
			psnr = 20*math.Log10(hi-lo) - 10*math.Log10(mse)
		}
		results[name] = Result{Ratio: ratio, PSNR: psnr, Evaluations: 1}
		if ratio > bestRatio {
			bestRatio = ratio
			best = name
		}
	}
	if best == "" {
		return "", results, fmt.Errorf("%w: no candidate succeeded", ErrNoSolution)
	}
	return best, results, nil
}
