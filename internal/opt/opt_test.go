package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pressio/internal/core"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/sz"
	_ "pressio/internal/zfp"
)

func field(seed int64) *core.Data {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, 32*32*16)
	i := 0
	for z := 0; z < 16; z++ {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				vals[i] = float32(25*math.Sin(float64(x)/6)*math.Cos(float64(y)/8) +
					5*math.Sin(float64(z)/3) + 0.02*rng.NormFloat64())
				i++
			}
		}
	}
	return core.FromFloat32s(vals, 16, 32, 32)
}

func TestTuneRatioHitsTarget(t *testing.T) {
	in := field(1)
	c, err := core.NewCompressor("sz_threadsafe")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{5, 10, 20} {
		res, err := TuneRatio(c, in, target, Config{})
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if math.Abs(res.Ratio-target) > 0.1*target {
			t.Fatalf("target %v: achieved %v", target, res.Ratio)
		}
		if res.Bound <= 0 || res.Evaluations < 2 {
			t.Fatalf("result %+v", res)
		}
		// Returned options must reproduce the ratio.
		c2 := c.Clone()
		if err := c2.SetOptions(res.Options); err != nil {
			t.Fatal(err)
		}
		comp, err := core.Compress(c2, in)
		if err != nil {
			t.Fatal(err)
		}
		if got := float64(in.ByteLen()) / float64(comp.ByteLen()); math.Abs(got-res.Ratio) > 1e-9 {
			t.Fatalf("options not reproducible: %v vs %v", got, res.Ratio)
		}
	}
}

func TestTuneRatioWorksThroughZfp(t *testing.T) {
	// zfp's fixed-accuracy mode rounds the tolerance down to a power of
	// two, so its ratio curve is a step function — a coarser tolerance is
	// needed than for sz's smooth curve.
	in := field(2)
	c, _ := core.NewCompressor("zfp")
	res, err := TuneRatio(c, in, 12, Config{Tolerance: 0.35})
	if err != nil {
		t.Fatalf("zfp tuning failed: %v", err)
	}
	if math.Abs(res.Ratio-12) > 0.35*12 {
		t.Fatalf("achieved %v", res.Ratio)
	}
}

func TestTuneRatioUnreachable(t *testing.T) {
	in := field(3)
	c, _ := core.NewCompressor("sz_threadsafe")
	// A ratio of 10 million is unreachable in the default range.
	if _, err := TuneRatio(c, in, 1e7, Config{}); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("expected ErrNoSolution, got %v", err)
	}
	if _, err := TuneRatio(c, in, 0.5, Config{}); err == nil {
		t.Fatal("ratio <= 1 must be rejected")
	}
}

func TestTunePSNRMeetsFloor(t *testing.T) {
	in := field(4)
	c, _ := core.NewCompressor("sz_threadsafe")
	target := 60.0
	res, err := TunePSNR(c, in, target, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PSNR < target {
		t.Fatalf("PSNR %v below floor %v", res.PSNR, target)
	}
	// A lower floor should allow an equal-or-better ratio.
	loose, err := TunePSNR(c, in, 40, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Ratio < res.Ratio-1e-9 {
		t.Fatalf("looser floor gave worse ratio: %v vs %v", loose.Ratio, res.Ratio)
	}
}

func TestBestCompressorSearch(t *testing.T) {
	in := field(5)
	opts := core.NewOptions().SetValue(core.KeyAbs, 0.01)
	best, results, err := BestCompressor([]string{"sz_threadsafe", "zfp", "flate", "noop"}, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("results %v", results)
	}
	// noop never wins and the winner is one of the lossy codecs.
	if best == "noop" || best == "flate" {
		t.Fatalf("best = %v", best)
	}
	for name, r := range results {
		if r.Ratio <= 0 {
			t.Fatalf("%s ratio %v", name, r.Ratio)
		}
	}
}

func TestBestCompressorAllFail(t *testing.T) {
	in := core.FromInt32s([]int32{1, 2, 3})
	// Lossy float-only compressors all fail on int data.
	if _, _, err := BestCompressor([]string{"sz_threadsafe", "fpzip"}, in,
		core.NewOptions().SetValue(core.KeyAbs, 0.1)); err == nil {
		t.Fatal("expected ErrNoSolution")
	}
}
