package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"pressio/internal/cloc"
)

// LocTask is one row of Table II: a use case implemented both natively
// (once per compressor) and once against the generic interface.
type LocTask struct {
	Name string
	// Compressors is how many compressors the native side supports (the
	// generic side supports every registered plugin).
	Compressors int
	// NativeDirs are the per-compressor implementations, summed (as the
	// paper does for rows with no multi-compressor native equivalent).
	NativeDirs []string
	// GenericDirs are the generic-interface implementation's sources.
	GenericDirs []string
	// NoNativeEquivalent marks rows the paper tags with a dagger.
	NoNativeEquivalent bool
}

// LocRow is the measured outcome for one task.
type LocRow struct {
	Task         LocTask
	NativeLines  int
	GenericLines int
	Improvement  int
	RelativePct  float64
}

// Tasks lists the Table II rows this repository reproduces. "Bindings" rows
// from the paper (Julia/Python/R/Rust) are represented by the stream
// adapter task: in Go the analogous artifact is an io-stream adapter layer
// written per-compressor versus once generically.
func Tasks() []LocTask {
	return []LocTask{
		{
			Name:        "CLI",
			Compressors: 3,
			NativeDirs:  []string{"clients/native/sz-cli", "clients/native/zfp-cli", "clients/native/mgard-cli"},
			GenericDirs: []string{"cmd/pressio"},
		},
		{
			Name:        "HDF5 filter",
			Compressors: 2,
			NativeDirs:  []string{"clients/native/h5filter-sz", "clients/native/h5filter-zfp"},
			GenericDirs: []string{"clients/pressio/h5filter"},
		},
		{
			Name:        "Z-Checker",
			Compressors: 4,
			NativeDirs:  []string{"clients/native/zchecker"},
			GenericDirs: []string{"cmd/pressio-zchecker"},
		},
		{
			Name:        "Configuration optimizer",
			Compressors: 2,
			NativeDirs:  []string{"clients/native/sz-opt", "clients/native/zfp-opt", "clients/native/opt-race"},
			GenericDirs: []string{"cmd/pressio-opt", "internal/opt"},
		},
		{
			Name:        "Stream adapter (bindings)",
			Compressors: 3,
			NativeDirs:  []string{"clients/native/sz-writer", "clients/native/zfp-writer", "clients/native/mgard-writer"},
			GenericDirs: []string{"clients/pressio/writer"},
		},
		{
			Name:               "Fuzzer",
			GenericDirs:        []string{"cmd/pressio-fuzz"},
			NoNativeEquivalent: true,
		},
		{
			Name:               "DistributedExperiment",
			GenericDirs:        []string{"cmd/pressio-exp"},
			NoNativeEquivalent: true,
		},
	}
}

// RepoRoot walks upward from the working directory to the module root.
func RepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("experiments: go.mod not found above working directory")
		}
		dir = parent
	}
}

// TableII measures every task relative to the repository root.
func TableII(root string) ([]LocRow, error) {
	count := func(dirs []string) (int, error) {
		total := 0
		for _, d := range dirs {
			c, err := cloc.CountDir(filepath.Join(root, d), []string{".go"}, true)
			if err != nil {
				return 0, fmt.Errorf("counting %s: %w", d, err)
			}
			total += c.Code
		}
		return total, nil
	}
	var rows []LocRow
	for _, task := range Tasks() {
		nat, err := count(task.NativeDirs)
		if err != nil {
			return nil, err
		}
		gen, err := count(task.GenericDirs)
		if err != nil {
			return nil, err
		}
		row := LocRow{Task: task, NativeLines: nat, GenericLines: gen}
		if nat > 0 {
			row.Improvement = nat - gen
			row.RelativePct = 100 * float64(nat-gen) / float64(nat)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableIIReport renders the rows in the paper's Table II format.
func TableIIReport(rows []LocRow) string {
	var cells [][]string
	for _, r := range rows {
		name := r.Task.Name
		if r.Task.NoNativeEquivalent {
			name += " (+)"
		}
		nat, imp, rel := "-", "-", "-"
		if r.NativeLines > 0 {
			nat = fmt.Sprintf("%d", r.NativeLines)
			imp = fmt.Sprintf("%d", r.Improvement)
			rel = fmt.Sprintf("%.2f%%", r.RelativePct)
		}
		comp := "-"
		if r.Task.Compressors > 0 {
			comp = fmt.Sprintf("%d", r.Task.Compressors)
		}
		cells = append(cells, []string{
			name, comp, nat, fmt.Sprintf("%d", r.GenericLines), imp, rel,
		})
	}
	return "Table II: lines of client code ((+) marks rows with no native multi-compressor equivalent)\n" +
		Table([]string{"task", "compressors", "lines native", "lines generic", "improvement", "relative"}, cells)
}
