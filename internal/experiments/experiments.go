// Package experiments regenerates every quantitative artifact of the
// paper's evaluation: the Figure 3 overhead distribution with its Wilcoxon
// test (§VI), the in-text §V measurements (dimension ordering, 1-D
// flattening, zfp block padding, MGARD minimum dims, embeddable-vs-exec
// overhead), Table I's feature matrix, and Table II's lines-of-code
// comparison. cmd/pressio-bench drives it from the command line and the
// top-level bench_test.go exposes one benchmark per artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pressio/internal/core"
	"pressio/internal/sdrbench"

	// The experiments exercise the full plugin library.
	_ "pressio/internal/bitgroom"
	_ "pressio/internal/fpzip"
	_ "pressio/internal/lossless"
	_ "pressio/internal/meta"
	_ "pressio/internal/metrics"
	_ "pressio/internal/mgard"
	_ "pressio/internal/pio"
	_ "pressio/internal/sz"
	_ "pressio/internal/tthresh"
	_ "pressio/internal/zfp"
)

// Dataset couples a synthetic SDRBench stand-in with its name.
type Dataset struct {
	Name string
	Data *core.Data
}

// Datasets generates the three evaluation datasets of §VI at the given
// scale (1 = quick, 2+ = closer to paper-scale buffers).
func Datasets(scale int, seed int64) []Dataset {
	names := []string{sdrbench.NameScaleLetKF, sdrbench.NameNYX, sdrbench.NameHACC}
	out := make([]Dataset, 0, len(names))
	for i, n := range names {
		d, _ := sdrbench.Generate(n, scale, seed+int64(i))
		out = append(out, Dataset{Name: n, Data: d})
	}
	return out
}

// ratioOf compresses in with the named compressor at generic options and
// returns the compression ratio.
func ratioOf(name string, in *core.Data, opts *core.Options) (float64, error) {
	c, err := core.NewCompressor(name)
	if err != nil {
		return 0, err
	}
	if err := c.SetOptions(opts); err != nil {
		return 0, err
	}
	comp, err := core.Compress(c, in)
	if err != nil {
		return 0, err
	}
	return float64(in.ByteLen()) / float64(comp.ByteLen()), nil
}

// Table renders rows as an aligned plain-text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
