package experiments

import (
	"fmt"
	"time"

	"pressio/internal/core"
	"pressio/internal/mgard"
	"pressio/internal/stats"
	"pressio/internal/sz"
	"pressio/internal/zfp"
)

// OverheadConfig identifies one matched-pair configuration of the §VI
// overhead experiment: a dataset, a compressor, and a value-range relative
// error bound.
type OverheadConfig struct {
	Dataset    string
	Compressor string
	RelBound   float64
}

func (c OverheadConfig) String() string {
	return fmt.Sprintf("%s/%s@%g", c.Dataset, c.Compressor, c.RelBound)
}

// OverheadResult summarizes one configuration's matched-pair runs.
type OverheadResult struct {
	Config OverheadConfig
	// MedianPct is the median percent overhead of the generic interface
	// relative to the native API across runs.
	MedianPct float64
	// MaxPct is the largest single-run percent overhead.
	MaxPct float64
	// MinPct is the smallest (most negative) single-run percent overhead.
	MinPct float64
	// NativeMedianMS / GenericMedianMS are the median times of each side.
	NativeMedianMS  float64
	GenericMedianMS float64
}

// Fig3Result aggregates the full experiment.
type Fig3Result struct {
	Results []OverheadResult
	// MaxMedianPct is the largest per-config median overhead (the paper
	// reports 0.47%).
	MaxMedianPct float64
	// MaxSinglePct is the largest single observation (the paper: 2.08%).
	MaxSinglePct float64
	// Wilcoxon is the signed-rank test over all (generic, native) pairs
	// (the paper: p = .600, insufficient evidence of overhead).
	Wilcoxon stats.WilcoxonResult
	Runs     int
}

// fig3Configs builds the 35 configurations: 3 datasets x 3 compressors x 4
// value-range relative bounds in the paper's 1e-4..2e-2 window, minus one
// (the paper also tested 35, not a full cross product).
func fig3Configs() []OverheadConfig {
	bounds := []float64{1e-4, 1e-3, 1e-2, 2e-2}
	var out []OverheadConfig
	for _, ds := range []string{"scale-letkf", "nyx-density", "hacc-x"} {
		for _, comp := range []string{"sz", "zfp", "mgard"} {
			for _, b := range bounds {
				if ds == "hacc-x" && comp == "zfp" && b == 2e-2 {
					continue // keep the paper's count of 35 configurations
				}
				out = append(out, OverheadConfig{Dataset: ds, Compressor: comp, RelBound: b})
			}
		}
	}
	return out
}

// nativeCompress calls the compressor's own API directly, as a hand-written
// integration would, bypassing the generic interface entirely.
func nativeCompress(comp string, in *core.Data, relBound float64) error {
	switch comp {
	case "sz":
		_, err := sz.CompressSlice(in.Float32s(), in.Dims(),
			sz.Params{Mode: core.BoundValueRangeRel, Bound: relBound})
		return err
	case "zfp":
		lo, hi := core.ValueRange(in)
		tol := relBound * (hi - lo)
		if tol <= 0 {
			tol = 1e-12
		}
		_, err := zfp.CompressSlice(in.Float32s(), in.Dims(),
			zfp.Params{Mode: zfp.ModeFixedAccuracy, Tolerance: tol})
		return err
	case "mgard":
		_, err := mgard.CompressSlice(in.Float32s(), in.Dims(),
			mgard.Params{Mode: core.BoundValueRangeRel, Bound: relBound})
		return err
	default:
		return fmt.Errorf("experiments: no native path for %q", comp)
	}
}

// Fig3 runs the matched-pair overhead experiment: every configuration is
// timed `runs` times through the native API and through the generic
// interface, alternating which side goes first to cancel thermal drift.
func Fig3(scale, runs int, seed int64) (Fig3Result, error) {
	if runs < 4 {
		runs = 4
	}
	datasets := map[string]*core.Data{}
	for _, d := range Datasets(scale, seed) {
		datasets[d.Name] = d.Data
	}
	var res Fig3Result
	res.Runs = runs
	var allGeneric, allNative []float64
	for _, cfg := range fig3Configs() {
		in := datasets[cfg.Dataset]
		c, err := core.NewCompressor(cfg.Compressor)
		if err != nil {
			return res, err
		}
		// Configure once, outside the timed region, exactly as the paper's
		// harness does.
		if err := c.SetOptions(core.NewOptions().SetValue(core.KeyRel, cfg.RelBound)); err != nil {
			return res, err
		}
		out := core.NewEmpty(core.DTypeByte, 0)
		// Warm up both paths, and calibrate how many calls one timed
		// sample needs: microsecond-scale calls are hopelessly noisy, so
		// each sample repeats the call until it covers ~10 ms of work
		// (identically on both sides, preserving the matched pairing).
		warm := time.Now()
		if err := nativeCompress(cfg.Compressor, in, cfg.RelBound); err != nil {
			return res, fmt.Errorf("%s native: %w", cfg, err)
		}
		warmDur := time.Since(warm)
		if err := c.Compress(in, out); err != nil {
			return res, fmt.Errorf("%s generic: %w", cfg, err)
		}
		reps := 1
		if target := 10 * time.Millisecond; warmDur < target && warmDur > 0 {
			reps = int(target / warmDur)
			if reps > 200 {
				reps = 200
			}
			if reps < 1 {
				reps = 1
			}
		}
		nativeMS := make([]float64, runs)
		genericMS := make([]float64, runs)
		for r := 0; r < runs; r++ {
			runNative := func() error {
				t := time.Now()
				for k := 0; k < reps; k++ {
					if err := nativeCompress(cfg.Compressor, in, cfg.RelBound); err != nil {
						return err
					}
				}
				nativeMS[r] = float64(time.Since(t).Nanoseconds()) / 1e6 / float64(reps)
				return nil
			}
			runGeneric := func() error {
				t := time.Now()
				for k := 0; k < reps; k++ {
					if err := c.Compress(in, out); err != nil {
						return err
					}
				}
				genericMS[r] = float64(time.Since(t).Nanoseconds()) / 1e6 / float64(reps)
				return nil
			}
			var err error
			if r%2 == 0 {
				err = runNative()
				if err == nil {
					err = runGeneric()
				}
			} else {
				err = runGeneric()
				if err == nil {
					err = runNative()
				}
			}
			if err != nil {
				return res, fmt.Errorf("%s: %w", cfg, err)
			}
		}
		pct := make([]float64, runs)
		for r := 0; r < runs; r++ {
			pct[r] = 100 * (genericMS[r] - nativeMS[r]) / nativeMS[r]
		}
		or := OverheadResult{
			Config:          cfg,
			MedianPct:       stats.Median(pct),
			MaxPct:          stats.Max(pct),
			MinPct:          stats.Min(pct),
			NativeMedianMS:  stats.Median(nativeMS),
			GenericMedianMS: stats.Median(genericMS),
		}
		res.Results = append(res.Results, or)
		if or.MedianPct > res.MaxMedianPct {
			res.MaxMedianPct = or.MedianPct
		}
		if or.MaxPct > res.MaxSinglePct {
			res.MaxSinglePct = or.MaxPct
		}
		allGeneric = append(allGeneric, genericMS...)
		allNative = append(allNative, nativeMS...)
	}
	if w, err := stats.WilcoxonSignedRank(allGeneric, allNative); err == nil {
		res.Wilcoxon = w
	}
	return res, nil
}

// Report renders the experiment in the shape of Figure 3: a histogram of
// per-configuration median overheads plus the headline numbers.
func (r Fig3Result) Report() string {
	medians := make([]float64, len(r.Results))
	for i, or := range r.Results {
		medians[i] = or.MedianPct
	}
	lo, hi := stats.Min(medians), stats.Max(medians)
	if lo == hi {
		lo, hi = lo-0.5, hi+0.5
	}
	counts, edges := stats.Histogram(medians, lo, hi, 9)
	var rows [][]string
	for i, c := range counts {
		bar := ""
		for k := 0; k < c; k++ {
			bar += "#"
		}
		rows = append(rows, []string{
			fmt.Sprintf("[%+.2f%%, %+.2f%%)", edges[i], edges[i+1]),
			fmt.Sprintf("%d", c),
			bar,
		})
	}
	out := "Figure 3: distribution of median percent overheads across configurations\n"
	out += Table([]string{"median overhead bin", "configs", ""}, rows)
	out += fmt.Sprintf("\nconfigurations: %d, runs each: %d\n", len(r.Results), r.Runs)
	out += fmt.Sprintf("largest median overhead: %.2f%% (paper: 0.47%%)\n", r.MaxMedianPct)
	out += fmt.Sprintf("largest single-run overhead: %.2f%% (paper: 2.08%%)\n", r.MaxSinglePct)
	out += fmt.Sprintf("Wilcoxon signed-rank: W=%.1f N=%d p=%.3f (paper: p=.600)\n",
		r.Wilcoxon.W, r.Wilcoxon.N, r.Wilcoxon.P)
	return out
}
