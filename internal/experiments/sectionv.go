package experiments

import (
	"errors"
	"fmt"
	"os"
	"time"

	"pressio/internal/core"
	"pressio/internal/launch"
	"pressio/internal/sdrbench"
)

// DimOrderRow is one bound of the §V dimension-ordering measurement.
type DimOrderRow struct {
	RelBound      float64
	CorrectRatio  float64
	ReversedRatio float64
	Factor        float64 // CorrectRatio / ReversedRatio; paper: 1.4x-1.8x
}

// DimOrder reproduces the §V in-text claim: mistakenly reversing the
// dimension order passed to the sz-family compressor on the CLOUD field
// lowers the compression ratio across value-range relative bounds
// 1e-5..1e-2.
func DimOrder(scale int, seed int64) ([]DimOrderRow, error) {
	cloud := sdrbench.HurricaneCloud(16*scale, 32*scale, 32*scale, seed)
	dims := cloud.Dims()
	reversedDims := []uint64{dims[2], dims[1], dims[0]}
	reversed := cloud.Clone()
	if err := reversed.Reshape(reversedDims...); err != nil {
		return nil, err
	}
	var rows []DimOrderRow
	for _, b := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
		opts := core.NewOptions().SetValue(core.KeyRel, b)
		correct, err := ratioOf("sz", cloud, opts)
		if err != nil {
			return nil, err
		}
		wrong, err := ratioOf("sz", reversed, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DimOrderRow{
			RelBound: b, CorrectRatio: correct, ReversedRatio: wrong,
			Factor: correct / wrong,
		})
	}
	return rows, nil
}

// DimOrderReport renders the measurement.
func DimOrderReport(rows []DimOrderRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%g", r.RelBound),
			fmt.Sprintf("%.2f", r.CorrectRatio),
			fmt.Sprintf("%.2f", r.ReversedRatio),
			fmt.Sprintf("%.2fx", r.Factor),
		})
	}
	return "SZ on CLOUD-like field: correct vs reversed dimension order (paper: 1.4x-1.8x loss)\n" +
		Table([]string{"rel bound", "correct ratio", "reversed ratio", "loss factor"}, cells)
}

// FlattenRow is one compressor of the §V 1-D-flattening measurement.
type FlattenRow struct {
	Compressor string
	RelBound   float64
	Ratio3D    float64
	Ratio1D    float64
	Factor     float64 // paper: 1.2x-1.3x loss
}

// Flatten reproduces the §V claim that treating multi-dimensional buffers
// as 1-D reduces compression ratios.
func Flatten(scale int, seed int64) ([]FlattenRow, error) {
	cloud := sdrbench.HurricaneCloud(16*scale, 32*scale, 32*scale, seed)
	flat := cloud.Clone()
	if err := flat.Reshape(cloud.Len()); err != nil {
		return nil, err
	}
	var rows []FlattenRow
	for _, comp := range []string{"sz", "zfp"} {
		for _, b := range []float64{1e-4, 1e-3} {
			opts := core.NewOptions().SetValue(core.KeyRel, b)
			r3, err := ratioOf(comp, cloud, opts)
			if err != nil {
				return nil, err
			}
			r1, err := ratioOf(comp, flat, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, FlattenRow{
				Compressor: comp, RelBound: b, Ratio3D: r3, Ratio1D: r1, Factor: r3 / r1,
			})
		}
	}
	return rows, nil
}

// FlattenReport renders the measurement.
func FlattenReport(rows []FlattenRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Compressor,
			fmt.Sprintf("%g", r.RelBound),
			fmt.Sprintf("%.2f", r.Ratio3D),
			fmt.Sprintf("%.2f", r.Ratio1D),
			fmt.Sprintf("%.2fx", r.Factor),
		})
	}
	return "3-D vs flattened-1-D compression (paper: 1.2x-1.3x loss)\n" +
		Table([]string{"compressor", "rel bound", "3-D ratio", "1-D ratio", "loss factor"}, cells)
}

// ZfpPadResult holds the §V block-padding measurement.
type ZfpPadResult struct {
	RatioAs3D     float64 // A x B x 1: every block 15/16 padding
	RatioAs2D     float64 // A x B via the resize meta-compressor
	PaddingFactor float64
}

// ZfpPad reproduces the §V claim that passing a dimension smaller than the
// zfp block size forces zero padding and inefficient compression, and that
// the resize meta-compressor recovers it.
func ZfpPad(scale int, seed int64) (ZfpPadResult, error) {
	field := sdrbench.ScaleLetKF(1, 64*scale, 64*scale, seed)
	as3d := field.Clone()
	if err := as3d.Reshape(uint64(64*scale), uint64(64*scale), 1); err != nil {
		return ZfpPadResult{}, err
	}
	opts := core.NewOptions().SetValue(core.KeyRel, 1e-3)
	r3, err := ratioOf("zfp", as3d, opts)
	if err != nil {
		return ZfpPadResult{}, err
	}
	// Route through the resize meta-compressor, as a LibPressio user would.
	resizeDims := core.NewData(core.DTypeUint64, 2)
	copy(resizeDims.Uint64s(), []uint64{uint64(64 * scale), uint64(64 * scale)})
	r2, err := ratioOf("resize", as3d, core.NewOptions().
		SetValue("resize:compressor", "zfp").
		Set("resize:dims", core.NewOption(resizeDims)).
		SetValue(core.KeyRel, 1e-3))
	if err != nil {
		return ZfpPadResult{}, err
	}
	return ZfpPadResult{RatioAs3D: r3, RatioAs2D: r2, PaddingFactor: r2 / r3}, nil
}

// Report renders the padding measurement.
func (r ZfpPadResult) Report() string {
	return fmt.Sprintf(
		"zfp block padding (AxBx1 vs resized AxB, rel 1e-3):\n"+
			"  as 3-D (padded blocks): ratio %.2f\n"+
			"  as 2-D (via resize):    ratio %.2f\n"+
			"  efficiency recovered:   %.2fx\n", r.RatioAs3D, r.RatioAs2D, r.PaddingFactor)
}

// DTypeAwareResult holds the §V datatype-awareness measurement: what an
// interface that cannot pass type information (treating everything as a
// byte stream) costs against a type-aware error-bounded compressor at
// matched quality.
type DTypeAwareResult struct {
	TypeAwareRatio float64 // sz at rel 1e-3, exploiting float semantics
	ByteBlindRatio float64 // gzip -9 on the same bytes (necessarily lossless)
	Advantage      float64
}

// DTypeAware measures the value of datatype awareness on a CLOUD-like
// field. The byte-blind path cannot even express an error bound, so this
// understates the gap the paper describes — yet the ratio difference alone
// makes the point.
func DTypeAware(scale int, seed int64) (DTypeAwareResult, error) {
	cloud := sdrbench.HurricaneCloud(16*scale, 32*scale, 32*scale, seed)
	aware, err := ratioOf("sz", cloud, core.NewOptions().SetValue(core.KeyRel, 1e-3))
	if err != nil {
		return DTypeAwareResult{}, err
	}
	blind, err := ratioOf("gzip", cloud, core.NewOptions().SetValue(core.KeyLossless, int32(9)))
	if err != nil {
		return DTypeAwareResult{}, err
	}
	return DTypeAwareResult{TypeAwareRatio: aware, ByteBlindRatio: blind, Advantage: aware / blind}, nil
}

// Report renders the datatype-awareness measurement.
func (r DTypeAwareResult) Report() string {
	return fmt.Sprintf(
		"datatype awareness (CLOUD-like field):\n"+
			"  type-aware error-bounded (sz, rel 1e-3): ratio %.2f\n"+
			"  byte-blind lossless (gzip -9):           ratio %.2f\n"+
			"  advantage from type information:         %.1fx\n",
		r.TypeAwareRatio, r.ByteBlindRatio, r.Advantage)
}

// MgardMin reproduces the §V claim that MGARD refuses fewer than 3 points
// per dimension rather than compressing; it returns the error observed.
func MgardMin() (string, error) {
	tiny := core.NewData(core.DTypeFloat32, 2, 2)
	c, err := core.NewCompressor("mgard")
	if err != nil {
		return "", err
	}
	if err := c.SetOptions(core.NewOptions().SetValue(core.KeyAbs, 0.1)); err != nil {
		return "", err
	}
	_, err = core.Compress(c, tiny)
	if err == nil {
		return "", errors.New("experiments: mgard unexpectedly accepted a 2x2 grid")
	}
	return err.Error(), nil
}

// EmbedResult holds the §V embeddability measurement.
type EmbedResult struct {
	// InProcessMS is the in-process compression time (paper: 993 ms for
	// CLOUD at their scale).
	InProcessMS float64
	// ExternalMS is the external-worker wall time including spawn and the
	// two data copies (paper: +174 ms, approximately 17.5%).
	ExternalMS float64
	// ExternalHeavyMS adds a simulated expensive initialization (paper's
	// MPI-launched compressor: +1997 ms, approximately 201%).
	ExternalHeavyMS float64
	OverheadPct     float64
	HeavyPct        float64
}

// Embed measures in-process versus external-process compression. worker is
// the path of a binary that implements the launch worker protocol when
// invoked with workerArgs (cmd/pressio with -worker, or cmd/pressio-bench
// re-executing itself).
func Embed(worker string, workerArgs []string, scale int, seed int64) (EmbedResult, error) {
	if _, err := os.Stat(worker); err != nil {
		return EmbedResult{}, fmt.Errorf("experiments: worker binary: %w", err)
	}
	// Use a larger field than the other experiments: the measurement is
	// only meaningful when compression time dominates a process spawn, as
	// it does at the paper's dataset sizes.
	cloud := sdrbench.HurricaneCloud(32*scale, 64*scale, 64*scale, seed)
	opts := map[string]string{core.KeyRel: "1e-3"}

	// In-process.
	c, err := core.NewCompressor("sz_threadsafe")
	if err != nil {
		return EmbedResult{}, err
	}
	if err := launch.ApplyStringOptions(c, opts); err != nil {
		return EmbedResult{}, err
	}
	start := time.Now()
	if _, err := core.Compress(c, cloud); err != nil {
		return EmbedResult{}, err
	}
	inProc := float64(time.Since(start).Nanoseconds()) / 1e6

	ext := launch.External{Binary: worker, Args: workerArgs}
	_, extDur, err := ext.Compress("sz_threadsafe", opts, cloud)
	if err != nil {
		return EmbedResult{}, err
	}
	// Simulated heavyweight initialization: the paper's MPI-launched
	// compressor spent ~2x the compression time initializing (1997 ms of
	// startup against 993 ms of compression), so scale the simulated
	// delay the same way.
	heavy := launch.External{Binary: worker, Args: workerArgs,
		StartupDelay: time.Duration(2*inProc) * time.Millisecond}
	_, heavyDur, err := heavy.Compress("sz_threadsafe", opts, cloud)
	if err != nil {
		return EmbedResult{}, err
	}
	res := EmbedResult{
		InProcessMS:     inProc,
		ExternalMS:      float64(extDur.Nanoseconds()) / 1e6,
		ExternalHeavyMS: float64(heavyDur.Nanoseconds()) / 1e6,
	}
	res.OverheadPct = 100 * (res.ExternalMS - res.InProcessMS) / res.InProcessMS
	res.HeavyPct = 100 * (res.ExternalHeavyMS - res.InProcessMS) / res.InProcessMS
	return res, nil
}

// Report renders the embeddability measurement.
func (r EmbedResult) Report() string {
	return fmt.Sprintf(
		"embeddable vs external-process compression (CLOUD-like field):\n"+
			"  in-process:               %8.1f ms\n"+
			"  external worker:          %8.1f ms  (+%.1f%%; paper: ~17.5%%)\n"+
			"  external + heavy init:    %8.1f ms  (+%.1f%%; paper: ~201%%)\n",
		r.InProcessMS, r.ExternalMS, r.OverheadPct, r.ExternalHeavyMS, r.HeavyPct)
}
