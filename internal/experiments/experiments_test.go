package experiments

import (
	"strings"
	"testing"
)

func TestFig3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := Fig3(1, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 35 {
		t.Fatalf("expected the paper's 35 configurations, got %d", len(res.Results))
	}
	for _, r := range res.Results {
		if r.NativeMedianMS <= 0 || r.GenericMedianMS <= 0 {
			t.Fatalf("%s: non-positive timing", r.Config)
		}
		// The abstraction cannot plausibly cost half the runtime.
		if r.MedianPct > 50 {
			t.Fatalf("%s: median overhead %.1f%% implausible", r.Config, r.MedianPct)
		}
	}
	if res.Wilcoxon.N == 0 {
		t.Fatal("Wilcoxon test did not run")
	}
	if !strings.Contains(res.Report(), "Wilcoxon") {
		t.Fatal("report missing test summary")
	}
}

func TestDimOrderDirection(t *testing.T) {
	rows, err := DimOrder(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Factor <= 1 {
			t.Fatalf("bound %g: reversed dims should lose, factor %.2f", r.RelBound, r.Factor)
		}
		if r.Factor > 10 {
			t.Fatalf("bound %g: factor %.2f implausibly large", r.RelBound, r.Factor)
		}
	}
	if !strings.Contains(DimOrderReport(rows), "reversed") {
		t.Fatal("report malformed")
	}
}

func TestFlattenDirection(t *testing.T) {
	// Scale 2: at tiny grid sizes zfp's 1-D/3-D gap is within noise, so
	// use the size where the paper's effect is resolvable.
	rows, err := Flatten(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Factor <= 1 {
			t.Fatalf("%s@%g: flattening should lose, factor %.2f", r.Compressor, r.RelBound, r.Factor)
		}
	}
}

func TestZfpPadDirection(t *testing.T) {
	res, err := ZfpPad(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.PaddingFactor <= 1 {
		t.Fatalf("resize should recover efficiency, factor %.2f", res.PaddingFactor)
	}
}

func TestMgardMinFails(t *testing.T) {
	msg, err := MgardMin()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "3 points") {
		t.Fatalf("unexpected failure message: %s", msg)
	}
}

func TestTableIShape(t *testing.T) {
	rows := CompetitorFeatures()
	if len(rows) != 9 {
		t.Fatalf("the paper compares 9 competitors, got %d", len(rows))
	}
	us := LibPressioFeatures()
	// The whole point of Table I: this row is all yes, derived live.
	for name, v := range map[string]string{
		"lossless": us.Lossless, "lossy": us.Lossy, "nd": us.NDAware,
		"dtype": us.DTypeAware, "embeddable": us.Embeddable,
		"arbitrary": us.ArbitraryCfg, "introspect": us.Introspect,
		"thirdparty": us.ThirdParty,
	} {
		if v != Yes {
			t.Fatalf("feature %s not demonstrated: %s", name, v)
		}
	}
	if !strings.Contains(TableI(), "LibPressio") {
		t.Fatal("table missing our row")
	}
}

func TestTableIIReduction(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := TableII(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Tasks()) {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.GenericLines == 0 {
			t.Fatalf("%s: generic side not found", r.Task.Name)
		}
		if r.Task.NoNativeEquivalent {
			if r.NativeLines != 0 {
				t.Fatalf("%s: dagger row should have no native side", r.Task.Name)
			}
			continue
		}
		if r.NativeLines == 0 {
			t.Fatalf("%s: native side not found", r.Task.Name)
		}
		// The headline claim: generic clients are smaller.
		if r.RelativePct <= 0 {
			t.Fatalf("%s: no reduction (%.1f%%)", r.Task.Name, r.RelativePct)
		}
	}
	// The CLI and filter rows must land in the paper's 50-90%% band.
	for _, r := range rows {
		switch r.Task.Name {
		case "CLI", "HDF5 filter", "Z-Checker":
			if r.RelativePct < 50 || r.RelativePct > 90 {
				t.Fatalf("%s: %.1f%% outside the paper's 50-90%% band", r.Task.Name, r.RelativePct)
			}
		}
	}
}

func TestDatasets(t *testing.T) {
	ds := Datasets(1, 5)
	if len(ds) != 3 {
		t.Fatalf("datasets %d", len(ds))
	}
	for _, d := range ds {
		if d.Data.Len() == 0 {
			t.Fatalf("%s empty", d.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestDTypeAwareDirection(t *testing.T) {
	res, err := DTypeAware(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage <= 1.5 {
		t.Fatalf("type-aware compression should clearly beat byte-blind: %.2fx", res.Advantage)
	}
}
