package experiments

import (
	"pressio/internal/core"
)

// Feature cell values for Table I.
const (
	Yes     = "yes"
	No      = "no"
	Partial = "partial"
)

// FeatureRow is one library's row of Table I.
type FeatureRow struct {
	Library      string
	Lossless     string
	Lossy        string
	NDAware      string
	DTypeAware   string
	Embeddable   string
	ArbitraryCfg string
	Introspect   string
	ThirdParty   string
}

// CompetitorFeatures encodes Table I's competitor rows as discussed in the
// paper's §III and §V prose (the printed table is followed where the two
// agree; see EXPERIMENTS.md for the sourcing of each cell).
func CompetitorFeatures() []FeatureRow {
	return []FeatureRow{
		{"ADIOS-2", Yes, Yes, Yes, Yes, Yes, No, No, Yes},
		{"ffmpeg", Yes, Yes, Partial, Partial, Yes, No, No, No},
		{"Foresight/CBench", Yes, Yes, Yes, Yes, Partial, No, No, No},
		{"HDF5", Yes, Yes, Yes, Yes, Yes, No, No, Yes},
		{"imagemagick", Yes, Yes, Partial, Partial, Yes, No, No, No},
		{"libarchive", Yes, No, No, No, Yes, No, No, No},
		{"NumCodecs", Yes, Yes, Partial, Yes, Partial, No, Partial, Yes},
		{"SCIL", Yes, Yes, Yes, Yes, Yes, No, No, No},
		{"Z-checker (0.7)", Yes, Yes, Yes, Yes, Partial, No, No, No},
	}
}

// LibPressioFeatures derives this implementation's Table I row by probing
// the live registry rather than asserting it: each feature is demonstrated
// by an actual API interaction.
func LibPressioFeatures() FeatureRow {
	row := FeatureRow{Library: "LibPressio (this repo)",
		Lossless: No, Lossy: No, NDAware: No, DTypeAware: No,
		Embeddable:   Yes, // compiled into this process by construction
		ArbitraryCfg: No, Introspect: No, ThirdParty: No}

	// Lossless + lossy: at least one of each registered.
	for _, name := range core.SupportedCompressors() {
		switch name {
		case "gzip", "flate", "zlib", "rle":
			row.Lossless = Yes
		case "sz", "zfp", "mgard":
			row.Lossy = Yes
		}
	}
	// N-d and datatype awareness: the buffer abstraction carries both and a
	// compressor acts on them.
	d := core.NewData(core.DTypeFloat32, 3, 4, 5)
	if d.NumDims() == 3 && d.DType() == core.DTypeFloat32 {
		row.NDAware = Yes
		row.DTypeAware = Yes
	}
	// Arbitrary configuration: an opaque pointer survives the option store.
	opts := core.NewOptions()
	type comm struct{ rank int }
	opts.Set("mpi:comm", core.OptionUserPtr(&comm{rank: 1}))
	if v, err := opts.GetUserPtr("mpi:comm"); err == nil {
		if c, ok := v.(*comm); ok && c.rank == 1 {
			row.ArbitraryCfg = Yes
		}
	}
	// Introspection: a compressor advertises typed options.
	if c, err := core.NewCompressor("sz"); err == nil {
		if o, ok := c.Options().Get("sz:abs_err_bound"); ok && o.Type() != core.OptUnset {
			row.Introspect = Yes
		}
	}
	// Third-party extension: registration from outside the framework
	// packages works (the test suite registers plugins; the exported
	// RegisterCompressor hook is the mechanism).
	row.ThirdParty = Yes
	return row
}

// TableI renders the full feature comparison.
func TableI() string {
	rows := append(CompetitorFeatures(), LibPressioFeatures())
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Library, r.Lossless, r.Lossy, r.NDAware, r.DTypeAware,
			r.Embeddable, r.ArbitraryCfg, r.Introspect, r.ThirdParty,
		})
	}
	return "Table I: feature comparison\n" + Table([]string{
		"library", "lossless", "lossy", "n-d aware", "dtype aware",
		"embeddable", "arbitrary cfg", "introspection", "3rd party",
	}, cells)
}
