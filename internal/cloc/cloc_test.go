package cloc

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCountSourceBasics(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"", 0},
		{"\n\n\n", 0},
		{"package main\n", 1},
		{"// just a comment\n", 0},
		{"package main // trailing comment\n", 1},
		{"/* block */\n", 0},
		{"/* block */ var x int\n", 1},
		{"var x int /* trailing block\nstill comment\n*/ var y int\n", 2},
		{"a\nb\nc", 3},
		{"\t \t\n  x\n", 1},
	}
	for i, c := range cases {
		if got := CountSource(c.src); got != c.want {
			t.Fatalf("case %d (%q): got %d want %d", i, c.src, got, c.want)
		}
	}
}

func TestCommentMarkersInsideStrings(t *testing.T) {
	src := `s := "http://example.com" // real comment
t := "/* not a block */"
u := '"'
`
	if got := CountSource(src); got != 3 {
		t.Fatalf("got %d want 3", got)
	}
}

func TestMultiLineBlockComments(t *testing.T) {
	src := `code1
/*
comment line
comment line
*/
code2
`
	if got := CountSource(src); got != 2 {
		t.Fatalf("got %d want 2", got)
	}
}

func TestCountDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package a\nvar X = 1\n")
	write("a_test.go", "package a\nfunc TestX() {}\n")
	write("notes.txt", "ignored\n")
	c, err := CountDir(dir, []string{".go"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Files != 1 || c.Code != 2 {
		t.Fatalf("count %+v", c)
	}
	all, err := CountDir(dir, []string{".go"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if all.Files != 2 || all.Code != 4 {
		t.Fatalf("count %+v", all)
	}
}
