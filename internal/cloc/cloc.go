// Package cloc counts normalized lines of client code, reproducing the
// measurement protocol of the paper's Table II: formatting-normalized
// source (the paper ran clang-format; here Go sources are expected to be
// gofmt-normalized), with blank lines and comments excluded.
package cloc

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Count holds the per-file breakdown of a measurement.
type Count struct {
	Files int
	Code  int
	// ByFile maps relative file path to its code-line count.
	ByFile map[string]int
}

// CountSource counts code lines in a single Go/C-style source text:
// blank lines and //, /* */ comments are excluded; a line containing both
// code and a comment counts as code.
func CountSource(src string) int {
	code := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		hasCode := false
		i := 0
		for i < len(line) {
			if inBlock {
				end := strings.Index(line[i:], "*/")
				if end < 0 {
					i = len(line)
					break
				}
				i += end + 2
				inBlock = false
				continue
			}
			switch {
			case strings.HasPrefix(line[i:], "//"):
				i = len(line)
			case strings.HasPrefix(line[i:], "/*"):
				inBlock = true
				i += 2
			case line[i] == '"' || line[i] == '`' || line[i] == '\'':
				// Consume a string/rune literal so comment markers inside
				// it do not confuse the scanner.
				quote := line[i]
				hasCode = true
				i++
				for i < len(line) {
					if line[i] == '\\' && quote != '`' && i+1 < len(line) {
						i += 2
						continue
					}
					if line[i] == quote {
						i++
						break
					}
					i++
				}
			default:
				if !isSpace(line[i]) {
					hasCode = true
				}
				i++
			}
		}
		if hasCode {
			code++
		}
	}
	return code
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' }

// CountFiles counts the given files.
func CountFiles(paths []string) (Count, error) {
	c := Count{ByFile: map[string]int{}}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return c, err
		}
		n := CountSource(string(b))
		c.ByFile[p] = n
		c.Code += n
		c.Files++
	}
	return c, nil
}

// CountDir counts all files with the given extensions (e.g. ".go") under
// root, recursively, skipping _test files when skipTests is set.
func CountDir(root string, exts []string, skipTests bool) (Count, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if skipTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		for _, ext := range exts {
			if strings.HasSuffix(path, ext) {
				paths = append(paths, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return Count{}, err
	}
	sort.Strings(paths)
	return CountFiles(paths)
}
