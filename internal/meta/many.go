package meta

import (
	"fmt"
	"runtime"
	"sync"

	"pressio/internal/core"
)

// CompressMany is the "Many Independent" meta-compressor: it compresses
// several buffers concurrently using clones of the prototype compressor
// (embarrassingly parallel). It respects the prototype's declared thread
// safety: "single" plugins are run serially.
func CompressMany(proto *core.Compressor, bufs []*core.Data, nthreads int) ([]*core.Data, error) {
	if proto == nil {
		return nil, fmt.Errorf("meta: %w: nil compressor", core.ErrNilData)
	}
	results := make([]*core.Data, len(bufs))
	errs := make([]error, len(bufs))
	workers := nthreads
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if proto.ThreadSafety() == core.ThreadSafetySingle {
		workers = 1
	}
	if workers > len(bufs) {
		workers = len(bufs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := proto.Clone()
			for i := range next {
				results[i], errs[i] = core.Compress(worker, bufs[i])
			}
		}()
	}
	for i := range bufs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// DecompressMany is the inverse of CompressMany; hints supply the per-buffer
// output dtype/dims the same way Decompress does.
func DecompressMany(proto *core.Compressor, comps, hints []*core.Data, nthreads int) ([]*core.Data, error) {
	if len(comps) != len(hints) {
		return nil, fmt.Errorf("meta: %w: %d streams, %d hints", core.ErrInvalidDims, len(comps), len(hints))
	}
	results := make([]*core.Data, len(comps))
	errs := make([]error, len(comps))
	workers := nthreads
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if proto.ThreadSafety() == core.ThreadSafetySingle {
		workers = 1
	}
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := proto.Clone()
			for i := range next {
				out := core.NewEmpty(hints[i].DType(), hints[i].Dims()...)
				errs[i] = worker.Decompress(comps[i], out)
				results[i] = out
			}
		}()
	}
	for i := range comps {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Feedback maps the metric results of one buffer to option updates for the
// next — e.g. forwarding the previous timestep's tuned error bound.
type Feedback func(step int, results *core.Options) *core.Options

// CompressManyDependent is the "Many Dependent" meta-compressor: a pipeline
// in which buffer i's metrics configure buffer i+1's compression. The first
// buffer runs with the compressor's current options; after each buffer the
// feedback callback may return options applied before the next one.
func CompressManyDependent(proto *core.Compressor, bufs []*core.Data, metrics []string, fb Feedback) ([]*core.Data, error) {
	comp := proto.Clone()
	if len(metrics) > 0 {
		m, err := core.NewMetrics(metrics...)
		if err != nil {
			return nil, err
		}
		comp.SetMetrics(m)
	}
	results := make([]*core.Data, len(bufs))
	for i, buf := range bufs {
		out, err := core.Compress(comp, buf)
		if err != nil {
			return nil, err
		}
		results[i] = out
		if fb != nil {
			if opts := fb(i, comp.MetricsResults()); opts != nil {
				if err := comp.SetOptions(opts); err != nil {
					return nil, err
				}
			}
		}
	}
	return results, nil
}
