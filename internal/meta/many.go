package meta

import (
	"fmt"
	"runtime"
	"sync"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// manyWorkers resolves the worker count for a batch of n buffers under the
// prototype's thread-safety contract.
func manyWorkers(proto *core.Compressor, nthreads, n int) int {
	workers := nthreads
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if proto.ThreadSafety() == core.ThreadSafetySingle {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// mergeWorkerMetrics collects each worker clone's metric results in worker
// index order. Buffers are assigned to workers statically (worker w takes
// buffers w, w+W, w+2W, ...), so both the per-worker measurements and this
// merge are deterministic for a fixed worker count — scheduling cannot
// reorder them. Later workers overwrite colliding keys, matching
// Options.Merge semantics everywhere else in the framework.
func mergeWorkerMetrics(workers []*core.Compressor) *core.Options {
	merged := core.NewOptions()
	for _, w := range workers {
		if w != nil {
			merged.Merge(w.MetricsResults())
		}
	}
	return merged
}

// CompressMany is the "Many Independent" meta-compressor: it compresses
// several buffers concurrently using clones of the prototype compressor
// (embarrassingly parallel). It respects the prototype's declared thread
// safety: "single" plugins are run serially.
func CompressMany(proto *core.Compressor, bufs []*core.Data, nthreads int) ([]*core.Data, error) {
	results, _, err := CompressManyWithMetrics(proto, bufs, nthreads)
	return results, err
}

// CompressManyWithMetrics is CompressMany plus metric accounting: each
// worker gets its own clone of the prototype's attached Metric (so no state
// is shared across goroutines), and after the barrier the per-worker results
// are merged in worker index order. Buffers are statically partitioned
// across workers, which makes the merged Options deterministic for a fixed
// worker count.
func CompressManyWithMetrics(proto *core.Compressor, bufs []*core.Data, nthreads int) ([]*core.Data, *core.Options, error) {
	if proto == nil {
		return nil, nil, fmt.Errorf("meta: %w: nil compressor", core.ErrNilData)
	}
	results := make([]*core.Data, len(bufs))
	errs := make([]error, len(bufs))
	workers := manyWorkers(proto, nthreads, len(bufs))
	clones := make([]*core.Compressor, workers)
	parent := trace.Current()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := proto.Clone()
			clones[w] = worker
			for i := w; i < len(bufs); i += workers {
				sp := parent.StartChild("many.compress",
					trace.Int("worker", int64(w)), trace.Int("buffer", int64(i)))
				results[i], errs[i] = core.Compress(worker, bufs[i])
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, mergeWorkerMetrics(clones), nil
}

// DecompressMany is the inverse of CompressMany; hints supply the per-buffer
// output dtype/dims the same way Decompress does.
func DecompressMany(proto *core.Compressor, comps, hints []*core.Data, nthreads int) ([]*core.Data, error) {
	results, _, err := DecompressManyWithMetrics(proto, comps, hints, nthreads)
	return results, err
}

// DecompressManyWithMetrics mirrors CompressManyWithMetrics for the
// decompression direction.
func DecompressManyWithMetrics(proto *core.Compressor, comps, hints []*core.Data, nthreads int) ([]*core.Data, *core.Options, error) {
	if proto == nil {
		return nil, nil, fmt.Errorf("meta: %w: nil compressor", core.ErrNilData)
	}
	if len(comps) != len(hints) {
		return nil, nil, fmt.Errorf("meta: %w: %d streams, %d hints", core.ErrInvalidDims, len(comps), len(hints))
	}
	results := make([]*core.Data, len(comps))
	errs := make([]error, len(comps))
	workers := manyWorkers(proto, nthreads, len(comps))
	clones := make([]*core.Compressor, workers)
	parent := trace.Current()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := proto.Clone()
			clones[w] = worker
			for i := w; i < len(comps); i += workers {
				sp := parent.StartChild("many.decompress",
					trace.Int("worker", int64(w)), trace.Int("buffer", int64(i)))
				out := core.NewEmpty(hints[i].DType(), hints[i].Dims()...)
				errs[i] = worker.Decompress(comps[i], out)
				results[i] = out
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, mergeWorkerMetrics(clones), nil
}

// Feedback maps the metric results of one buffer to option updates for the
// next — e.g. forwarding the previous timestep's tuned error bound.
type Feedback func(step int, results *core.Options) *core.Options

// CompressManyDependent is the "Many Dependent" meta-compressor: a pipeline
// in which buffer i's metrics configure buffer i+1's compression. The first
// buffer runs with the compressor's current options; after each buffer the
// feedback callback may return options applied before the next one.
func CompressManyDependent(proto *core.Compressor, bufs []*core.Data, metrics []string, fb Feedback) ([]*core.Data, error) {
	comp := proto.Clone()
	if len(metrics) > 0 {
		m, err := core.NewMetrics(metrics...)
		if err != nil {
			return nil, err
		}
		comp.SetMetrics(m)
	}
	results := make([]*core.Data, len(bufs))
	for i, buf := range bufs {
		out, err := core.Compress(comp, buf)
		if err != nil {
			return nil, err
		}
		results[i] = out
		if fb != nil {
			if opts := fb(i, comp.MetricsResults()); opts != nil {
				if err := comp.SetOptions(opts); err != nil {
					return nil, err
				}
			}
		}
	}
	return results, nil
}
