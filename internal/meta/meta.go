// Package meta implements the paper's "meta-compressors": plugins that
// satisfy the compressor interface but compose, transform, parallelize or
// perturb other compressors instead of coding data themselves — chunking,
// transpose, resize, sampling, delta encoding, linear quantization, fault
// and noise injection, runtime switching, and the many-independent /
// many-dependent parallel pipelines. They are what lets tools be written
// once against the generic interface and still benefit every compressor.
package meta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"pressio/internal/core"
	"pressio/internal/trace"
)

// Option keys the chunking meta-compressor owns.
const (
	keyChunkRows     = "chunking:chunk_rows"
	keyChunkNThreads = "chunking:nthreads"
)

// Version is the meta-compressor family version.
const Version = "1.0.0"

// ErrCorrupt reports a malformed meta-compressor stream.
var ErrCorrupt = errors.New("meta: corrupt stream")

// child manages the wrapped compressor of a meta plugin: the child is named
// by an option ("<prefix>:compressor") and receives every option set on the
// parent, so one flat Options value configures the whole composition.
type child struct {
	prefix    string
	childName string
	comp      *core.Compressor
	saved     *core.Options
}

func newChild(prefix, defaultName string) child {
	return child{prefix: prefix, childName: defaultName}
}

func (c *child) applyOptions(o *core.Options) error {
	if v, err := o.GetString(c.prefix + ":compressor"); err == nil && v != c.childName {
		c.childName = v
		c.comp = nil
	}
	if c.saved == nil {
		c.saved = core.NewOptions()
	}
	c.saved.Merge(o)
	if c.comp != nil {
		return c.comp.SetOptions(o)
	}
	return nil
}

func (c *child) describe(o *core.Options) {
	o.SetValue(c.prefix+":compressor", c.childName)
	if c.comp != nil {
		o.Merge(c.comp.Options())
	}
}

func (c *child) get() (*core.Compressor, error) {
	if c.comp == nil {
		comp, err := core.NewCompressor(c.childName)
		if err != nil {
			return nil, err
		}
		if c.saved != nil {
			if err := comp.SetOptions(c.saved); err != nil {
				return nil, err
			}
		}
		c.comp = comp
	}
	return c.comp, nil
}

func (c *child) clone() child {
	out := child{prefix: c.prefix, childName: c.childName}
	if c.saved != nil {
		out.saved = c.saved.Clone()
	}
	if c.comp != nil {
		out.comp = c.comp.Clone()
	}
	return out
}

func init() {
	core.RegisterCompressor("chunking", func() core.CompressorPlugin {
		return &chunking{child: newChild("chunking", "sz_threadsafe")}
	})
}

// chunking splits the input along the slowest dimension and compresses the
// chunks concurrently with independent clones of the child compressor — the
// automatic task-parallelization meta-compressor. It consults the child's
// declared thread safety: "multiple" children share one instance per
// worker clone anyway (clones are cheap), while "single" children are
// compressed serially.
type chunking struct {
	child
	chunkRows uint64
	nthreads  int32
}

const chunkingMagic = "MCH1"

func (p *chunking) Prefix() string  { return "chunking" }
func (p *chunking) Version() string { return Version }

func (p *chunking) Options() *core.Options {
	o := core.NewOptions()
	o.SetValue(keyChunkRows, p.chunkRows)
	o.SetValue(keyChunkNThreads, p.nthreads)
	o.SetValue(core.KeyNThreads, p.nthreads)
	p.describe(o)
	return o
}

func (p *chunking) SetOptions(o *core.Options) error {
	if v, err := o.GetUint64(keyChunkRows); err == nil {
		p.chunkRows = v
	}
	if v, err := o.GetInt32(core.KeyNThreads); err == nil {
		p.nthreads = v
	}
	if v, err := o.GetInt32(keyChunkNThreads); err == nil {
		p.nthreads = v
	}
	return p.applyOptions(o)
}

func (p *chunking) CheckOptions(o *core.Options) error {
	clone := chunking{child: p.child.clone(), chunkRows: p.chunkRows, nthreads: p.nthreads}
	return clone.SetOptions(o)
}

func (p *chunking) Configuration() *core.Options {
	cfg := core.StandardConfiguration(core.ThreadSafetyMultiple, "stable", Version, false)
	cfg.SetValue("chunking:parallel", int32(1))
	return cfg
}

func (p *chunking) CompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	dims := in.Dims()
	if len(dims) == 0 {
		return fmt.Errorf("chunking: %w", core.ErrInvalidDims)
	}
	d0 := dims[0]
	chunkRows := p.chunkRows
	if chunkRows == 0 || chunkRows > d0 {
		n := uint64(runtime.GOMAXPROCS(0))
		chunkRows = (d0 + n - 1) / n
		if chunkRows == 0 {
			chunkRows = 1
		}
	}
	rowBytes := uint64(in.DType().Size())
	for _, d := range dims[1:] {
		rowBytes *= d
	}
	type job struct {
		rows  uint64
		chunk *core.Data
	}
	var jobs []job
	for start := uint64(0); start < d0; start += chunkRows {
		rows := chunkRows
		if start+rows > d0 {
			rows = d0 - start
		}
		chunkDims := append([]uint64{rows}, dims[1:]...)
		raw := in.Bytes()[start*rowBytes : (start+rows)*rowBytes]
		chunk, err := core.NewMove(in.DType(), raw, chunkDims...)
		if err != nil {
			return err
		}
		jobs = append(jobs, job{rows, chunk})
	}

	results := make([]*core.Data, len(jobs))
	errs := make([]error, len(jobs))
	parallel := comp.ThreadSafety() >= core.ThreadSafetySerialized
	workers := int(p.nthreads)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !parallel || workers > len(jobs) {
		if !parallel {
			workers = 1
		} else {
			workers = len(jobs)
		}
	}
	// Chunk spans are parented under the enclosing compress_impl span (on
	// the caller's goroutine) so traces show wrapper -> plugin -> chunk.
	parent := trace.Current()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Serialized children need one clone per worker; a fresh
			// clone also isolates metrics state.
			worker := comp.Clone()
			for i := range next {
				sp := parent.StartChild("chunking.chunk",
					trace.Int("worker", int64(w)), trace.Int("chunk", int64(i)),
					trace.Uint("rows", jobs[i].rows))
				results[i], errs[i] = core.Compress(worker, jobs[i].chunk)
				sp.End()
			}
		}(w)
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	var buf []byte
	buf = append(buf, chunkingMagic...)
	buf = append(buf, byte(in.DType()))
	buf = append(buf, byte(len(dims)))
	for _, d := range dims {
		buf = binary.AppendUvarint(buf, d)
	}
	buf = binary.AppendUvarint(buf, uint64(len(jobs)))
	for i := range jobs {
		if errs[i] != nil {
			return errs[i]
		}
		buf = binary.AppendUvarint(buf, jobs[i].rows)
		buf = binary.AppendUvarint(buf, results[i].ByteLen())
	}
	for i := range jobs {
		buf = append(buf, results[i].Bytes()...)
	}
	out.Become(core.NewBytes(buf))
	return nil
}

func (p *chunking) DecompressImpl(in, out *core.Data) error {
	comp, err := p.get()
	if err != nil {
		return err
	}
	b := in.Bytes()
	if len(b) < 6 || string(b[:4]) != chunkingMagic {
		return ErrCorrupt
	}
	dtype := core.DType(b[4])
	rank := int(b[5])
	if rank == 0 || rank > 16 || dtype.Size() == 0 {
		return ErrCorrupt
	}
	pos := 6
	dims := make([]uint64, rank)
	total := uint64(1)
	for i := range dims {
		v, sz := binary.Uvarint(b[pos:])
		if sz <= 0 || v == 0 {
			return ErrCorrupt
		}
		dims[i] = v
		total *= v
		if total > 1<<40 {
			return ErrCorrupt // declared-shape bomb
		}
		pos += sz
	}
	nChunks, sz := binary.Uvarint(b[pos:])
	if sz <= 0 || nChunks == 0 || nChunks > 1<<24 {
		return ErrCorrupt
	}
	pos += sz
	rows := make([]uint64, nChunks)
	sizes := make([]uint64, nChunks)
	for i := range rows {
		r, sz := binary.Uvarint(b[pos:])
		if sz <= 0 {
			return ErrCorrupt
		}
		pos += sz
		l, sz := binary.Uvarint(b[pos:])
		if sz <= 0 {
			return ErrCorrupt
		}
		pos += sz
		rows[i], sizes[i] = r, l
	}
	rowBytes := uint64(dtype.Size())
	for _, d := range dims[1:] {
		rowBytes *= d
	}
	result := core.NewData(dtype, dims...)
	type span struct {
		payload []byte
		dstOff  uint64
		rows    uint64
	}
	spans := make([]span, nChunks)
	off := uint64(pos)
	dst := uint64(0)
	for i := uint64(0); i < nChunks; i++ {
		if off+sizes[i] > uint64(len(b)) {
			return ErrCorrupt
		}
		spans[i] = span{payload: b[off : off+sizes[i]], dstOff: dst, rows: rows[i]}
		off += sizes[i]
		dst += rows[i] * rowBytes
	}
	if dst != result.ByteLen() {
		return ErrCorrupt
	}
	errs := make([]error, nChunks)
	parallel := comp.ThreadSafety() >= core.ThreadSafetySerialized
	workers := int(p.nthreads)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !parallel {
		workers = 1
	}
	parent := trace.Current()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := comp.Clone()
			for i := range next {
				s := spans[i]
				sp := parent.StartChild("chunking.chunk",
					trace.Int("worker", int64(w)), trace.Int("chunk", int64(i)),
					trace.Uint("rows", s.rows))
				chunkDims := append([]uint64{s.rows}, dims[1:]...)
				dec, err := core.Decompress(worker, core.NewBytes(s.payload), dtype, chunkDims...)
				if err != nil {
					errs[i] = err
					sp.End()
					continue
				}
				if dec.ByteLen() != s.rows*rowBytes {
					errs[i] = ErrCorrupt
					sp.End()
					continue
				}
				copy(result.Bytes()[s.dstOff:], dec.Bytes())
				sp.End()
			}
		}(w)
	}
	for i := range spans {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	out.Become(result)
	return nil
}

func (p *chunking) Clone() core.CompressorPlugin {
	return &chunking{child: p.child.clone(), chunkRows: p.chunkRows, nthreads: p.nthreads}
}
